"""Profile the decode step pipeline and print the hot spots.

Runs a canned decode stream through the engine under :mod:`cProfile`
and prints the top cumulative-time functions — the first stop when a
step-latency regression shows up in ``BENCH_planner.json``'s
``end_to_end`` block (see ``docs/BENCHMARKS.md``). The default
scenario matches the benchmark's engine fast-path scenario, so numbers
line up with the committed trajectory; ``--engine reference`` profiles
the reference engine core instead for a side-by-side.

Usage::

    python tools/profile_step.py                       # fast path, top 20
    python tools/profile_step.py --engine reference    # reference core
    python tools/profile_step.py --steps 128 --top 40
    python tools/profile_step.py --sort tottime
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.factory import make_engine  # noqa: E402


def profile_decode(
    engine_fast_path: bool,
    model: str,
    strategy: str,
    num_layers: int,
    cache_ratio: float,
    steps: int,
    seed: int,
) -> tuple[cProfile.Profile, float]:
    engine = make_engine(
        model=model,
        strategy=strategy,
        cache_ratio=cache_ratio,
        num_layers=num_layers,
        seed=seed,
        planner_fast_path=True,
        engine_fast_path=engine_fast_path,
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    engine.decode_only(steps, warm_prompt_len=8)
    profiler.disable()
    return profiler, time.perf_counter() - start


def _top_rows(profiler: cProfile.Profile, top: int, sort: str) -> list[dict]:
    """The hottest ``top`` functions as plain rows (for the report)."""
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    rows = []
    for func in stats.fcn_list[:top]:  # fcn_list is set by sort_stats
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    return rows


def profile_report(
    steps: int = 5,
    model: str = "deepseek",
    strategy: str = "hybrimoe",
    num_layers: int = 8,
    cache_ratio: float = 0.75,
    seed: int = 0,
    top: int = 20,
    sort: str = "cumulative",
) -> dict:
    """Profile fast and reference engine cores; return a structured report.

    One entry per engine core, each with the wall time, derived step
    rate and the hottest ``top`` functions — the machine-readable
    counterpart of ``main``'s printed output, used by the smoke test
    and available to tooling.
    """
    report: dict = {"steps": steps, "model": model, "strategy": strategy}
    for label, fast in (("fast", True), ("reference", False)):
        profiler, elapsed = profile_decode(
            engine_fast_path=fast,
            model=model,
            strategy=strategy,
            num_layers=num_layers,
            cache_ratio=cache_ratio,
            steps=steps,
            seed=seed,
        )
        report[label] = {
            "elapsed_s": elapsed,
            "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
            "top": _top_rows(profiler, top, sort),
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--engine",
        choices=["fast", "reference"],
        default="fast",
        help="engine core to profile (EngineConfig.engine_fast_path)",
    )
    parser.add_argument("--model", default="deepseek")
    parser.add_argument("--strategy", default="hybrimoe")
    parser.add_argument("--num-layers", type=int, default=8)
    parser.add_argument("--cache-ratio", type=float, default=0.75)
    parser.add_argument("--steps", type=int, default=256, help="decode steps")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=20, help="rows to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        help="pstats sort key (cumulative, tottime, ncalls, ...)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also dump raw stats here"
    )
    args = parser.parse_args(argv)

    profiler, elapsed = profile_decode(
        engine_fast_path=args.engine == "fast",
        model=args.model,
        strategy=args.strategy,
        num_layers=args.num_layers,
        cache_ratio=args.cache_ratio,
        steps=args.steps,
        seed=args.seed,
    )
    print(
        f"{args.engine} engine: {args.steps} decode steps of "
        f"{args.model} L{args.num_layers} r{args.cache_ratio} in "
        f"{elapsed:.3f}s ({args.steps / elapsed:.1f} steps/s)"
    )
    stats = pstats.Stats(profiler)
    if args.out is not None:
        stats.dump_stats(args.out)
        print(f"raw stats written to {args.out}")
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
