"""Chaos harness: seeded fault campaigns with fleet invariant checking.

Generates randomized-but-reproducible degraded-mode campaigns — replica
crashes and slow windows (:class:`~repro.fleet.faults.FaultSchedule`)
composed with sub-replica hardware faults
(:class:`~repro.hardware.faults.HardwareFaultSchedule`), request
timeouts, retry-with-backoff and overload shedding — runs them against
a replica fleet on a diurnal or bursty trace, and checks the fleet's
safety invariants on the resulting reports:

1. **Exactly-once terminal outcome** — every submitted request id
   appears exactly once in the merged report, with a terminal status
   (``finished``, ``timed_out`` or ``shed``). No lost requests, no
   duplicate completions.
2. **Causal record times** — every record finishes at or after it
   arrived, and no time is negative, NaN or infinite.
3. **Monotone per-replica time** — each replica's degradation log is
   non-decreasing in time (a replica never observes a fault window out
   of order).
4. **Record conservation across the merge** — the merged report holds
   the same multiset of request ids as the per-replica reports
   combined; merging neither drops nor invents records.

Fault draws are rejection-resampled against the schedules' own
validation (no overlapping same-kind hardware windows, no double
crashes), and at least one replica is always kept crash-free so the
fleet retains capacity. Everything derives from the campaign seed —
rerunning a seed replays the identical campaign.

Usage::

    python tools/chaos.py                      # 5 campaigns, 48 requests each
    python tools/chaos.py --campaigns 20 --num-requests 200
    python tools/chaos.py --seed 7 --trace bursty --verbose
"""

from __future__ import annotations

import argparse
import random
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.factory import make_fleet  # noqa: E402
from repro.errors import ConfigError  # noqa: E402
from repro.fleet.faults import FaultSchedule, ReplicaFault  # noqa: E402
from repro.fleet.fleet import FleetReport  # noqa: E402
from repro.hardware.faults import (  # noqa: E402
    HardwareFault,
    HardwareFaultSchedule,
)
from repro.serving.request import TERMINAL_STATUSES  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    bursty_arrivals,
    diurnal_arrivals,
    serving_workload,
)

__all__ = [
    "CampaignSpec",
    "CampaignResult",
    "generate_fault_schedules",
    "check_invariants",
    "run_campaign",
]

#: Redraw budget per fault before the generator gives up on fitting it
#: into the schedule (overlap rejection can exhaust dense windows).
_MAX_DRAWS = 64


@dataclass(frozen=True)
class CampaignSpec:
    """One chaos campaign: the fleet, the trace, and the fault mix.

    ``horizon_s`` bounds when faults may strike — it should roughly
    cover the trace's span so windows actually intersect the run.
    ``num_crashes`` is capped at ``replicas - 1`` (at least one replica
    always survives). All randomness derives from ``seed``.
    """

    seed: int = 0
    replicas: int = 3
    num_requests: int = 48
    trace_kind: str = "diurnal"  # "diurnal" | "bursty"
    base_rate: float = 4.0
    peak_rate: float = 40.0
    decode_steps: int = 6
    horizon_s: float = 8.0
    num_crashes: int = 1
    num_slow: int = 1
    num_hardware: int = 3
    request_timeout_s: float = 6.0
    max_retries: int = 1
    retry_backoff_s: float = 0.25
    shed_queue_depth: int = 24
    model: str = "deepseek"
    strategy: str = "hybrimoe"
    cache_ratio: float = 0.5
    num_layers: int = 4
    max_batch_size: int = 4
    router: str = "least_loaded"
    priority_mix: dict[str, float] = field(
        default_factory=lambda: {"interactive": 0.5, "batch": 0.5}
    )

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ConfigError(
                f"chaos campaigns need >= 2 replicas, got {self.replicas}"
            )
        if self.num_crashes > self.replicas - 1:
            raise ConfigError(
                f"num_crashes={self.num_crashes} would leave no crash-free "
                f"replica in a {self.replicas}-replica fleet"
            )
        if self.trace_kind not in ("diurnal", "bursty"):
            raise ConfigError(
                f"unknown trace kind {self.trace_kind!r} "
                f"(known: diurnal, bursty)"
            )


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign run against its fault-free twin."""

    spec: CampaignSpec
    report: FleetReport
    clean_report: FleetReport
    fault_schedule: FaultSchedule | None
    hardware_faults: HardwareFaultSchedule | None
    violations: tuple[str, ...]

    @property
    def goodput_retention(self) -> float:
        """Chaos completed-goodput over the fault-free run's."""
        return self.report.merged.goodput / self.clean_report.merged.goodput

    def outcome_counts(self) -> dict[str, int]:
        """Terminal status histogram of the chaos run (string keys)."""
        counts = dict.fromkeys(sorted(s.value for s in TERMINAL_STATUSES), 0)
        for record in self.report.merged.requests:
            counts[str(record.status)] = counts.get(str(record.status), 0) + 1
        return counts


# ----------------------------------------------------------------------
# campaign generation
# ----------------------------------------------------------------------

def _draw_hardware_fault(rng: random.Random, spec: CampaignSpec) -> HardwareFault:
    kind = rng.choice(("link_degrade", "disk_stall", "gpu_straggler"))
    at_time = rng.uniform(0.0, 0.8 * spec.horizon_s)
    duration = rng.uniform(0.1 * spec.horizon_s, 0.4 * spec.horizon_s)
    if kind == "link_degrade":
        severity = rng.uniform(0.2, 0.8)
    elif kind == "gpu_straggler":
        severity = rng.uniform(1.5, 4.0)
    else:
        severity = 1.0
    return HardwareFault(
        kind=kind,
        at_time=at_time,
        duration=duration,
        severity=severity,
        replica=rng.randrange(spec.replicas),
    )


def generate_fault_schedules(
    spec: CampaignSpec,
    horizon: float | None = None,
) -> tuple[FaultSchedule | None, HardwareFaultSchedule | None]:
    """Draw the campaign's fault schedules from its seed.

    Crash targets are sampled without replacement from at most
    ``replicas - 1`` replicas; hardware faults are rejection-resampled
    against :class:`HardwareFaultSchedule`'s overlap validation (a draw
    that cannot fit after the redraw budget is dropped — the campaign
    then simply carries fewer faults, which the caller can see in the
    returned schedules). ``horizon`` overrides ``spec.horizon_s`` as
    the fault-window bound — :func:`run_campaign` passes the actual
    trace's arrival span so windows intersect the run.
    """
    # A str seed is converted deterministically (unlike tuple hashing,
    # which PYTHONHASHSEED randomizes across processes).
    rng = random.Random(f"chaos-{spec.seed}")
    if horizon is not None:
        spec = replace(spec, horizon_s=horizon)
    replica_faults: list[ReplicaFault] = []
    crash_targets = rng.sample(range(spec.replicas), spec.num_crashes)
    for replica in crash_targets:
        replica_faults.append(
            ReplicaFault(
                replica=replica,
                at_time=rng.uniform(0.2 * spec.horizon_s, 0.8 * spec.horizon_s),
                kind="crash",
            )
        )
    for _ in range(spec.num_slow):
        for _ in range(_MAX_DRAWS):
            candidate = ReplicaFault(
                replica=rng.randrange(spec.replicas),
                at_time=rng.uniform(0.0, 0.8 * spec.horizon_s),
                kind="slow",
                duration=rng.uniform(0.1 * spec.horizon_s, 0.4 * spec.horizon_s),
            )
            try:
                FaultSchedule([*replica_faults, candidate])
            except ConfigError:
                continue
            replica_faults.append(candidate)
            break

    hardware: list[HardwareFault] = []
    for _ in range(spec.num_hardware):
        for _ in range(_MAX_DRAWS):
            candidate = _draw_hardware_fault(rng, spec)
            try:
                HardwareFaultSchedule([*hardware, candidate])
            except ConfigError:
                continue
            hardware.append(candidate)
            break

    return (
        FaultSchedule(replica_faults) if replica_faults else None,
        HardwareFaultSchedule(hardware) if hardware else None,
    )


def _campaign_trace(spec: CampaignSpec):
    if spec.trace_kind == "diurnal":
        times = diurnal_arrivals(
            spec.num_requests,
            base_rate=spec.base_rate,
            peak_rate=spec.peak_rate,
            period=spec.horizon_s,
            seed=spec.seed,
        )
    else:
        times = bursty_arrivals(
            spec.num_requests,
            base_rate=spec.base_rate,
            burst_rate=spec.peak_rate,
            burst_every=spec.horizon_s / 2.0,
            burst_duration=spec.horizon_s / 8.0,
            seed=spec.seed,
        )
    return serving_workload(
        arrival_times=list(times),
        decode_steps=spec.decode_steps,
        seed=spec.seed,
        priority_mix=spec.priority_mix,
    )


def _campaign_fleet(
    spec: CampaignSpec,
    fault_schedule: FaultSchedule | None,
    hardware_faults: HardwareFaultSchedule | None,
    resilience: bool,
):
    return make_fleet(
        model=spec.model,
        strategy=spec.strategy,
        cache_ratio=spec.cache_ratio,
        num_layers=spec.num_layers,
        seed=spec.seed,
        max_batch_size=spec.max_batch_size,
        replicas=spec.replicas,
        router=spec.router,
        fault_schedule=fault_schedule,
        hardware_faults=hardware_faults,
        request_timeout_s=spec.request_timeout_s if resilience else None,
        shed_queue_depth=spec.shed_queue_depth if resilience else None,
        max_retries=spec.max_retries if resilience else 0,
        retry_backoff_s=spec.retry_backoff_s,
    )


# ----------------------------------------------------------------------
# invariant checking
# ----------------------------------------------------------------------

def check_invariants(num_requests: int, report: FleetReport) -> list[str]:
    """Check the fleet safety invariants; returns violation messages."""
    violations: list[str] = []
    merged = report.merged.requests

    ids = sorted(r.request_id for r in merged)
    expected = list(range(num_requests))
    if ids != expected:
        lost = sorted(set(expected) - set(ids))
        duplicated = sorted({i for i in ids if ids.count(i) > 1})
        extra = sorted(set(ids) - set(expected))
        violations.append(
            f"exactly-once: merged ids != submitted ids "
            f"(lost={lost}, duplicated={duplicated}, unknown={extra})"
        )

    for record in merged:
        if record.status not in TERMINAL_STATUSES:
            violations.append(
                f"exactly-once: request {record.request_id} recorded with "
                f"non-terminal status {record.status!r}"
            )
        finite = (
            record.arrival_time >= 0.0
            and record.finish_time == record.finish_time
            and record.finish_time != float("inf")
        )
        if not finite or record.finish_time < record.arrival_time:
            violations.append(
                f"causal times: request {record.request_id} finished at "
                f"{record.finish_time} but arrived at {record.arrival_time}"
            )

    for replica_id, replica_report in report.per_replica:
        log = replica_report.degradations
        for earlier, later in zip(log, log[1:]):
            if later.time < earlier.time:
                violations.append(
                    f"monotone time: replica {replica_id} degradation log "
                    f"goes backwards ({earlier.time} -> {later.time})"
                )

    pooled = sorted(
        r.request_id for _, rep in report.per_replica for r in rep.requests
    )
    if pooled != sorted(r.request_id for r in merged):
        violations.append(
            f"conservation: per-replica reports hold {len(pooled)} records "
            f"but the merge holds {len(merged)}"
        )
    return violations


# ----------------------------------------------------------------------
# running campaigns
# ----------------------------------------------------------------------

def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Run one chaos campaign plus its fault-free twin and check it.

    The twin serves the identical trace on an identical fleet with no
    faults and no resilience knobs — its goodput is the denominator of
    :attr:`CampaignResult.goodput_retention`. Fault windows are drawn
    over the trace's actual arrival span (not the nominal
    ``horizon_s``), so they intersect the run regardless of rates.
    """
    trace = _campaign_trace(spec)
    span = max(entry.arrival_time for entry in trace)
    fault_schedule, hardware_faults = generate_fault_schedules(
        spec, horizon=max(span, 1e-3)
    )
    chaos_fleet = _campaign_fleet(
        spec, fault_schedule, hardware_faults, resilience=True
    )
    report = chaos_fleet.serve_trace(trace)
    clean_fleet = _campaign_fleet(spec, None, None, resilience=False)
    clean_report = clean_fleet.serve_trace(_campaign_trace(spec))

    violations = check_invariants(spec.num_requests, report)
    violations += [
        f"fault-free twin: {v}"
        for v in check_invariants(spec.num_requests, clean_report)
    ]
    return CampaignResult(
        spec=spec,
        report=report,
        clean_report=clean_report,
        fault_schedule=fault_schedule,
        hardware_faults=hardware_faults,
        violations=tuple(violations),
    )


def _describe(result: CampaignResult) -> str:
    spec = result.spec
    counts = result.outcome_counts()
    n_replica = len(result.fault_schedule or ())
    n_hw = len(result.hardware_faults or ())
    return (
        f"seed {spec.seed}: {spec.trace_kind} trace, "
        f"{n_replica} replica + {n_hw} hardware faults -> "
        f"{counts['finished']} finished / {counts['timed_out']} timed out / "
        f"{counts['shed']} shed, "
        f"{result.report.merged.num_retries} retries, "
        f"{result.report.num_failovers} failovers, "
        f"retention {result.goodput_retention:.3f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--campaigns", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0, help="first campaign seed")
    parser.add_argument("--num-requests", type=int, default=48)
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument(
        "--trace", choices=("diurnal", "bursty", "both"), default="both"
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    kinds = ("diurnal", "bursty") if args.trace == "both" else (args.trace,)
    base = CampaignSpec(
        num_requests=args.num_requests, replicas=args.replicas
    )
    failures = 0
    for i in range(args.campaigns):
        spec = replace(
            base, seed=args.seed + i, trace_kind=kinds[i % len(kinds)]
        )
        result = run_campaign(spec)
        print(_describe(result))
        if args.verbose:
            for fault in result.fault_schedule or ():
                print(f"    {fault}")
            for fault in result.hardware_faults or ():
                print(f"    {fault}")
        for violation in result.violations:
            failures += 1
            print(f"  INVARIANT VIOLATED: {violation}", file=sys.stderr)
    if failures:
        print(f"{failures} invariant violation(s)", file=sys.stderr)
        return 1
    print(f"all invariants held across {args.campaigns} campaign(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
