#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Validates every ``[text](target)`` and ``![alt](target)`` link in the
given markdown files:

- **relative file links** must point at an existing file or directory
  (resolved against the linking file's directory);
- **anchor links** (``#section`` or ``file.md#section``) must match a
  heading in the target file, using GitHub's slugification (lowercase,
  punctuation stripped, spaces to hyphens, ``-N`` suffixes for
  duplicates);
- **external links** (http/https/mailto) are *not* fetched — CI must
  not flake on the network — but plainly malformed ones (empty target)
  still fail.

Links inside fenced code blocks and inline code spans are ignored.

Usage::

    python tools/check_links.py README.md docs/*.md

Exits 1 with a per-link report when anything is broken; 0 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_FENCE_RE = re.compile(r"^(```|~~~)")
_INLINE_CODE_RE = re.compile(r"`[^`]*`")
# [text](target) and ![alt](target); target ends at the first unescaped
# closing paren (markdown targets with spaces/parens are not used here).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]*)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def strip_code(lines: list[str], inline: bool = True) -> list[str]:
    """Blank out fenced code blocks (and inline code spans by default).

    Anchor collection passes ``inline=False``: a heading may legally
    contain inline code (its text still contributes to the slug), while
    a ``#`` comment inside a fenced block is never a heading.
    """
    stripped: list[str] = []
    in_fence = False
    for line in lines:
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            stripped.append("")
            continue
        if in_fence:
            stripped.append("")
        else:
            stripped.append(_INLINE_CODE_RE.sub("", line) if inline else line)
    return stripped


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading (sans duplicate suffix)."""
    # Drop inline code/emphasis markers and links' targets first.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ").strip()
    text = text.lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"\s", "-", text)


def anchors_of(path: Path) -> set[str]:
    """All heading anchors of a markdown file, duplicate-suffixed.

    Headings are collected from the code-stripped text: a ``#`` comment
    inside a fenced block is not a heading and creates no anchor.
    """
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    lines = strip_code(
        path.read_text(encoding="utf-8").splitlines(), inline=False
    )
    for line in lines:
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    # Explicit <a name="..."> anchors also resolve; stored lowercase to
    # match the case-folded lookup the checker performs.
    for line in lines:
        for name in re.findall(r"<a\s+(?:name|id)=\"([^\"]+)\"", line):
            anchors.add(name.lower())
    return anchors


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    """All broken-link descriptions of one markdown file."""
    errors: list[str] = []
    lines = strip_code(path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            where = f"{path}:{lineno}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not target:
                errors.append(f"{where}: empty link target")
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    errors.append(f"{where}: missing file {target!r}")
                    continue
            else:
                resolved = path.resolve()
            if anchor:
                if resolved.is_dir() or resolved.suffix.lower() not in (
                    ".md",
                    ".markdown",
                ):
                    continue  # anchors into non-markdown are unverifiable
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = anchors_of(resolved)
                if anchor.lower() not in anchor_cache[resolved]:
                    errors.append(f"{where}: missing anchor {target!r}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    paths = [Path(arg) for arg in argv]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"no such file: {p}", file=sys.stderr)
        return 2
    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    for path in paths:
        errors.extend(check_file(path, anchor_cache))
    if errors:
        print(f"{len(errors)} broken link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    total = len(paths)
    print(f"link check OK: {total} file(s), no broken relative links or anchors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
