"""Planner fast-path perf harness with a tracked trajectory (PR 3).

Measures the planner three ways and writes ``BENCH_planner.json`` at
the repo root so the perf trajectory is tracked across PRs:

1. **Planner-only latency** on four shapes: ``decode_micro`` — the
   ``bench_scheduler_micro`` steady-state decode shape (one
   decode-sized problem replanned every iteration; the >=5x acceptance
   floor is defined on it) — plus realistic call streams, where a
   short engine run (decode / prefill / 2-GPU decode) records every
   ``plan()``/``simulate_makespan()`` invocation the step pipeline and
   prefetcher actually issue. Each stream is replayed against fresh
   schedulers in three configurations:

   - ``reference``: the from-scratch event simulator, no memo (the
     pre-PR-3 planner);
   - ``fast_cold``: incremental search, memo disabled (isolates the
     search restructuring);
   - ``fast``: incremental search + plan memo (the default planner).

   Plans are bit-identical across all three (property-tested), so the
   streams are path-independent and the comparison is pure latency.

2. **End-to-end steps/sec** of a decode run under the fast vs the
   reference planner, and — since schema 2 — of the engine fast path
   (``EngineConfig.engine_fast_path``) vs the reference engine core on
   a long-decode cache-pressured scenario, best-of-N interleaved.

3. A ``--check`` mode for CI: compares measured speedups against the
   committed ``BENCH_planner.json`` and fails on a >2x regression (or
   on missing the 5x decode floor, or on the engine fast path falling
   >2x below the reference engine core), so perf regressions are
   caught at review time. Intentional trade-offs skip the gate via the
   ``perf-regression-ok`` PR label (see ``.github/workflows/ci.yml``).

Usage::

    python benchmarks/bench_planner_speed.py            # full run, writes BENCH_planner.json
    python benchmarks/bench_planner_speed.py --smoke    # CI-sized run
    python benchmarks/bench_planner_speed.py --smoke --check --out /tmp/current.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig  # noqa: E402
from repro.engine.engine import EngineConfig  # noqa: E402
from repro.engine.factory import make_engine  # noqa: E402
from repro.rng import derive_rng  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_planner.json"

#: Acceptance floor: fast-path decode planner latency must beat the
#: reference path by at least this factor (ISSUE 3 criterion).
DECODE_SPEEDUP_FLOOR = 5.0
#: CI gate: fail when a measured speedup drops below committed/2.
REGRESSION_FACTOR = 2.0


# ----------------------------------------------------------------------
# call-stream recording
# ----------------------------------------------------------------------

def _record_stream(engine, run) -> list[tuple[str, tuple, dict]]:
    """Capture every planner invocation a real engine run performs."""
    scheduler = engine.runtime.scheduler
    stream: list[tuple[str, tuple, dict]] = []
    original = {"plan": scheduler.plan, "simulate_makespan": scheduler.simulate_makespan}

    def recorder(kind):
        def wrapped(*args, **kwargs):
            stream.append((kind, args, kwargs))
            return original[kind](*args, **kwargs)

        return wrapped

    scheduler.plan = recorder("plan")
    scheduler.simulate_makespan = recorder("simulate_makespan")
    try:
        run(engine)
    finally:
        scheduler.plan = original["plan"]
        scheduler.simulate_makespan = original["simulate_makespan"]
    return stream


def _make_recording_engine(num_gpus: int, num_layers: int):
    return make_engine(
        model="deepseek",
        strategy="hybrimoe",
        cache_ratio=0.25,
        num_layers=num_layers,
        seed=0,
        engine_config=EngineConfig(
            cache_ratio=0.25, seed=0, num_gpus=num_gpus
        ),
    )


def _micro_decode_stream(smoke: bool) -> list[tuple[str, tuple, dict]]:
    """The ``bench_scheduler_micro`` decode shape: one decode-sized
    planning problem, replanned every iteration (steady-state decode —
    the shape the >=5x acceptance floor is defined on)."""
    from repro.models.presets import get_preset

    config = get_preset("deepseek")
    rng = derive_rng(0, "bench-planner", "micro-decode")
    experts, k = config.num_routed_experts, config.num_activated_experts
    ids = sorted(int(e) for e in rng.choice(experts, size=k, replace=False))
    activated = [(e, 1) for e in ids]
    cached = set(int(e) for e in rng.choice(experts, size=experts // 2, replace=False))
    reps = 100 if smoke else 400
    return [("plan", (0, activated, cached, 1), {})] * reps


def _shape_streams(smoke: bool) -> dict[str, list[tuple[str, tuple, dict]]]:
    decode_steps = 8 if smoke else 24
    num_layers = 4
    streams: dict[str, list] = {}

    streams["decode_micro"] = _micro_decode_stream(smoke)

    engine = _make_recording_engine(1, num_layers)
    streams["decode"] = _record_stream(
        engine, lambda e: e.decode_only(decode_steps)
    )

    engine = _make_recording_engine(1, num_layers)
    rng = derive_rng(0, "bench-planner", "prefill")
    prompt = rng.integers(0, engine.model.vocab_size, size=64 if smoke else 128)
    streams["prefill"] = _record_stream(
        engine, lambda e: e.generate(prompt, decode_steps=0)
    )

    engine = _make_recording_engine(2, num_layers)
    streams["multi_gpu"] = _record_stream(
        engine, lambda e: e.decode_only(decode_steps)
    )
    return streams


# ----------------------------------------------------------------------
# replay timing
# ----------------------------------------------------------------------

_PLANNER_CONFIGS = {
    "reference": SchedulerConfig(fast_path=False, plan_cache_size=0),
    "fast_cold": SchedulerConfig(fast_path=True, plan_cache_size=0),
    "fast": SchedulerConfig(fast_path=True),
}


def _time_stream(stream, oracle_factory, config: SchedulerConfig, reps: int) -> float:
    """Best-of-``reps`` seconds for one full pass over the stream.

    A fresh scheduler per pass: memo warm-up happens *inside* the
    stream, exactly as it does inside a real decode.
    """
    best = float("inf")
    for _ in range(reps):
        scheduler = HybridScheduler(oracle_factory, config)
        start = time.perf_counter()
        for kind, args, kwargs in stream:
            getattr(scheduler, kind)(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def _bench_planner(smoke: bool) -> dict:
    reps = 3 if smoke else 7
    oracle_engine = _make_recording_engine(1, 2)
    oracle_factory = oracle_engine.runtime.estimated_oracle
    results: dict[str, dict] = {}
    for shape, stream in _shape_streams(smoke).items():
        timings = {
            name: _time_stream(stream, oracle_factory, config, reps)
            for name, config in _PLANNER_CONFIGS.items()
        }
        calls = len(stream)
        results[shape] = {
            "calls": calls,
            "reference_us_per_call": timings["reference"] / calls * 1e6,
            "fast_cold_us_per_call": timings["fast_cold"] / calls * 1e6,
            "fast_us_per_call": timings["fast"] / calls * 1e6,
            "speedup_cold": timings["reference"] / timings["fast_cold"],
            "speedup": timings["reference"] / timings["fast"],
        }
    return results


def _bench_end_to_end(smoke: bool) -> dict:
    """Two end-to-end decode comparisons.

    - **Planner**: fast vs reference *planner* (both on the default
      engine core) — the PR-3 measurement, scenario unchanged.
    - **Engine**: fast vs reference *engine core*, both on the fast
      planner, so the ratio isolates the engine fast path (vectorized
      step pipeline, record-free batched execution, event-heap clock,
      indexed cache). The full scenario is long-decode and
      cache-pressured — the regime the reference core's linear
      interval scans and per-candidate victim ranking scale worst in —
      and times are best-of-``trials`` (interleaved) to damp machine
      noise.
    """
    decode_steps = 8 if smoke else 32
    timings = {}
    for name, fast in (("reference", False), ("fast", True)):
        engine = make_engine(
            model="deepseek",
            strategy="hybrimoe",
            cache_ratio=0.25,
            num_layers=4,
            seed=0,
            planner_fast_path=fast,
        )
        start = time.perf_counter()
        engine.decode_only(decode_steps)
        timings[name] = time.perf_counter() - start

    scenario = {
        "model": "deepseek",
        "strategy": "hybrimoe",
        "num_layers": 4 if smoke else 8,
        "cache_ratio": 0.5 if smoke else 0.75,
        "decode_steps": 32 if smoke else 512,
        "trials": 2 if smoke else 3,
    }
    engine_best = {"baseline": float("inf"), "engine_fast": float("inf")}
    for _ in range(scenario["trials"]):
        for name, engine_fast in (("engine_fast", True), ("baseline", False)):
            engine = make_engine(
                model=scenario["model"],
                strategy=scenario["strategy"],
                cache_ratio=scenario["cache_ratio"],
                num_layers=scenario["num_layers"],
                seed=0,
                planner_fast_path=True,
                engine_fast_path=engine_fast,
            )
            start = time.perf_counter()
            engine.decode_only(scenario["decode_steps"])
            engine_best[name] = min(
                engine_best[name], time.perf_counter() - start
            )
    engine_steps = scenario["decode_steps"]
    return {
        "decode_steps": decode_steps,
        "reference_steps_per_s": decode_steps / timings["reference"],
        "fast_steps_per_s": decode_steps / timings["fast"],
        "speedup": timings["reference"] / timings["fast"],
        "engine_fast_steps_per_s": engine_steps / engine_best["engine_fast"],
        "engine": {
            "scenario": scenario,
            "baseline_steps_per_s": engine_steps / engine_best["baseline"],
            "engine_fast_steps_per_s": engine_steps / engine_best["engine_fast"],
            "speedup": engine_best["baseline"] / engine_best["engine_fast"],
        },
    }


# ----------------------------------------------------------------------
# trajectory + gate
# ----------------------------------------------------------------------

def run(smoke: bool) -> dict:
    return {
        "schema": 2,
        "mode": "smoke" if smoke else "full",
        "criteria": {
            "decode_speedup_floor": DECODE_SPEEDUP_FLOOR,
            "regression_factor": REGRESSION_FACTOR,
        },
        "planner": _bench_planner(smoke),
        "end_to_end": _bench_end_to_end(smoke),
    }


def check(current: dict, baseline: dict | None) -> list[str]:
    """Gate failures of ``current`` against the committed baseline."""
    failures: list[str] = []
    decode_speedup = current["planner"]["decode_micro"]["speedup"]
    if decode_speedup < DECODE_SPEEDUP_FLOOR:
        failures.append(
            f"decode_micro planner speedup {decode_speedup:.1f}x is below "
            f"the {DECODE_SPEEDUP_FLOOR:.0f}x acceptance floor"
        )
    if baseline is None:
        failures.append(f"no committed baseline at {BASELINE_PATH}")
        return failures
    for shape, current_row in current["planner"].items():
        committed = baseline.get("planner", {}).get(shape)
        if committed is None:
            continue
        floor = committed["speedup"] / REGRESSION_FACTOR
        if current_row["speedup"] < floor:
            failures.append(
                f"{shape}: speedup {current_row['speedup']:.1f}x regressed "
                f">{REGRESSION_FACTOR:.0f}x vs committed "
                f"{committed['speedup']:.1f}x (floor {floor:.1f}x)"
            )
    committed_e2e = baseline.get("end_to_end", {}).get("speedup")
    if committed_e2e is not None:
        current_e2e = current["end_to_end"]["speedup"]
        # End-to-end mixes execution with planning; gate only a total
        # loss of the win (fast slower than reference).
        if current_e2e < 1.0 and committed_e2e >= 1.0:
            failures.append(
                f"end-to-end: fast planner is now slower than reference "
                f"({current_e2e:.2f}x, committed {committed_e2e:.2f}x)"
            )
    # Engine fast-path gate (schema >= 2). The absolute floor holds at
    # any scenario size: the fast engine core falling >REGRESSION_FACTOR
    # below the reference core is a regression regardless of scale. The
    # baseline comparison only fires when the scenarios match (CI smoke
    # runs a smaller scenario than the committed full baseline).
    engine_row = current["end_to_end"].get("engine")
    if engine_row is not None:
        if engine_row["speedup"] < 1.0 / REGRESSION_FACTOR:
            failures.append(
                f"end-to-end: engine fast path is >{REGRESSION_FACTOR:.0f}x "
                f"slower than the reference engine core "
                f"({engine_row['speedup']:.2f}x)"
            )
        committed_engine = baseline.get("end_to_end", {}).get("engine")
        if (
            committed_engine is not None
            and engine_row["scenario"] == committed_engine.get("scenario")
        ):
            floor = committed_engine["speedup"] / REGRESSION_FACTOR
            if engine_row["speedup"] < floor:
                failures.append(
                    f"end-to-end: engine fast-path speedup "
                    f"{engine_row['speedup']:.1f}x regressed "
                    f">{REGRESSION_FACTOR:.0f}x vs committed "
                    f"{committed_engine['speedup']:.1f}x (floor {floor:.1f}x)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on regression vs the committed BENCH_planner.json",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BASELINE_PATH,
        help="where to write results (default: repo-root BENCH_planner.json)",
    )
    args = parser.parse_args(argv)

    # Read the committed baseline before writing anything: `--check`
    # must compare against the pre-run state even when --out points at
    # the baseline file itself.
    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    results = run(args.smoke)
    args.out.write_text(json.dumps(results, indent=2) + "\n")

    print(f"planner perf ({results['mode']}):")
    for shape, row in results["planner"].items():
        print(
            f"  {shape:9s} {row['calls']:5d} calls  "
            f"ref {row['reference_us_per_call']:8.1f} us/call  "
            f"cold {row['fast_cold_us_per_call']:8.1f} ({row['speedup_cold']:.1f}x)  "
            f"fast {row['fast_us_per_call']:8.1f} ({row['speedup']:.1f}x)"
        )
    e2e = results["end_to_end"]
    print(
        f"  end-to-end decode: ref {e2e['reference_steps_per_s']:.1f} steps/s, "
        f"fast {e2e['fast_steps_per_s']:.1f} steps/s ({e2e['speedup']:.2f}x)"
    )
    engine = e2e["engine"]
    scenario = engine["scenario"]
    print(
        f"  engine fast path (L{scenario['num_layers']} "
        f"r{scenario['cache_ratio']} x{scenario['decode_steps']}): "
        f"base {engine['baseline_steps_per_s']:.1f} steps/s, "
        f"fast {engine['engine_fast_steps_per_s']:.1f} steps/s "
        f"({engine['speedup']:.2f}x)"
    )
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, baseline)
        if failures:
            for failure in failures:
                print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
