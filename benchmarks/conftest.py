"""Shared benchmark utilities: result persistence and the bench scale.

Every benchmark regenerates one paper artifact, prints its table to the
terminal (so ``pytest benchmarks/ --benchmark-only | tee`` captures it)
and persists it under ``benchmarks/results/`` for EXPERIMENTS.md.

``BENCH_SCALE`` trades fidelity for wall time: layer counts are reduced
(scheduling decisions are per-layer, so relative results are preserved;
only absolute latencies shrink proportionally) while the full bucket /
ratio / framework grids are retained.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.figures import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"

#: Grid sizing for benchmark runs (see module docstring).
BENCH_SCALE = ExperimentScale(
    num_layers=10,
    prefill_buckets=(32, 128, 512, 1024),
    decode_steps=24,
    trace_decode_steps=192,
)

BENCH_SEED = 0


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, capsys):
    """Callable ``report(name, text)``: print + persist one table."""

    def _report(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _report
