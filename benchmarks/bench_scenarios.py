"""Scenario-matrix sweep smoke: the registry and sweep runner, end to end.

Unlike the perf benchmarks this one gates *plumbing*, not speed: the
scenario layer's whole value is that a registered scenario is exactly
the factory invocation it denotes and that a sweep directory can be
trusted across interruptions. Three claims, all deterministic
(simulated time):

1. **completeness** — every cell of a scenarios x strategies sweep
   serves its full trace (no lost or stuck requests on
   shedding-free scenarios).
2. **cell == direct invocation** — the first scenario's cell payload
   is byte-equal to flattening the equivalent hand-built
   ``spec.run(seed)`` report through the same encoder.
3. **resume determinism** — re-running the sweep into the same
   directory skips every completed cell and merges a byte-identical
   ``sweep.json``.

Usage::

    python benchmarks/bench_scenarios.py             # full matrix
    python benchmarks/bench_scenarios.py --smoke     # CI-sized (2 x 2, capped)
    python benchmarks/bench_scenarios.py --out out/scenario_sweep
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.reporting import format_table  # noqa: E402
from repro.scenarios import get_scenario, run_sweep  # noqa: E402
from repro.scenarios.sweep import _dumps, _report_payload  # noqa: E402

FULL_SCENARIOS = ["chat-multiturn", "tenant-mix", "disk-slow-spill", "edge-decode"]
SMOKE_SCENARIOS = ["chat-multiturn", "edge-decode"]
STRATEGIES = ["hybrimoe", "ondemand"]


def check(condition: bool, label: str, failures: list[str]) -> None:
    print(f"[{'ok' if condition else 'FAIL'}] {label}")
    if not condition:
        failures.append(label)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized matrix")
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="sweep output directory (default: a fresh temp dir)",
    )
    parser.add_argument("--processes", type=int, default=1)
    args = parser.parse_args()

    scenarios = SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS
    caps = dict(max_requests=2, max_steps=2) if args.smoke else {}
    out_dir = Path(args.out) if args.out else Path(tempfile.mkdtemp(prefix="sweep-"))
    failures: list[str] = []

    sweep = run_sweep(
        scenarios, out_dir, strategies=STRATEGIES,
        processes=args.processes, log=print, **caps,
    )
    print(format_table(sweep.rows(), title="scenario matrix"))

    expected_cells = len(scenarios) * len(STRATEGIES)
    check(len(sweep.cells) == expected_cells,
          f"sweep ran {expected_cells} cells", failures)
    for cell in sweep.cells:
        summary = cell["summary"]
        label = (f"{cell['cell']['scenario']} x {cell['cell']['strategy']}: "
                 f"{summary['completed']}/{summary['requests']} completed")
        check(summary["completed"] == summary["requests"], label, failures)

    # Claim 2: a cell is nothing but the direct factory invocation.
    first = get_scenario(scenarios[0]).with_overrides(**caps)
    seed = first.seeds[0]
    direct = first.build_system(seed=seed).serve_trace(first.build_trace(seed=seed))
    expected = _dumps(_report_payload(direct))
    cell = sweep.cell(scenarios[0], strategy=first.strategy)
    got = _dumps({k: cell[k] for k in
                  ("kind", "summary", "per_request", "class_summary")
                  if k in cell})
    check(got == expected, "cell payload == direct factory invocation", failures)

    # Claim 3: resumed re-run skips everything and merges identically.
    before = (out_dir / "sweep.json").read_bytes()
    skips: list[str] = []
    resumed = run_sweep(
        scenarios, out_dir, strategies=STRATEGIES,
        processes=args.processes, log=skips.append, **caps,
    )
    check(sum(s.startswith("[skip]") for s in skips) == expected_cells,
          "resume skipped every completed cell", failures)
    check((out_dir / "sweep.json").read_bytes() == before
          and resumed.to_json().encode() == before,
          "resumed sweep.json byte-identical", failures)

    if failures:
        print(f"\n{len(failures)} claim(s) failed", file=sys.stderr)
        return 1
    print(f"\nall claims hold ({expected_cells} cells, out={out_dir})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
