"""Table III: speedup breakdown of the three HybriMoE techniques.

Runs the component ablation (Qwen2, 25% cache, prefill + decode) and
checks the paper's qualitative findings: every component row is at
least neutral versus the kTransformers-like baseline, scheduling is the
main prefill lever, and the full system delivers the largest decode
gain categories.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.figures import table3_ablation
from repro.experiments.reporting import format_table


def test_table3_ablation(benchmark, report):
    rows = benchmark.pedantic(
        lambda: table3_ablation(
            model_name="qwen2", cache_ratio=0.25, scale=BENCH_SCALE, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        rows, title="Table III — technique breakdown (Qwen2, 25% cache)"
    )
    paper = (
        "Paper reference: +sched 1.26x/1.46x, +prefetch 1.06x/1.15x, "
        "+caching -/1.38x, all 1.31x/1.86x (prefill/decode)"
    )
    report("table3_ablation", table + "\n\n" + paper)

    by_config = {r["config"]: r for r in rows}
    # Scheduling is the dominant prefill technique.
    assert by_config["baseline+scheduling"]["prefill_speedup"] > 1.1
    # Every decode component is at least neutral.
    for config in ("baseline+scheduling", "baseline+prefetching", "baseline+caching"):
        assert by_config[config]["decode_speedup"] > 0.95, config
    # The full system improves both stages over the baseline.
    assert by_config["all"]["prefill_speedup"] > 1.1
    assert by_config["all"]["decode_speedup"] > 1.1
