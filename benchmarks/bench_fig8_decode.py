"""Fig. 8: decode TBT across models and cache ratios.

Regenerates the 3-models x 3-ratios x 4-frameworks decode grid. Checks
the paper's claims: HybriMoE achieves the best average decode latency,
GPU-centric AdapMoE suffers at low cache ratios, and llama.cpp is far
more competitive at decode than at prefill.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.figures import fig8_decode
from repro.experiments.reporting import (
    add_speedup_column,
    format_table,
    geometric_mean,
)


def test_fig8_decode_grid(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig8_decode(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    rows = add_speedup_column(rows, "mean_tbt_s")
    table = format_table(
        rows,
        columns=[
            "model",
            "cache_ratio",
            "strategy",
            "mean_tbt_s",
            "decode_hit_rate",
            "speedup",
        ],
        title="Fig. 8 — decode TBT (speedup vs kTransformers)",
    )
    hybrimoe = [r for r in rows if r["strategy"] == "hybrimoe"]
    average = geometric_mean([r["speedup"] for r in hybrimoe])
    summary = f"HybriMoE decode speedup vs kTransformers: geomean {average:.2f}x (paper: 1.70x)"
    report("fig8_decode", table + "\n\n" + summary)

    # HybriMoE wins on average and in the majority of configurations.
    assert average > 1.1
    wins = sum(1 for r in hybrimoe if r["speedup"] >= 1.0)
    assert wins >= 6  # of 9 configurations

    # AdapMoE (GPU-centric) is transfer-bound at the 25% ratio.
    adapmoe_low = [
        r["speedup"]
        for r in rows
        if r["strategy"] == "adapmoe" and r["cache_ratio"] == 0.25
    ]
    assert max(adapmoe_low) < 1.0
