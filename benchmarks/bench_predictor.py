"""Predictor race: prediction accuracy vs prefetch payoff, per strategy.

Two scenarios, both fully deterministic (metrics are *simulated* time
and the predictors are pure functions of the observation stream, so
runs are bit-stable across machines — the regression gate can be
tight):

1. **race** — the tentpole claim and the gate's hard criterion.
   ``FrequencyPrior`` and ``TransitionPredictor`` drive the confidence
   gate on the same skewed serving workload (two hot prompt profiles
   whose *marginal* expert frequencies blur together but whose
   expert-to-expert transitions stay distinct). Averaged over seeds,
   the transition predictor must beat the frequency prior on both the
   engine's prefetch-hit rate and the calibrated distance-1 prediction
   accuracy: conditioning on the currently active experts is what
   disambiguates the profiles. The predictor-off cell rides along to
   pin goodput neutrality — speculation must pay for itself.

2. **sensitivity** — goodput with the transition predictor on versus
   off, per strategy, on the skewed and chat workloads. The gate only
   *adds* speculative depth, so turning it on may not buy throughput
   in every regime, but it must never tank it; the worst per-cell
   ratio is tracked as a trajectory metric.

Results are written as versioned JSON; the committed repo-root
``BENCH_predictor.json`` is the trajectory baseline the CI
``predictor-perf`` job gates against (``perf-regression-ok`` label
skips the gate).

Usage::

    python benchmarks/bench_predictor.py            # full run, merges into BENCH_predictor.json
    python benchmarks/bench_predictor.py --smoke    # CI-sized run
    python benchmarks/bench_predictor.py --smoke --check --out BENCH_predictor.current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.factory import make_serving_engine  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    chat_serving_workload,
    skewed_serving_workload,
)

BASELINE_PATH = REPO_ROOT / "BENCH_predictor.json"
SCHEMA_VERSION = 1

#: Gate: a tracked ratio may not regress by more than this factor
#: versus the committed baseline.
REGRESSION_FACTOR = 1.25

#: Speculation may never buy goodput at the price of goodput: every
#: predictor-on cell must stay within this factor of predictor-off.
GOODPUT_TOLERANCE = 0.98

#: Race configuration (shared by smoke and full; only trace sizes and
#: seed sets scale). A short horizon keeps speculative prefetches
#: near-term — where transition accuracy is highest and a prefetched
#: expert survives in cache until its layer arrives — and ``0.3``
#: cache ratio leaves the admission slack that lets speculative
#: inserts land without churning the resident hot set.
RACE = {
    "model": "deepseek",
    "strategy": "hybrimoe",
    "cache_ratio": 0.3,
    "num_layers": 8,
    "max_batch_size": 4,
    "predict_horizon": 2,
    "confidence_gate": 0.2,
    "num_profiles": 2,
    "prompt_length": 8,
    "decode_steps": 8,
    "arrival_rate": 12.0,
}
RACE_FULL = {"num_requests": 24, "seeds": [0, 1, 2]}
RACE_SMOKE = {"num_requests": 12, "seeds": [1, 2]}

SENSITIVITY = {
    "model": "deepseek",
    "cache_ratio": 0.3,
    "num_layers": 8,
    "max_batch_size": 4,
    "predictor": "transition",
    "predict_horizon": 2,
    "confidence_gate": 0.2,
    "seed": 0,
}
SENSITIVITY_FULL = {
    "strategies": ["hybrimoe", "adapmoe", "ktransformers"],
    "skewed_requests": 24,
    "chat_sessions": 4,
}
SENSITIVITY_SMOKE = {
    "strategies": ["hybrimoe"],
    "skewed_requests": 12,
    "chat_sessions": 2,
}

PREDICTORS = [None, "frequency", "transition"]


def _skewed_trace(num_requests: int, seed: int):
    p = RACE
    return skewed_serving_workload(
        num_requests=num_requests,
        arrival_rate=p["arrival_rate"],
        num_profiles=p["num_profiles"],
        decode_steps=p["decode_steps"],
        prompt_length=p["prompt_length"],
        seed=seed,
    )


def _chat_trace(num_sessions: int, seed: int):
    return chat_serving_workload(
        num_sessions=num_sessions,
        turns_per_session=3,
        decode_steps=RACE["decode_steps"],
        seed=seed,
    )


# ----------------------------------------------------------------------
# scenario: race (frequency vs transition on the skewed workload)
# ----------------------------------------------------------------------

def _race_cell(predictor: str | None, num_requests: int, seed: int) -> dict:
    """One serve of the skewed workload under one predictor setting."""
    p = RACE
    engine = make_serving_engine(
        model=p["model"],
        strategy=p["strategy"],
        cache_ratio=p["cache_ratio"],
        num_layers=p["num_layers"],
        seed=0,
        max_batch_size=p["max_batch_size"],
        predictor=predictor,
        predict_horizon=p["predict_horizon"],
        confidence_gate=p["confidence_gate"],
    )
    report = engine.serve_trace(_skewed_trace(num_requests, seed))
    runtime = engine.engine.runtime
    gate = runtime.prediction_gate
    accuracy = gate.predictor.calibrated_accuracy() if gate else {}
    return {
        "goodput_rps": report.goodput,
        "hit_rate": report.hit_rate,
        "prefetch_issued": runtime.prefetch_issued,
        "prefetch_used": runtime.prefetch_used,
        "prefetch_hit_rate": runtime.prefetch_hit_rate(),
        "accuracy_d1": accuracy.get(1, 0.0),
    }


def _bench_race(smoke: bool) -> dict:
    scale = RACE_SMOKE if smoke else RACE_FULL
    per_predictor = {}
    for predictor in PREDICTORS:
        cells = [
            _race_cell(predictor, scale["num_requests"], seed)
            for seed in scale["seeds"]
        ]
        mean = {
            key: sum(cell[key] for cell in cells) / len(cells)
            for key in cells[0]
        }
        per_predictor[predictor or "none"] = {
            "per_seed": dict(zip(map(str, scale["seeds"]), cells)),
            "mean": mean,
        }
    frequency = per_predictor["frequency"]["mean"]
    transition = per_predictor["transition"]["mean"]
    off = per_predictor["none"]["mean"]
    return {
        "params": {**RACE, **scale},
        "predictors": per_predictor,
        "transition_vs_frequency_prefetch": (
            transition["prefetch_hit_rate"] / frequency["prefetch_hit_rate"]
        ),
        "transition_beats_frequency_prefetch": (
            transition["prefetch_hit_rate"] > frequency["prefetch_hit_rate"]
        ),
        "transition_beats_frequency_accuracy": (
            transition["accuracy_d1"] > frequency["accuracy_d1"]
        ),
        "worst_goodput_vs_off": min(
            per_predictor[name]["mean"]["goodput_rps"] / off["goodput_rps"]
            for name in ("frequency", "transition")
        ),
    }


# ----------------------------------------------------------------------
# scenario: sensitivity (predictor on vs off, per strategy x workload)
# ----------------------------------------------------------------------

def _sensitivity_cell(strategy: str, workload: str, predictor: str | None,
                      scale: dict) -> dict:
    p = SENSITIVITY
    engine = make_serving_engine(
        model=p["model"],
        strategy=strategy,
        cache_ratio=p["cache_ratio"],
        num_layers=p["num_layers"],
        seed=p["seed"],
        max_batch_size=p["max_batch_size"],
        predictor=predictor,
        predict_horizon=p["predict_horizon"],
        confidence_gate=p["confidence_gate"],
    )
    if workload == "skewed":
        trace = _skewed_trace(scale["skewed_requests"], p["seed"])
    else:
        trace = _chat_trace(scale["chat_sessions"], p["seed"])
    report = engine.serve_trace(trace)
    runtime = engine.engine.runtime
    return {
        "goodput_rps": report.goodput,
        "hit_rate": report.hit_rate,
        "prefetch_hit_rate": runtime.prefetch_hit_rate(),
    }


def _bench_sensitivity(smoke: bool) -> dict:
    scale = SENSITIVITY_SMOKE if smoke else SENSITIVITY_FULL
    cells = {}
    ratios = {}
    for strategy in scale["strategies"]:
        for workload in ("skewed", "chat"):
            off = _sensitivity_cell(strategy, workload, None, scale)
            on = _sensitivity_cell(
                strategy, workload, SENSITIVITY["predictor"], scale
            )
            label = f"{strategy}/{workload}"
            ratio = on["goodput_rps"] / off["goodput_rps"]
            cells[label] = {"off": off, "on": on, "goodput_ratio": ratio}
            ratios[label] = ratio
    return {
        "params": {**SENSITIVITY, **scale},
        "cells": cells,
        "worst_goodput_ratio": min(ratios.values()),
        "best_goodput_ratio": max(ratios.values()),
    }


# ----------------------------------------------------------------------
# trajectory + gate
# ----------------------------------------------------------------------

def run(smoke: bool) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "criteria": {
            "regression_factor": REGRESSION_FACTOR,
            "goodput_tolerance": GOODPUT_TOLERANCE,
        },
        "scenarios": {
            "race": _bench_race(smoke),
            "sensitivity": _bench_sensitivity(smoke),
        },
    }


def check(current: dict, baseline: dict | None) -> list[str]:
    """Gate failures of ``current`` against the committed baseline."""
    failures: list[str] = []
    mode = current["mode"]
    race = current["scenarios"]["race"]
    sensitivity = current["scenarios"]["sensitivity"]

    # Hard criteria (hold in every mode, baseline or not).
    if not race["transition_beats_frequency_prefetch"]:
        frequency = race["predictors"]["frequency"]["mean"]
        transition = race["predictors"]["transition"]["mean"]
        failures.append(
            f"race: transition no longer beats frequency on mean "
            f"prefetch-hit rate ({transition['prefetch_hit_rate']:.4f} vs "
            f"{frequency['prefetch_hit_rate']:.4f})"
        )
    if not race["transition_beats_frequency_accuracy"]:
        frequency = race["predictors"]["frequency"]["mean"]
        transition = race["predictors"]["transition"]["mean"]
        failures.append(
            f"race: transition no longer beats frequency on calibrated "
            f"distance-1 accuracy ({transition['accuracy_d1']:.4f} vs "
            f"{frequency['accuracy_d1']:.4f})"
        )
    if race["worst_goodput_vs_off"] < GOODPUT_TOLERANCE:
        failures.append(
            f"race: a predictor cell pays >{1 - GOODPUT_TOLERANCE:.0%} "
            f"goodput vs predictor-off "
            f"(worst ratio {race['worst_goodput_vs_off']:.4f})"
        )
    if sensitivity["worst_goodput_ratio"] < GOODPUT_TOLERANCE:
        failures.append(
            f"sensitivity: predictor-on tanks goodput in some cell "
            f"(worst ratio {sensitivity['worst_goodput_ratio']:.4f} < "
            f"{GOODPUT_TOLERANCE})"
        )

    # Trajectory regression vs the committed baseline (same mode).
    if baseline is None:
        failures.append(f"no committed baseline at {BASELINE_PATH}")
        return failures
    committed = baseline.get("modes", {}).get(mode)
    if committed is None:
        failures.append(f"committed baseline has no '{mode}' mode entry")
        return failures
    committed_race = committed["scenarios"]["race"]
    committed_sensitivity = committed["scenarios"]["sensitivity"]
    ratios = (
        (
            "race: transition vs frequency prefetch-hit rate",
            race["transition_vs_frequency_prefetch"],
            committed_race["transition_vs_frequency_prefetch"],
        ),
        (
            "race: transition calibrated distance-1 accuracy",
            race["predictors"]["transition"]["mean"]["accuracy_d1"],
            committed_race["predictors"]["transition"]["mean"]["accuracy_d1"],
        ),
        (
            "sensitivity: worst predictor-on goodput ratio",
            sensitivity["worst_goodput_ratio"],
            committed_sensitivity["worst_goodput_ratio"],
        ),
    )
    for label, now, then in ratios:
        floor = then / REGRESSION_FACTOR
        if now < floor:
            failures.append(
                f"{label} regressed >{REGRESSION_FACTOR:.2f}x: "
                f"{now:.4f} vs committed {then:.4f} (floor {floor:.4f})"
            )
    return failures


def _print_results(results: dict) -> None:
    race = results["scenarios"]["race"]
    print(f"predictor bench ({results['mode']}):")
    print("  race (skewed workload, mean over seeds):")
    for name in ("none", "frequency", "transition"):
        mean = race["predictors"][name]["mean"]
        print(
            f"    {name:10s} goodput {mean['goodput_rps']:6.2f} req/s  "
            f"prefetch-hit {mean['prefetch_hit_rate']:.4f}  "
            f"accuracy@1 {mean['accuracy_d1']:.3f}"
        )
    print(
        f"    transition vs frequency prefetch-hit: "
        f"{race['transition_vs_frequency_prefetch']:.4f}x "
        f"(beats: {race['transition_beats_frequency_prefetch']}, "
        f"accuracy beats: {race['transition_beats_frequency_accuracy']})"
    )
    sensitivity = results["scenarios"]["sensitivity"]
    print("  sensitivity (transition on vs off):")
    for label, cell in sensitivity["cells"].items():
        print(
            f"    {label:24s} goodput ratio {cell['goodput_ratio']:.4f} "
            f"({cell['on']['goodput_rps']:.2f} vs "
            f"{cell['off']['goodput_rps']:.2f} req/s)"
        )
    print(
        f"    worst ratio {sensitivity['worst_goodput_ratio']:.4f}, "
        f"best {sensitivity['best_goodput_ratio']:.4f}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on regression vs the committed BENCH_predictor.json",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BASELINE_PATH,
        help="where to write results (default: repo-root BENCH_predictor.json)",
    )
    args = parser.parse_args(argv)

    # Read the committed baseline before writing anything: `--check`
    # must compare against the pre-run state even when --out points at
    # the baseline file itself.
    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    results = run(args.smoke)

    if args.out == BASELINE_PATH:
        # The baseline keeps one entry per mode, so a smoke run never
        # clobbers the committed full-mode trajectory (or vice versa).
        merged = {
            "schema": SCHEMA_VERSION,
            "criteria": results["criteria"],
            "modes": dict((baseline or {}).get("modes", {})),
        }
        merged["modes"][results["mode"]] = {"scenarios": results["scenarios"]}
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
    else:
        args.out.write_text(json.dumps(results, indent=2) + "\n")

    _print_results(results)
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, baseline)
        if failures:
            for failure in failures:
                print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
