"""Fig. 7: prefill TTFT across models, cache ratios and input lengths.

Regenerates the full 3-models x 3-ratios x 4-buckets x 4-frameworks
grid and checks the paper's headline claims: HybriMoE speeds up prefill
vs kTransformers on average, and llama.cpp's static mapping collapses
as prompts grow.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.figures import fig7_prefill
from repro.experiments.reporting import (
    add_speedup_column,
    format_table,
    geometric_mean,
)


def test_fig7_prefill_grid(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig7_prefill(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    rows = add_speedup_column(
        rows, "ttft_s", group_columns=("model", "cache_ratio", "bucket")
    )
    table = format_table(
        rows,
        columns=["model", "cache_ratio", "bucket", "strategy", "ttft_s", "speedup"],
        title="Fig. 7 — prefill TTFT (speedup vs kTransformers)",
    )
    speedups = [r["speedup"] for r in rows if r["strategy"] == "hybrimoe"]
    average = geometric_mean(speedups)
    summary = f"HybriMoE prefill speedup vs kTransformers: geomean {average:.2f}x (paper: 1.33x)"
    report("fig7_prefill", table + "\n\n" + summary)

    # Headline shape: HybriMoE wins on average...
    assert average > 1.15
    # ...and llama.cpp is the clear prefill loser at long prompts.
    llamacpp = [
        r["speedup"]
        for r in rows
        if r["strategy"] == "llamacpp" and r["bucket"] >= 512
    ]
    assert max(llamacpp) < 0.8
