"""Tiered memory serving: strategies raced under DRAM pressure.

The ROADMAP's north-star — serving the largest MoE models on commodity
hardware — breaks HybriMoE's assumption (§IV) that every expert is
DRAM-resident. This benchmark serves one Poisson trace per strategy on
a platform whose **CPU DRAM tier is capacity-limited** (a fraction of
the experts fit in host memory; the rest spill to an NVMe-class disk),
and reports goodput, tail TBT and per-tier cache hit rates plus the
disk link's traffic.

Claim checked (the scale-out analogue of Fig. 8/9 under memory
pressure): hybrid scheduling + MRS caching (hybrimoe) sustains at
least on-demand GPU loading's goodput when experts spill — schedule
simulation folds the disk -> CPU -> GPU chains into its transfer
search, and tier-aware prefetching pays disk reads off the critical
path.

Runs three ways:

- ``pytest benchmarks/bench_tiered_memory.py`` — full scale, table
  persisted under ``benchmarks/results/``;
- ``python benchmarks/bench_tiered_memory.py`` — standalone race;
- ``python benchmarks/bench_tiered_memory.py --smoke`` — the reduced
  grid the CI docs job runs (headline pair, few steps).
"""

from __future__ import annotations

import argparse

from repro.cache.base import available_policies
from repro.engine.factory import make_serving_engine
from repro.experiments.reporting import format_table
from repro.workloads.generator import serving_workload

NUM_REQUESTS = 10
ARRIVAL_RATE = 4.0
DECODE_STEPS = 24
CACHE_RATIO = 0.25
DRAM_RATIO = 0.5            # fraction of all routed experts that fit in DRAM
MAX_BATCH = 8
STRATEGIES = ("hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand")


def run_race(
    num_requests: int = NUM_REQUESTS,
    decode_steps: int = DECODE_STEPS,
    num_layers: int = 10,
    strategies: tuple[str, ...] = STRATEGIES,
    dram_ratio: float = DRAM_RATIO,
    cpu_cache_policy: str = "lru",
    seed: int = 0,
) -> list[dict]:
    """Serve one Poisson trace per strategy under DRAM pressure.

    Returns one flat row per strategy: the serving-report aggregate
    plus per-tier hit rates and the disk link's read count/busy time.
    """
    from repro.models.presets import get_preset

    # The DRAM slot budget is a fraction of the model's routed experts,
    # derived after the layer override is applied.
    total = get_preset("deepseek", num_layers=num_layers).total_routed_experts
    cpu_capacity = max(1, int(round(dram_ratio * total)))
    rows: list[dict] = []
    for strategy in strategies:
        serving = make_serving_engine(
            model="deepseek",
            strategy=strategy,
            cache_ratio=CACHE_RATIO,
            num_layers=num_layers,
            seed=seed,
            max_batch_size=MAX_BATCH,
            cpu_cache_capacity=cpu_capacity,
            cpu_cache_policy=cpu_cache_policy,
        )
        trace = serving_workload(
            num_requests=num_requests,
            arrival_rate=ARRIVAL_RATE,
            decode_steps=decode_steps,
            seed=seed,
        )
        report = serving.serve_trace(trace)
        row = {"dram_slots": cpu_capacity, "dram_policy": cpu_cache_policy}
        row.update(report.summary())
        runtime = serving.engine.runtime
        tier_rates = runtime.cache.per_tier_hit_rates()
        row["hit_gpu_tier"] = tier_rates["gpu"]
        row["hit_dram_tier"] = tier_rates["cpu"]
        disk = runtime.clock.disk
        row["disk_reads"] = len(disk.intervals)
        row["disk_busy_s"] = disk.busy_time()
        rows.append(row)
    return rows


def format_report(rows: list[dict]) -> str:
    """Render the race as one table, best goodput first."""
    rows = sorted(rows, key=lambda r: -r["goodput_rps"])
    columns = [
        "strategy",
        "goodput_rps",
        "token_throughput",
        "p99_ttft_s",
        "p99_tbt_s",
        "hit_gpu_tier",
        "hit_dram_tier",
        "disk_reads",
        "disk_busy_s",
    ]
    sample = rows[0]
    return format_table(
        rows,
        columns=columns,
        title=(
            f"tiered-memory serving race — deepseek @ {CACHE_RATIO:.0%} GPU "
            f"cache, {sample['dram_slots']} DRAM slots "
            f"({sample['dram_policy']}), NVMe spill (best goodput first)"
        ),
    )


def check_claims(rows: list[dict]) -> bool:
    """Hybrid scheduling + MRS caching >= on-demand under DRAM pressure.

    Returns False (skipped) when the race did not include both headline
    strategies.
    """
    by_strategy = {r["strategy"]: r for r in rows}
    if not {"hybrimoe", "ondemand"} <= set(by_strategy):
        return False
    hybrimoe = by_strategy["hybrimoe"]
    ondemand = by_strategy["ondemand"]
    assert hybrimoe["goodput_rps"] >= ondemand["goodput_rps"], (
        f"hybrimoe goodput {hybrimoe['goodput_rps']:.3f} below "
        f"ondemand {ondemand['goodput_rps']:.3f} under DRAM pressure"
    )
    assert hybrimoe["disk_reads"] > 0, (
        "DRAM-constrained config produced no disk traffic — the tier "
        "cap is not binding and the race is vacuous"
    )
    return True


def test_tiered_memory_serving(benchmark, report):
    from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

    rows = benchmark.pedantic(
        run_race,
        kwargs={"num_layers": BENCH_SCALE.num_layers, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    table = format_report(rows)
    best = max(rows, key=lambda r: r["goodput_rps"])
    summary = (
        f"best under DRAM pressure: {best['strategy']} at "
        f"{best['goodput_rps']:.2f} req/s goodput, "
        f"{best['disk_reads']} disk reads"
    )
    report("tiered_memory_serving", table + "\n\n" + summary)
    check_claims(rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="tiered-memory strategy race under DRAM pressure"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced grid (headline pair, few steps) — the CI run",
    )
    parser.add_argument("--steps", type=int, default=None, help="decode steps per request")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--num-layers", type=int, default=None)
    parser.add_argument("--dram-ratio", type=float, default=DRAM_RATIO)
    parser.add_argument(
        "--dram-policy", default="lru", choices=available_policies()
    )
    parser.add_argument(
        "--strategies",
        default=None,
        help="comma-separated strategy names (default: all five; "
        "smoke default: the headline pair)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.smoke:
        defaults = {"steps": 4, "requests": 6, "num_layers": 4}
        strategies = "hybrimoe,ondemand"
    else:
        defaults = {"steps": DECODE_STEPS, "requests": NUM_REQUESTS, "num_layers": 8}
        strategies = ",".join(STRATEGIES)
    rows = run_race(
        num_requests=args.requests if args.requests is not None else defaults["requests"],
        decode_steps=args.steps if args.steps is not None else defaults["steps"],
        num_layers=args.num_layers if args.num_layers is not None else defaults["num_layers"],
        strategies=tuple((args.strategies or strategies).split(",")),
        dram_ratio=args.dram_ratio,
        cpu_cache_policy=args.dram_policy,
        seed=args.seed,
    )
    print(format_report(rows))
    if check_claims(rows):
        print(
            "claims OK: hybrimoe >= ondemand goodput with a DRAM-constrained "
            "CPU tier (disk traffic observed)"
        )
    else:
        print("claims skipped: race did not include both hybrimoe and ondemand")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
