"""Extra ablations of design choices (DESIGN.md §5), beyond the paper.

- transfer-count search and CPU work stealing, toggled independently;
- prefetch lookahead depth (the paper fixes 3 without ablating);
- MRS alpha / top-p sensitivity around the paper's ``p = 2K`` choice.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.figures import (
    ablation_mrs_parameters,
    ablation_prefetch_depth,
    ablation_scheduler_variants,
)
from repro.experiments.reporting import format_table


def test_ablation_scheduler_variants(benchmark, report):
    rows = benchmark.pedantic(
        lambda: ablation_scheduler_variants(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_scheduler_variants",
        format_table(rows, title="Ablation — transfer search / CPU stealing"),
    )
    by_variant = {r["variant"]: r for r in rows}
    # The full search is never worse than the two-extremes heuristic.
    assert (
        by_variant["search+steal"]["prefill_latency_s"]
        <= by_variant["extremes-only"]["prefill_latency_s"] * 1.02
    )


def test_ablation_prefetch_depth(benchmark, report):
    rows = benchmark.pedantic(
        lambda: ablation_prefetch_depth(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_prefetch_depth",
        format_table(rows, title="Ablation — prefetch lookahead depth"),
    )
    assert all(r["decode_latency_s"] > 0 for r in rows)
    # Deeper lookahead should not collapse hit rates.
    hit_rates = [r["decode_hit_rate"] for r in rows]
    assert max(hit_rates) - min(hit_rates) < 0.3


def test_ablation_mrs_parameters(benchmark, report):
    rows = benchmark.pedantic(
        lambda: ablation_mrs_parameters(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_mrs_parameters",
        format_table(rows, title="Ablation — MRS alpha / top-p sensitivity"),
    )
    # The paper's p = 2K neighbourhood must be competitive: the best
    # configuration is within a few points of the best overall.
    best = max(r["hit_rate"] for r in rows)
    paper_like = max(r["hit_rate"] for r in rows if r["top_p_factor"] == 2)
    assert paper_like > best - 0.05
