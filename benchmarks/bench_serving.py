"""Serving under load: all five frameworks race one arrival trace.

Each strategy serves the same Poisson trace (16 requests at 4 req/s,
24 decode tokens each) through the continuous-batching serving loop on
a shared expert cache. Under multi-request contention the single-
generation gaps widen: queueing compounds every per-step loss, so a
slower step pipeline shows up as multiplied queueing delay and tail
TBT. Checks that HybriMoE sustains the best goodput and tail latency.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.engine.factory import available_strategies, make_serving_engine
from repro.experiments.reporting import format_table
from repro.workloads.generator import serving_workload

NUM_REQUESTS = 16
ARRIVAL_RATE = 4.0
DECODE_STEPS = 24
CACHE_RATIO = 0.25
MAX_BATCH = 8


def _race():
    rows = []
    for strategy in available_strategies():
        serving = make_serving_engine(
            model="deepseek",
            strategy=strategy,
            cache_ratio=CACHE_RATIO,
            num_layers=BENCH_SCALE.num_layers,
            seed=BENCH_SEED,
            max_batch_size=MAX_BATCH,
        )
        trace = serving_workload(
            num_requests=NUM_REQUESTS,
            arrival_rate=ARRIVAL_RATE,
            decode_steps=DECODE_STEPS,
            seed=BENCH_SEED,
        )
        rows.append(serving.serve_trace(trace).summary())
    return rows


def test_serving_under_load(benchmark, report):
    rows = benchmark.pedantic(_race, rounds=1, iterations=1)
    rows.sort(key=lambda r: r["p99_tbt_s"])
    table = format_table(
        rows,
        columns=[
            "strategy",
            "goodput_rps",
            "token_throughput",
            "mean_queue_delay_s",
            "p99_ttft_s",
            "p50_tbt_s",
            "p99_tbt_s",
            "hit_rate",
        ],
        title=(
            f"serving race — deepseek @ {CACHE_RATIO:.0%} cache, "
            f"{NUM_REQUESTS} requests @ {ARRIVAL_RATE:.0f} req/s (best tail first)"
        ),
    )
    by_strategy = {r["strategy"]: r for r in rows}
    hybrimoe = by_strategy["hybrimoe"]
    ondemand = by_strategy["ondemand"]
    summary = (
        f"HybriMoE serving goodput {hybrimoe['goodput_rps']:.2f} req/s "
        f"({hybrimoe['goodput_rps'] / ondemand['goodput_rps']:.2f}x ondemand), "
        f"p99 TBT {hybrimoe['p99_tbt_s'] * 1e3:.1f} ms"
    )
    report("serving_load", table + "\n\n" + summary)

    # HybriMoE sustains the best tail latency and goodput under load.
    assert all(
        hybrimoe["p99_tbt_s"] <= r["p99_tbt_s"] for r in rows
    ), "HybriMoE should have the lowest p99 TBT"
    assert all(
        hybrimoe["goodput_rps"] >= r["goodput_rps"] for r in rows
    ), "HybriMoE should have the highest goodput"
    # Contention multiplies the single-generation gap vs on-demand.
    assert hybrimoe["goodput_rps"] >= 1.5 * ondemand["goodput_rps"]
    assert hybrimoe["mean_queue_delay_s"] < ondemand["mean_queue_delay_s"]
