"""Serving benchmarks: load race + SLO overload, with a tracked trajectory.

Two scenarios, both fully deterministic (metrics are *simulated* time,
so runs are bit-stable across machines — the regression gate can be
tight):

1. **load** — all five frameworks race one Poisson arrival trace
   through the continuous-batching serving loop on a shared expert
   cache. Under multi-request contention the single-generation gaps
   widen: queueing compounds every per-step loss, so a slower step
   pipeline shows up as multiplied queueing delay and tail TBT. Checks
   that HybriMoE sustains the best goodput and tail latency.

2. **overload** — arrival rate exceeds the service rate with a 25%
   ``interactive`` / 75% ``batch`` priority mix. The same trace is
   served twice by HybriMoE: once FCFS (classes ignored — the
   pre-SLO default) and once with the SLO scheduler (priority
   admission + chunked prefill + cooperative preemption). Reports
   per-class goodput and p99 TTFT/TBT both ways; the SLO win is
   interactive tail latency improving while total goodput stays within
   ``GOODPUT_TOLERANCE`` (chunk slices ride the fused decode steps, so
   their overhead is bounded).

Results are written as versioned JSON; the committed repo-root
``BENCH_serving.json`` is the trajectory baseline the CI ``serving-perf``
job gates against (``perf-regression-ok`` label skips the gate).

Usage::

    python benchmarks/bench_serving.py            # full run, merges into BENCH_serving.json
    python benchmarks/bench_serving.py --smoke    # CI-sized run
    python benchmarks/bench_serving.py --smoke --check --out BENCH_serving.current.json

or, as a pytest benchmark (the historical load race at bench scale)::

    pytest benchmarks/bench_serving.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.engine.factory import available_strategies, make_serving_engine  # noqa: E402
from repro.experiments.reporting import format_table  # noqa: E402
from repro.workloads.generator import serving_workload  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_serving.json"
SCHEMA_VERSION = 1

#: Gate: a tracked ratio may not regress by more than this factor
#: versus the committed baseline.
REGRESSION_FACTOR = 1.25
#: Gate: the SLO configuration must keep total goodput within 1% of
#: FCFS on the overload trace (the acceptance criterion's "without
#: reducing total goodput", with determinism-level slack).
GOODPUT_TOLERANCE = 0.99

#: Overload scenario: arrival rate ~4x the service rate, a 25/75
#: interactive/batch mix, and an interactive TBT deadline for the
#: SLO-attainment column. Identical in smoke and full mode (it runs in
#: seconds); only the load race scales down.
OVERLOAD = {
    "num_requests": 24,
    "arrival_rate": 80.0,
    "decode_steps": 24,
    "max_batch_size": 6,
    "cache_ratio": 0.25,
    "num_layers": 4,
    "prefill_chunk_tokens": 64,
    "priority_mix": {"interactive": 0.25, "batch": 0.75},
    "tbt_deadline_s": 0.05,
    "seed": 0,
}

LOAD_FULL = {"num_layers": 6, "num_requests": 16, "arrival_rate": 8.0,
             "decode_steps": 16, "max_batch_size": 8, "cache_ratio": 0.25, "seed": 0}
LOAD_SMOKE = {"num_layers": 4, "num_requests": 8, "arrival_rate": 8.0,
              "decode_steps": 8, "max_batch_size": 8, "cache_ratio": 0.25, "seed": 0}


# ----------------------------------------------------------------------
# scenario: load (five-strategy race)
# ----------------------------------------------------------------------

def run_load_race(
    num_layers: int,
    num_requests: int,
    arrival_rate: float,
    decode_steps: int,
    max_batch_size: int,
    cache_ratio: float,
    seed: int,
) -> list[dict]:
    """Serve one Poisson trace per strategy; one summary row each."""
    rows = []
    for strategy in available_strategies():
        serving = make_serving_engine(
            model="deepseek",
            strategy=strategy,
            cache_ratio=cache_ratio,
            num_layers=num_layers,
            seed=seed,
            max_batch_size=max_batch_size,
        )
        trace = serving_workload(
            num_requests=num_requests,
            arrival_rate=arrival_rate,
            decode_steps=decode_steps,
            seed=seed,
        )
        rows.append(serving.serve_trace(trace).summary())
    return rows


def _bench_load(smoke: bool) -> dict:
    params = LOAD_SMOKE if smoke else LOAD_FULL
    rows = run_load_race(**params)
    by_strategy = {r["strategy"]: r for r in rows}
    hybrimoe, ondemand = by_strategy["hybrimoe"], by_strategy["ondemand"]
    return {
        "params": params,
        "per_strategy": {
            r["strategy"]: {
                "goodput_rps": r["goodput_rps"],
                "p99_tbt_s": r["p99_tbt_s"],
                "hit_rate": r["hit_rate"],
            }
            for r in rows
        },
        "hybrimoe_goodput_vs_ondemand": hybrimoe["goodput_rps"]
        / ondemand["goodput_rps"],
        "hybrimoe_best_tail": all(
            hybrimoe["p99_tbt_s"] <= r["p99_tbt_s"] for r in rows
        ),
        "hybrimoe_best_goodput": all(
            hybrimoe["goodput_rps"] >= r["goodput_rps"] for r in rows
        ),
    }


# ----------------------------------------------------------------------
# scenario: overload (FCFS vs SLO scheduler)
# ----------------------------------------------------------------------

def _class_metrics(report, classes: list[str]) -> dict:
    """Per-class goodput and tail latencies, classes assigned by id."""
    records = {r.request_id: r for r in report.requests}
    out = {}
    for name in sorted(set(classes)):
        members = [r for i, r in records.items() if classes[i] == name]
        pooled = [t for r in members for t in r.tbt_values]
        ttfts = [r.ttft for r in members]
        out[name] = {
            "requests": len(members),
            "goodput_rps": len(members) / report.makespan,
            "p99_ttft_s": float(np.percentile(ttfts, 99)),
            "p99_tbt_s": float(np.percentile(pooled, 99)) if pooled else float("nan"),
        }
    return out


def run_overload() -> dict:
    """Serve the overload trace FCFS and SLO-scheduled; compare."""
    p = OVERLOAD
    mixed = serving_workload(
        num_requests=p["num_requests"],
        arrival_rate=p["arrival_rate"],
        decode_steps=p["decode_steps"],
        seed=p["seed"],
        priority_mix=p["priority_mix"],
        class_deadlines={"interactive": p["tbt_deadline_s"]},
    )
    classes = [e.priority for e in mixed]
    # FCFS baseline: identical arrivals and prompts, classes ignored
    # (every request in the default class — the pre-SLO behaviour).
    plain = serving_workload(
        num_requests=p["num_requests"],
        arrival_rate=p["arrival_rate"],
        decode_steps=p["decode_steps"],
        seed=p["seed"],
    )
    results = {}
    for name, trace, slo_kwargs in (
        ("fcfs", plain, {}),
        (
            "slo",
            mixed,
            {
                "prefill_chunk_tokens": p["prefill_chunk_tokens"],
                "preemption": True,
            },
        ),
    ):
        serving = make_serving_engine(
            model="deepseek",
            strategy="hybrimoe",
            cache_ratio=p["cache_ratio"],
            num_layers=p["num_layers"],
            seed=p["seed"],
            max_batch_size=p["max_batch_size"],
            **slo_kwargs,
        )
        report = serving.serve_trace(trace)
        results[name] = {
            "goodput_rps": report.goodput,
            "preemptions": report.preemptions,
            "classes": _class_metrics(report, classes),
        }
    fcfs_int = results["fcfs"]["classes"]["interactive"]
    slo_int = results["slo"]["classes"]["interactive"]
    return {
        "params": p,
        "fcfs": results["fcfs"],
        "slo": results["slo"],
        "interactive_p99_tbt_improvement": fcfs_int["p99_tbt_s"]
        / slo_int["p99_tbt_s"],
        "interactive_p99_ttft_improvement": fcfs_int["p99_ttft_s"]
        / slo_int["p99_ttft_s"],
        "goodput_ratio": results["slo"]["goodput_rps"]
        / results["fcfs"]["goodput_rps"],
    }


# ----------------------------------------------------------------------
# trajectory + gate
# ----------------------------------------------------------------------

def run(smoke: bool) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "criteria": {
            "regression_factor": REGRESSION_FACTOR,
            "goodput_tolerance": GOODPUT_TOLERANCE,
        },
        "scenarios": {
            "load": _bench_load(smoke),
            "overload": run_overload(),
        },
    }


def check(current: dict, baseline: dict | None) -> list[str]:
    """Gate failures of ``current`` against the committed baseline."""
    failures: list[str] = []
    mode = current["mode"]
    load = current["scenarios"]["load"]
    overload = current["scenarios"]["overload"]

    # Hard criteria (hold in every mode, baseline or not).
    if not load["hybrimoe_best_tail"]:
        failures.append("load: hybrimoe no longer has the lowest p99 TBT")
    if not load["hybrimoe_best_goodput"]:
        failures.append("load: hybrimoe no longer has the highest goodput")
    tbt_improvement = overload["interactive_p99_tbt_improvement"]
    if tbt_improvement <= 1.0:
        failures.append(
            f"overload: SLO scheduling no longer improves interactive p99 TBT "
            f"({tbt_improvement:.2f}x vs FCFS)"
        )
    goodput_ratio = overload["goodput_ratio"]
    if goodput_ratio < GOODPUT_TOLERANCE:
        failures.append(
            f"overload: SLO scheduling costs too much total goodput "
            f"({goodput_ratio:.3f}x FCFS, tolerance {GOODPUT_TOLERANCE})"
        )

    # Trajectory regression vs the committed baseline (same mode).
    if baseline is None:
        failures.append(f"no committed baseline at {BASELINE_PATH}")
        return failures
    committed = baseline.get("modes", {}).get(mode)
    if committed is None:
        failures.append(f"committed baseline has no '{mode}' mode entry")
        return failures
    ratios = (
        (
            "load: hybrimoe goodput vs ondemand",
            load["hybrimoe_goodput_vs_ondemand"],
            committed["scenarios"]["load"]["hybrimoe_goodput_vs_ondemand"],
        ),
        (
            "overload: interactive p99 TBT improvement",
            tbt_improvement,
            committed["scenarios"]["overload"]["interactive_p99_tbt_improvement"],
        ),
        (
            "overload: interactive p99 TTFT improvement",
            overload["interactive_p99_ttft_improvement"],
            committed["scenarios"]["overload"]["interactive_p99_ttft_improvement"],
        ),
    )
    for label, now, then in ratios:
        floor = then / REGRESSION_FACTOR
        if now < floor:
            failures.append(
                f"{label} regressed >{REGRESSION_FACTOR:.2f}x: "
                f"{now:.2f}x vs committed {then:.2f}x (floor {floor:.2f}x)"
            )
    return failures


def _print_results(results: dict) -> None:
    load = results["scenarios"]["load"]
    print(f"serving bench ({results['mode']}):")
    print("  load race (per strategy):")
    for name, row in sorted(
        load["per_strategy"].items(), key=lambda kv: kv[1]["p99_tbt_s"]
    ):
        print(
            f"    {name:13s} goodput {row['goodput_rps']:6.2f} req/s  "
            f"p99 TBT {row['p99_tbt_s'] * 1e3:7.2f} ms  "
            f"hit rate {row['hit_rate']:.3f}"
        )
    print(
        f"    hybrimoe goodput vs ondemand: "
        f"{load['hybrimoe_goodput_vs_ondemand']:.2f}x"
    )
    overload = results["scenarios"]["overload"]
    print("  overload (FCFS vs SLO scheduler, hybrimoe):")
    for config in ("fcfs", "slo"):
        row = overload[config]
        interactive = row["classes"]["interactive"]
        batch = row["classes"]["batch"]
        print(
            f"    {config:5s} goodput {row['goodput_rps']:6.2f} req/s  "
            f"interactive p99 TBT {interactive['p99_tbt_s'] * 1e3:6.2f} ms / "
            f"TTFT {interactive['p99_ttft_s'] * 1e3:7.2f} ms  "
            f"batch p99 TBT {batch['p99_tbt_s'] * 1e3:6.2f} ms  "
            f"(goodput int {interactive['goodput_rps']:.2f} / "
            f"batch {batch['goodput_rps']:.2f}, "
            f"preemptions {row['preemptions']})"
        )
    print(
        f"    interactive p99 TBT {overload['interactive_p99_tbt_improvement']:.2f}x"
        f" better, TTFT {overload['interactive_p99_ttft_improvement']:.2f}x better,"
        f" total goodput {overload['goodput_ratio']:.3f}x FCFS"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on regression vs the committed BENCH_serving.json",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BASELINE_PATH,
        help="where to write results (default: repo-root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    # Read the committed baseline before writing anything: `--check`
    # must compare against the pre-run state even when --out points at
    # the baseline file itself.
    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    results = run(args.smoke)

    if args.out == BASELINE_PATH:
        # The baseline keeps one entry per mode, so a smoke run never
        # clobbers the committed full-mode trajectory (or vice versa).
        merged = {
            "schema": SCHEMA_VERSION,
            "criteria": results["criteria"],
            "modes": dict((baseline or {}).get("modes", {})),
        }
        merged["modes"][results["mode"]] = {
            "scenarios": results["scenarios"]
        }
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
    else:
        args.out.write_text(json.dumps(results, indent=2) + "\n")

    _print_results(results)
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, baseline)
        if failures:
            for failure in failures:
                print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


# ----------------------------------------------------------------------
# pytest benchmark (the historical load race at bench scale)
# ----------------------------------------------------------------------

def test_serving_under_load(benchmark, report):
    from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

    rows = benchmark.pedantic(
        lambda: run_load_race(
            num_layers=BENCH_SCALE.num_layers,
            num_requests=16,
            arrival_rate=4.0,
            decode_steps=24,
            max_batch_size=8,
            cache_ratio=0.25,
            seed=BENCH_SEED,
        ),
        rounds=1,
        iterations=1,
    )
    rows.sort(key=lambda r: r["p99_tbt_s"])
    table = format_table(
        rows,
        columns=[
            "strategy",
            "goodput_rps",
            "token_throughput",
            "mean_queue_delay_s",
            "p99_ttft_s",
            "p50_tbt_s",
            "p99_tbt_s",
            "hit_rate",
        ],
        title=(
            "serving race — deepseek @ 25% cache, "
            "16 requests @ 4 req/s (best tail first)"
        ),
    )
    by_strategy = {r["strategy"]: r for r in rows}
    hybrimoe = by_strategy["hybrimoe"]
    ondemand = by_strategy["ondemand"]
    summary = (
        f"HybriMoE serving goodput {hybrimoe['goodput_rps']:.2f} req/s "
        f"({hybrimoe['goodput_rps'] / ondemand['goodput_rps']:.2f}x ondemand), "
        f"p99 TBT {hybrimoe['p99_tbt_s'] * 1e3:.1f} ms"
    )
    report("serving_load", table + "\n\n" + summary)

    # HybriMoE sustains the best tail latency and goodput under load.
    assert all(
        hybrimoe["p99_tbt_s"] <= r["p99_tbt_s"] for r in rows
    ), "HybriMoE should have the lowest p99 TBT"
    assert all(
        hybrimoe["goodput_rps"] >= r["goodput_rps"] for r in rows
    ), "HybriMoE should have the highest goodput"
    # Contention multiplies the single-generation gap vs on-demand.
    assert hybrimoe["goodput_rps"] >= 1.5 * ondemand["goodput_rps"]
    assert hybrimoe["mean_queue_delay_s"] < ondemand["mean_queue_delay_s"]


if __name__ == "__main__":
    raise SystemExit(main())
