"""Fig. 9: MRS vs LRU cache hit rate across cached-expert percentages.

Regenerates the cache-policy comparison via trace replay. Checks the
paper's claims: MRS beats LRU at every capacity, with the largest gap
at small caches and a narrowing gap as capacity grows.
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.figures import fig9_cache_hit_rate
from repro.experiments.reporting import format_table


def test_fig9_cache_hit_rate(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig9_cache_hit_rate(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    table = format_table(
        rows, title="Fig. 9 — cache hit rate, MRS vs LRU (decode accesses)"
    )

    models = sorted({r["model"] for r in rows})
    percentages = sorted({r["cached_percent"] for r in rows})
    gaps = {}
    for model in models:
        for pct in percentages:
            mrs = next(
                r["hit_rate"]
                for r in rows
                if r["model"] == model
                and r["cached_percent"] == pct
                and r["policy"] == "mrs"
            )
            lru = next(
                r["hit_rate"]
                for r in rows
                if r["model"] == model
                and r["cached_percent"] == pct
                and r["policy"] == "lru"
            )
            gaps[(model, pct)] = mrs - lru
    gap_lines = [
        f"  {model} @ {pct:.0%}: MRS-LRU = {gaps[(model, pct)]*100:+.1f} pts"
        for model in models
        for pct in percentages
    ]
    report("fig9_cache_hit_rate", table + "\n\nGaps:\n" + "\n".join(gap_lines))

    # MRS wins on average per model, most clearly at small capacities.
    for model in models:
        low = gaps[(model, percentages[0])]
        assert low > -0.02, f"{model}: MRS should not lose at small capacity"
    mean_low = float(np.mean([gaps[(m, percentages[0])] for m in models]))
    mean_high = float(np.mean([gaps[(m, percentages[-1])] for m in models]))
    assert mean_low > 0.0
    # The gap narrows as capacity grows (paper §VI-D).
    assert mean_high <= mean_low + 0.02
