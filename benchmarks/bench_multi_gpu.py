"""Multi-GPU serving: placement policies × strategies on one trace.

Scale-out race for the sharded engine: every (placement, strategy)
pair serves the same Poisson arrival trace on a 4-GPU platform through
the continuous-batching loop, with the expert cache sharded into
per-device shards and experts dispatched to their home devices. The
table reports fleet aggregates (goodput, tail TBT) plus **per-device
cache hit rates**, the signal that separates placement policies: a
policy that concentrates hot experts on one shard starves the others'
capacity while a balanced one keeps every link and shard useful.

Checks the scale-out analogue of the paper's Fig. 8/9 claim: hybrid
scheduling + MRS caching (hybrimoe) sustains higher aggregate goodput
than on-demand GPU loading for every placement policy.

Runs two ways:

- ``pytest benchmarks/bench_multi_gpu.py`` — full scale, result table
  persisted under ``benchmarks/results/``;
- ``python benchmarks/bench_multi_gpu.py --steps 2`` — standalone
  smoke (the CI docs job runs exactly this) with a reduced grid.
"""

from __future__ import annotations

import argparse

from repro.cache.placement import available_placements
from repro.engine.factory import make_serving_engine
from repro.experiments.reporting import format_table
from repro.workloads.generator import serving_workload

NUM_GPUS = 4
NUM_REQUESTS = 12
ARRIVAL_RATE = 4.0
DECODE_STEPS = 24
CACHE_RATIO = 0.25
MAX_BATCH = 8
STRATEGIES = ("hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand")


def run_race(
    num_gpus: int = NUM_GPUS,
    num_requests: int = NUM_REQUESTS,
    decode_steps: int = DECODE_STEPS,
    num_layers: int = 10,
    strategies: tuple[str, ...] = STRATEGIES,
    placements: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Serve one Poisson trace per (placement, strategy) pair.

    Returns one flat row per pair: the serving-report aggregate plus
    ``placement``, ``num_gpus`` and per-device hit-rate columns.
    """
    placements = tuple(placements or available_placements())
    rows: list[dict] = []
    for placement in placements:
        for strategy in strategies:
            serving = make_serving_engine(
                model="deepseek",
                strategy=strategy,
                cache_ratio=CACHE_RATIO,
                num_layers=num_layers,
                seed=seed,
                num_gpus=num_gpus,
                placement=placement,
                max_batch_size=MAX_BATCH,
            )
            trace = serving_workload(
                num_requests=num_requests,
                arrival_rate=ARRIVAL_RATE,
                decode_steps=decode_steps,
                seed=seed,
            )
            report = serving.serve_trace(trace)
            row = {"placement": placement, "num_gpus": num_gpus}
            row.update(report.summary())
            cache = serving.engine.runtime.cache
            for device, rate in enumerate(cache.per_device_hit_rates()):
                row[f"hit_gpu{device}"] = rate
            rows.append(row)
    return rows


def format_report(rows: list[dict], num_gpus: int) -> str:
    """Render the race as one table, best aggregate goodput first."""
    rows = sorted(rows, key=lambda r: -r["goodput_rps"])
    columns = [
        "placement",
        "strategy",
        "goodput_rps",
        "token_throughput",
        "p99_ttft_s",
        "p99_tbt_s",
        "hit_rate",
    ] + [f"hit_gpu{g}" for g in range(num_gpus)]
    return format_table(
        rows,
        columns=columns,
        title=(
            f"multi-GPU serving race — deepseek @ {CACHE_RATIO:.0%} aggregate "
            f"cache on {num_gpus} GPUs (best goodput first)"
        ),
    )


def check_claims(rows: list[dict]) -> bool:
    """Hybrid scheduling + MRS caching beats on-demand per placement.

    Returns False (skipped) when the race did not include both headline
    strategies — a custom ``--strategies`` list has no claim to check.
    """
    raced = {r["strategy"] for r in rows}
    if not {"hybrimoe", "ondemand"} <= raced:
        return False
    by_pair = {(r["placement"], r["strategy"]): r for r in rows}
    for placement in {r["placement"] for r in rows}:
        hybrimoe = by_pair[(placement, "hybrimoe")]
        ondemand = by_pair[(placement, "ondemand")]
        assert hybrimoe["goodput_rps"] >= ondemand["goodput_rps"], (
            f"{placement}: hybrimoe goodput {hybrimoe['goodput_rps']:.3f} "
            f"below ondemand {ondemand['goodput_rps']:.3f}"
        )
    return True


def test_multi_gpu_serving(benchmark, report):
    from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

    rows = benchmark.pedantic(
        run_race,
        kwargs={"num_layers": BENCH_SCALE.num_layers, "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )
    table = format_report(rows, NUM_GPUS)
    best = max(rows, key=lambda r: r["goodput_rps"])
    summary = (
        f"best fleet config: {best['strategy']} + {best['placement']} at "
        f"{best['goodput_rps']:.2f} req/s goodput, "
        f"p99 TBT {best['p99_tbt_s'] * 1e3:.1f} ms"
    )
    report("multi_gpu_serving", table + "\n\n" + summary)
    check_claims(rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-GPU placement × strategy serving race"
    )
    parser.add_argument("--steps", type=int, default=DECODE_STEPS, help="decode steps per request")
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--num-gpus", type=int, default=NUM_GPUS)
    parser.add_argument("--num-layers", type=int, default=6)
    parser.add_argument(
        "--strategies",
        default="hybrimoe,ondemand",
        help="comma-separated strategy names (standalone default is the headline pair)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rows = run_race(
        num_gpus=args.num_gpus,
        num_requests=args.requests,
        decode_steps=args.steps,
        num_layers=args.num_layers,
        strategies=tuple(args.strategies.split(",")),
        seed=args.seed,
    )
    print(format_report(rows, args.num_gpus))
    if check_claims(rows):
        print("claims OK: hybrimoe >= ondemand aggregate goodput on every placement")
    else:
        print("claims skipped: race did not include both hybrimoe and ondemand")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
