"""Chaos benchmark: degraded-mode serving under randomized fault campaigns.

Runs the :mod:`tools.chaos` harness — seeded campaigns composing
replica crashes, slow windows, PCIe link degradation, disk stalls and
GPU stragglers with request timeouts, retry-with-backoff and overload
shedding over diurnal/bursty traces — and gates on the fleet's safety
and liveness properties:

- **Invariants (hard)** — every submitted request reaches exactly one
  terminal status (``finished`` / ``timed_out`` / ``shed``), no records
  are lost or duplicated across the per-replica -> merged pooling, and
  per-replica degradation logs are time-monotone. Any violation fails
  the gate in every mode.
- **Coverage (hard)** — the campaign actually bit: crashes re-routed
  work (failovers >= 1), the shedder fired, all three hardware fault
  kinds were scheduled, and (full mode) timeouts fired (terminal
  timeouts + retries >= 1).
- **Goodput retention (hard floor + trajectory)** — completed goodput
  under chaos must retain >= ``RETENTION_FLOOR`` of the fault-free
  twin's goodput, and the mean retention is tracked against the
  committed baseline with the usual regression factor.

Everything is simulated time, so results are bit-stable across
machines. The committed repo-root ``BENCH_chaos.json`` is the baseline
the CI ``chaos`` job gates against (``perf-regression-ok`` label skips
the trajectory gate; the invariants are never skippable).

Usage::

    python benchmarks/bench_chaos.py            # full run, merges into BENCH_chaos.json
    python benchmarks/bench_chaos.py --smoke    # CI-sized run
    python benchmarks/bench_chaos.py --smoke --check --out BENCH_chaos.current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

from chaos import CampaignSpec, run_campaign  # noqa: E402

from repro.hardware.faults import HARDWARE_FAULT_KINDS  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_chaos.json"
SCHEMA_VERSION = 1

#: Hard floor: completed goodput under chaos over the fault-free twin.
RETENTION_FLOOR = 0.5

#: Trajectory: mean retention may not regress by more than this factor
#: versus the committed baseline.
REGRESSION_FACTOR = 1.25

#: Campaign shape shared by both modes. The fleet is deliberately
#: oversubscribed at the trace's peak (peak_rate far above service
#: capacity) so the shedder and timeout sweeps genuinely engage; the
#: fault counts are high enough that every hardware kind lands in the
#: drawn schedules at the pinned seeds.
BASE_SPEC = CampaignSpec(
    replicas=3,
    base_rate=10.0,
    peak_rate=300.0,
    decode_steps=10,
    shed_queue_depth=16,
    max_retries=1,
    num_crashes=1,
    num_slow=2,
    num_hardware=6,
)

#: (seed, trace_kind) campaigns per mode. Full mode tightens the
#: timeout so the retry path fires at 200-request scale; the smoke
#: campaign keeps the looser timeout (at 64 requests a tight timeout
#: drags retention to the floor — the retry path is unit-tested, the
#: smoke gate covers crash/degrade/shed).
FULL = {
    "num_requests": 200,
    "request_timeout_s": 0.4,
    "campaigns": [(0, "diurnal"), (2, "bursty")],
}
SMOKE = {
    "num_requests": 64,
    "request_timeout_s": 0.4,
    "campaigns": [(2, "bursty")],
}


def _campaign_record(result) -> dict:
    hardware = result.hardware_faults or ()
    schedule = result.fault_schedule or ()
    merged = result.report.merged
    return {
        "seed": result.spec.seed,
        "trace": result.spec.trace_kind,
        "num_requests": result.spec.num_requests,
        "outcomes": result.outcome_counts(),
        "retries": merged.num_retries,
        "failovers": result.report.num_failovers,
        "replica_fault_kinds": sorted({f.kind for f in schedule}),
        "hardware_fault_kinds": sorted({f.kind for f in hardware}),
        "degradation_events": sum(
            len(rep.degradations) for _, rep in result.report.per_replica
        ),
        "chaos_goodput_rps": merged.goodput,
        "clean_goodput_rps": result.clean_report.merged.goodput,
        "goodput_retention": result.goodput_retention,
        "invariant_violations": list(result.violations),
    }


def run(smoke: bool) -> dict:
    scale = SMOKE if smoke else FULL
    campaigns = []
    for seed, trace_kind in scale["campaigns"]:
        spec = replace(
            BASE_SPEC,
            seed=seed,
            trace_kind=trace_kind,
            num_requests=scale["num_requests"],
            request_timeout_s=scale["request_timeout_s"],
        )
        campaigns.append(_campaign_record(run_campaign(spec)))
    retentions = [c["goodput_retention"] for c in campaigns]
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "criteria": {
            "retention_floor": RETENTION_FLOOR,
            "regression_factor": REGRESSION_FACTOR,
        },
        "campaigns": campaigns,
        "retention_mean": sum(retentions) / len(retentions),
    }


def check(current: dict, baseline: dict | None) -> list[str]:
    """Gate failures of ``current`` against the committed baseline."""
    failures: list[str] = []
    mode = current["mode"]
    for campaign in current["campaigns"]:
        tag = f"campaign seed={campaign['seed']} ({campaign['trace']})"
        for violation in campaign["invariant_violations"]:
            failures.append(f"{tag}: INVARIANT: {violation}")
        if campaign["goodput_retention"] < RETENTION_FLOOR:
            failures.append(
                f"{tag}: goodput retention "
                f"{campaign['goodput_retention']:.3f}x under the "
                f"{RETENTION_FLOOR}x floor"
            )
        if campaign["failovers"] < 1:
            failures.append(f"{tag}: the scheduled crash re-routed nothing")
        if campaign["outcomes"]["shed"] < 1:
            failures.append(f"{tag}: overload shedding never fired")
        missing = set(HARDWARE_FAULT_KINDS) - set(
            campaign["hardware_fault_kinds"]
        )
        if missing:
            failures.append(
                f"{tag}: hardware fault kinds never scheduled: "
                f"{sorted(missing)}"
            )
        if mode == "full":
            exercised = campaign["retries"] + campaign["outcomes"]["timed_out"]
            if exercised < 1:
                failures.append(f"{tag}: request timeouts never fired")

    if baseline is None:
        failures.append(f"no committed baseline at {BASELINE_PATH}")
        return failures
    committed = baseline.get("modes", {}).get(mode)
    if committed is None:
        failures.append(f"committed baseline has no '{mode}' mode entry")
        return failures
    then = committed["retention_mean"]
    now = current["retention_mean"]
    floor = then / REGRESSION_FACTOR
    if now < floor:
        failures.append(
            f"mean goodput retention regressed >{REGRESSION_FACTOR:.2f}x: "
            f"{now:.3f}x vs committed {then:.3f}x (floor {floor:.3f}x)"
        )
    return failures


def _print_results(results: dict) -> None:
    print(f"chaos bench ({results['mode']}):")
    for campaign in results["campaigns"]:
        outcomes = campaign["outcomes"]
        print(
            f"  seed {campaign['seed']} ({campaign['trace']}, "
            f"{campaign['num_requests']} requests): "
            f"{outcomes['finished']} finished / "
            f"{outcomes['timed_out']} timed out / {outcomes['shed']} shed, "
            f"{campaign['retries']} retries, "
            f"{campaign['failovers']} failovers, "
            f"{campaign['degradation_events']} degradation events"
        )
        print(
            f"    goodput retention {campaign['goodput_retention']:.3f}x "
            f"({campaign['chaos_goodput_rps']:.2f} vs "
            f"{campaign['clean_goodput_rps']:.2f} req/s), invariants "
            f"{'OK' if not campaign['invariant_violations'] else 'VIOLATED'}"
        )
    print(f"  mean retention: {results['retention_mean']:.3f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on invariant violation or regression vs BENCH_chaos.json",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BASELINE_PATH,
        help="where to write results (default: repo-root BENCH_chaos.json)",
    )
    args = parser.parse_args(argv)

    # Read the committed baseline before writing anything: `--check`
    # must compare against the pre-run state even when --out points at
    # the baseline file itself.
    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    results = run(args.smoke)

    if args.out == BASELINE_PATH:
        # One entry per mode, so a smoke run never clobbers the
        # committed full-mode trajectory (or vice versa).
        merged = {
            "schema": SCHEMA_VERSION,
            "criteria": results["criteria"],
            "modes": dict((baseline or {}).get("modes", {})),
        }
        merged["modes"][results["mode"]] = {
            "campaigns": results["campaigns"],
            "retention_mean": results["retention_mean"],
        }
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
    else:
        args.out.write_text(json.dumps(results, indent=2) + "\n")

    _print_results(results)
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, baseline)
        if failures:
            for failure in failures:
                print(f"CHAOS GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("chaos gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
