"""Fleet benchmarks: router race, crash failover, burst autoscaling.

Three scenarios, all fully deterministic (metrics are *simulated* time,
so runs are bit-stable across machines — the regression gate can be
tight):

1. **skewed** — the cache-affinity payoff and the gate's hard
   criterion. Two hot prompt profiles (8-token prompts: sparse,
   distinct expert footprints on a 64-expert model) are served by a
   2-replica fleet under each routing policy, on the pure-recency
   ``ondemand`` cache that preserves profile residency (prefetching
   strategies deliberately wash it out by design). Each fleet first
   serves a paced warmup trace (cache content persists across serves),
   then a saturating burst whose drain time is what goodput measures.
   ``cache_affinity`` must beat ``round_robin`` on merged goodput for
   **every** seed — the request steering is the only difference
   between the runs.

2. **failover** — a replica crash mid-burst. The fleet must finish
   every request exactly once (lossless failover), and the goodput
   retained versus the crash-free run is tracked as a trajectory
   ratio (half the fleet dies; retention is capacity-bound).

3. **autoscale** — a flash-crowd trace against threshold autoscaling.
   Scale-ups must fire, every request completes, and the goodput win
   over the static minimum pool is tracked.

Results are written as versioned JSON; the committed repo-root
``BENCH_fleet.json`` is the trajectory baseline the CI ``fleet-perf``
job gates against (``perf-regression-ok`` label skips the gate).

Usage::

    python benchmarks/bench_fleet.py            # full run, merges into BENCH_fleet.json
    python benchmarks/bench_fleet.py --smoke    # CI-sized run
    python benchmarks/bench_fleet.py --smoke --check --out BENCH_fleet.current.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.factory import make_fleet  # noqa: E402
from repro.fleet.autoscale import AutoscaleConfig  # noqa: E402
from repro.fleet.faults import FaultSchedule, ReplicaFault  # noqa: E402
from repro.fleet.router import available_routers  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    bursty_arrivals,
    poisson_arrivals,
    serving_workload,
    skewed_serving_workload,
)

BASELINE_PATH = REPO_ROOT / "BENCH_fleet.json"
SCHEMA_VERSION = 1

#: Gate: a tracked ratio may not regress by more than this factor
#: versus the committed baseline.
REGRESSION_FACTOR = 1.25

#: Skewed-traffic scenario (shared by smoke and full; only trace sizes
#: and seed count scale). ``ondemand`` at a sub-unity cache ratio on
#: the 64-expert model is the regime where per-replica cache *content*
#: is profile-specific: 8-token prompts activate sparse expert sets,
#: and a pure-recency cache retains whichever profile it last served.
SKEWED = {
    "model": "deepseek",
    "strategy": "ondemand",
    "cache_ratio": 0.45,
    "num_layers": 6,
    "replicas": 2,
    "max_batch_size": 4,
    "num_profiles": 2,
    "prompt_length": 8,
    "decode_steps": 4,
    "warmup_rate": 3.0,
    "burst_rate": 250.0,
}
SKEWED_FULL = {"num_warmup": 32, "num_measure": 192, "seeds": [0, 1, 2]}
SKEWED_SMOKE = {"num_warmup": 24, "num_measure": 96, "seeds": [0]}

FAILOVER = {
    "model": "deepseek",
    "strategy": "hybrimoe",
    "cache_ratio": 0.5,
    "num_layers": 4,
    "replicas": 2,
    "max_batch_size": 4,
    "num_requests": 24,
    "arrival_rate": 40.0,
    "decode_steps": 8,
    "seed": 0,
}

AUTOSCALE = {
    "model": "deepseek",
    "strategy": "hybrimoe",
    "cache_ratio": 0.5,
    "num_layers": 4,
    "replicas": 3,
    "max_batch_size": 2,
    "num_requests": 24,
    "base_rate": 0.5,
    "burst_rate": 40.0,
    "burst_every": 30.0,
    "burst_duration": 2.0,
    "decode_steps": 6,
    "seed": 0,
    "high_watermark": 2.0,
    "low_watermark": 0.5,
}


# ----------------------------------------------------------------------
# scenario: skewed (router race, warm caches)
# ----------------------------------------------------------------------

def _skewed_fleet(router: str):
    p = SKEWED
    return make_fleet(
        model=p["model"],
        strategy=p["strategy"],
        cache_ratio=p["cache_ratio"],
        num_layers=p["num_layers"],
        seed=0,
        max_batch_size=p["max_batch_size"],
        replicas=p["replicas"],
        router=router,
    )


def run_skewed_race(num_warmup: int, num_measure: int, seed: int) -> dict:
    """One warm-then-burst serve per router; merged metrics each.

    The warmup serve populates each replica's cache under the router's
    own steering (a router earns its warm caches); the measured burst
    arrives faster than service, so goodput is drain-dominated and the
    cache hit rate — not the arrival process — sets the makespan.
    """
    p = SKEWED
    out = {}
    for router in available_routers():
        fleet = _skewed_fleet(router)
        warmup = skewed_serving_workload(
            num_requests=num_warmup,
            arrival_rate=p["warmup_rate"],
            num_profiles=p["num_profiles"],
            decode_steps=p["decode_steps"],
            prompt_length=p["prompt_length"],
            seed=seed,
        )
        fleet.serve_trace(warmup)
        # Same workload seed (same profiles the warmup heated), burst
        # arrivals from an independent stream.
        measure = skewed_serving_workload(
            arrival_times=list(
                poisson_arrivals(num_measure, p["burst_rate"], seed=seed + 1000)
            ),
            num_profiles=p["num_profiles"],
            decode_steps=p["decode_steps"],
            prompt_length=p["prompt_length"],
            seed=seed,
        )
        report = fleet.serve_trace(measure)
        counts = report.assignment_counts()
        out[router] = {
            "goodput_rps": report.merged.goodput,
            "hit_rate": report.merged.hit_rate,
            "p99_ttft_s": report.merged.ttft_percentiles()["p99"],
            "assignments": [counts.get(i, 0) for i in range(p["replicas"])],
        }
    return out


def _bench_skewed(smoke: bool) -> dict:
    scale = SKEWED_SMOKE if smoke else SKEWED_FULL
    per_seed = {}
    wins = []
    for seed in scale["seeds"]:
        race = run_skewed_race(scale["num_warmup"], scale["num_measure"], seed)
        race["affinity_vs_round_robin"] = (
            race["cache_affinity"]["goodput_rps"]
            / race["round_robin"]["goodput_rps"]
        )
        wins.append(race["affinity_vs_round_robin"])
        per_seed[str(seed)] = race
    return {
        "params": {**SKEWED, **scale},
        "per_seed": per_seed,
        "affinity_vs_round_robin_mean": sum(wins) / len(wins),
        "affinity_beats_round_robin_every_seed": all(w > 1.0 for w in wins),
    }


# ----------------------------------------------------------------------
# scenario: failover (crash mid-burst)
# ----------------------------------------------------------------------

def _failover_fleet(fault_schedule=None):
    p = FAILOVER
    return make_fleet(
        model=p["model"],
        strategy=p["strategy"],
        cache_ratio=p["cache_ratio"],
        num_layers=p["num_layers"],
        seed=p["seed"],
        max_batch_size=p["max_batch_size"],
        replicas=p["replicas"],
        router="round_robin",
        fault_schedule=fault_schedule,
    )


def run_failover() -> dict:
    """Crash replica 0 mid-run; compare against the crash-free serve."""
    p = FAILOVER

    def trace():
        return serving_workload(
            num_requests=p["num_requests"],
            arrival_rate=p["arrival_rate"],
            decode_steps=p["decode_steps"],
            seed=p["seed"],
        )

    clean = _failover_fleet().serve_trace(trace())
    crash_at = clean.merged.first_arrival + clean.merged.makespan / 2
    schedule = FaultSchedule([ReplicaFault(replica=0, at_time=crash_at)])
    crashed = _failover_fleet(schedule).serve_trace(trace())
    return {
        "params": {**p, "crash_at": crash_at},
        "clean_goodput_rps": clean.merged.goodput,
        "crashed_goodput_rps": crashed.merged.goodput,
        "goodput_retention": crashed.merged.goodput / clean.merged.goodput,
        "num_failovers": crashed.num_failovers,
        "lossless": sorted(r.request_id for r in crashed.merged.requests)
        == list(range(p["num_requests"])),
    }


# ----------------------------------------------------------------------
# scenario: autoscale (flash crowd)
# ----------------------------------------------------------------------

def run_autoscale() -> dict:
    """Flash-crowd trace: threshold autoscaling vs the static minimum."""
    p = AUTOSCALE

    def trace():
        times = bursty_arrivals(
            p["num_requests"],
            base_rate=p["base_rate"],
            burst_rate=p["burst_rate"],
            burst_every=p["burst_every"],
            burst_duration=p["burst_duration"],
            seed=p["seed"],
        )
        return serving_workload(
            arrival_times=list(times),
            decode_steps=p["decode_steps"],
            seed=p["seed"],
        )

    def fleet(replicas, autoscale=None):
        return make_fleet(
            model=p["model"],
            strategy=p["strategy"],
            cache_ratio=p["cache_ratio"],
            num_layers=p["num_layers"],
            seed=p["seed"],
            max_batch_size=p["max_batch_size"],
            replicas=replicas,
            router="least_loaded",
            autoscale=autoscale,
        )

    config = AutoscaleConfig(
        min_replicas=1,
        max_replicas=p["replicas"],
        high_watermark=p["high_watermark"],
        low_watermark=p["low_watermark"],
    )
    scaled = fleet(p["replicas"], config).serve_trace(trace())
    static = fleet(1).serve_trace(trace())
    return {
        "params": p,
        "autoscaled_goodput_rps": scaled.merged.goodput,
        "static_min_goodput_rps": static.merged.goodput,
        "autoscale_speedup": scaled.merged.goodput / static.merged.goodput,
        "scale_ups": sum(
            1 for e in scaled.autoscale_events if e.action == "scale_up"
        ),
        "scale_downs": sum(
            1 for e in scaled.autoscale_events if e.action == "scale_down"
        ),
        "lossless": scaled.merged.num_requests == p["num_requests"],
    }


# ----------------------------------------------------------------------
# trajectory + gate
# ----------------------------------------------------------------------

def run(smoke: bool) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "mode": "smoke" if smoke else "full",
        "criteria": {"regression_factor": REGRESSION_FACTOR},
        "scenarios": {
            "skewed": _bench_skewed(smoke),
            "failover": run_failover(),
            "autoscale": run_autoscale(),
        },
    }


def check(current: dict, baseline: dict | None) -> list[str]:
    """Gate failures of ``current`` against the committed baseline."""
    failures: list[str] = []
    mode = current["mode"]
    skewed = current["scenarios"]["skewed"]
    failover = current["scenarios"]["failover"]
    autoscale = current["scenarios"]["autoscale"]

    # Hard criteria (hold in every mode, baseline or not).
    if not skewed["affinity_beats_round_robin_every_seed"]:
        losses = {
            seed: race["affinity_vs_round_robin"]
            for seed, race in skewed["per_seed"].items()
            if race["affinity_vs_round_robin"] <= 1.0
        }
        failures.append(
            f"skewed: cache_affinity no longer strictly beats round_robin "
            f"on merged goodput (losing seeds: {losses})"
        )
    if not failover["lossless"]:
        failures.append("failover: crashed run lost requests")
    if failover["num_failovers"] < 1:
        failures.append("failover: the scheduled crash re-routed nothing")
    if not autoscale["lossless"]:
        failures.append("autoscale: run lost requests")
    if autoscale["scale_ups"] < 1:
        failures.append("autoscale: the flash crowd triggered no scale-up")

    # Trajectory regression vs the committed baseline (same mode).
    if baseline is None:
        failures.append(f"no committed baseline at {BASELINE_PATH}")
        return failures
    committed = baseline.get("modes", {}).get(mode)
    if committed is None:
        failures.append(f"committed baseline has no '{mode}' mode entry")
        return failures
    ratios = (
        (
            "skewed: cache_affinity goodput vs round_robin",
            skewed["affinity_vs_round_robin_mean"],
            committed["scenarios"]["skewed"]["affinity_vs_round_robin_mean"],
        ),
        (
            "failover: goodput retention after a crash",
            failover["goodput_retention"],
            committed["scenarios"]["failover"]["goodput_retention"],
        ),
        (
            "autoscale: goodput vs static minimum pool",
            autoscale["autoscale_speedup"],
            committed["scenarios"]["autoscale"]["autoscale_speedup"],
        ),
    )
    for label, now, then in ratios:
        floor = then / REGRESSION_FACTOR
        if now < floor:
            failures.append(
                f"{label} regressed >{REGRESSION_FACTOR:.2f}x: "
                f"{now:.3f}x vs committed {then:.3f}x (floor {floor:.3f}x)"
            )
    return failures


def _print_results(results: dict) -> None:
    skewed = results["scenarios"]["skewed"]
    print(f"fleet bench ({results['mode']}):")
    print("  skewed router race (merged goodput, warm caches):")
    for seed, race in skewed["per_seed"].items():
        parts = "  ".join(
            f"{router} {race[router]['goodput_rps']:6.2f} req/s "
            f"(hit {race[router]['hit_rate']:.3f})"
            for router in available_routers()
        )
        print(f"    seed {seed}: {parts}")
        print(
            f"            cache_affinity vs round_robin: "
            f"{race['affinity_vs_round_robin']:.3f}x"
        )
    print(
        f"    mean affinity win: {skewed['affinity_vs_round_robin_mean']:.3f}x "
        f"(every seed strict: {skewed['affinity_beats_round_robin_every_seed']})"
    )
    failover = results["scenarios"]["failover"]
    print(
        f"  failover: {failover['num_failovers']} re-routes, lossless "
        f"{failover['lossless']}, goodput retention "
        f"{failover['goodput_retention']:.3f}x "
        f"({failover['crashed_goodput_rps']:.2f} vs "
        f"{failover['clean_goodput_rps']:.2f} req/s)"
    )
    autoscale = results["scenarios"]["autoscale"]
    print(
        f"  autoscale: {autoscale['scale_ups']} up / "
        f"{autoscale['scale_downs']} down, "
        f"{autoscale['autoscale_speedup']:.3f}x goodput vs static minimum "
        f"({autoscale['autoscaled_goodput_rps']:.2f} vs "
        f"{autoscale['static_min_goodput_rps']:.2f} req/s)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on regression vs the committed BENCH_fleet.json",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=BASELINE_PATH,
        help="where to write results (default: repo-root BENCH_fleet.json)",
    )
    args = parser.parse_args(argv)

    # Read the committed baseline before writing anything: `--check`
    # must compare against the pre-run state even when --out points at
    # the baseline file itself.
    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    results = run(args.smoke)

    if args.out == BASELINE_PATH:
        # The baseline keeps one entry per mode, so a smoke run never
        # clobbers the committed full-mode trajectory (or vice versa).
        merged = {
            "schema": SCHEMA_VERSION,
            "criteria": results["criteria"],
            "modes": dict((baseline or {}).get("modes", {})),
        }
        merged["modes"][results["mode"]] = {"scenarios": results["scenarios"]}
        args.out.write_text(json.dumps(merged, indent=2) + "\n")
    else:
        args.out.write_text(json.dumps(results, indent=2) + "\n")

    _print_results(results)
    print(f"wrote {args.out}")

    if args.check:
        failures = check(results, baseline)
        if failures:
            for failure in failures:
                print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
