"""Fig. 3 (a)-(f): the motivation analyses.

Each benchmark regenerates one panel of the paper's Fig. 3 and asserts
its qualitative shape (the property the paper's argument rests on).
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.experiments.figures import (
    fig3a_activation_cdf,
    fig3b_reuse_probability,
    fig3c_workload_distribution,
    fig3d_existing_methods,
    fig3e_expert_count_sweep,
    fig3f_workload_sweep,
)
from repro.experiments.reporting import format_table


def test_fig3a_activation_cdf(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig3a_activation_cdf(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report("fig3a_activation_cdf", format_table(rows, title="Fig. 3a — activation CDF"))
    # Neuron activations concentrate far more than expert activations.
    mid = rows[len(rows) // 5]
    assert mid["opt-neuron"] > mid["deepseek-expert"]
    assert mid["opt-neuron"] > mid["mixtral-expert"]


def test_fig3b_reuse_probability(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig3b_reuse_probability(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    shown = rows[::4]
    report(
        "fig3b_reuse_probability",
        format_table(shown, title="Fig. 3b — reuse probability by score rank"),
    )
    probs = np.array([r["reuse_probability"] for r in rows])
    # High-score ranks predict reuse; the tail does not.
    assert probs[:6].mean() > 3 * probs[-16:].mean()


def test_fig3c_workload_distribution(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig3c_workload_distribution(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(
        "fig3c_workload_distribution",
        format_table(rows[::8], title="Fig. 3c — prefill expert loads (sorted)"),
    )
    loads = np.array([r["load"] for r in rows])
    # Uneven distribution: the busiest expert sees several times the mean.
    assert loads[0] > 2 * loads[loads > 0].mean()


def test_fig3d_existing_methods(benchmark, report):
    rows = benchmark.pedantic(
        lambda: fig3d_existing_methods(scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    report(
        "fig3d_existing_methods",
        format_table(rows, title="Fig. 3d — existing frameworks, mixed probes"),
    )
    by_key = {(r["scenario"], r["strategy"]): r["latency_s"] for r in rows}
    # llama.cpp collapses at prefill; no single method wins everywhere.
    assert (
        by_key[("mixtral-prefill-128", "llamacpp")]
        > 2 * by_key[("mixtral-prefill-128", "ktransformers")]
    )


def test_fig3e_expert_count_sweep(benchmark, report):
    rows = benchmark.pedantic(fig3e_expert_count_sweep, rounds=1, iterations=1)
    report(
        "fig3e_expert_count_sweep",
        format_table(rows, title="Fig. 3e — CPU vs GPU time by expert count"),
    )
    # First CPU expert pays warmup; marginal experts are cheaper.
    first = rows[0]["cpu_time_s"]
    marginal = rows[1]["cpu_time_s"] - rows[0]["cpu_time_s"]
    assert marginal < first


def test_fig3f_workload_sweep(benchmark, report):
    rows = benchmark.pedantic(fig3f_workload_sweep, rounds=1, iterations=1)
    report(
        "fig3f_workload_sweep",
        format_table(rows, title="Fig. 3f — CPU vs GPU time by workload size"),
    )
    gpu_growth = rows[-1]["gpu_time_s"] / rows[0]["gpu_time_s"]
    cpu_growth = rows[-1]["cpu_time_s"] / rows[0]["cpu_time_s"]
    assert cpu_growth > 20 * gpu_growth
