"""Micro-benchmarks of the planner itself.

The paper argues the schedule simulation is cheap enough for real-time
use ("the greedy nature of this simulation ensures minimal
computational overhead", §IV-C). These benchmarks measure planner
latency directly — decode-sized and prefill-sized inputs for each
evaluated model — using pytest-benchmark's statistical timing (many
rounds, unlike the one-shot experiment benches).
"""

import time

import pytest

from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.tasks import LayerCostOracle
from repro.hardware.cost_model import AnalyticCostModel
from repro.hardware.platform_presets import paper_testbed
from repro.models.presets import get_preset
from repro.rng import derive_rng

_PLANNER_CONFIGS = {
    "fast": SchedulerConfig(),
    "reference": SchedulerConfig(fast_path=False, plan_cache_size=0),
}


def _scheduler_inputs(
    model_name: str, n_tokens: int, cache_ratio: float, planner: str = "fast"
):
    config = get_preset(model_name)
    cost = AnalyticCostModel(paper_testbed())

    def factory(tokens: int) -> LayerCostOracle:
        return LayerCostOracle.for_model(cost, config, tokens)

    scheduler = HybridScheduler(factory, _PLANNER_CONFIGS[planner])
    rng = derive_rng(0, "bench", model_name, n_tokens)
    experts = config.num_routed_experts
    k = config.num_activated_experts
    if n_tokens == 1:
        activated_ids = sorted(rng.choice(experts, size=k, replace=False))
        activated = [(int(e), 1) for e in activated_ids]
    else:
        loads = rng.multinomial(n_tokens * k, [1.0 / experts] * experts)
        activated = [(e, int(load)) for e, load in enumerate(loads) if load > 0]
    cached = set(
        int(e)
        for e in rng.choice(experts, size=int(cache_ratio * experts), replace=False)
    )
    return scheduler, activated, cached, n_tokens


@pytest.mark.parametrize("planner", ["fast", "reference"])
@pytest.mark.parametrize("model_name", ["mixtral", "qwen2", "deepseek"])
def test_plan_latency_decode(benchmark, model_name, planner):
    scheduler, activated, cached, n_tokens = _scheduler_inputs(
        model_name, 1, 0.5, planner
    )
    plan = benchmark(
        lambda: scheduler.plan(0, activated, cached, n_tokens=n_tokens)
    )
    plan.validate(dict(activated), cached)
    # Planner overhead must be far below a decode layer (~milliseconds).
    assert benchmark.stats["mean"] < 5e-3


@pytest.mark.parametrize("model_name", ["mixtral", "qwen2", "deepseek"])
def test_plan_latency_prefill(benchmark, model_name):
    scheduler, activated, cached, n_tokens = _scheduler_inputs(model_name, 128, 0.5)
    plan = benchmark(
        lambda: scheduler.plan(0, activated, cached, n_tokens=n_tokens)
    )
    plan.validate(dict(activated), cached)
    assert benchmark.stats["mean"] < 50e-3


def test_prefetch_impact_simulation_latency(benchmark):
    """The quick two-extremes simulation used per prefetch candidate."""
    scheduler, activated, cached, _ = _scheduler_inputs("qwen2", 1, 0.5)
    benchmark(
        lambda: scheduler.simulate_makespan(activated, cached, 1, quick=True)
    )
    assert benchmark.stats["mean"] < 1e-3


@pytest.mark.parametrize("model_name", ["mixtral", "qwen2", "deepseek"])
def test_fast_path_decode_speedup(model_name):
    """ISSUE 3 acceptance: >=5x planner-latency reduction on decode
    shapes for the default (fast + memo) planner vs the reference path,
    with zero plan drift."""
    reps = 150
    timings = {}
    for planner in ("fast", "reference"):
        scheduler, activated, cached, n_tokens = _scheduler_inputs(
            model_name, 1, 0.5, planner
        )
        scheduler.plan(0, activated, cached, n_tokens=n_tokens)  # warm
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(reps):
                scheduler.plan(0, activated, cached, n_tokens=n_tokens)
            best = min(best, time.perf_counter() - start)
        timings[planner] = best
    fast_plan = _scheduler_inputs(model_name, 1, 0.5, "fast")[0].plan(
        0, activated, cached, n_tokens=n_tokens
    )
    reference_plan = _scheduler_inputs(model_name, 1, 0.5, "reference")[0].plan(
        0, activated, cached, n_tokens=n_tokens
    )
    assert fast_plan == reference_plan
    assert timings["reference"] / timings["fast"] >= 5.0
