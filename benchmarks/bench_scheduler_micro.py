"""Micro-benchmarks of the planner itself.

The paper argues the schedule simulation is cheap enough for real-time
use ("the greedy nature of this simulation ensures minimal
computational overhead", §IV-C). These benchmarks measure planner
latency directly — decode-sized and prefill-sized inputs for each
evaluated model — using pytest-benchmark's statistical timing (many
rounds, unlike the one-shot experiment benches).
"""

import pytest

from repro.core.hybrid_scheduler import HybridScheduler
from repro.core.tasks import LayerCostOracle
from repro.hardware.cost_model import AnalyticCostModel
from repro.hardware.platform_presets import paper_testbed
from repro.models.presets import get_preset
from repro.rng import derive_rng


def _scheduler_inputs(model_name: str, n_tokens: int, cache_ratio: float):
    config = get_preset(model_name)
    cost = AnalyticCostModel(paper_testbed())

    def factory(tokens: int) -> LayerCostOracle:
        return LayerCostOracle.for_model(cost, config, tokens)

    scheduler = HybridScheduler(factory)
    rng = derive_rng(0, "bench", model_name, n_tokens)
    experts = config.num_routed_experts
    k = config.num_activated_experts
    if n_tokens == 1:
        activated_ids = sorted(rng.choice(experts, size=k, replace=False))
        activated = [(int(e), 1) for e in activated_ids]
    else:
        loads = rng.multinomial(n_tokens * k, [1.0 / experts] * experts)
        activated = [(e, int(load)) for e, load in enumerate(loads) if load > 0]
    cached = set(
        int(e)
        for e in rng.choice(experts, size=int(cache_ratio * experts), replace=False)
    )
    return scheduler, activated, cached, n_tokens


@pytest.mark.parametrize("model_name", ["mixtral", "qwen2", "deepseek"])
def test_plan_latency_decode(benchmark, model_name):
    scheduler, activated, cached, n_tokens = _scheduler_inputs(model_name, 1, 0.5)
    plan = benchmark(
        lambda: scheduler.plan(0, activated, cached, n_tokens=n_tokens)
    )
    plan.validate(dict(activated), cached)
    # Planner overhead must be far below a decode layer (~milliseconds).
    assert benchmark.stats["mean"] < 5e-3


@pytest.mark.parametrize("model_name", ["mixtral", "qwen2", "deepseek"])
def test_plan_latency_prefill(benchmark, model_name):
    scheduler, activated, cached, n_tokens = _scheduler_inputs(model_name, 128, 0.5)
    plan = benchmark(
        lambda: scheduler.plan(0, activated, cached, n_tokens=n_tokens)
    )
    plan.validate(dict(activated), cached)
    assert benchmark.stats["mean"] < 50e-3


def test_prefetch_impact_simulation_latency(benchmark):
    """The quick two-extremes simulation used per prefetch candidate."""
    scheduler, activated, cached, _ = _scheduler_inputs("qwen2", 1, 0.5)
    benchmark(
        lambda: scheduler.simulate_makespan(activated, cached, 1, quick=True)
    )
    assert benchmark.stats["mean"] < 1e-3
