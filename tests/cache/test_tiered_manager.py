"""TieredCacheManager: tier semantics, facade forwarding, statistics."""

import pytest

from repro.cache.base import make_policy
from repro.cache.manager import ExpertCache
from repro.cache.placement import make_placement
from repro.cache.sharded import CacheSpec, ShardedCacheManager
from repro.cache.tiered import TieredCacheManager
from repro.errors import CacheError


def build_tiered(gpu_capacity=2, cpu_capacity=3, cpu_policy="lru"):
    gpu = ExpertCache(gpu_capacity, make_policy("lru"))
    cpu = ExpertCache(cpu_capacity, make_policy(cpu_policy))
    return TieredCacheManager(gpu, cpu)


class TestTierSemantics:
    def test_spilled_means_resident_nowhere(self):
        tiered = build_tiered()
        tiered.insert((0, 1))             # GPU tier
        tiered.promote_to_dram((0, 2))    # DRAM tier
        assert not tiered.is_spilled((0, 1))
        assert not tiered.is_spilled((0, 2))
        assert tiered.is_spilled((0, 3))
        assert tiered.spilled_experts(0, range(5)) == frozenset({0, 3, 4})

    def test_membership_means_gpu_tier_only(self):
        tiered = build_tiered()
        tiered.promote_to_dram((0, 2))
        assert (0, 2) not in tiered
        assert tiered.dram_resident((0, 2))
        tiered.insert((0, 2))
        assert (0, 2) in tiered

    def test_promotion_evicts_by_dram_policy(self):
        tiered = build_tiered(cpu_capacity=2)
        assert tiered.promote_to_dram((0, 0)) == []
        assert tiered.promote_to_dram((0, 1)) == []
        # LRU: (0, 0) is the oldest DRAM resident.
        assert tiered.promote_to_dram((0, 2)) == [(0, 0)]
        assert tiered.is_spilled((0, 0))

    def test_dram_eviction_of_gpu_resident_key_is_legal(self):
        tiered = build_tiered(cpu_capacity=1)
        tiered.insert((0, 5))
        tiered.promote_to_dram((0, 5))
        tiered.promote_to_dram((0, 6))   # evicts the (0, 5) DRAM copy
        assert (0, 5) in tiered          # GPU copy untouched
        assert not tiered.dram_resident((0, 5))
        assert not tiered.is_spilled((0, 5))

    def test_dram_would_admit(self):
        tiered = build_tiered(cpu_capacity=1)
        assert tiered.dram_would_admit((0, 1))
        tiered.promote_to_dram((0, 1))
        assert not tiered.dram_would_admit((0, 1))  # already resident
        assert tiered.dram_would_admit((0, 2))      # evict-and-admit
        zero = build_tiered(cpu_capacity=0)
        assert not zero.dram_would_admit((0, 1))

    def test_dram_tier_rejects_pinned_keys(self):
        gpu = ExpertCache(2, make_policy("lru"))
        cpu = ExpertCache(2, make_policy("lru"), pinned=[(0, 0)])
        with pytest.raises(CacheError):
            TieredCacheManager(gpu, cpu)


class TestStats:
    def test_cpu_tier_counts_only_gpu_misses(self):
        tiered = build_tiered()
        tiered.insert((0, 1))
        tiered.promote_to_dram((0, 2))
        assert tiered.access((0, 1)) is True    # GPU hit: DRAM untouched
        assert tiered.access((0, 2)) is False   # GPU miss, DRAM hit
        assert tiered.access((0, 3)) is False   # GPU miss, DRAM miss
        assert (tiered.stats.hits, tiered.stats.misses) == (1, 2)
        cpu_stats = tiered.tier_stats()["cpu"]
        assert (cpu_stats.hits, cpu_stats.misses) == (1, 1)
        rates = tiered.per_tier_hit_rates()
        assert rates["gpu"] == pytest.approx(1 / 3)
        assert rates["cpu"] == pytest.approx(0.5)

    def test_facade_stats_are_gpu_tier_stats(self):
        tiered = build_tiered()
        tiered.access((0, 7))
        assert tiered.stats is tiered.gpu_tier.stats


class TestFacadeForwarding:
    def test_gpu_surface_forwards(self):
        tiered = build_tiered()
        tiered.warm_fill([(0, 1), (1, 2)])
        assert len(tiered) == 2
        assert tiered.capacity == 2
        assert tiered.cached_experts_of_layer(0) == {1}
        assert tiered.resident_keys == {(0, 1), (1, 2)}
        tiered.lock([(0, 1)])
        assert tiered.locked_keys == {(0, 1)}
        tiered.unlock_all()
        assert tiered.locked_keys == set()
        tiered.validate()

    def test_sharded_gpu_tier_passthrough(self):
        spec = CacheSpec(4, lambda: make_policy("lru"))
        manager = spec.build_sharded(make_placement("round_robin", 2))
        tiered = TieredCacheManager(manager, ExpertCache(2, make_policy("lru")))
        assert tiered.sharded
        assert tiered.num_devices == 2
        assert len(tiered.per_device_hit_rates()) == 2
        key = (0, 1)
        assert tiered.device_of(key) == manager.device_of(key)
        tiered.insert(key)
        assert tiered.device_experts_of_layer(0, tiered.device_of(key)) == {1}
        tiered.validate()

    def test_unsharded_tier_reports_not_sharded(self):
        assert build_tiered().sharded is False
        assert isinstance(build_tiered().gpu_tier, ExpertCache)
        assert not isinstance(build_tiered().gpu_tier, ShardedCacheManager)

    def test_observe_scores_reaches_both_tiers(self):
        import numpy as np

        gpu = ExpertCache(2, make_policy("mrs", alpha=0.5, top_p=2))
        cpu = ExpertCache(2, make_policy("mrs", alpha=0.5, top_p=2))
        tiered = TieredCacheManager(gpu, cpu)
        scores = np.array([0.9, 0.05, 0.05])
        tiered.observe_scores(0, scores)
        assert gpu.policy.priority((0, 0)) > 0
        assert cpu.policy.priority((0, 0)) > 0
