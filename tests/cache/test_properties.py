"""Property-based tests of cache invariants under random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import make_policy
from repro.cache.manager import ExpertCache

_KEYS = st.tuples(st.integers(0, 3), st.integers(0, 7))


@st.composite
def cache_operations(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("access"), _KEYS),
                st.tuples(st.just("insert"), _KEYS),
                st.tuples(st.just("insert_if_better"), _KEYS),
                st.tuples(st.just("observe"), st.integers(0, 3)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


class TestCacheInvariants:
    @given(
        ops=cache_operations(),
        capacity=st.integers(0, 10),
        policy_name=st.sampled_from(["lru", "lfu", "mrs"]),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_capacity_and_consistency_hold(self, ops, capacity, policy_name, seed):
        """No operation sequence may break capacity or stats invariants."""
        cache = ExpertCache(capacity, make_policy(policy_name))
        rng = np.random.default_rng(seed)
        for op, arg in ops:
            if op == "access":
                cache.access(arg)
            elif op == "insert":
                cache.insert(arg)
            elif op == "insert_if_better":
                cache.insert_if_better(arg)
            else:
                cache.observe_scores(arg, rng.dirichlet(np.ones(8)))
            cache.validate()
            assert len(cache.dynamic_keys) <= capacity
        assert cache.stats.hits + cache.stats.misses == sum(
            1 for op, _ in ops if op == "access"
        )

    @given(
        ops=cache_operations(),
        pinned=st.sets(_KEYS, min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_pinned_keys_survive_everything(self, ops, pinned):
        cache = ExpertCache(2, make_policy("lru"), pinned=pinned)
        rng = np.random.default_rng(0)
        for op, arg in ops:
            if op == "access":
                cache.access(arg)
            elif op in ("insert", "insert_if_better"):
                getattr(cache, op)(arg)
            else:
                cache.observe_scores(arg, rng.dirichlet(np.ones(8)))
        for key in pinned:
            assert key in cache

    @given(
        scores_seq=st.lists(
            st.lists(st.floats(0.001, 1.0), min_size=8, max_size=8),
            min_size=1,
            max_size=20,
        ),
        alpha=st.floats(0.05, 1.0),
        top_p=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_mrs_scores_bounded_by_max_observed(self, scores_seq, alpha, top_p):
        """S is a convex combination of observed scores: bounded above."""
        policy = make_policy("mrs", alpha=alpha, top_p=top_p)
        max_seen = 0.0
        for step, raw in enumerate(scores_seq):
            scores = np.array(raw)
            scores /= scores.sum()
            policy.on_scores(0, scores, step)
            max_seen = max(max_seen, float(scores.max()))
        for expert in range(8):
            assert 0.0 <= policy.score_of((0, expert)) <= max_seen + 1e-9
