"""Sharded cache manager: routing, capacity accounting, aggregation."""

import numpy as np
import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.manager import ExpertCache
from repro.cache.mrs import MRSPolicy
from repro.cache.placement import make_placement
from repro.cache.sharded import CacheSpec, ShardedCacheManager, split_capacity
from repro.errors import CacheError


def make_manager(num_devices=4, capacity=8, placement="round_robin", **spec_kwargs):
    spec = CacheSpec(capacity, LRUPolicy, **spec_kwargs)
    return spec.build_sharded(make_placement(placement, num_devices))


class TestSplitCapacity:
    def test_even_split(self):
        assert split_capacity(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_first_devices(self):
        assert split_capacity(10, 4) == [3, 3, 2, 2]

    def test_sums_to_total(self):
        for total in range(0, 20):
            for n in range(1, 9):
                assert sum(split_capacity(total, n)) == total

    def test_validation(self):
        with pytest.raises(CacheError):
            split_capacity(-1, 2)
        with pytest.raises(CacheError):
            split_capacity(4, 0)


class TestConstruction:
    def test_from_spec_splits_capacity(self):
        manager = make_manager(num_devices=4, capacity=10)
        assert [s.capacity for s in manager.shards] == [3, 3, 2, 2]
        assert manager.capacity == 10

    def test_pinned_routed_to_home_shards(self):
        pinned = [(0, e) for e in range(8)]
        manager = make_manager(num_devices=4, capacity=0, pinned=pinned)
        for device, shard in enumerate(manager.shards):
            assert shard.pinned_keys == {(0, e) for e in range(8) if e % 4 == device}
        assert manager.pinned_keys == set(pinned)

    def test_warm_fill_respects_per_shard_capacity(self):
        warm = [(0, e) for e in range(16)]
        manager = make_manager(num_devices=2, capacity=4, warm=warm)
        for shard in manager.shards:
            assert len(shard.dynamic_keys) == shard.capacity == 2
        manager.validate()

    def test_shard_count_must_match_placement(self):
        shards = [ExpertCache(2, LRUPolicy()) for _ in range(3)]
        with pytest.raises(CacheError):
            ShardedCacheManager(shards, make_placement("round_robin", 2))

    def test_policy_instances_are_per_shard(self):
        manager = make_manager(num_devices=3)
        policies = {id(shard.policy) for shard in manager.shards}
        assert len(policies) == 3

    def test_single_shard_matches_unsharded_build(self):
        spec = CacheSpec(6, LRUPolicy, warm=[(0, e) for e in range(9)])
        solo = spec.build()
        manager = spec.build_sharded(make_placement("round_robin", 1))
        assert manager.shards[0].resident_keys == solo.resident_keys
        assert manager.capacity == solo.capacity


class TestRoutingAndMutation:
    def test_operations_route_to_home_shard(self):
        manager = make_manager(num_devices=2, capacity=4)
        manager.insert((0, 0))  # home: device 0
        manager.insert((0, 1))  # home: device 1
        assert (0, 0) in manager.shards[0]
        assert (0, 1) in manager.shards[1]
        assert (0, 0) in manager and (0, 1) in manager
        assert manager.cached_experts_of_layer(0) == {0, 1}
        assert manager.device_experts_of_layer(0, 0) == {0}

    def test_access_counts_on_home_shard(self):
        manager = make_manager(num_devices=2, capacity=4)
        manager.insert((0, 0))
        assert manager.access((0, 0)) is True
        assert manager.access((0, 1)) is False
        assert manager.shards[0].stats.hits == 1
        assert manager.shards[1].stats.misses == 1
        stats = manager.stats
        assert (stats.hits, stats.misses) == (1, 1)

    def test_lock_protects_across_shards(self):
        manager = make_manager(num_devices=2, capacity=2)
        manager.insert((0, 0))
        manager.insert((0, 2))  # both home device 0, filling its 1-slot shard?
        manager.lock([(0, 0)])
        assert (0, 0) in manager.locked_keys
        manager.unlock_all()
        assert manager.locked_keys == set()

    def test_per_device_capacity_never_exceeded(self):
        """Randomised workload: every shard stays within its budget."""
        rng = np.random.default_rng(7)
        manager = make_manager(num_devices=3, capacity=7, placement="load_aware")
        for _ in range(500):
            key = (int(rng.integers(0, 6)), int(rng.integers(0, 16)))
            op = rng.integers(0, 3)
            if op == 0:
                manager.access(key)
            elif op == 1:
                manager.insert(key)
            else:
                manager.insert_if_better(key)
            for shard in manager.shards:
                assert len(shard.dynamic_keys) <= shard.capacity
            manager.validate()

    def test_observe_scores_broadcasts(self):
        spec = CacheSpec(4, lambda: MRSPolicy(alpha=0.5, top_p=2))
        manager = spec.build_sharded(make_placement("round_robin", 2))
        scores = np.array([0.9, 0.05, 0.03, 0.02])
        manager.observe_scores(0, scores)
        for shard in manager.shards:
            assert shard.policy.priority((0, 0)) > 0.0

    def test_would_admit_does_not_commit_load_aware_placement(self):
        """Rejected admission probes must not sticky-assign homes."""
        manager = make_manager(num_devices=2, capacity=4, placement="load_aware")
        assert manager.would_admit((0, 0)) is True
        assert manager.placement.assignments == {}
        assert (0, 0) not in manager  # membership probe: also non-committing
        assert manager.placement.assignments == {}
        manager.insert((0, 0))
        assert manager.placement.assignments == {(0, 0): 0}

    def test_validate_catches_misrouted_resident(self):
        manager = make_manager(num_devices=2, capacity=4)
        # Bypass routing: plant a key on the wrong shard.
        manager.shards[1].insert((0, 0))  # round_robin home is device 0
        with pytest.raises(CacheError):
            manager.validate()


class TestStatsAggregation:
    def test_aggregate_sums_per_layer_counters(self):
        manager = make_manager(num_devices=2, capacity=4)
        manager.insert((0, 0))
        manager.insert((1, 1))
        manager.access((0, 0))
        manager.access((1, 1))
        manager.access((0, 2))
        stats = manager.stats
        assert stats.hits == 2 and stats.misses == 1
        assert stats.insertions == 2
        assert stats.per_layer_hits == {0: 1, 1: 1}
        assert stats.per_layer_misses == {0: 1}
        assert manager.per_device_hit_rates() == [
            shard.stats.hit_rate for shard in manager.shards
        ]
