"""Eviction-policy semantics: LRU, LFU and MRS."""

import numpy as np
import pytest

from repro.cache.base import make_policy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.mrs import MRSPolicy
from repro.errors import CacheError


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        policy.on_insert((0, 0), 1)
        policy.on_insert((0, 1), 2)
        policy.on_access((0, 0), 3)
        assert policy.victim([(0, 0), (0, 1)]) == (0, 1)

    def test_access_unknown_key_raises(self):
        with pytest.raises(CacheError):
            LRUPolicy().on_access((0, 0), 1)

    def test_empty_candidates_raise(self):
        with pytest.raises(CacheError):
            LRUPolicy().victim([])

    def test_forget_then_reinsert(self):
        policy = LRUPolicy()
        policy.on_insert((0, 0), 1)
        policy.forget((0, 0))
        policy.on_insert((0, 0), 5)
        assert policy.priority((0, 0)) == 5.0

    def test_deterministic_tie_break(self):
        policy = LRUPolicy()
        policy.on_insert((0, 1), 1)
        policy.on_insert((0, 0), 1)
        assert policy.victim([(0, 1), (0, 0)]) == (0, 0)


class TestLFU:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        for key in [(0, 0), (0, 1)]:
            policy.on_insert(key, 1)
        policy.on_access((0, 0), 2)
        policy.on_access((0, 0), 3)
        policy.on_access((0, 1), 4)
        assert policy.victim([(0, 0), (0, 1)]) == (0, 1)

    def test_counts_survive_eviction(self):
        policy = LFUPolicy()
        policy.on_insert((0, 0), 1)
        policy.on_access((0, 0), 2)
        policy.forget((0, 0))
        assert policy.priority((0, 0)) == 1.0

    def test_recency_breaks_count_ties(self):
        policy = LFUPolicy()
        policy.on_insert((0, 0), 1)
        policy.on_insert((0, 1), 2)
        assert policy.victim([(0, 0), (0, 1)]) == (0, 0)


class TestMRS:
    def test_eq3_update(self):
        """S <- alpha * TopP(s) + (1 - alpha) * S, exactly."""
        policy = MRSPolicy(alpha=0.5, top_p=2)
        scores = np.array([0.5, 0.3, 0.15, 0.05])
        policy.on_scores(0, scores, 1)
        assert policy.score_of((0, 0)) == pytest.approx(0.25)
        assert policy.score_of((0, 1)) == pytest.approx(0.15)
        # Outside top-p: pure decay from zero stays zero.
        assert policy.score_of((0, 2)) == 0.0
        policy.on_scores(0, scores, 2)
        assert policy.score_of((0, 0)) == pytest.approx(0.5 * 0.5 + 0.5 * 0.25)

    def test_non_top_p_decays(self):
        policy = MRSPolicy(alpha=0.5, top_p=1)
        policy.on_scores(0, np.array([0.9, 0.1]), 1)
        policy.on_scores(0, np.array([0.1, 0.9]), 2)
        # Expert 0 was top once then decayed.
        assert policy.score_of((0, 0)) == pytest.approx(0.5 * 0.45)

    def test_victim_is_min_score(self):
        policy = MRSPolicy(alpha=1.0, top_p=4)
        policy.on_scores(0, np.array([0.4, 0.3, 0.2, 0.1]), 1)
        for expert in range(4):
            policy.on_insert((0, expert), 2)
        assert policy.victim([(0, e) for e in range(4)]) == (0, 3)

    def test_scores_persist_across_eviction(self):
        policy = MRSPolicy(alpha=1.0, top_p=2)
        policy.on_scores(0, np.array([0.7, 0.3]), 1)
        policy.on_insert((0, 0), 2)
        policy.forget((0, 0))
        assert policy.score_of((0, 0)) == pytest.approx(0.7)

    def test_top_p_clamped_to_pool(self):
        policy = MRSPolicy(alpha=1.0, top_p=10)
        policy.on_scores(0, np.array([0.6, 0.4]), 1)
        assert policy.score_of((0, 1)) == pytest.approx(0.4)

    def test_invalid_params(self):
        with pytest.raises(CacheError):
            MRSPolicy(alpha=0.0)
        with pytest.raises(CacheError):
            MRSPolicy(alpha=1.5)
        with pytest.raises(CacheError):
            MRSPolicy(top_p=0)

    def test_scores_must_be_1d(self):
        with pytest.raises(CacheError):
            MRSPolicy().on_scores(0, np.ones((2, 2)), 1)

    def test_layers_tracked_independently(self):
        policy = MRSPolicy(alpha=1.0, top_p=1)
        policy.on_scores(0, np.array([0.9, 0.1]), 1)
        policy.on_scores(1, np.array([0.2, 0.8]), 2)
        assert policy.score_of((0, 0)) == pytest.approx(0.9)
        assert policy.score_of((1, 1)) == pytest.approx(0.8)

    def test_insert_before_scores_then_fold(self):
        """A key inserted before its layer was ever scored keeps a zero
        priority, then folds into the layer array on first scoring."""
        policy = MRSPolicy(alpha=1.0, top_p=2)
        policy.on_insert((3, 5), 1)
        assert policy.priority((3, 5)) == 0.0
        policy.on_scores(3, np.array([0.0, 0.0, 0.0, 0.0, 0.0, 0.7]), 2)
        assert policy.score_of((3, 5)) == pytest.approx(0.7)
        assert (3, 5) in policy.priority_snapshot()


class TestMRSVectorizedEquivalence:
    """The numpy MRS must match the historical per-key dict version
    bit-for-bit: same priorities, same eviction order."""

    class _ReferenceMRS:
        """The pre-vectorization implementation, kept as the oracle."""

        def __init__(self, alpha, top_p):
            self.alpha, self.top_p = alpha, top_p
            self._scores: dict[tuple[int, int], float] = {}
            self._last_used: dict[tuple[int, int], int] = {}

        def on_insert(self, key, now):
            self._scores.setdefault(key, 0.0)
            self._last_used[key] = now

        def on_access(self, key, now):
            self._last_used[key] = now

        def on_scores(self, layer, scores, now):
            scores = np.asarray(scores, dtype=np.float64)
            p = min(self.top_p, scores.size)
            top = set(int(i) for i in np.argsort(-scores, kind="stable")[:p])
            for expert in range(scores.size):
                previous = self._scores.get((layer, expert), 0.0)
                contribution = float(scores[expert]) if expert in top else 0.0
                self._scores[(layer, expert)] = (
                    self.alpha * contribution + (1.0 - self.alpha) * previous
                )

        def victim(self, candidates):
            return min(
                candidates,
                key=lambda k: (
                    self._scores.get(k, 0.0),
                    self._last_used.get(k, -1),
                    k,
                ),
            )

        def priority(self, key):
            return self._scores.get(key, 0.0)

        def forget(self, key):
            self._last_used.pop(key, None)

    @pytest.mark.parametrize("alpha,top_p", [(0.3, 2), (0.7, 4), (1.0, 1)])
    def test_identical_eviction_order(self, alpha, top_p):
        import random

        rng = random.Random(42)
        nprng = np.random.default_rng(42)
        policy = MRSPolicy(alpha=alpha, top_p=top_p)
        reference = self._ReferenceMRS(alpha, top_p)
        resident: set[tuple[int, int]] = set()
        evictions_new: list[tuple[int, int]] = []
        evictions_ref: list[tuple[int, int]] = []
        for clock in range(1, 300):
            roll = rng.random()
            if roll < 0.3:
                key = (rng.randint(0, 2), rng.randint(0, 9))
                policy.on_insert(key, clock)
                reference.on_insert(key, clock)
                resident.add(key)
            elif roll < 0.45 and resident:
                key = rng.choice(sorted(resident))
                policy.on_access(key, clock)
                reference.on_access(key, clock)
            elif roll < 0.8:
                layer = rng.randint(0, 2)
                scores = nprng.random(rng.choice([6, 8, 10]))
                policy.on_scores(layer, scores, clock)
                reference.on_scores(layer, scores, clock)
            elif len(resident) > 2:
                candidates = sorted(resident)
                victim_new = policy.victim(candidates)
                victim_ref = reference.victim(candidates)
                evictions_new.append(victim_new)
                evictions_ref.append(victim_ref)
                assert policy.priority(victim_new) == reference.priority(victim_ref)
                policy.forget(victim_new)
                reference.forget(victim_ref)
                resident.discard(victim_new)
        assert evictions_new == evictions_ref
        assert len(evictions_new) > 10
        for key in sorted(resident):
            assert policy.priority(key) == reference.priority(key)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LRUPolicy), ("lfu", LFUPolicy), ("mrs", MRSPolicy)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_kwargs_forwarded(self):
        policy = make_policy("mrs", alpha=0.9, top_p=7)
        assert policy.alpha == 0.9 and policy.top_p == 7

    def test_unknown_policy(self):
        with pytest.raises(CacheError):
            make_policy("belady")
