"""Eviction-policy semantics: LRU, LFU and MRS."""

import numpy as np
import pytest

from repro.cache.base import make_policy
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.mrs import MRSPolicy
from repro.errors import CacheError


class TestLRU:
    def test_evicts_least_recently_used(self):
        policy = LRUPolicy()
        policy.on_insert((0, 0), 1)
        policy.on_insert((0, 1), 2)
        policy.on_access((0, 0), 3)
        assert policy.victim([(0, 0), (0, 1)]) == (0, 1)

    def test_access_unknown_key_raises(self):
        with pytest.raises(CacheError):
            LRUPolicy().on_access((0, 0), 1)

    def test_empty_candidates_raise(self):
        with pytest.raises(CacheError):
            LRUPolicy().victim([])

    def test_forget_then_reinsert(self):
        policy = LRUPolicy()
        policy.on_insert((0, 0), 1)
        policy.forget((0, 0))
        policy.on_insert((0, 0), 5)
        assert policy.priority((0, 0)) == 5.0

    def test_deterministic_tie_break(self):
        policy = LRUPolicy()
        policy.on_insert((0, 1), 1)
        policy.on_insert((0, 0), 1)
        assert policy.victim([(0, 1), (0, 0)]) == (0, 0)


class TestLFU:
    def test_evicts_least_frequent(self):
        policy = LFUPolicy()
        for key in [(0, 0), (0, 1)]:
            policy.on_insert(key, 1)
        policy.on_access((0, 0), 2)
        policy.on_access((0, 0), 3)
        policy.on_access((0, 1), 4)
        assert policy.victim([(0, 0), (0, 1)]) == (0, 1)

    def test_counts_survive_eviction(self):
        policy = LFUPolicy()
        policy.on_insert((0, 0), 1)
        policy.on_access((0, 0), 2)
        policy.forget((0, 0))
        assert policy.priority((0, 0)) == 1.0

    def test_recency_breaks_count_ties(self):
        policy = LFUPolicy()
        policy.on_insert((0, 0), 1)
        policy.on_insert((0, 1), 2)
        assert policy.victim([(0, 0), (0, 1)]) == (0, 0)


class TestMRS:
    def test_eq3_update(self):
        """S <- alpha * TopP(s) + (1 - alpha) * S, exactly."""
        policy = MRSPolicy(alpha=0.5, top_p=2)
        scores = np.array([0.5, 0.3, 0.15, 0.05])
        policy.on_scores(0, scores, 1)
        assert policy.score_of((0, 0)) == pytest.approx(0.25)
        assert policy.score_of((0, 1)) == pytest.approx(0.15)
        # Outside top-p: pure decay from zero stays zero.
        assert policy.score_of((0, 2)) == 0.0
        policy.on_scores(0, scores, 2)
        assert policy.score_of((0, 0)) == pytest.approx(0.5 * 0.5 + 0.5 * 0.25)

    def test_non_top_p_decays(self):
        policy = MRSPolicy(alpha=0.5, top_p=1)
        policy.on_scores(0, np.array([0.9, 0.1]), 1)
        policy.on_scores(0, np.array([0.1, 0.9]), 2)
        # Expert 0 was top once then decayed.
        assert policy.score_of((0, 0)) == pytest.approx(0.5 * 0.45)

    def test_victim_is_min_score(self):
        policy = MRSPolicy(alpha=1.0, top_p=4)
        policy.on_scores(0, np.array([0.4, 0.3, 0.2, 0.1]), 1)
        for expert in range(4):
            policy.on_insert((0, expert), 2)
        assert policy.victim([(0, e) for e in range(4)]) == (0, 3)

    def test_scores_persist_across_eviction(self):
        policy = MRSPolicy(alpha=1.0, top_p=2)
        policy.on_scores(0, np.array([0.7, 0.3]), 1)
        policy.on_insert((0, 0), 2)
        policy.forget((0, 0))
        assert policy.score_of((0, 0)) == pytest.approx(0.7)

    def test_top_p_clamped_to_pool(self):
        policy = MRSPolicy(alpha=1.0, top_p=10)
        policy.on_scores(0, np.array([0.6, 0.4]), 1)
        assert policy.score_of((0, 1)) == pytest.approx(0.4)

    def test_invalid_params(self):
        with pytest.raises(CacheError):
            MRSPolicy(alpha=0.0)
        with pytest.raises(CacheError):
            MRSPolicy(alpha=1.5)
        with pytest.raises(CacheError):
            MRSPolicy(top_p=0)

    def test_scores_must_be_1d(self):
        with pytest.raises(CacheError):
            MRSPolicy().on_scores(0, np.ones((2, 2)), 1)

    def test_layers_tracked_independently(self):
        policy = MRSPolicy(alpha=1.0, top_p=1)
        policy.on_scores(0, np.array([0.9, 0.1]), 1)
        policy.on_scores(1, np.array([0.2, 0.8]), 2)
        assert policy.score_of((0, 0)) == pytest.approx(0.9)
        assert policy.score_of((1, 1)) == pytest.approx(0.8)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LRUPolicy), ("lfu", LFUPolicy), ("mrs", MRSPolicy)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_kwargs_forwarded(self):
        policy = make_policy("mrs", alpha=0.9, top_p=7)
        assert policy.alpha == 0.9 and policy.top_p == 7

    def test_unknown_policy(self):
        with pytest.raises(CacheError):
            make_policy("belady")
