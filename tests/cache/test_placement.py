"""Expert-placement policies: routing, stickiness, determinism."""

import pytest

from repro.cache.placement import (
    LayerStripedPlacement,
    LoadAwarePlacement,
    RoundRobinPlacement,
    available_placements,
    make_placement,
)
from repro.errors import CacheError


class TestStaticPlacements:
    def test_round_robin_stripes_by_expert(self):
        placement = RoundRobinPlacement(4)
        assert placement.assign((0, 0), [0, 0, 0, 0]) == 0
        assert placement.assign((3, 5), [0, 0, 0, 0]) == 1
        assert placement.assign((7, 11), [9, 9, 9, 9]) == 3

    def test_layer_striped_keeps_layers_together(self):
        placement = LayerStripedPlacement(3)
        for expert in range(8):
            assert placement.assign((4, expert), [0, 0, 0]) == 1

    def test_static_placements_ignore_occupancy(self):
        placement = RoundRobinPlacement(2)
        assert placement.assign((0, 3), [100, 0]) == 1

    def test_all_devices_reachable(self):
        for name in available_placements():
            placement = make_placement(name, 4)
            occupancy = [0, 0, 0, 0]
            devices = set()
            for layer in range(8):
                for expert in range(8):
                    device = placement.assign((layer, expert), occupancy)
                    occupancy[device] += 1
                    devices.add(device)
            assert devices == {0, 1, 2, 3}, name


class TestLoadAwarePlacement:
    def test_picks_least_loaded(self):
        placement = LoadAwarePlacement(3)
        assert placement.assign((0, 0), [4, 2, 7]) == 1

    def test_tie_breaks_to_lowest_device(self):
        placement = LoadAwarePlacement(3)
        assert placement.assign((0, 0), [2, 2, 2]) == 0

    def test_assignment_is_sticky(self):
        placement = LoadAwarePlacement(2)
        first = placement.assign((0, 0), [0, 5])
        assert first == 0
        # Occupancy flipped — the key keeps its original home.
        assert placement.assign((0, 0), [50, 0]) == 0
        assert placement.assignments == {(0, 0): 0}

    def test_occupancy_arity_checked(self):
        placement = LoadAwarePlacement(3)
        with pytest.raises(CacheError):
            placement.assign((0, 0), [1, 2])

    def test_deterministic_across_instances(self):
        """Identical (key, occupancy) sequences → identical assignments."""
        sequence = [((layer, expert), [layer, expert, 0, 1]) for layer in range(6) for expert in range(6)]
        a = LoadAwarePlacement(4)
        b = LoadAwarePlacement(4)
        for key, occupancy in sequence:
            assert a.assign(key, occupancy) == b.assign(key, occupancy)
        assert a.assignments == b.assignments

    def test_preview_does_not_commit(self):
        placement = LoadAwarePlacement(2)
        assert placement.preview((0, 0), [3, 1]) == 1
        assert placement.assignments == {}
        # A later commit is free to land elsewhere.
        assert placement.assign((0, 0), [0, 5]) == 0

    def test_spreads_under_constant_occupancy(self):
        """Capacity-0 shards: occupancy never moves, assignment counts
        must still spread new keys across the fleet."""
        placement = LoadAwarePlacement(3)
        devices = [placement.assign((0, e), [2, 2, 2]) for e in range(6)]
        assert devices == [0, 1, 2, 0, 1, 2]


class TestFactory:
    def test_known_names(self):
        assert available_placements() == [
            "layer_striped",
            "load_aware",
            "round_robin",
        ]
        for name in available_placements():
            assert make_placement(name, 2).name == name

    def test_unknown_name(self):
        with pytest.raises(CacheError):
            make_placement("random", 2)

    def test_device_count_validated(self):
        with pytest.raises(CacheError):
            make_placement("round_robin", 0)
