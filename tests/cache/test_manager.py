"""ExpertCache capacity, pinning, locking and admission control."""

import numpy as np
import pytest

from repro.cache.lru import LRUPolicy
from repro.cache.manager import ExpertCache
from repro.cache.mrs import MRSPolicy
from repro.errors import CacheError


def _cache(capacity=2, pinned=()):
    return ExpertCache(capacity, LRUPolicy(), pinned=pinned)


class TestBasics:
    def test_insert_and_contains(self):
        cache = _cache()
        cache.insert((0, 0))
        assert (0, 0) in cache
        assert len(cache) == 1

    def test_insert_duplicate_noop(self):
        cache = _cache()
        cache.insert((0, 0))
        assert cache.insert((0, 0)) == []
        assert cache.stats.insertions == 1

    def test_eviction_at_capacity(self):
        cache = _cache(capacity=2)
        cache.insert((0, 0))
        cache.insert((0, 1))
        evicted = cache.insert((0, 2))
        assert evicted == [(0, 0)]
        assert len(cache) == 2

    def test_zero_capacity_rejects(self):
        cache = _cache(capacity=0)
        assert cache.insert((0, 0)) == []
        assert cache.stats.rejected_inserts == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            _cache(capacity=-1)

    def test_access_hit_miss_accounting(self):
        cache = _cache()
        cache.insert((0, 0))
        assert cache.access((0, 0)) is True
        assert cache.access((0, 1)) is False
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_miss_does_not_auto_insert(self):
        cache = _cache()
        cache.access((0, 5))
        assert (0, 5) not in cache

    def test_cached_experts_of_layer(self):
        cache = _cache(capacity=4)
        cache.insert((0, 1))
        cache.insert((1, 2))
        cache.insert((0, 3))
        assert cache.cached_experts_of_layer(0) == {1, 3}


class TestPinning:
    def test_pinned_always_resident(self):
        cache = _cache(capacity=1, pinned=[(0, 9)])
        assert (0, 9) in cache
        cache.insert((0, 0))
        cache.insert((0, 1))  # evicts (0,0), never (0,9)
        assert (0, 9) in cache

    def test_pinned_outside_capacity_budget(self):
        cache = _cache(capacity=1, pinned=[(0, 9)])
        cache.insert((0, 0))
        assert len(cache) == 2
        cache.validate()

    def test_insert_pinned_is_noop(self):
        cache = _cache(capacity=1, pinned=[(0, 9)])
        assert cache.insert((0, 9)) == []


class TestLocking:
    def test_locked_keys_not_evicted(self):
        cache = _cache(capacity=2)
        cache.insert((0, 0))
        cache.insert((0, 1))
        cache.lock([(0, 0)])
        evicted = cache.insert((0, 2))
        assert (0, 0) not in evicted
        cache.unlock_all()

    def test_all_locked_rejects_insert(self):
        cache = _cache(capacity=1)
        cache.insert((0, 0))
        cache.lock([(0, 0)])
        assert cache.insert((0, 1)) == []
        assert cache.stats.rejected_inserts == 1


class TestWarmFill:
    def test_fills_to_capacity_in_order(self):
        cache = _cache(capacity=2)
        cache.warm_fill([(0, 0), (0, 1), (0, 2)])
        assert (0, 0) in cache and (0, 1) in cache and (0, 2) not in cache

    def test_skips_already_resident(self):
        cache = _cache(capacity=2)
        cache.insert((0, 1))
        cache.warm_fill([(0, 1), (0, 2)])
        assert len(cache) == 2


class TestAdmissionControl:
    def _mrs_cache(self):
        policy = MRSPolicy(alpha=1.0, top_p=4)
        policy.on_scores(0, np.array([0.5, 0.3, 0.15, 0.05]), 1)
        cache = ExpertCache(2, policy)
        cache.insert((0, 0))
        cache.insert((0, 1))
        return cache

    def test_lower_priority_rejected(self):
        cache = self._mrs_cache()
        assert not cache.would_admit((0, 3))
        assert cache.insert_if_better((0, 3)) == []
        assert (0, 3) not in cache

    def test_higher_priority_admitted(self):
        policy = MRSPolicy(alpha=1.0, top_p=4)
        policy.on_scores(0, np.array([0.05, 0.15, 0.3, 0.5]), 1)
        cache = ExpertCache(2, policy)
        cache.insert((0, 0))
        cache.insert((0, 1))
        assert cache.would_admit((0, 3))
        evicted = cache.insert_if_better((0, 3))
        assert evicted == [(0, 0)]
        assert (0, 3) in cache

    def test_free_slots_always_admit(self):
        policy = MRSPolicy(alpha=1.0, top_p=4)
        cache = ExpertCache(2, policy)
        assert cache.would_admit((0, 3))

    def test_margin_blocks_marginal_wins(self):
        policy = MRSPolicy(alpha=1.0, top_p=4)
        policy.on_scores(0, np.array([0.30, 0.28, 0.22, 0.20]), 1)
        cache = ExpertCache(1, policy)
        cache.insert((0, 1))  # S = 0.28
        assert cache.would_admit((0, 0), margin=0.0)  # 0.30 > 0.28
        assert not cache.would_admit((0, 0), margin=0.25)

    def test_resident_key_never_admitted(self):
        cache = self._mrs_cache()
        assert not cache.would_admit((0, 0))


class TestValidation:
    def test_validate_detects_overflow(self):
        cache = _cache(capacity=1)
        cache._resident.add((0, 0))
        cache._resident.add((0, 1))
        with pytest.raises(CacheError):
            cache.validate()

    def test_evict_explicit(self):
        cache = _cache()
        cache.insert((0, 0))
        cache.evict_explicit((0, 0))
        assert (0, 0) not in cache
        with pytest.raises(CacheError):
            cache.evict_explicit((0, 0))

    def test_observe_scores_reaches_policy(self):
        policy = MRSPolicy(alpha=1.0, top_p=2)
        cache = ExpertCache(2, policy)
        cache.observe_scores(0, np.array([0.8, 0.2]))
        assert policy.score_of((0, 0)) == pytest.approx(0.8)
