"""Arrival processes: Poisson determinism, trace validation, serving traces."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.generator import (
    DEFAULT_PRIORITY,
    ArrivedWorkload,
    WorkloadSpec,
    chat_serving_workload,
    poisson_arrivals,
    priority_assignment,
    serving_workload,
    trace_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic_under_seed(self):
        np.testing.assert_array_equal(
            poisson_arrivals(10, rate=4.0, seed=3), poisson_arrivals(10, rate=4.0, seed=3)
        )

    def test_seed_changes_trace(self):
        assert not np.array_equal(
            poisson_arrivals(10, rate=4.0, seed=0), poisson_arrivals(10, rate=4.0, seed=1)
        )

    def test_monotone_nonnegative(self):
        times = poisson_arrivals(50, rate=2.0, seed=0)
        assert times[0] >= 0.0
        assert np.all(np.diff(times) >= 0.0)

    def test_mean_gap_tracks_rate(self):
        times = poisson_arrivals(4000, rate=5.0, seed=0)
        mean_gap = float(np.diff(times).mean())
        assert mean_gap == pytest.approx(1.0 / 5.0, rel=0.1)

    def test_start_offset(self):
        assert poisson_arrivals(5, rate=1.0, seed=0, start=10.0)[0] >= 10.0

    @pytest.mark.parametrize("kwargs", [
        {"num_requests": 0, "rate": 1.0},
        {"num_requests": 4, "rate": 0.0},
        {"num_requests": 4, "rate": 1.0, "start": -1.0},
    ])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ConfigError):
            poisson_arrivals(**kwargs)


class TestTraceArrivals:
    def test_valid_trace_passthrough(self):
        np.testing.assert_array_equal(
            trace_arrivals([0.0, 0.5, 0.5, 2.0]), np.array([0.0, 0.5, 0.5, 2.0])
        )

    @pytest.mark.parametrize("trace", [[], [-1.0, 0.0], [1.0, 0.5]])
    def test_invalid_traces(self, trace):
        with pytest.raises(ConfigError):
            trace_arrivals(trace)


class TestServingWorkload:
    def test_structure_and_cycling(self):
        entries = serving_workload(num_requests=5, arrival_rate=2.0, decode_steps=7, seed=0)
        assert len(entries) == 5
        assert all(isinstance(e, ArrivedWorkload) for e in entries)
        assert all(isinstance(e.workload, WorkloadSpec) for e in entries)
        assert [e.workload.dataset for e in entries] == [
            "mtbench", "vicuna", "chatgpt-prompts", "mtbench", "vicuna",
        ]
        assert all(e.workload.decode_steps == 7 for e in entries)
        times = [e.arrival_time for e in entries]
        assert times == sorted(times)

    def test_explicit_trace(self):
        entries = serving_workload(
            num_requests=3, arrival_times=[0.0, 1.0, 4.0], decode_steps=2
        )
        assert [e.arrival_time for e in entries] == [0.0, 1.0, 4.0]

    def test_exactly_one_arrival_source(self):
        with pytest.raises(ConfigError):
            serving_workload(num_requests=2)
        with pytest.raises(ConfigError):
            serving_workload(
                num_requests=2, arrival_rate=1.0, arrival_times=[0.0, 1.0]
            )

    def test_trace_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            serving_workload(num_requests=3, arrival_times=[0.0, 1.0])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigError):
            serving_workload(num_requests=2, arrival_rate=1.0, datasets=("nope",))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigError):
            ArrivedWorkload(
                arrival_time=-0.5,
                workload=WorkloadSpec(
                    kind="decode",
                    dataset="mtbench",
                    prompt_tokens=np.arange(4),
                    decode_steps=2,
                ),
            )


class TestPriorityAssignment:
    def test_default_is_single_class(self):
        assert priority_assignment(5, None) == [DEFAULT_PRIORITY] * 5

    def test_deterministic_under_seed(self):
        mix = {"interactive": 0.3, "batch": 0.7}
        assert priority_assignment(50, mix, seed=1) == priority_assignment(
            50, mix, seed=1
        )

    def test_mix_fractions_tracked(self):
        mix = {"interactive": 0.25, "batch": 0.75}
        classes = priority_assignment(4000, mix, seed=0)
        fraction = classes.count("interactive") / len(classes)
        assert fraction == pytest.approx(0.25, abs=0.03)

    def test_degenerate_mix(self):
        assert priority_assignment(4, {"interactive": 1.0}) == ["interactive"] * 4

    @pytest.mark.parametrize(
        "mix",
        [
            {},
            {"urgent": 1.0},
            {"interactive": 0.5, "batch": 0.6},
            {"interactive": -0.5, "batch": 1.5},
        ],
    )
    def test_invalid_mix_rejected(self, mix):
        with pytest.raises(ConfigError):
            priority_assignment(4, mix)

    def test_serving_workload_stamps_classes_and_deadlines(self):
        entries = serving_workload(
            num_requests=40,
            arrival_rate=4.0,
            decode_steps=2,
            seed=0,
            priority_mix={"interactive": 0.5, "batch": 0.5},
            class_deadlines={"interactive": 0.25},
        )
        classes = {e.priority for e in entries}
        assert classes == {"interactive", "batch"}
        for entry in entries:
            if entry.priority == "interactive":
                assert entry.tbt_deadline == 0.25
            else:
                assert entry.tbt_deadline is None

    def test_unknown_deadline_class_rejected(self):
        with pytest.raises(ConfigError):
            serving_workload(
                num_requests=2,
                arrival_rate=1.0,
                class_deadlines={"urgent": 0.1},
            )

    def test_bad_deadline_rejected(self):
        with pytest.raises(ConfigError):
            ArrivedWorkload(
                arrival_time=0.0,
                workload=WorkloadSpec(
                    kind="decode",
                    dataset="mtbench",
                    prompt_tokens=np.arange(4),
                    decode_steps=2,
                ),
                tbt_deadline=0.0,
            )


class TestChatServingWorkload:
    def _sessions(self, entries):
        """Group entries back into sessions by matching prompt prefixes."""
        from collections import defaultdict

        sessions = defaultdict(list)
        for entry in sorted(entries, key=lambda e: len(e.workload.prompt_tokens)):
            for key, turns_so_far in sessions.items():
                last = turns_so_far[-1].workload.prompt_tokens
                current = entry.workload.prompt_tokens
                if len(current) > len(last) and np.array_equal(
                    current[: len(last)], last
                ):
                    turns_so_far.append(entry)
                    break
            else:
                sessions[len(sessions)] = [entry]
        return sessions

    def test_turn_count_and_global_sort(self):
        entries = chat_serving_workload(num_sessions=3, turns_per_session=4, seed=0)
        assert len(entries) == 12
        arrivals = [e.arrival_time for e in entries]
        assert arrivals == sorted(arrivals)

    def test_turns_share_full_prompt_prefix(self):
        entries = chat_serving_workload(num_sessions=2, turns_per_session=3, seed=0)
        sessions = self._sessions(entries)
        assert len(sessions) == 2
        assert all(len(turns) == 3 for turns in sessions.values())

    def test_context_grows_by_one_exchange_per_turn(self):
        entries = chat_serving_workload(
            num_sessions=1,
            turns_per_session=3,
            user_tokens=5,
            decode_steps=4,
            seed=0,
        )
        lengths = sorted(len(e.workload.prompt_tokens) for e in entries)
        assert lengths[1] - lengths[0] == 9  # decode_steps + user_tokens
        assert lengths[2] - lengths[1] == 9

    def test_deterministic_under_seed(self):
        a = chat_serving_workload(num_sessions=2, seed=3)
        b = chat_serving_workload(num_sessions=2, seed=3)
        assert [e.arrival_time for e in a] == [e.arrival_time for e in b]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(
                x.workload.prompt_tokens, y.workload.prompt_tokens
            )

    def test_seed_changes_trace(self):
        a = chat_serving_workload(num_sessions=2, seed=0)
        b = chat_serving_workload(num_sessions=2, seed=1)
        assert [e.arrival_time for e in a] != [e.arrival_time for e in b]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sessions": 0},
            {"turns_per_session": 0},
            {"think_time_s": 0.0},
            {"user_tokens": 0},
            {"decode_steps": -1},
            {"dataset": "nope"},
        ],
    )
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ConfigError):
            chat_serving_workload(**kwargs)
