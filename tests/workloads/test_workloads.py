"""Workload samplers: determinism, bounds, dataset profiles."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.datasets import (
    DATASET_PROFILES,
    PREFILL_BUCKETS,
    bucket_length,
    sample_prompt,
    sample_prompt_length,
)
from repro.workloads.generator import WorkloadSpec, decode_workload, prefill_workloads


class TestDatasetProfiles:
    def test_buckets_match_paper(self):
        assert PREFILL_BUCKETS == (32, 128, 512, 1024)

    def test_three_datasets(self):
        assert set(DATASET_PROFILES) == {"mtbench", "vicuna", "chatgpt-prompts"}

    @pytest.mark.parametrize("dataset", sorted(DATASET_PROFILES))
    def test_lengths_within_bounds(self, dataset):
        profile = DATASET_PROFILES[dataset]
        for index in range(50):
            length = sample_prompt_length(dataset, seed=0, index=index)
            assert profile.min_tokens <= length <= profile.max_tokens

    def test_deterministic_by_seed_and_index(self):
        a = sample_prompt_length("mtbench", seed=1, index=3)
        b = sample_prompt_length("mtbench", seed=1, index=3)
        c = sample_prompt_length("mtbench", seed=1, index=4)
        assert a == b
        assert isinstance(c, int)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            sample_prompt_length("sharegpt")

    def test_chatgpt_longer_than_vicuna_on_average(self):
        chatgpt = np.mean(
            [sample_prompt_length("chatgpt-prompts", 0, i) for i in range(100)]
        )
        vicuna = np.mean([sample_prompt_length("vicuna", 0, i) for i in range(100)])
        assert chatgpt > vicuna


class TestBucketLength:
    @pytest.mark.parametrize("bucket", PREFILL_BUCKETS)
    def test_within_jitter(self, bucket):
        for index in range(20):
            length = bucket_length(bucket, seed=0, index=index, jitter=0.1)
            assert 0.89 * bucket <= length <= 1.11 * bucket

    def test_invalid_bucket(self):
        with pytest.raises(ConfigError):
            bucket_length(0)

    def test_invalid_jitter(self):
        with pytest.raises(ConfigError):
            bucket_length(32, jitter=1.0)


class TestSamplePrompt:
    def test_tokens_in_vocab(self):
        tokens = sample_prompt("mtbench", vocab_size=64, seed=0)
        assert ((0 <= tokens) & (tokens < 64)).all()

    def test_explicit_length(self):
        tokens = sample_prompt("mtbench", vocab_size=64, length=17)
        assert tokens.size == 17

    def test_invalid_vocab(self):
        with pytest.raises(ConfigError):
            sample_prompt("mtbench", vocab_size=1)

    def test_invalid_length(self):
        with pytest.raises(ConfigError):
            sample_prompt("mtbench", vocab_size=64, length=0)


class TestGenerators:
    def test_prefill_workloads_cycle_datasets(self):
        specs = prefill_workloads(32, n_samples=3, seed=0)
        assert [s.dataset for s in specs] == [
            "mtbench",
            "vicuna",
            "chatgpt-prompts",
        ]
        for spec in specs:
            assert spec.kind == "prefill"
            assert spec.bucket == 32
            assert spec.decode_steps == 0

    def test_prefill_invalid_samples(self):
        with pytest.raises(ConfigError):
            prefill_workloads(32, n_samples=0)

    def test_prefill_unknown_dataset(self):
        with pytest.raises(ConfigError):
            prefill_workloads(32, datasets=("imagenet",))

    def test_decode_workload_defaults(self):
        spec = decode_workload(16, seed=0)
        assert spec.kind == "decode"
        assert spec.dataset == "chatgpt-prompts"
        assert spec.decode_steps == 16
        assert spec.prompt_len > 0

    def test_decode_invalid_steps(self):
        with pytest.raises(ConfigError):
            decode_workload(0)

    def test_workload_spec_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec("train", "mtbench", np.arange(4), 0)
        with pytest.raises(ConfigError):
            WorkloadSpec("decode", "mtbench", np.arange(4), -1)
