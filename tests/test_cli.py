"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "gpt5"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mixtral" in out and "hybrimoe" in out

    def test_run(self, capsys):
        code = main(
            [
                "run",
                "--model",
                "deepseek",
                "--num-layers",
                "2",
                "--prompt-len",
                "8",
                "--decode-steps",
                "2",
            ]
        )
        assert code == 0
        assert "ttft" in capsys.readouterr().out

    def test_compare_decode(self, capsys):
        code = main(
            [
                "compare",
                "--model",
                "deepseek",
                "--num-layers",
                "2",
                "--decode-steps",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hybrimoe" in out and "llamacpp" in out

    def test_figure_fig3e(self, capsys):
        assert main(["figure", "fig3e"]) == 0
        assert "cpu_time_s" in capsys.readouterr().out
