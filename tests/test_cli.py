"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "gpt5"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mixtral" in out and "hybrimoe" in out

    def test_run(self, capsys):
        code = main(
            [
                "run",
                "--model",
                "deepseek",
                "--num-layers",
                "2",
                "--prompt-len",
                "8",
                "--decode-steps",
                "2",
            ]
        )
        assert code == 0
        assert "ttft" in capsys.readouterr().out

    def test_compare_decode(self, capsys):
        code = main(
            [
                "compare",
                "--model",
                "deepseek",
                "--num-layers",
                "2",
                "--decode-steps",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hybrimoe" in out and "llamacpp" in out

    def test_figure_fig3e(self, capsys):
        assert main(["figure", "fig3e"]) == 0
        assert "cpu_time_s" in capsys.readouterr().out

    def test_serve(self, capsys):
        code = main(
            [
                "serve",
                "--num-requests",
                "3",
                "--arrival-rate",
                "20",
                "--decode-steps",
                "2",
                "--num-layers",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving report" in out and "aggregate" in out
        # Single class: no per-class SLO table.
        assert "per-class SLO" not in out

    def test_serve_slo_flags(self, capsys):
        code = main(
            [
                "serve",
                "--num-requests",
                "4",
                "--arrival-rate",
                "40",
                "--decode-steps",
                "2",
                "--num-layers",
                "2",
                "--priority-mix",
                "interactive=0.5,batch=0.5",
                "--prefill-chunk",
                "32",
                "--preempt",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-class SLO" in out
        assert "chunk=32" in out and "preemption" in out

    def test_serve_multi_gpu_multi_class_tables(self, capsys):
        """2-GPU, 2-class smoke: the per-device cache table and the
        per-class SLO table must both render (previously only exercised
        manually)."""
        code = main(
            [
                "serve",
                "--num-requests",
                "4",
                "--arrival-rate",
                "40",
                "--decode-steps",
                "2",
                "--num-layers",
                "2",
                "--num-gpus",
                "2",
                "--placement",
                "round_robin",
                "--priority-mix",
                "interactive=0.5,batch=0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-device cache" in out
        # One row per device, columns included.
        device_table = out.split("per-device cache", 1)[1]
        assert "hit_rate" in device_table and "evictions" in device_table
        for device in ("0", "1"):
            assert any(
                line.strip().startswith(device)
                for line in device_table.splitlines()
            )
        assert "per-class SLO" in out
        slo_table = out.split("per-class SLO", 1)[1]
        assert "interactive" in slo_table and "batch" in slo_table
        assert "2 GPUs (round_robin)" in out

    def test_serve_tiered_memory_flags(self, capsys):
        code = main(
            [
                "serve",
                "--num-requests",
                "3",
                "--arrival-rate",
                "20",
                "--decode-steps",
                "2",
                "--num-layers",
                "2",
                "--cpu-cache-capacity",
                "6",
                "--cpu-cache-policy",
                "lfu",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-tier cache" in out and "disk link:" in out
        assert "DRAM<=6 (lfu)" in out

    def test_run_tiered_memory_flags(self, capsys):
        code = main(
            [
                "run",
                "--num-layers",
                "2",
                "--prompt-len",
                "8",
                "--decode-steps",
                "2",
                "--cpu-cache-capacity",
                "4",
                "--disk-bandwidth",
                "1e9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-tier cache" in out and "disk link:" in out

    def test_run_untiered_prints_no_tier_table(self, capsys):
        code = main(
            ["run", "--num-layers", "2", "--prompt-len", "8", "--decode-steps", "1"]
        )
        assert code == 0
        assert "per-tier cache" not in capsys.readouterr().out

    @pytest.mark.parametrize(
        "mix", ["interactive", "interactive=x", "urgent=1.0", "interactive=0.5"]
    )
    def test_serve_bad_priority_mix_rejected(self, mix, capsys):
        code = main(
            [
                "serve",
                "--num-requests",
                "2",
                "--arrival-rate",
                "20",
                "--decode-steps",
                "1",
                "--num-layers",
                "2",
                "--priority-mix",
                mix,
            ]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error: ")


def _serve(*extra):
    """A minimal serve invocation plus ``extra`` args."""
    return main(
        [
            "serve",
            "--num-requests",
            "2",
            "--arrival-rate",
            "20",
            "--decode-steps",
            "1",
            "--num-layers",
            "2",
            *extra,
        ]
    )


class TestServeValidation:
    """Config mistakes exit 2 with a one-line ``error:`` message."""

    def _error(self, capsys, *extra):
        assert _serve(*extra) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1  # one line, newline-terminated
        return err

    def test_zero_replicas_rejected(self, capsys):
        err = self._error(capsys, "--replicas", "0")
        assert "--replicas must be >= 1" in err

    def test_unknown_router_rejected(self, capsys):
        err = self._error(capsys, "--replicas", "2", "--router", "wormhole")
        assert "unknown router 'wormhole'" in err
        assert "round_robin" in err  # the known names are listed

    def test_replica_faults_need_a_fleet(self, capsys):
        err = self._error(capsys, "--fault-spec", "crash:0:1.0")
        assert "--replicas > 1" in err

    def test_hardware_fault_off_replica_zero_needs_fleet(self, capsys):
        err = self._error(capsys, "--fault-spec", "disk_stall:1:1.0:0.5")
        assert "--replicas > 1" in err

    def test_retries_need_a_fleet(self, capsys):
        err = self._error(capsys, "--max-retries", "1")
        assert "--max-retries" in err

    def test_unknown_fault_kind_rejected(self, capsys):
        err = self._error(capsys, "--fault-spec", "meteor:0:1.0")
        assert "unknown fault kind 'meteor'" in err
        assert "link_degrade" in err

    def test_malformed_fault_spec_rejected(self, capsys):
        err = self._error(capsys, "--fault-spec", "crash:0")
        assert "bad --fault-spec" in err

    def test_malformed_shed_rejected(self, capsys):
        err = self._error(capsys, "--shed", "many")
        assert "bad --shed" in err


class TestServeDegraded:
    def test_serve_with_hardware_fault_and_knobs(self, capsys):
        code = _serve(
            "--fault-spec",
            "gpu_straggler:0:0.01:0.5:2.0",
            "--request-timeout",
            "30",
            "--shed",
            "50:10",
        )
        assert code == 0
        assert "aggregate" in capsys.readouterr().out

    def test_fleet_serve_with_fault_mix(self, capsys):
        code = _serve(
            "--replicas",
            "2",
            "--fault-spec",
            "slow:0:0.01:0.05,link_degrade:1:0.01:0.05:0.5",
            "--max-retries",
            "1",
            "--request-timeout",
            "30",
        )
        assert code == 0
        assert "fleet aggregate" in capsys.readouterr().out


class TestScenariosCommand:
    def test_scenarios_list_shows_registry(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "registered scenarios" in out
        assert "chat-multiturn" in out and "edge-decode" in out
        assert "skewed-fleet" in out and "fleet" in out

    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["scenarios"])


class TestSweepCommand:
    def _sweep(self, tmp_path, *extra):
        return main(
            [
                "sweep",
                "--scenarios",
                "chat-multiturn",
                "--out",
                str(tmp_path / "out"),
                "--requests",
                "2",
                "--steps",
                "2",
                *extra,
            ]
        )

    def test_sweep_writes_cells_and_merged_report(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        out = capsys.readouterr().out
        assert "[done]" in out and "sweep cells" in out
        assert (tmp_path / "out" / "sweep.json").exists()
        assert list((tmp_path / "out" / "cells").glob("*.json"))

    def test_sweep_rerun_skips_completed_cells(self, tmp_path, capsys):
        assert self._sweep(tmp_path) == 0
        capsys.readouterr()
        assert self._sweep(tmp_path) == 0
        assert "[skip]" in capsys.readouterr().out

    def test_sweep_strategy_axis(self, tmp_path, capsys):
        assert self._sweep(tmp_path, "--strategies", "hybrimoe,ondemand") == 0
        out = capsys.readouterr().out
        assert "hybrimoe" in out and "ondemand" in out

    def test_unknown_scenario_exits_2_with_one_line_error(self, tmp_path, capsys):
        code = main(
            ["sweep", "--scenarios", "nope", "--out", str(tmp_path / "out")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown scenario 'nope'")
        assert err.count("\n") == 1
        assert "chat-multiturn" in err  # the known names are listed

    def test_bad_seeds_exit_2(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--scenarios",
                "chat-multiturn",
                "--out",
                str(tmp_path / "out"),
                "--seeds",
                "one,two",
            ]
        )
        assert code == 2
        assert capsys.readouterr().err.startswith("error: bad --seeds")
