"""Property-based tests of the predictor invariants.

The prediction layer feeds speculative prefetch decisions, so its
statistical invariants are load-bearing: a transition row that does not
sum to 1 skews score mixing, a predicted expert outside the layer's
expert set would index out of bounds in the prefetcher, and any
non-determinism would break the engine's bit-identity guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.prediction import (
    ConfidenceGate,
    FrequencyPrior,
    TransitionPredictor,
    available_predictors,
    make_predictor,
)
from repro.routing.generator import generate_trace
from repro.routing.statistics import expert_transition_counts

_NUM_LAYERS = 4
_NUM_EXPERTS = 6


@st.composite
def observation_streams(draw):
    """Random forward-pass streams: per pass, one active set per layer."""
    num_passes = draw(st.integers(1, 6))
    passes = []
    for _ in range(num_passes):
        layers = []
        for _layer in range(_NUM_LAYERS):
            layers.append(
                draw(
                    st.sets(
                        st.integers(0, _NUM_EXPERTS - 1), min_size=1, max_size=3
                    )
                )
            )
        passes.append(layers)
    return passes


def _feed(predictor, passes):
    for layers in passes:
        for layer, experts in enumerate(layers):
            predictor.observe(layer, sorted(experts))


class TestTransitionMatrix:
    @given(passes=observation_streams(), distance=st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_observed_rows_sum_to_one(self, passes, distance):
        """Every observed transition row is a distribution; the rest zero."""
        predictor = TransitionPredictor(
            _NUM_LAYERS, _NUM_EXPERTS, horizon=3
        )
        _feed(predictor, passes)
        for layer in range(_NUM_LAYERS - distance):
            matrix = predictor.transition_matrix(layer, distance)
            assert matrix.shape == (_NUM_EXPERTS, _NUM_EXPERTS)
            sums = matrix.sum(axis=1)
            observed = sums > 0
            np.testing.assert_allclose(sums[observed], 1.0)
            assert (matrix[~observed] == 0.0).all()

    def test_counts_match_trace_statistics(self, tiny_model, prompt_tokens):
        """Online counts equal the batch statistics over the same trace."""
        trace = generate_trace(tiny_model, prompt_tokens, decode_steps=8, seed=3)
        predictor = TransitionPredictor(
            trace.num_layers, trace.num_experts, horizon=2
        )
        predictor.fit_trace(trace)
        for distance in (1, 2):
            batch = expert_transition_counts(trace, distance=distance)
            online = predictor._counts[distance - 1, : trace.num_layers - distance]
            np.testing.assert_array_equal(online, batch)

    def test_matrix_validates_range(self):
        predictor = TransitionPredictor(_NUM_LAYERS, _NUM_EXPERTS, horizon=2)
        with pytest.raises(ConfigError):
            predictor.transition_matrix(_NUM_LAYERS - 1, 1)
        with pytest.raises(ConfigError):
            predictor.transition_matrix(0, 3)


class TestPredictionSupport:
    @given(
        passes=observation_streams(),
        name=st.sampled_from(sorted(available_predictors())),
    )
    @settings(max_examples=60, deadline=None)
    def test_support_within_expert_set(self, passes, name):
        """Predicted scores live on the layer's expert set and sum to <= 1."""
        predictor = make_predictor(name, _NUM_LAYERS, _NUM_EXPERTS, horizon=3)
        _feed(predictor, passes)
        for layer in range(_NUM_LAYERS):
            for distance in (1, 2, 3):
                prediction = predictor.predict(layer, distance)
                if prediction is None:
                    continue
                assert prediction.scores.shape == (_NUM_EXPERTS,)
                assert (prediction.scores >= 0.0).all()
                assert prediction.scores.sum() <= 1.0 + 1e-9
                assert 0.0 <= prediction.confidence < 1.0

    @given(passes=observation_streams())
    @settings(max_examples=40, deadline=None)
    def test_frequency_support_is_observed_experts(self, passes):
        """FrequencyPrior only scores experts actually seen at the layer."""
        predictor = FrequencyPrior(_NUM_LAYERS, _NUM_EXPERTS, horizon=2)
        _feed(predictor, passes)
        seen = [set() for _ in range(_NUM_LAYERS)]
        for layers in passes:
            for layer, experts in enumerate(layers):
                seen[layer] |= experts
        for layer in range(_NUM_LAYERS - 1):
            prediction = predictor.predict(layer, 1)
            if prediction is None:
                continue
            support = set(np.flatnonzero(prediction.scores > 0))
            assert support <= seen[layer + 1]


class TestConfidence:
    def test_monotone_in_observation_count(self):
        """Repeating a consistent stream never lowers confidence."""
        predictor = TransitionPredictor(_NUM_LAYERS, _NUM_EXPERTS, horizon=2)
        stream = [[{0, 1}, {2, 3}, {4, 5}, {0, 2}]]
        last = 0.0
        for _ in range(12):
            _feed(predictor, stream)
            confidence = predictor.confidence(0, 1)
            assert confidence >= last - 1e-12
            last = confidence
        # A perfectly repeating pattern earns confidence strictly > 0...
        assert last > 0.0
        # ...but calibrated confidence is always strictly below 1.
        assert last < 1.0

    @given(passes=observation_streams())
    @settings(max_examples=40, deadline=None)
    def test_confidence_bounded(self, passes):
        predictor = FrequencyPrior(_NUM_LAYERS, _NUM_EXPERTS, horizon=3)
        _feed(predictor, passes)
        for layer in range(_NUM_LAYERS):
            for distance in range(1, 4):
                assert 0.0 <= predictor.confidence(layer, distance) < 1.0


class TestDeterminism:
    @given(
        passes=observation_streams(),
        name=st.sampled_from(sorted(available_predictors())),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_streams_identical_predictions(self, passes, name):
        """Prediction is a pure function of the observation stream."""
        a = make_predictor(name, _NUM_LAYERS, _NUM_EXPERTS, horizon=3)
        b = make_predictor(name, _NUM_LAYERS, _NUM_EXPERTS, horizon=3)
        _feed(a, passes)
        _feed(b, passes)
        for layer in range(_NUM_LAYERS):
            for distance in (1, 2, 3):
                pa, pb = a.predict(layer, distance), b.predict(layer, distance)
                assert (pa is None) == (pb is None)
                if pa is not None:
                    assert pa.confidence == pb.confidence
                    np.testing.assert_array_equal(pa.scores, pb.scores)


class TestConstruction:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown predictor"):
            make_predictor("oracle", _NUM_LAYERS, _NUM_EXPERTS)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_layers": 0},
            {"num_experts": 0},
            {"horizon": 0},
            {"obs_prior": 0.0},
            {"accuracy_beta": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        full = {"num_layers": _NUM_LAYERS, "num_experts": _NUM_EXPERTS}
        full.update(kwargs)
        with pytest.raises(ConfigError):
            FrequencyPrior(**full)

    def test_observe_rejects_out_of_range_layer(self):
        predictor = FrequencyPrior(_NUM_LAYERS, _NUM_EXPERTS)
        with pytest.raises(ConfigError):
            predictor.observe(_NUM_LAYERS, [0])


class TestConfidenceGate:
    def test_threshold_one_never_fires(self):
        """The bit-identity oracle: confidence < 1 so gate 1.0 is inert."""
        predictor = TransitionPredictor(_NUM_LAYERS, _NUM_EXPERTS, horizon=2)
        gate = ConfidenceGate(predictor, threshold=1.0)
        stream = [[{0, 1}, {2, 3}, {4, 5}, {0, 2}]]
        for _ in range(20):
            for layers in stream:
                for layer, experts in enumerate(layers):
                    gate.observe(layer, sorted(experts))
        heuristic = np.full(_NUM_EXPERTS, 1.0 / _NUM_EXPERTS)
        for layer in range(_NUM_LAYERS):
            for distance in (1, 2):
                scores, confidence = gate.advise(layer, distance, heuristic)
                assert confidence is None
                assert scores is heuristic  # byte-unchanged passthrough
            assert gate.confident_depth(layer) == 0

    def test_low_threshold_fires_and_mixes(self):
        predictor = TransitionPredictor(_NUM_LAYERS, _NUM_EXPERTS, horizon=2)
        gate = ConfidenceGate(predictor, threshold=0.05, blend=0.5)
        stream = [[{0, 1}, {2, 3}, {4, 5}, {0, 2}]]
        for _ in range(30):
            for layers in stream:
                for layer, experts in enumerate(layers):
                    gate.observe(layer, sorted(experts))
        heuristic = np.full(_NUM_EXPERTS, 1.0 / _NUM_EXPERTS)
        scores, confidence = gate.advise(0, 1, heuristic)
        assert confidence is not None and confidence >= 0.05
        assert scores is not heuristic
        assert scores.sum() == pytest.approx(1.0)
        # Layer 1's repeating actives are {2, 3}: mixing shifts mass there.
        assert scores[2] > heuristic[2] and scores[3] > heuristic[3]
        assert gate.confident_depth(0) >= 1

    def test_promotion_margin_shrinks_with_confidence(self):
        predictor = FrequencyPrior(_NUM_LAYERS, _NUM_EXPERTS)
        gate = ConfidenceGate(predictor, threshold=0.5)
        assert gate.promotion_margin(0.25, 0.0) == pytest.approx(0.25)
        assert gate.promotion_margin(0.25, 1.0) == pytest.approx(0.0)
        assert gate.promotion_margin(0.25, 0.6) == pytest.approx(0.1)

    def test_invalid_gate_parameters_rejected(self):
        predictor = FrequencyPrior(_NUM_LAYERS, _NUM_EXPERTS)
        with pytest.raises(ConfigError):
            ConfidenceGate(predictor, threshold=1.5)
        with pytest.raises(ConfigError):
            ConfidenceGate(predictor, blend=-0.1)
