"""ScenarioSpec: round-trips, overrides, execution equivalence."""

import json

import pytest

from repro.engine.factory import make_serving_engine
from repro.errors import ConfigError
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    ServingSpec,
    WorkloadRecipe,
    get_scenario,
)


def _tiny(name="tiny", **fleet_kwargs):
    return ScenarioSpec(
        name=name,
        workload=WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 3, "arrival_rate": 4.0, "decode_steps": 2},
        ),
        fleet=FleetSpec(
            serving=ServingSpec(engine=EngineSpec(cache_ratio=0.4, num_layers=2)),
            replicas=1,
            **fleet_kwargs,
        ),
        seeds=(0, 1),
    )


class TestScenarioSpec:
    def test_roundtrip_through_json(self):
        spec = _tiny()
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data) == spec

    @pytest.mark.parametrize("name", BUILTIN_SCENARIOS)
    def test_builtin_roundtrips(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @pytest.mark.parametrize("bad", ["", "Has Spaces", "UPPER", "-leading", "a/b"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ConfigError, match="scenario name"):
            _tiny(name=bad)

    def test_seeds_must_be_unique_and_nonempty(self):
        base = _tiny()
        with pytest.raises(ConfigError, match="must not be empty"):
            ScenarioSpec(name="x", workload=base.workload, seeds=())
        with pytest.raises(ConfigError, match="duplicates"):
            ScenarioSpec(name="x", workload=base.workload, seeds=(1, 1))

    def test_from_dict_rejects_unknown_keys(self):
        data = _tiny().to_dict()
        data["extra"] = 1
        with pytest.raises(ConfigError, match="unknown ScenarioSpec keys"):
            ScenarioSpec.from_dict(data)

    def test_views(self):
        spec = _tiny()
        assert spec.kind == "serving"
        assert spec.strategy == "hybrimoe"
        assert spec.hardware == "paper"
        assert get_scenario("skewed-fleet").kind == "fleet"

    def test_with_overrides_strategy_hardware(self):
        spec = _tiny().with_overrides(strategy="ondemand", hardware="edge")
        assert spec.strategy == "ondemand"
        assert spec.hardware == "edge"
        # untouched axes survive
        assert spec.fleet.engine.cache_ratio == 0.4

    def test_with_overrides_seed_pins_both(self):
        spec = _tiny().with_overrides(seed=7)
        assert spec.seeds == (7,)
        assert spec.fleet.engine.seed == 7

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            _tiny().with_overrides(strategy="nope")

    def test_with_overrides_noop_returns_self(self):
        spec = _tiny()
        assert spec.with_overrides() is spec

    def test_run_equals_direct_factory_invocation(self):
        spec = _tiny()
        report = spec.run(seed=0)
        direct_engine = make_serving_engine(cache_ratio=0.4, num_layers=2)
        direct = direct_engine.serve_trace(spec.build_trace(seed=0))
        assert report.summary() == direct.summary()
        assert report.per_request_rows() == direct.per_request_rows()

    def test_run_defaults_to_first_seed(self):
        spec = _tiny()
        assert spec.run().summary() == spec.run(seed=0).summary()

    def test_seed_changes_outcome(self):
        spec = _tiny()
        arrivals = lambda s: [e.arrival_time for e in spec.build_trace(s)]  # noqa: E731
        assert arrivals(0) != arrivals(1)
