"""The sweep runner: grids, resumability, byte-identical merged reports."""

import json
from pathlib import Path

import pytest

from repro.engine.factory import make_serving_engine
from repro.errors import ConfigError
from repro.scenarios import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    ServingSpec,
    SweepReport,
    WorkloadRecipe,
    run_cell,
    run_sweep,
    sweep_cells,
)
from repro.scenarios import sweep as sweep_module


def _tiny(name="tiny-sweep", seeds=(0,)):
    return ScenarioSpec(
        name=name,
        workload=WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 3, "arrival_rate": 4.0, "decode_steps": 2},
        ),
        fleet=FleetSpec(
            serving=ServingSpec(engine=EngineSpec(cache_ratio=0.4, num_layers=2)),
            replicas=1,
        ),
        seeds=seeds,
    )


def _trace_scenario(arrival_times):
    return ScenarioSpec(
        name="trace-scenario",
        workload=WorkloadRecipe(
            kind="trace",
            params={"arrival_times": list(arrival_times), "decode_steps": 2},
        ),
        fleet=FleetSpec(
            serving=ServingSpec(engine=EngineSpec(cache_ratio=0.4, num_layers=2)),
            replicas=1,
        ),
    )


class TestSweepCells:
    def test_grid_expansion_and_order(self):
        cells = sweep_cells(
            [_tiny()], strategies=["hybrimoe", "ondemand"], seeds=[0, 1]
        )
        assert len(cells) == 4
        ids = [cell_id for cell_id, _meta, _spec in cells]
        assert ids == sorted(ids)

    def test_axes_default_to_scenario_values(self):
        cells = sweep_cells([_tiny(seeds=(3, 5))])
        assert [meta["seed"] for _id, meta, _spec in cells] == [3, 5]
        assert all(meta["strategy"] == "hybrimoe" for _id, meta, _spec in cells)

    def test_duplicate_grid_cell_rejected(self):
        with pytest.raises(ConfigError, match="duplicate sweep cell"):
            sweep_cells([_tiny(), _tiny()])

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError, match="at least one scenario"):
            sweep_cells([])

    def test_registry_names_resolve(self):
        cells = sweep_cells(["chat-multiturn"])
        assert cells[0][1]["scenario"] == "chat-multiturn"


class TestCellBitIdentity:
    def test_single_cell_sweep_equals_direct_factory_invocation(self, tmp_path):
        """Acceptance criterion: sweep cell == hand-written factory call.

        The cell payload must carry exactly the bytes the direct
        ``make_serving_engine(...)`` run would produce when flattened
        through the same payload encoder — no scenario-layer drift.
        """
        spec = _tiny()
        report = run_sweep([spec], tmp_path)
        assert len(report.cells) == 1
        cell = report.cells[0]

        direct_engine = make_serving_engine(
            cache_ratio=0.4, num_layers=2, max_batch_size=8
        )
        direct = direct_engine.serve_trace(spec.build_trace(seed=0))
        expected = json.loads(
            sweep_module._dumps(sweep_module._report_payload(direct))
        )
        for key in ("kind", "summary", "per_request", "class_summary"):
            assert cell[key] == expected[key]

    def test_run_cell_matches_spec_run(self):
        spec = _tiny()
        payload = run_cell(spec)
        assert payload["summary"] == sweep_module._jsonify(spec.run().summary())
        assert payload["spec"] == spec.to_dict()
        assert payload["cell"]["scenario"] == "tiny-sweep"


class TestResumability:
    def _grid(self):
        return dict(
            scenarios=[_tiny(seeds=(0, 1))],
            strategies=["hybrimoe", "ondemand"],
        )

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path, monkeypatch):
        """Acceptance criterion: kill after N cells, resume, same bytes."""
        straight = run_sweep(out_dir=tmp_path / "a", **self._grid())
        bytes_a = (tmp_path / "a" / "sweep.json").read_bytes()
        assert len(straight.cells) == 4

        # Simulate the kill: the worker dies after completing 2 cells.
        real_worker = sweep_module._run_cell_to_file
        completed = []

        def dying_worker(args):
            if len(completed) == 2:
                raise KeyboardInterrupt
            completed.append(real_worker(args))
            return completed[-1]

        monkeypatch.setattr(sweep_module, "_run_cell_to_file", dying_worker)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(out_dir=tmp_path / "b", **self._grid())
        monkeypatch.setattr(sweep_module, "_run_cell_to_file", real_worker)
        assert len(completed) == 2
        assert not (tmp_path / "b" / "sweep.json").exists()

        # Resume: the 2 completed cells are skipped, not re-run.
        lines = []
        resumed = run_sweep(out_dir=tmp_path / "b", log=lines.append, **self._grid())
        skips = [line for line in lines if line.startswith("[skip]")]
        assert len(skips) == 2
        assert {s.split()[1] for s in skips} == set(completed)

        assert (tmp_path / "b" / "sweep.json").read_bytes() == bytes_a
        assert resumed.to_json().encode() == bytes_a

    def test_rerun_of_finished_sweep_is_all_skips(self, tmp_path):
        run_sweep(out_dir=tmp_path, **self._grid())
        before = (tmp_path / "sweep.json").read_bytes()
        lines = []
        run_sweep(out_dir=tmp_path, log=lines.append, **self._grid())
        assert sum(line.startswith("[skip]") for line in lines) == 4
        assert sum(line.startswith("[done]") for line in lines) == 0
        assert (tmp_path / "sweep.json").read_bytes() == before

    def test_stale_spec_cell_is_rerun(self, tmp_path):
        report = run_sweep([_tiny()], tmp_path)
        cell_path = next((tmp_path / "cells").glob("*.json"))
        stale = json.loads(cell_path.read_text())
        stale["spec"]["fleet"]["serving"]["max_batch_size"] = 99
        cell_path.write_text(json.dumps(stale))

        lines = []
        rerun = run_sweep([_tiny()], tmp_path, log=lines.append)
        assert any(line.startswith("[done]") for line in lines)
        assert rerun.to_json() == report.to_json()

    def test_corrupt_cell_file_is_rerun(self, tmp_path):
        report = run_sweep([_tiny()], tmp_path)
        cell_path = next((tmp_path / "cells").glob("*.json"))
        cell_path.write_text("{ torn write")
        rerun = run_sweep([_tiny()], tmp_path)
        assert rerun.to_json() == report.to_json()

    def test_force_reruns_completed_cells(self, tmp_path):
        run_sweep([_tiny()], tmp_path)
        lines = []
        run_sweep([_tiny()], tmp_path, force=True, log=lines.append)
        assert any(line.startswith("[done]") for line in lines)
        assert not any(line.startswith("[skip]") for line in lines)

    def test_parallel_equals_serial(self, tmp_path):
        serial = run_sweep(out_dir=tmp_path / "serial", **self._grid())
        parallel = run_sweep(out_dir=tmp_path / "par", processes=2, **self._grid())
        assert parallel.to_json() == serial.to_json()
        assert (tmp_path / "par" / "sweep.json").read_bytes() == (
            tmp_path / "serial" / "sweep.json"
        ).read_bytes()

    def test_bad_process_count_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="processes"):
            run_sweep([_tiny()], tmp_path, processes=0)


class TestWarningSurfacing:
    def test_non_monotone_trace_warning_lands_in_cell_output(self):
        payload = run_cell(_trace_scenario([0.5, 0.2, 0.8]))
        messages = [w["message"] for w in payload["warnings"]]
        assert any("not non-decreasing" in m for m in messages)
        assert any(w["category"] == "UserWarning" for w in payload["warnings"])

    def test_monotone_trace_emits_no_warnings(self):
        payload = run_cell(_trace_scenario([0.2, 0.5, 0.8]))
        assert payload["warnings"] == []

    def test_warning_count_reaches_report_rows(self, tmp_path):
        report = run_sweep([_trace_scenario([0.5, 0.2])], tmp_path)
        (row,) = report.rows()
        assert row["warnings"] >= 1


class TestSweepReport:
    def test_load_roundtrip(self, tmp_path):
        report = run_sweep([_tiny()], tmp_path)
        loaded = SweepReport.load(tmp_path)
        assert loaded.to_json() == report.to_json()
        assert loaded.cell_ids == report.cell_ids

    def test_rows_have_grid_coordinates(self, tmp_path):
        report = run_sweep([_tiny()], tmp_path, strategies=["hybrimoe", "ondemand"])
        rows = report.rows()
        assert {r["strategy"] for r in rows} == {"hybrimoe", "ondemand"}
        assert all(r["scenario"] == "tiny-sweep" for r in rows)
        assert all(r["kind"] == "serving" for r in rows)
        assert all(r["requests"] == 3 for r in rows)

    def test_cell_lookup_requires_unique_match(self, tmp_path):
        report = run_sweep([_tiny()], tmp_path, strategies=["hybrimoe", "ondemand"])
        cell = report.cell("tiny-sweep", strategy="ondemand")
        assert cell["cell"]["strategy"] == "ondemand"
        with pytest.raises(ConfigError, match="2 sweep cells match"):
            report.cell("tiny-sweep")

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="schema"):
            SweepReport.from_json(json.dumps({"schema": -1, "cells": []}))

    def test_fleet_cells_carry_per_replica_rows(self, tmp_path):
        spec = ScenarioSpec(
            name="tiny-fleet",
            workload=WorkloadRecipe(
                kind="poisson",
                params={"num_requests": 4, "arrival_rate": 6.0, "decode_steps": 2},
            ),
            fleet=FleetSpec(
                serving=ServingSpec(
                    engine=EngineSpec(cache_ratio=0.4, num_layers=2)
                ),
                replicas=2,
            ),
        )
        report = run_sweep([spec], tmp_path)
        (cell,) = report.cells
        assert cell["kind"] == "fleet"
        assert len(cell["per_replica"]) == 2
        assert sum(cell["assignments"].values()) == 4

    def test_deleted_cell_file_is_rerun(self, tmp_path):
        report = run_sweep([_tiny()], tmp_path)
        for path in (tmp_path / "cells").glob("*.json"):
            Path(path).unlink()
        rerun = run_sweep([_tiny()], tmp_path)
        assert rerun.to_json() == report.to_json()
