"""Config specs: validation, JSON round-trips, factory equivalence."""

import json

import numpy as np
import pytest

from repro.engine.factory import make_engine, make_fleet, make_serving_engine
from repro.errors import ConfigError
from repro.scenarios import EngineSpec, FleetSpec, ServingSpec, WorkloadRecipe
from repro.workloads.generator import serving_workload


class TestEngineSpec:
    def test_roundtrip_through_json(self):
        spec = EngineSpec(
            model="qwen2",
            strategy="adapmoe",
            cache_ratio=0.3,
            hardware="edge",
            num_layers=4,
            seed=7,
            num_gpus=2,
            placement="layer_striped",
            cpu_cache_capacity=16,
            cpu_cache_policy="mrs",
            disk_bandwidth=1e9,
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert EngineSpec.from_dict(data) == spec

    def test_to_dict_is_plain_json(self):
        data = EngineSpec(seed=np.int64(3)).to_dict()
        json.dumps(data)
        assert type(data["seed"]) is int

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "gpt5"},
            {"strategy": "nope"},
            {"hardware": "tpu"},
            {"cache_ratio": 0.0},
            {"cache_ratio": 1.5},
            {"num_layers": 0},
            {"num_gpus": 0},
            {"placement": "nope"},
            {"cpu_cache_policy": "fifo"},
            {"cpu_cache_capacity": 0},
            {"disk_bandwidth": 0.0},
        ],
    )
    def test_invalid_fields_raise_at_construction(self, kwargs):
        with pytest.raises(ConfigError):
            EngineSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown EngineSpec keys"):
            EngineSpec.from_dict({"modle": "deepseek"})

    def test_spec_is_hashable(self):
        assert len({EngineSpec(), EngineSpec(), EngineSpec(seed=1)}) == 2


class TestServingSpec:
    def test_roundtrip_nests_engine(self):
        spec = ServingSpec(
            engine=EngineSpec(strategy="ondemand", num_layers=3),
            max_batch_size=4,
            prefill_chunk_tokens=32,
            preemption=True,
            request_timeout_s=2.0,
            shed_queue_depth=10,
            shed_resume_depth=5,
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert ServingSpec.from_dict(data) == spec

    def test_engine_field_must_be_spec(self):
        with pytest.raises(ConfigError, match="must be an EngineSpec"):
            ServingSpec(engine={"model": "deepseek"})

    def test_serving_knobs_validated_via_serving_config(self):
        with pytest.raises(ConfigError):
            ServingSpec(max_batch_size=0)
        with pytest.raises(ConfigError):
            ServingSpec(shed_resume_depth=4)  # resume without depth

    def test_serving_config_equivalent(self):
        spec = ServingSpec(max_batch_size=2, preemption=True)
        config = spec.serving_config()
        assert config.max_batch_size == 2
        assert config.preemption is True


class TestFleetSpec:
    def test_roundtrip_nests_serving(self):
        spec = FleetSpec(
            serving=ServingSpec(engine=EngineSpec(num_layers=2)),
            replicas=3,
            router="least_loaded",
            max_retries=2,
            retry_backoff_s=0.25,
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert FleetSpec.from_dict(data) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"replicas": 0},
            {"router": "nope"},
            {"max_retries": -1},
            {"retry_backoff_s": 0.0},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ConfigError):
            FleetSpec(**kwargs)

    def test_engine_shortcut(self):
        spec = FleetSpec(serving=ServingSpec(engine=EngineSpec(seed=9)))
        assert spec.engine.seed == 9


class TestWorkloadRecipe:
    def test_roundtrip(self):
        recipe = WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 4, "arrival_rate": 2.0, "decode_steps": 2},
        )
        data = json.loads(json.dumps(recipe.to_dict()))
        assert WorkloadRecipe.from_dict(data) == recipe

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown workload kind"):
            WorkloadRecipe(kind="sinusoid", params={})

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigError, match="unknown 'poisson' workload params"):
            WorkloadRecipe(
                kind="poisson",
                params={"num_requests": 4, "arrival_rate": 2.0, "ratee": 1},
            )

    def test_missing_required_param_rejected(self):
        with pytest.raises(ConfigError, match="missing required params"):
            WorkloadRecipe(kind="poisson", params={"num_requests": 4})

    def test_build_matches_generator(self):
        recipe = WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 3, "arrival_rate": 4.0, "decode_steps": 2},
        )
        built = recipe.build(seed=5)
        direct = serving_workload(
            num_requests=3, arrival_rate=4.0, decode_steps=2, seed=5
        )
        assert [e.arrival_time for e in built] == [e.arrival_time for e in direct]
        for b, d in zip(built, direct):
            np.testing.assert_array_equal(
                b.workload.prompt_tokens, d.workload.prompt_tokens
            )

    def test_capped_clamps_only_downward(self):
        recipe = WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 8, "arrival_rate": 2.0, "decode_steps": 6},
        )
        small = recipe.capped(max_requests=3, max_steps=2)
        assert small.params["num_requests"] == 3
        assert small.params["decode_steps"] == 2
        # caps above the recipe's own values are byte-identical no-ops
        assert recipe.capped(max_requests=100, max_steps=100) == recipe

    def test_chat_cap_targets_sessions(self):
        recipe = WorkloadRecipe(kind="chat", params={"num_sessions": 8})
        assert recipe.capped(max_requests=2).params["num_sessions"] == 2


class TestFactorySpecEquivalence:
    """make_*(spec=...) must be bit-identical to the legacy kwargs."""

    def test_engine_spec_equals_kwargs(self):
        spec = EngineSpec(
            strategy="hybrimoe", cache_ratio=0.3, num_layers=2, seed=1
        )
        by_spec = make_engine(spec=spec)
        by_kwargs = make_engine(
            strategy="hybrimoe", cache_ratio=0.3, num_layers=2, seed=1
        )
        prompt = np.arange(8) % by_spec.model.vocab_size
        a = by_spec.generate(prompt, decode_steps=2)
        b = by_kwargs.generate(prompt, decode_steps=2)
        assert a.prefill == b.prefill
        assert a.decode_steps == b.decode_steps
        assert a.summary() == b.summary()

    def test_serving_spec_equals_kwargs(self):
        spec = ServingSpec(
            engine=EngineSpec(cache_ratio=0.4, num_layers=2),
            max_batch_size=2,
        )
        trace = serving_workload(num_requests=3, arrival_rate=4.0, decode_steps=2)
        a = make_serving_engine(spec=spec).serve_trace(trace)
        b = make_serving_engine(
            cache_ratio=0.4, num_layers=2, max_batch_size=2
        ).serve_trace(trace)
        assert a.summary() == b.summary()
        assert a.per_request_rows() == b.per_request_rows()

    def test_fleet_spec_equals_kwargs(self):
        spec = FleetSpec(
            serving=ServingSpec(
                engine=EngineSpec(cache_ratio=0.4, num_layers=2),
                max_batch_size=2,
            ),
            replicas=2,
            router="least_loaded",
        )
        trace = serving_workload(num_requests=4, arrival_rate=6.0, decode_steps=2)
        a = make_fleet(spec=spec).serve_trace(trace)
        b = make_fleet(
            cache_ratio=0.4,
            num_layers=2,
            max_batch_size=2,
            replicas=2,
            router="least_loaded",
        ).serve_trace(trace)
        assert a.summary() == b.summary()
        assert a.merged.per_request_rows() == b.merged.per_request_rows()

    def test_build_methods_route_through_factories(self):
        engine = EngineSpec(num_layers=2).build()
        assert engine.model.config.num_layers == 2
        serving = ServingSpec(engine=EngineSpec(num_layers=2)).build()
        assert serving.engine.model.config.num_layers == 2
        fleet = FleetSpec(
            serving=ServingSpec(engine=EngineSpec(num_layers=2)), replicas=2
        ).build()
        assert len(fleet.replicas) == 2

    @pytest.mark.parametrize(
        "factory", [make_engine, make_serving_engine, make_fleet]
    )
    def test_spec_excludes_other_kwargs(self, factory):
        spec = {
            make_engine: EngineSpec(num_layers=2),
            make_serving_engine: ServingSpec(engine=EngineSpec(num_layers=2)),
            make_fleet: FleetSpec(serving=ServingSpec(engine=EngineSpec(num_layers=2))),
        }[factory]
        with pytest.raises(ConfigError, match="fold these arguments"):
            factory(cache_ratio=0.9, spec=spec)

    @pytest.mark.parametrize(
        "factory", [make_engine, make_serving_engine, make_fleet]
    )
    def test_spec_type_checked(self, factory):
        with pytest.raises(ConfigError, match="spec must be"):
            factory(spec=object())
