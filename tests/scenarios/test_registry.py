"""Scenario registry: registration, duplicates, lookup."""

import pytest

from repro.errors import ConfigError
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    ScenarioSpec,
    WorkloadRecipe,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)


def _tiny_spec(name="tiny-registry-probe"):
    return ScenarioSpec(
        name=name,
        workload=WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 2, "arrival_rate": 4.0, "decode_steps": 1},
        ),
    )


@pytest.fixture
def scratch_scenario():
    spec = _tiny_spec()
    register_scenario(spec)
    yield spec
    unregister_scenario(spec.name)


class TestRegistry:
    def test_builtins_registered_on_import(self):
        assert set(BUILTIN_SCENARIOS) <= set(available_scenarios())

    def test_lookup_returns_registered_spec(self, scratch_scenario):
        assert get_scenario(scratch_scenario.name) is scratch_scenario

    def test_duplicate_name_rejected(self, scratch_scenario):
        with pytest.raises(ConfigError, match="already registered"):
            register_scenario(_tiny_spec(scratch_scenario.name))

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigError, match="unknown scenario 'absent'"):
            get_scenario("absent")

    def test_decorator_form_registers_and_returns_factory(self):
        @register_scenario
        def probe() -> ScenarioSpec:
            return _tiny_spec("tiny-decorator-probe")

        try:
            assert callable(probe)
            assert get_scenario("tiny-decorator-probe") == probe()
        finally:
            unregister_scenario("tiny-decorator-probe")

    def test_non_spec_rejected(self):
        with pytest.raises(ConfigError, match="needs a ScenarioSpec"):
            register_scenario({"name": "dict-not-spec"})

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            unregister_scenario("absent")

    def test_available_is_sorted(self):
        names = available_scenarios()
        assert names == sorted(names)
