"""The predictor axis: spec fields, overrides, sweep grid and CLI knobs."""

import pytest

from repro.engine.factory import make_engine
from repro.errors import ConfigError
from repro.scenarios import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    ServingSpec,
    WorkloadRecipe,
    sweep_cells,
)


def _scenario(name="predictor-probe", **engine_kwargs):
    return ScenarioSpec(
        name=name,
        workload=WorkloadRecipe(
            kind="poisson",
            params={"num_requests": 3, "arrival_rate": 4.0, "decode_steps": 2},
        ),
        fleet=FleetSpec(
            serving=ServingSpec(
                engine=EngineSpec(cache_ratio=0.4, num_layers=2, **engine_kwargs)
            ),
            replicas=1,
        ),
    )


class TestEngineSpecFields:
    def test_roundtrip_with_predictor(self):
        spec = EngineSpec(
            predictor="transition", predict_horizon=3, confidence_gate=0.4
        )
        assert EngineSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["predictor"] == "transition"

    def test_default_predictor_off(self):
        spec = EngineSpec()
        assert spec.predictor is None
        assert spec.to_dict()["predictor"] is None

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigError, match="unknown predictor"):
            EngineSpec(predictor="oracle")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigError, match="predict_horizon"):
            EngineSpec(predict_horizon=0)
        with pytest.raises(ConfigError, match="confidence_gate"):
            EngineSpec(confidence_gate=-0.1)

    def test_spec_build_threads_predictor(self, tmp_path):
        spec = EngineSpec(
            num_layers=2, cache_ratio=0.4, predictor="frequency",
            confidence_gate=0.2,
        )
        engine = spec.build()
        assert engine.config.predictor == "frequency"
        assert engine.runtime.prediction_gate is not None

    def test_factory_kwargs_match_spec_path(self):
        via_kwargs = make_engine(
            num_layers=2, cache_ratio=0.4, predictor="frequency"
        )
        assert via_kwargs.config.predictor == "frequency"
        assert via_kwargs.runtime.prediction_gate is not None


class TestWithOverrides:
    def test_predictor_override(self):
        base = _scenario()
        derived = base.with_overrides(predictor="transition")
        assert derived.fleet.engine.predictor == "transition"
        # None leaves the scenario's own setting untouched.
        assert base.with_overrides().fleet.engine.predictor is None

    def test_override_keeps_existing_predictor(self):
        base = _scenario(predictor="frequency")
        assert base.with_overrides(seed=1).fleet.engine.predictor == "frequency"

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError, match="unknown predictor"):
            _scenario().with_overrides(predictor="oracle")


class TestSweepPredictorAxis:
    def test_axis_expands_cells(self):
        cells = sweep_cells([_scenario()], predictors=[None, "transition"])
        assert len(cells) == 2
        metas = [meta for _id, meta, _spec in cells]
        assert {meta["predictor"] for meta in metas} == {None, "transition"}

    def test_off_cell_keeps_historical_id(self):
        cells = sweep_cells([_scenario()], predictors=[None, "transition"])
        ids = {meta["predictor"]: cell_id for cell_id, meta, _spec in cells}
        assert ids[None].endswith("__seed0")
        assert ids["transition"].endswith("__seed0__transition")

    def test_default_axis_is_scenario_setting(self):
        cells = sweep_cells([_scenario(predictor="frequency")])
        assert cells[0][1]["predictor"] == "frequency"
        assert cells[0][0].endswith("__frequency")


class TestCli:
    def test_run_accepts_predictor(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--num-layers", "2",
                "--prompt-len", "8",
                "--decode-steps", "2",
                "--predictor", "transition",
                "--predict-horizon", "2",
                "--confidence-gate", "0.3",
            ]
        )
        assert code == 0
        assert "ttft" in capsys.readouterr().out

    def test_unknown_predictor_rejected_by_parser(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--predictor", "oracle"])

    def test_sweep_predictors_axis(self, tmp_path, capsys):
        from repro.cli import main
        from repro.scenarios import SweepReport, register_scenario, unregister_scenario

        spec = _scenario(name="predictor-cli-probe")
        register_scenario(spec)
        try:
            code = main(
                [
                    "sweep",
                    "--scenarios", "predictor-cli-probe",
                    "--predictors", "none,frequency",
                    "--requests", "2",
                    "--steps", "2",
                    "--out", str(tmp_path),
                ]
            )
        finally:
            unregister_scenario("predictor-cli-probe")
        assert code == 0
        report = SweepReport.load(tmp_path)
        assert {c["cell"]["predictor"] for c in report.cells} == {None, "frequency"}

    def test_scenarios_list_sorted(self, capsys):
        """The registry listing is name-sorted (and so deterministic)."""
        from repro.cli import main
        from repro.scenarios import available_scenarios

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        positions = [out.index(name) for name in available_scenarios()]
        assert positions == sorted(positions)
