"""Replay determinism: every registered scenario is a pure function.

A sweep's resumability and the bit-identity guarantees of the engine
both rest on one property: running the same (scenario, strategy, seed)
cell twice yields byte-identical payloads. This suite replays every
registered scenario across all five strategies (predictor off — the
default) at smoke scale and compares the full JSON cell payloads,
which embed the spec, per-request rows, class summaries and warnings.
"""

import json

import pytest

from repro.engine.factory import available_strategies
from repro.scenarios import available_scenarios, get_scenario, run_cell


def _payload_bytes(name: str, strategy: str) -> str:
    # Cap of 4 (not lower): fleet scenarios need enough requests that
    # every replica completes at least one, or the per-replica summary
    # refuses to report a makespan.
    spec = get_scenario(name).with_overrides(
        strategy=strategy, seed=0, max_requests=4, max_steps=2
    )
    return json.dumps(run_cell(spec), sort_keys=True)


class TestScenarioReplayDeterminism:
    @pytest.mark.parametrize("name", available_scenarios())
    def test_every_scenario_replays_identically(self, name):
        for strategy in available_strategies():
            first = _payload_bytes(name, strategy)
            second = _payload_bytes(name, strategy)
            assert first == second, (
                f"scenario {name!r} under strategy {strategy!r} is not "
                f"replay-deterministic"
            )

    def test_registry_order_is_sorted(self):
        """``cli scenarios list`` iterates this order; keep it stable."""
        names = available_scenarios()
        assert names == sorted(names)
        assert len(names) == len(set(names))
