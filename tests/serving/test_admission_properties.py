"""Property tests for the continuous-batching admission policy.

The scheduler is a pure function of the queue/batch state, so its
invariants can be checked against an abstract driver that mimics the
serving loop without an engine (time advances one tick per action):

1. batch occupancy (decoding + mid-prefill requests) never exceeds
   ``max_batch_size``;
2. no queued request is starved forever — every burst drains and every
   request finishes within a bounded number of actions;
3. admission is priority-then-FCFS: an admit never picks a request
   while a strictly-higher-priority request is queued *and arrived*
   (and within a class, never skips an earlier arrival);
4. with a single class and no chunking/preemption, decisions are
   exactly the legacy FCFS policy's.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.request import PRIORITY_CLASSES, Request, RequestStatus
from repro.serving.scheduler import Action, ContinuousBatchingScheduler, ServingConfig

AMOUNT = st.integers(min_value=0, max_value=4)


@st.composite
def burst(draw, classes=PRIORITY_CLASSES):
    """A burst of requests with clustered arrivals and mixed classes."""
    n = draw(st.integers(min_value=1, max_value=8))
    requests = []
    for i in range(n):
        requests.append(
            Request(
                request_id=i,
                prompt_tokens=np.arange(draw(st.integers(1, 12))),
                decode_steps=draw(AMOUNT),
                # Clustered arrivals (many ties) stress the ordering.
                arrival_time=float(draw(st.integers(0, 6))),
                priority=draw(st.sampled_from(classes)),
            )
        )
    return requests


def _drive(requests, config, max_actions=10_000):
    """Run the policy against an abstract one-tick-per-action loop.

    Returns the action trace; raises AssertionError on any invariant
    violation. Completion is modelled minimally, mirroring the engine:
    a long prompt admitted while others decode owes
    ``ceil((prompt - chunk) / chunk)`` hybrid slices that ride decode
    steps; a drained batch finishes the remainder in one "prefill"
    action; then one decode step per owed token.
    """
    scheduler = ContinuousBatchingScheduler(config)
    queue = list(requests)
    running: list[Request] = []
    preempted: list[Request] = []
    prefilling: Request | None = None
    chunks_left = 0
    remaining = {r.request_id: r.decode_steps for r in requests}
    finished: list[Request] = []
    now = 0.0
    trace: list[Action] = []

    def complete_prefill(request):
        if remaining[request.request_id] == 0:
            request.status = RequestStatus.FINISHED
            finished.append(request)
        else:
            request.status = RequestStatus.DECODING
            running.append(request)

    for _ in range(max_actions):
        if not (queue or running or preempted or prefilling is not None):
            break
        action = scheduler.next_action(
            now, queue, running, prefilling=prefilling, preempted=preempted
        )
        assert action is not None, "policy stalled with work outstanding"
        trace.append(action)
        occupancy = len(running) + (1 if prefilling is not None else 0)

        if action.kind == "admit":
            request = action.request
            assert occupancy < config.max_batch_size
            assert prefilling is None
            arrived = [r for r in queue if r.arrival_time <= now]
            if arrived:
                # Priority-then-FCFS over what has actually arrived.
                assert request.arrival_time <= now
                best = min(
                    arrived,
                    key=lambda r: (-r.priority_rank, r.arrival_time, r.request_id),
                )
                assert request is best
            queue = [r for r in queue if r is not request]
            now = max(now, action.not_before)
            chunk = config.prefill_chunk_tokens
            protect = any(r.priority_rank > 0 for r in running)
            if chunk is not None and request.prompt_len > chunk and protect:
                prefilling = request
                request.status = RequestStatus.PREFILL
                chunks_left = math.ceil((request.prompt_len - chunk) / chunk)
            else:
                complete_prefill(request)
        elif action.kind == "prefill":
            # Only issued with the batch drained: remainder in one step.
            assert action.request is prefilling
            assert not running
            request = prefilling
            prefilling = None
            complete_prefill(request)
        elif action.kind == "preempt":
            assert config.preemption
            victim = action.request
            assert victim in running
            arrived = [r for r in queue if r.arrival_time <= now]
            assert arrived, "preemption without an arrived candidate"
            assert max(r.priority_rank for r in arrived) > victim.priority_rank
            running = [r for r in running if r is not victim]
            victim.status = RequestStatus.PREEMPTED
            preempted.append(victim)
        elif action.kind == "resume":
            request = action.request
            assert request in preempted
            assert occupancy < config.max_batch_size
            preempted = [r for r in preempted if r is not request]
            request.status = RequestStatus.DECODING
            running.append(request)
        else:
            assert action.kind == "decode"
            assert running, "decode with an empty batch"
            still = []
            for request in running:
                remaining[request.request_id] -= 1
                if remaining[request.request_id] == 0:
                    request.status = RequestStatus.FINISHED
                    finished.append(request)
                else:
                    still.append(request)
            running = still
            if prefilling is not None:
                # The hybrid step carried one prefill slice.
                chunks_left -= 1
                if chunks_left == 0:
                    request = prefilling
                    prefilling = None
                    complete_prefill(request)

        occupancy = len(running) + (1 if prefilling is not None else 0)
        assert occupancy <= config.max_batch_size
        now += 1.0
    else:
        raise AssertionError("burst did not drain within the action budget")

    assert len(finished) == len(requests), "a request was starved"
    assert all(r.is_finished for r in requests)
    return trace


class TestBurstInvariants:
    @given(
        requests=burst(),
        max_batch=st.integers(1, 4),
        preemption=st.booleans(),
        chunk=st.one_of(st.none(), st.integers(1, 6)),
    )
    @settings(max_examples=200, deadline=None)
    def test_policy_invariants_under_bursts(
        self, requests, max_batch, preemption, chunk
    ):
        config = ServingConfig(
            max_batch_size=max_batch,
            preemption=preemption,
            prefill_chunk_tokens=chunk,
        )
        _drive(requests, config)

    @given(requests=burst(), max_batch=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_preemption_only_fires_under_priority_pressure(
        self, requests, max_batch
    ):
        """Preemption never triggers with preemption disabled, and with
        a single class never triggers even when enabled."""
        config = ServingConfig(max_batch_size=max_batch)
        trace = _drive(requests, config)
        assert all(a.kind != "preempt" for a in trace)

    @given(requests=burst(classes=("batch",)), max_batch=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_single_class_preemption_never_fires(self, requests, max_batch):
        config = ServingConfig(max_batch_size=max_batch, preemption=True)
        trace = _drive(requests, config)
        assert all(a.kind != "preempt" for a in trace)


def _legacy_next_action(config, now, queued, num_running):
    """The pre-SLO FCFS policy, verbatim."""
    if queued and num_running < config.max_batch_size:
        head = queued[0]
        if head.arrival_time <= now or num_running == 0:
            return Action(
                kind="admit",
                request=head,
                not_before=max(now, head.arrival_time),
            )
    if num_running > 0:
        return Action(kind="decode")
    return None


class TestLegacyEquivalence:
    @given(
        requests=burst(classes=("batch",)),
        max_batch=st.integers(1, 4),
        now=st.floats(0.0, 8.0),
        num_running=st.integers(0, 4),
    )
    @settings(max_examples=300, deadline=None)
    def test_default_config_decisions_match_legacy_fcfs(
        self, requests, max_batch, now, num_running
    ):
        """With defaults, every (state → action) mapping equals the
        legacy policy's — the decision-level half of the default
        bit-equivalence contract (the engine-level half lives in
        test_slo_serving.py)."""
        config = ServingConfig(max_batch_size=max_batch)
        scheduler = ContinuousBatchingScheduler(config)
        queued = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        running = [
            Request(
                request_id=100 + i,
                prompt_tokens=np.arange(4),
                decode_steps=2,
                status=RequestStatus.DECODING,
            )
            for i in range(num_running)
        ]
        new = scheduler.next_action(now, queued, running)
        legacy = _legacy_next_action(config, now, queued, num_running)
        if legacy is None:
            assert new is None
        else:
            assert new is not None
            assert new.kind == legacy.kind
            assert new.request is legacy.request
            assert new.not_before == legacy.not_before
