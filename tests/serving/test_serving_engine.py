"""Serving loop: equivalence, contention, determinism, queueing.

The two acceptance properties of the multi-request refactor:

1. a single-request serve run is **bit-identical** to
   ``InferenceEngine.generate`` (hidden states, sampled tokens, step
   metrics);
2. concurrent requests share one expert cache, so their hit behaviour
   differs from isolated runs (real contention).
"""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_strategy
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel
from repro.errors import ConfigError
from repro.rng import derive_rng
from repro.serving import Request, RequestStatus, ServingConfig, ServingEngine
from repro.workloads.generator import sample_prompt, serving_workload

DECODE_STEPS = 6


def _fresh_engine(tiny_config, strategy="hybrimoe", cache_ratio=0.25, seed=0):
    config = EngineConfig(
        cache_ratio=cache_ratio, seed=seed, profile_prompt_len=8, profile_decode_steps=2
    )
    return InferenceEngine(
        ReferenceMoEModel(tiny_config, seed=seed),
        make_strategy(strategy),
        paper_testbed(),
        config,
    )


class TestSingleRequestEquivalence:
    @pytest.mark.parametrize("strategy", ["hybrimoe", "ktransformers", "ondemand"])
    def test_hidden_states_and_tokens_bit_identical(
        self, tiny_config, prompt_tokens, strategy
    ):
        # Reference: replicate generate()'s loop step by step, capturing
        # the hidden-state trajectory the engine never returns.
        reference = _fresh_engine(tiny_config, strategy)
        sample_rng = derive_rng(0, "engine", "decode-sampling")
        ref_hidden, _ = reference._run_step(prompt_tokens, "prefill")
        ref_tokens = []
        last = ref_hidden[-1]
        for _ in range(DECODE_STEPS):
            token = reference.model.sample_next_token(last, sample_rng)
            ref_tokens.append(token)
            ref_hidden, _ = reference._run_step(np.array([token]), "decode")
            last = ref_hidden[-1]

        served = _fresh_engine(tiny_config, strategy)
        request = Request(
            request_id=0,
            prompt_tokens=prompt_tokens,
            decode_steps=DECODE_STEPS,
            arrival_time=0.0,
        )
        ServingEngine(served).serve([request])

        assert request.output_tokens == ref_tokens
        assert request.last_hidden is not None
        # Bit-identical, not approximately equal:
        np.testing.assert_array_equal(request.last_hidden, ref_hidden[-1])

    def test_metrics_identical_to_generate(self, tiny_config, prompt_tokens):
        plain = _fresh_engine(tiny_config)
        generated = plain.generate(prompt_tokens, decode_steps=DECODE_STEPS)

        served = _fresh_engine(tiny_config)
        request = Request(
            request_id=0,
            prompt_tokens=prompt_tokens,
            decode_steps=DECODE_STEPS,
            arrival_time=0.0,
        )
        report = ServingEngine(served).serve([request])
        result = request.result

        assert result is not None
        assert result.prefill == generated.prefill
        assert result.decode_steps == generated.decode_steps
        assert result.total_hits == generated.total_hits
        assert result.total_misses == generated.total_misses
        record = report.requests[0]
        assert record.ttft == pytest.approx(generated.ttft)
        np.testing.assert_array_equal(
            np.asarray(record.tbt_values), generated.tbt_values
        )
        # Arrival at t=0 on a cold clock: no queueing delay.
        assert record.queueing_delay == pytest.approx(0.0)


class TestSharedCacheContention:
    def _prompts(self, tiny_config):
        model = ReferenceMoEModel(tiny_config, seed=0)
        return [
            sample_prompt("mtbench", model.vocab_size, seed=0, index=i)
            for i in range(2)
        ]

    def test_concurrent_requests_contend_for_one_cache(self, tiny_config):
        prompts = self._prompts(tiny_config)
        requests = [
            Request(
                request_id=i,
                prompt_tokens=prompt,
                decode_steps=12,
                arrival_time=0.0,
                sample_seed=i,
            )
            for i, prompt in enumerate(prompts)
        ]
        engine = _fresh_engine(tiny_config)
        report = ServingEngine(engine, ServingConfig(max_batch_size=4)).serve(requests)

        # Decode steps really were fused across the two requests.
        batch_sizes = {
            m.batch_size for r in report.requests for m in r.result.decode_steps
        }
        assert 2 in batch_sizes

        # Isolated runs: each request alone on its own fresh engine.
        isolated_hits = isolated_misses = 0
        for i, prompt in enumerate(prompts):
            solo = _fresh_engine(tiny_config)
            result = solo.generate(prompt, decode_steps=12)
            isolated_hits += result.total_hits
            isolated_misses += result.total_misses

        # Shared residency shifts hit behaviour vs the isolated runs.
        assert (report.total_hits, report.total_misses) != (
            isolated_hits,
            isolated_misses,
        )
        isolated_rate = isolated_hits / (isolated_hits + isolated_misses)
        assert report.hit_rate != pytest.approx(isolated_rate, abs=1e-12)

    def test_default_concurrent_requests_sample_independently(self, tiny_config):
        """Identical prompts with unset sample seeds must not decode
        identical token trajectories in a multi-request run."""
        engine = _fresh_engine(tiny_config)
        requests = [
            Request(request_id=i, prompt_tokens=np.arange(16), decode_steps=8)
            for i in range(2)
        ]
        ServingEngine(engine, ServingConfig(max_batch_size=2)).serve(requests)
        assert requests[0].output_tokens != requests[1].output_tokens

    def test_state_store_drained_after_serve(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        requests = [
            Request(request_id=i, prompt_tokens=np.arange(6), decode_steps=3)
            for i in range(2)
        ]
        ServingEngine(engine).serve(requests)
        assert len(engine.states) == 0
        assert all(r.is_finished for r in requests)


class TestTraceValidation:
    def _entry(self, arrival):
        """A trace entry duck-typed for arrival validation paths."""
        from repro.workloads.generator import ArrivedWorkload, WorkloadSpec

        workload = WorkloadSpec(
            kind="decode",
            dataset="mtbench",
            prompt_tokens=np.arange(4),
            decode_steps=1,
        )
        entry = ArrivedWorkload.__new__(ArrivedWorkload)
        object.__setattr__(entry, "arrival_time", arrival)
        object.__setattr__(entry, "workload", workload)
        object.__setattr__(entry, "priority", "batch")
        object.__setattr__(entry, "tbt_deadline", None)
        return entry

    def test_negative_arrival_rejected(self):
        from repro.serving.engine import requests_from_trace

        with pytest.raises(ConfigError):
            requests_from_trace([self._entry(-0.5), self._entry(1.0)])

    def test_unsorted_trace_warns_but_serves(self, tiny_config):
        from repro.serving.engine import requests_from_trace

        entries = [self._entry(2.0), self._entry(0.0)]
        with pytest.warns(UserWarning, match="not non-decreasing"):
            requests = requests_from_trace(entries)
        # Ids keep trace order; the serve loop orders by arrival.
        assert [r.request_id for r in requests] == [0, 1]
        assert [r.arrival_time for r in requests] == [2.0, 0.0]
        engine = _fresh_engine(tiny_config)
        report = ServingEngine(engine).serve(requests)
        assert report.num_requests == 2
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[1].prefill_start <= by_id[0].prefill_start

    def test_sorted_trace_does_not_warn(self):
        import warnings as warnings_module

        from repro.serving.engine import requests_from_trace

        entries = [self._entry(0.0), self._entry(0.0), self._entry(1.5)]
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            requests = requests_from_trace(entries)
        assert len(requests) == 3


class TestArrivalDeterminism:
    def _serve(self, tiny_config, seed):
        engine = _fresh_engine(tiny_config)
        trace = serving_workload(
            num_requests=4, arrival_rate=50.0, decode_steps=4, seed=seed
        )
        serving = ServingEngine(engine, ServingConfig(max_batch_size=3))
        return serving.serve_trace(trace)

    def test_poisson_replay_is_deterministic(self, tiny_config):
        first = self._serve(tiny_config, seed=0)
        second = self._serve(tiny_config, seed=0)
        for a, b in zip(first.requests, second.requests):
            assert a.arrival_time == b.arrival_time
            assert a.prefill_start == b.prefill_start
            assert a.first_token_time == b.first_token_time
            assert a.finish_time == b.finish_time
            assert a.tbt_values == b.tbt_values
        assert first.summary() == second.summary()

    def test_different_seed_different_trace(self, tiny_config):
        first = self._serve(tiny_config, seed=0)
        second = self._serve(tiny_config, seed=1)
        assert [r.arrival_time for r in first.requests] != [
            r.arrival_time for r in second.requests
        ]


class TestQueueingAndLifecycle:
    def test_unit_batch_serialises_requests(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        requests = [
            Request(request_id=i, prompt_tokens=np.arange(8), decode_steps=3)
            for i in range(2)
        ]
        report = ServingEngine(engine, ServingConfig(max_batch_size=1)).serve(requests)
        first, second = report.requests
        # Second request queues behind the whole first generation.
        assert second.prefill_start >= first.finish_time
        assert second.queueing_delay > 0.0
        assert first.queueing_delay == pytest.approx(0.0)

    def test_clock_idles_until_late_arrival(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        request = Request(
            request_id=0, prompt_tokens=np.arange(8), decode_steps=2, arrival_time=7.5
        )
        report = ServingEngine(engine).serve([request])
        assert report.requests[0].prefill_start == pytest.approx(7.5)
        assert report.requests[0].queueing_delay == pytest.approx(0.0)

    def test_prefill_only_request_finishes_at_first_token(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        request = Request(request_id=0, prompt_tokens=np.arange(8), decode_steps=0)
        report = ServingEngine(engine).serve([request])
        record = report.requests[0]
        assert record.finish_time == record.first_token_time
        assert record.tbt_values == ()

    def test_back_to_back_serves_report_deltas_on_warm_engine(self, tiny_config):
        """A second serve on the same engine must report its own cache
        traffic and queueing, not the cumulative history."""
        engine = _fresh_engine(tiny_config)
        serving = ServingEngine(engine)
        first = serving.serve(
            [Request(request_id=0, prompt_tokens=np.arange(8), decode_steps=3)]
        )
        second = serving.serve(
            [Request(request_id=1, prompt_tokens=np.arange(8), decode_steps=3)]
        )
        cache = engine.runtime.cache
        assert first.total_hits + second.total_hits == cache.stats.hits
        assert first.total_misses + second.total_misses == cache.stats.misses
        record = second.requests[0]
        # Arrival shifted onto the warm clock: no phantom queueing delay.
        assert record.queueing_delay == pytest.approx(0.0)
        assert record.prefill_start >= first.requests[0].finish_time

    def test_aborted_serve_leaves_queued_requests_clean(self, tiny_config):
        """A mid-run failure must not orphan decode states, shift
        still-queued arrivals, or leave admitted requests replayable."""
        engine = _fresh_engine(tiny_config)
        ServingEngine(engine).serve(
            [Request(request_id=9, prompt_tokens=np.arange(6), decode_steps=2)]
        )  # warm the clock so the arrival-shift path is active
        serving = ServingEngine(engine)
        first = Request(request_id=0, prompt_tokens=np.arange(6), decode_steps=2)
        second = Request(
            request_id=1, prompt_tokens=np.arange(6), decode_steps=2, arrival_time=5.0
        )

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        engine.pipeline.run_batch = explode
        with pytest.raises(RuntimeError):
            serving.serve([first, second])
        assert len(engine.states) == 0
        # Still-queued request untouched and replayable...
        assert second.status is RequestStatus.QUEUED
        assert second.arrival_time == pytest.approx(5.0)
        # ...while the half-admitted one is not.
        assert first.status is not RequestStatus.QUEUED

    def test_duplicate_ids_rejected(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        requests = [
            Request(request_id=0, prompt_tokens=np.arange(4), decode_steps=1),
            Request(request_id=0, prompt_tokens=np.arange(4), decode_steps=1),
        ]
        with pytest.raises(ConfigError):
            ServingEngine(engine).serve(requests)

    def test_served_request_cannot_be_replayed(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        request = Request(request_id=0, prompt_tokens=np.arange(4), decode_steps=1)
        ServingEngine(engine).serve([request])
        fresh = _fresh_engine(tiny_config)
        with pytest.raises(ConfigError):
            ServingEngine(fresh).serve([request])
