"""SLO-aware serving: default bit-equivalence, chunking, preemption.

The acceptance property of the SLO refactor: with the **default**
configuration (every request in the one default class, chunking off,
preemption off) the serving loop is bit-identical to the historical
FCFS loop — enforced here by replaying the pre-refactor loop from
engine primitives and comparing tokens, timings, hidden states and
cache counters across **all five strategies**. The remaining tests pin
the behaviour of the three new mechanisms end to end.
"""

from collections import deque

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import available_strategies, make_strategy
from repro.engine.pipeline import SequenceStep
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel
from repro.rng import derive_rng
from repro.serving import Request, ServingConfig, ServingEngine
from repro.workloads.generator import sample_prompt


def _fresh_engine(tiny_config, strategy="hybrimoe", cache_ratio=0.25, seed=0):
    config = EngineConfig(
        cache_ratio=cache_ratio, seed=seed, profile_prompt_len=8, profile_decode_steps=2
    )
    return InferenceEngine(
        ReferenceMoEModel(tiny_config, seed=seed),
        make_strategy(strategy),
        paper_testbed(),
        config,
    )


def _request_set(tiny_config, priorities=None):
    """Three staggered requests with dataset-typical prompts."""
    model = ReferenceMoEModel(tiny_config, seed=0)
    priorities = priorities or ["batch"] * 3
    return [
        Request(
            request_id=i,
            prompt_tokens=sample_prompt("mtbench", model.vocab_size, seed=0, index=i),
            decode_steps=5,
            arrival_time=0.0005 * i,
            sample_seed=i,
            priority=priorities[i],
        )
        for i in range(3)
    ]


def _legacy_fcfs_serve(engine, requests, max_batch_size):
    """The pre-SLO serving loop, replayed from engine primitives.

    This is a faithful transcription of the PR-1 loop: FCFS admission
    (head-of-line only, whole-prompt prefill as one dedicated step) +
    fused decode, with the same sampler derivation. Any behavioural
    drift of the default configuration shows up as a mismatch against
    ``ServingEngine.serve``.
    """
    pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    origin = engine.runtime.clock.compute_frontier
    queue = deque(pending)
    running = []
    records = {}
    samplers = {}
    solo = len(pending) == 1

    def sampler_for(request):
        seed = engine.config.seed
        if request.sample_seed is None:
            if solo:
                return derive_rng(seed, "engine", "decode-sampling")
            return derive_rng(
                seed, "engine", "decode-sampling", "auto", request.request_id
            )
        return derive_rng(seed, "engine", "decode-sampling", request.sample_seed)

    while queue or running:
        now = engine.runtime.clock.compute_frontier - origin
        head = queue[0] if queue else None
        if (
            head is not None
            and len(running) < max_batch_size
            and (head.arrival_time <= now or not running)
        ):
            request = queue.popleft()
            arrival = request.arrival_time + origin
            state = engine.states.create(request.request_id)
            result = engine.pipeline.run_batch(
                [SequenceStep(request.prompt_tokens, state)],
                "prefill",
                not_before=max(max(now, request.arrival_time) + origin, arrival),
            )
            record = records[request.request_id] = {
                "prefill_start": result.metrics.start,
                "first_token": result.metrics.end,
                "last_token": result.metrics.end,
                "last_hidden": result.hidden[0][-1],
                "tokens": [],
                "tbts": [],
                "finish": None,
            }
            samplers[request.request_id] = sampler_for(request)
            if request.decode_steps == 0:
                record["finish"] = record["first_token"]
                engine.states.pop(request.request_id)
            else:
                running.append((request, record))
        else:
            batch = []
            for request, record in running:
                token = engine.model.sample_next_token(
                    record["last_hidden"], samplers[request.request_id]
                )
                record["tokens"].append(token)
                batch.append(
                    SequenceStep(
                        np.array([token]), engine.states.get(request.request_id)
                    )
                )
            result = engine.pipeline.run_batch(batch, "decode")
            metrics = result.metrics
            still = []
            for index, (request, record) in enumerate(running):
                record["last_hidden"] = result.hidden[index][-1]
                record["tbts"].append(metrics.end - record["last_token"])
                record["last_token"] = metrics.end
                if len(record["tbts"]) == request.decode_steps:
                    record["finish"] = metrics.end
                    engine.states.pop(request.request_id)
                else:
                    still.append((request, record))
            running = still
    stats = engine.runtime.cache.stats
    return records, (stats.hits, stats.misses)


class TestDefaultConfigBitEquivalence:
    @pytest.mark.parametrize("strategy", available_strategies())
    def test_default_serve_matches_legacy_fcfs_loop(self, tiny_config, strategy):
        max_batch = 2  # small enough to force queueing
        reference = _fresh_engine(tiny_config, strategy)
        legacy, legacy_stats = _legacy_fcfs_serve(
            reference, _request_set(tiny_config), max_batch
        )

        engine = _fresh_engine(tiny_config, strategy)
        requests = _request_set(tiny_config)
        report = ServingEngine(engine, ServingConfig(max_batch_size=max_batch)).serve(
            requests
        )

        assert report.preemptions == 0
        cache = engine.runtime.cache
        assert (cache.stats.hits, cache.stats.misses) == legacy_stats
        for request in requests:
            expected = legacy[request.request_id]
            assert request.output_tokens == expected["tokens"]
            assert request.prefill_start == expected["prefill_start"]
            assert request.first_token_time == expected["first_token"]
            assert request.finish_time == expected["finish"]
            assert request.tbt_values == expected["tbts"]
            np.testing.assert_array_equal(
                request.last_hidden, expected["last_hidden"]
            )


class TestChunkedPrefill:
    def _long_prompt_requests(self, tiny_config):
        """An interactive decoder plus a long batch-class prompt that
        arrives mid-decode (the stall chunking exists to bound)."""
        model = ReferenceMoEModel(tiny_config, seed=0)
        long_prompt = sample_prompt("mtbench", model.vocab_size, seed=0, index=0)
        return [
            Request(
                request_id=0,
                prompt_tokens=np.arange(12),
                decode_steps=10,
                arrival_time=0.0,
                sample_seed=0,
                priority="interactive",
            ),
            Request(
                request_id=1,
                prompt_tokens=long_prompt,
                decode_steps=2,
                arrival_time=0.001,
                sample_seed=1,
            ),
        ]

    def test_chunks_bound_decode_stalls(self, tiny_config):
        """The long prefill interleaves with decode steps instead of
        blocking them: the decoding request's worst token gap shrinks."""

        def tail_gap(chunk):
            engine = _fresh_engine(tiny_config)
            requests = self._long_prompt_requests(tiny_config)
            ServingEngine(
                engine,
                ServingConfig(max_batch_size=2, prefill_chunk_tokens=chunk),
            ).serve(requests)
            return max(requests[0].tbt_values)

        unchunked = tail_gap(None)
        chunked = tail_gap(8)
        assert chunked < unchunked

    def test_chunked_prefill_metrics_merge(self, tiny_config):
        """A long prompt admitted during decode runs one dedicated
        first slice plus hybrid slices riding the decode steps."""
        engine = _fresh_engine(tiny_config)
        decoder = Request(
            request_id=0,
            prompt_tokens=np.arange(8),
            decode_steps=8,
            arrival_time=0.0,
            sample_seed=0,
            priority="interactive",
        )
        request = Request(
            request_id=1,
            prompt_tokens=np.arange(20),
            decode_steps=2,
            arrival_time=0.0004,
            sample_seed=1,
        )
        ServingEngine(
            engine, ServingConfig(max_batch_size=2, prefill_chunk_tokens=8)
        ).serve([decoder, request])
        assert len(request.prefill_chunks) >= 2
        assert request.prefill_chunks[0].n_tokens == 8  # dedicated first slice
        assert request.prefill_chunks[0].batch_size == 1
        # Later slices are hybrid: they carry the decoder's token too.
        assert any(c.batch_size > 1 for c in request.prefill_chunks[1:])
        prefill = request.result.prefill
        assert prefill.n_tokens == 20
        assert request.prefill_pos == 20
        assert prefill.start == request.prefill_chunks[0].start
        assert prefill.end == request.prefill_chunks[-1].end
        assert prefill.hits == sum(c.hits for c in request.prefill_chunks)
        assert prefill.misses == sum(c.misses for c in request.prefill_chunks)
        assert request.first_token_time == prefill.end
        assert request.is_finished and decoder.is_finished

    def test_idle_platform_skips_chunking(self, tiny_config):
        """With nobody decoding there is no stall to bound: a solo long
        prompt prefills in one step even with chunking configured."""
        engine = _fresh_engine(tiny_config)
        request = Request(
            request_id=0, prompt_tokens=np.arange(20), decode_steps=2, sample_seed=0
        )
        ServingEngine(
            engine, ServingConfig(max_batch_size=1, prefill_chunk_tokens=8)
        ).serve([request])
        assert request.prefill_chunks == []
        assert request.result.prefill.n_tokens == 20
        assert request.is_finished

    def test_short_prompt_ignores_chunking(self, tiny_config):
        """A prompt within the chunk budget takes the single-step path
        and stays bit-identical to the unchunked serve."""
        results = []
        for chunk in (None, 64):
            engine = _fresh_engine(tiny_config)
            request = Request(
                request_id=0, prompt_tokens=np.arange(16), decode_steps=3
            )
            ServingEngine(
                engine, ServingConfig(max_batch_size=1, prefill_chunk_tokens=chunk)
            ).serve([request])
            results.append(
                (
                    request.output_tokens,
                    request.prefill_start,
                    request.finish_time,
                    tuple(request.tbt_values),
                )
            )
        assert results[0] == results[1]

    def test_prefill_only_chunked_request_finishes(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        decoder = Request(
            request_id=0,
            prompt_tokens=np.arange(8),
            decode_steps=10,
            sample_seed=0,
            priority="interactive",
        )
        request = Request(
            request_id=1,
            prompt_tokens=np.arange(20),
            decode_steps=0,
            arrival_time=0.0004,
            sample_seed=1,
        )
        report = ServingEngine(
            engine, ServingConfig(max_batch_size=2, prefill_chunk_tokens=8)
        ).serve([decoder, request])
        record = next(r for r in report.requests if r.request_id == 1)
        assert record.finish_time == record.first_token_time
        assert record.tbt_values == ()
        assert len(engine.states) == 0

    def test_drained_batch_finishes_remainder_in_one_step(self, tiny_config):
        """When the decoders finish mid-chunked-prefill, the remaining
        prompt runs as a single dedicated step."""
        engine = _fresh_engine(tiny_config)
        decoder = Request(
            request_id=0,
            prompt_tokens=np.arange(8),
            decode_steps=1,
            sample_seed=0,
            priority="interactive",
        )
        request = Request(
            request_id=1,
            prompt_tokens=np.arange(64),
            decode_steps=1,
            arrival_time=0.0004,
            sample_seed=1,
        )
        ServingEngine(
            engine, ServingConfig(max_batch_size=2, prefill_chunk_tokens=8)
        ).serve([decoder, request])
        assert request.is_finished
        assert request.prefill_pos == 64
        # First slice (8) + at most a couple of hybrid slices while the
        # one-token decoder drains, then the remainder in one step:
        # far fewer steps than the 8 slices strict chunking would take.
        assert 2 <= len(request.prefill_chunks) < 8
        assert request.prefill_chunks[-1].n_tokens > 8


class TestPreemption:
    def _overloaded(self, tiny_config, preemption):
        """One slot, a long batch decoder, then an interactive arrival."""
        engine = _fresh_engine(tiny_config)
        requests = [
            Request(
                request_id=0,
                prompt_tokens=np.arange(8),
                decode_steps=12,
                arrival_time=0.0,
                sample_seed=0,
                priority="batch",
            ),
            Request(
                request_id=1,
                prompt_tokens=np.arange(8),
                decode_steps=2,
                arrival_time=0.001,
                sample_seed=1,
                priority="interactive",
            ),
        ]
        report = ServingEngine(
            engine,
            ServingConfig(max_batch_size=1, preemption=preemption),
        ).serve(requests)
        return engine, requests, report

    def test_preemption_lets_interactive_cut_in(self, tiny_config):
        _, requests, report = self._overloaded(tiny_config, preemption=True)
        batch, interactive = requests
        assert report.preemptions == 1
        assert batch.num_preemptions == 1
        # The interactive request starts before the batch one finishes…
        assert interactive.prefill_start < batch.finish_time
        # …and both complete with their full decode budgets.
        assert batch.is_finished and interactive.is_finished
        assert len(batch.tbt_values) == 12
        assert len(interactive.tbt_values) == 2
        by_id = {r.request_id: r for r in report.requests}
        assert by_id[0].num_preemptions == 1
        assert by_id[1].num_preemptions == 0

    def test_preemption_improves_interactive_ttft(self, tiny_config):
        _, fcfs_requests, fcfs = self._overloaded(tiny_config, preemption=False)
        _, slo_requests, slo = self._overloaded(tiny_config, preemption=True)
        assert fcfs.preemptions == 0
        fcfs_ttft = {r.request_id: r.ttft for r in fcfs.requests}
        slo_ttft = {r.request_id: r.ttft for r in slo.requests}
        assert slo_ttft[1] < fcfs_ttft[1]
        # The victim's tokens are identical — only their timing moved.
        assert fcfs_requests[0].output_tokens == slo_requests[0].output_tokens

    def test_preempted_state_survives_pause(self, tiny_config):
        engine, requests, _ = self._overloaded(tiny_config, preemption=True)
        # Decode states were drained normally at completion…
        assert len(engine.states) == 0
        # …and the paused request's TBT trail shows one long pause gap
        # (the span the interactive request occupied the slot).
        batch = requests[0]
        assert max(batch.tbt_values) > min(batch.tbt_values)


class TestPerClassReporting:
    def test_class_summary_separates_classes(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        requests = _request_set(
            tiny_config, priorities=["batch", "interactive", "batch"]
        )
        requests[1].tbt_deadline = 10.0  # generous: always met
        report = ServingEngine(engine, ServingConfig(max_batch_size=2)).serve(requests)
        assert report.priority_classes() == ["batch", "interactive"]
        rows = {row["class"]: row for row in report.class_summary()}
        assert rows["batch"]["requests"] == 2
        assert rows["interactive"]["requests"] == 1
        assert rows["interactive"]["slo_attainment"] == 1.0
        assert np.isnan(rows["batch"]["slo_attainment"])  # no deadlines set
        total = sum(
            report.class_goodput(c) for c in report.priority_classes()
        )
        assert total == pytest.approx(report.goodput)

    def test_missed_deadline_counts_against_attainment(self, tiny_config):
        engine = _fresh_engine(tiny_config)
        request = Request(
            request_id=0,
            prompt_tokens=np.arange(8),
            decode_steps=4,
            tbt_deadline=1e-12,  # impossible
        )
        report = ServingEngine(engine).serve([request])
        row = report.class_summary()[0]
        assert row["slo_attainment"] == 0.0
        assert report.requests[0].meets_tbt_deadline is False

    def test_priority_admission_orders_arrived_queue(self, tiny_config):
        """With both classes waiting, the interactive request is served
        ahead of earlier-arrived batch requests."""
        engine = _fresh_engine(tiny_config)
        requests = [
            Request(
                request_id=i,
                prompt_tokens=np.arange(8),
                decode_steps=2,
                arrival_time=0.0,
                sample_seed=i,
                priority="interactive" if i == 2 else "batch",
            )
            for i in range(3)
        ]
        report = ServingEngine(engine, ServingConfig(max_batch_size=1)).serve(requests)
        starts = {r.request_id: r.prefill_start for r in report.requests}
        # All three are waiting at t=0: the interactive request jumps
        # both earlier-id batch requests, which then run FCFS.
        assert starts[2] < starts[0] < starts[1]
