"""Degraded-mode serving: schedule transparency, timeouts, shedding.

The transparency suite is the acceptance criterion of the sub-replica
fault work: a :class:`~repro.hardware.faults.HardwareFaultSchedule`
whose windows never cover the run must leave the serving report
**bit-identical** to running with no schedule at all — for every
strategy, on both the fast and reference planner paths. The degradation
hook threads through the cost models, scheduler memos and prefetchers
of each strategy, so this is the test that proves the neutral path
applies no arithmetic anywhere.
"""

import pytest

from repro.engine.factory import make_serving_engine
from repro.errors import ConfigError
from repro.hardware.faults import HardwareFault, HardwareFaultSchedule
from repro.serving import ServingConfig
from repro.serving.request import Request
from repro.serving.session import _remove_by_identity
from repro.workloads.generator import sample_prompt, serving_workload

MODEL = "mixtral"
NUM_LAYERS = 3
VOCAB = 512
ARRIVALS = [0.0, 0.02, 0.04, 0.3, 0.32, 0.6]
STRATEGIES = ("adapmoe", "hybrimoe", "ktransformers", "llamacpp", "ondemand")


def _engine(strategy="hybrimoe", planner_fast_path=True, **knobs):
    knobs.setdefault("max_batch_size", 3)
    return make_serving_engine(
        model=MODEL,
        strategy=strategy,
        cache_ratio=0.5,
        num_layers=NUM_LAYERS,
        seed=0,
        planner_fast_path=planner_fast_path,
        **knobs,
    )


def _trace(priority_mix=None, arrivals=ARRIVALS):
    return serving_workload(
        arrival_times=arrivals,
        decode_steps=4,
        vocab_size=VOCAB,
        seed=0,
        priority_mix=priority_mix,
    )


def _far_schedule(last_finish):
    """All three fault kinds, every window past the end of the run."""
    horizon = last_finish + 50.0
    return HardwareFaultSchedule(
        [
            HardwareFault(
                kind="link_degrade", at_time=horizon, duration=5.0, severity=0.5
            ),
            HardwareFault(kind="disk_stall", at_time=horizon, duration=5.0),
            HardwareFault(
                kind="gpu_straggler",
                at_time=horizon,
                duration=5.0,
                severity=2.0,
            ),
        ]
    )


class TestScheduleTransparency:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize(
        "planner_fast_path", [True, False], ids=["fast", "reference"]
    )
    def test_unfired_schedule_bit_identical(self, strategy, planner_fast_path):
        baseline = _engine(strategy, planner_fast_path).serve_trace(_trace())
        schedule = _far_schedule(baseline.last_finish)
        shadowed = _engine(
            strategy, planner_fast_path, hardware_faults=schedule
        ).serve_trace(_trace())
        assert shadowed.requests == baseline.requests
        assert shadowed.degradations == []
        assert shadowed.total_hits == baseline.total_hits
        assert shadowed.total_misses == baseline.total_misses

    def test_fired_schedule_slows_and_logs(self):
        baseline = _engine().serve_trace(_trace())
        schedule = HardwareFaultSchedule(
            [
                HardwareFault(
                    kind="gpu_straggler",
                    at_time=0.0,
                    duration=baseline.last_finish + 1.0,
                    severity=4.0,
                )
            ]
        )
        degraded = _engine(hardware_faults=schedule).serve_trace(_trace())
        assert degraded.last_finish > baseline.last_finish
        # Entry into the window is logged with the non-neutral state.
        assert degraded.degradations
        assert degraded.degradations[0].state.gpu_slowdown == 4.0

    def test_recovery_is_logged(self):
        baseline = _engine().serve_trace(_trace())
        window = baseline.makespan / 4
        schedule = HardwareFaultSchedule(
            [
                HardwareFault(
                    kind="gpu_straggler",
                    at_time=0.0,
                    duration=window,
                    severity=4.0,
                )
            ]
        )
        degraded = _engine(hardware_faults=schedule).serve_trace(_trace())
        assert len(degraded.degradations) >= 2
        assert degraded.degradations[-1].state.is_neutral


class TestRequestTimeouts:
    def test_all_requests_time_out_under_zero_budget(self):
        report = _engine(request_timeout_s=1e-6).serve_trace(_trace())
        assert report.num_timeouts == len(ARRIVALS)
        assert report.num_completed == 0
        assert sorted(r.request_id for r in report.requests) == list(
            range(len(ARRIVALS))
        )
        for record in report.requests:
            assert record.status == "timed_out"
            assert record.finish_time >= record.arrival_time

    def test_generous_budget_changes_nothing(self):
        baseline = _engine().serve_trace(_trace())
        report = _engine(request_timeout_s=1e6).serve_trace(_trace())
        assert report.requests == baseline.requests
        assert report.num_timeouts == 0

    def test_timeout_releases_state_engine_stays_usable(self):
        serving = _engine(request_timeout_s=0.05)
        report = serving.serve_trace(_trace())
        assert report.num_timeouts >= 1
        # The engine must be reusable after aborts: a follow-up serve
        # on the same (warm) engine completes normally.
        follow_up = serving.serve_trace(_trace())
        assert follow_up.num_requests == len(ARRIVALS)

    def test_summary_reports_timeouts(self):
        summary = _engine(request_timeout_s=1e-6).serve_trace(_trace()).summary()
        assert summary["timeouts"] == len(ARRIVALS)
        assert summary["completed"] == 0

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigError, match="request_timeout_s"):
            ServingConfig(request_timeout_s=0.0)


class TestOverloadShedding:
    BURST = [0.0] * 8  # everything arrives at once

    def test_sheds_down_to_low_watermark(self):
        report = _engine(
            max_batch_size=1, shed_queue_depth=4, shed_resume_depth=2
        ).serve_trace(_trace(arrivals=self.BURST))
        assert report.num_shed >= 1
        assert report.num_shed + report.num_completed == len(self.BURST)
        for record in report.requests:
            if record.status == "shed":
                assert record.finish_time >= record.arrival_time

    def test_high_watermark_alone_uses_half_as_resume(self):
        explicit = _engine(
            max_batch_size=1, shed_queue_depth=4, shed_resume_depth=2
        ).serve_trace(_trace(arrivals=self.BURST))
        defaulted = _engine(
            max_batch_size=1, shed_queue_depth=4
        ).serve_trace(_trace(arrivals=self.BURST))
        assert defaulted.requests == explicit.requests

    def test_interactive_class_sheds_last(self):
        mix = {"interactive": 0.5, "batch": 0.5}
        report = _engine(
            max_batch_size=1, shed_queue_depth=3
        ).serve_trace(_trace(priority_mix=mix, arrivals=[0.0] * 10))
        shed = [r for r in report.requests if r.status == "shed"]
        assert shed
        # Lowest class goes first: no interactive request may be shed
        # while any batch request survived the same sweeps.
        if any(r.priority == "interactive" for r in shed):
            assert all(
                r.priority == "interactive"
                for r in report.requests
                if r.status == "finished"
            )
        else:
            assert all(r.priority == "batch" for r in shed)

    def test_deep_watermark_changes_nothing(self):
        baseline = _engine().serve_trace(_trace())
        report = _engine(shed_queue_depth=10_000).serve_trace(_trace())
        assert report.requests == baseline.requests
        assert report.num_shed == 0

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ConfigError, match="shed_queue_depth"):
            ServingConfig(shed_queue_depth=0)
        with pytest.raises(ConfigError, match="shed_resume_depth"):
            ServingConfig(shed_queue_depth=4, shed_resume_depth=4)
        with pytest.raises(ConfigError, match="shed_resume_depth"):
            ServingConfig(shed_resume_depth=2)


class TestRemoveByIdentity:
    def _request(self, request_id=0):
        return Request(
            request_id=request_id,
            prompt_tokens=sample_prompt("mtbench", VOCAB, seed=0, index=0),
            decode_steps=2,
            arrival_time=0.0,
        )

    def test_removes_by_identity_not_equality(self):
        target = self._request()
        twin = self._request()  # equal fields, different object
        items = [twin, target]
        _remove_by_identity(items, target)
        assert items == [twin]
        assert items[0] is twin

    def test_missing_target_raises(self):
        with pytest.raises(ValueError, match="not in list"):
            _remove_by_identity([self._request(1)], self._request(2))
