"""Admission policy: FCFS + iteration-level continuous batching."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.serving.scheduler import ContinuousBatchingScheduler, ServingConfig


def _request(request_id, arrival):
    return Request(
        request_id=request_id,
        prompt_tokens=np.arange(4),
        decode_steps=2,
        arrival_time=arrival,
    )


class TestServingConfig:
    def test_zero_batch_rejected(self):
        with pytest.raises(ConfigError):
            ServingConfig(max_batch_size=0)

    def test_bad_token_source_rejected(self):
        with pytest.raises(ConfigError):
            ServingConfig(decode_token_source="argmax")


class TestNextAction:
    def setup_method(self):
        self.scheduler = ContinuousBatchingScheduler(ServingConfig(max_batch_size=2))

    def test_arrived_request_admitted(self):
        request = _request(0, arrival=1.0)
        action = self.scheduler.next_action(2.0, [request], num_running=0)
        assert action.kind == "admit"
        assert action.request is request
        assert action.not_before == pytest.approx(2.0)

    def test_idle_platform_jumps_to_future_arrival(self):
        request = _request(0, arrival=5.0)
        action = self.scheduler.next_action(1.0, [request], num_running=0)
        assert action.kind == "admit"
        assert action.not_before == pytest.approx(5.0)

    def test_future_arrival_does_not_stall_running_batch(self):
        request = _request(0, arrival=5.0)
        action = self.scheduler.next_action(1.0, [request], num_running=1)
        assert action.kind == "decode"

    def test_full_batch_decodes_before_admitting(self):
        request = _request(0, arrival=0.0)
        action = self.scheduler.next_action(1.0, [request], num_running=2)
        assert action.kind == "decode"

    def test_empty_queue_with_running_decodes(self):
        assert self.scheduler.next_action(1.0, [], num_running=1).kind == "decode"

    def test_nothing_to_do_returns_none(self):
        assert self.scheduler.next_action(1.0, [], num_running=0) is None

    def test_fcfs_head_of_line(self):
        first, second = _request(0, arrival=0.1), _request(1, arrival=0.2)
        action = self.scheduler.next_action(1.0, [first, second], num_running=0)
        assert action.request is first
