"""Admission policy: priority-then-FCFS + continuous batching decisions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.request import Request, RequestStatus
from repro.serving.scheduler import ContinuousBatchingScheduler, ServingConfig


def _request(request_id, arrival, priority="batch", decode_steps=2, prompt_len=4):
    return Request(
        request_id=request_id,
        prompt_tokens=np.arange(prompt_len),
        decode_steps=decode_steps,
        arrival_time=arrival,
        priority=priority,
    )


def _running(*requests):
    for request in requests:
        request.status = RequestStatus.DECODING
    return list(requests)


def _preempted(*requests):
    for request in requests:
        request.status = RequestStatus.PREEMPTED
    return list(requests)


class TestServingConfig:
    def test_zero_batch_rejected(self):
        with pytest.raises(ConfigError):
            ServingConfig(max_batch_size=0)

    def test_bad_token_source_rejected(self):
        with pytest.raises(ConfigError):
            ServingConfig(decode_token_source="argmax")

    def test_zero_chunk_rejected(self):
        with pytest.raises(ConfigError):
            ServingConfig(prefill_chunk_tokens=0)

    def test_defaults_are_fcfs(self):
        config = ServingConfig()
        assert config.prefill_chunk_tokens is None
        assert config.preemption is False


class TestNextAction:
    def setup_method(self):
        self.scheduler = ContinuousBatchingScheduler(ServingConfig(max_batch_size=2))

    def test_arrived_request_admitted(self):
        request = _request(0, arrival=1.0)
        action = self.scheduler.next_action(2.0, [request], [])
        assert action.kind == "admit"
        assert action.request is request
        assert action.not_before == pytest.approx(2.0)

    def test_idle_platform_jumps_to_future_arrival(self):
        request = _request(0, arrival=5.0)
        action = self.scheduler.next_action(1.0, [request], [])
        assert action.kind == "admit"
        assert action.not_before == pytest.approx(5.0)

    def test_future_arrival_does_not_stall_running_batch(self):
        request = _request(0, arrival=5.0)
        action = self.scheduler.next_action(1.0, [request], _running(_request(9, 0.0)))
        assert action.kind == "decode"

    def test_full_batch_decodes_before_admitting(self):
        request = _request(0, arrival=0.0)
        running = _running(_request(8, 0.0), _request(9, 0.0))
        action = self.scheduler.next_action(1.0, [request], running)
        assert action.kind == "decode"

    def test_empty_queue_with_running_decodes(self):
        action = self.scheduler.next_action(1.0, [], _running(_request(9, 0.0)))
        assert action.kind == "decode"

    def test_nothing_to_do_returns_none(self):
        assert self.scheduler.next_action(1.0, [], []) is None

    def test_fcfs_head_of_line(self):
        first, second = _request(0, arrival=0.1), _request(1, arrival=0.2)
        action = self.scheduler.next_action(1.0, [first, second], [])
        assert action.request is first


class TestPriorityAdmission:
    def setup_method(self):
        self.scheduler = ContinuousBatchingScheduler(ServingConfig(max_batch_size=2))

    def test_interactive_jumps_batch_queue(self):
        batch = _request(0, arrival=0.1, priority="batch")
        interactive = _request(1, arrival=0.2, priority="interactive")
        action = self.scheduler.next_action(1.0, [batch, interactive], [])
        assert action.kind == "admit"
        assert action.request is interactive

    def test_fcfs_within_class(self):
        first = _request(0, arrival=0.1, priority="interactive")
        second = _request(1, arrival=0.2, priority="interactive")
        action = self.scheduler.next_action(1.0, [first, second], [])
        assert action.request is first

    def test_unarrived_interactive_does_not_block_arrived_batch(self):
        batch = _request(0, arrival=0.1, priority="batch")
        interactive = _request(1, arrival=9.0, priority="interactive")
        action = self.scheduler.next_action(1.0, [batch, interactive], [])
        assert action.request is batch

    def test_idle_jump_targets_earliest_arrival_not_priority(self):
        batch = _request(0, arrival=2.0, priority="batch")
        interactive = _request(1, arrival=5.0, priority="interactive")
        action = self.scheduler.next_action(1.0, [batch, interactive], [])
        assert action.request is batch
        assert action.not_before == pytest.approx(2.0)

    def test_unknown_priority_rejected(self):
        with pytest.raises(ConfigError):
            _request(0, arrival=0.0, priority="urgent")


class TestChunkedPrefillDecisions:
    def setup_method(self):
        self.scheduler = ContinuousBatchingScheduler(
            ServingConfig(max_batch_size=2, prefill_chunk_tokens=4)
        )

    def test_chunk_rides_decode_while_batch_active(self):
        """With decoders present, the slice fuses into the decode step
        (a hybrid step) — the policy just says 'decode'."""
        prefilling = _request(0, arrival=0.0, prompt_len=16)
        running = _running(_request(1, 0.0))
        action = self.scheduler.next_action(
            1.0, [], running, prefilling=prefilling
        )
        assert action.kind == "decode"

    def test_remainder_runs_when_nothing_decodes(self):
        prefilling = _request(0, arrival=0.0, prompt_len=16)
        action = self.scheduler.next_action(1.0, [], [], prefilling=prefilling)
        assert action.kind == "prefill"
        assert action.request is prefilling

    def test_no_admission_while_prefill_in_progress(self):
        prefilling = _request(0, arrival=0.0, prompt_len=16)
        queued = [_request(1, arrival=0.0, priority="interactive")]
        action = self.scheduler.next_action(
            1.0, queued, [], prefilling=prefilling
        )
        assert action.kind == "prefill"

    def test_prefilling_counts_against_batch_ceiling(self):
        scheduler = ContinuousBatchingScheduler(
            ServingConfig(max_batch_size=2, prefill_chunk_tokens=4)
        )
        queued = [_request(2, arrival=0.0)]
        running = _running(_request(1, 0.0))
        # One decoding + one just-finished prefill = full; next action
        # must decode, not admit.
        action = scheduler.next_action(
            1.0, queued, running + _running(_request(0, 0.0)), prefilling=None
        )
        assert action.kind == "decode"


class TestPreemptionDecisions:
    def setup_method(self):
        self.scheduler = ContinuousBatchingScheduler(
            ServingConfig(max_batch_size=2, preemption=True)
        )

    def test_interactive_arrival_preempts_newest_batch_victim(self):
        old = _request(0, arrival=0.0, priority="batch")
        new = _request(1, arrival=0.5, priority="batch")
        interactive = _request(2, arrival=1.0, priority="interactive")
        action = self.scheduler.next_action(2.0, [interactive], _running(old, new))
        assert action.kind == "preempt"
        assert action.request is new

    def test_equal_priority_does_not_preempt(self):
        running = _running(
            _request(0, 0.0, priority="batch"), _request(1, 0.0, priority="batch")
        )
        queued = [_request(2, arrival=1.0, priority="batch")]
        action = self.scheduler.next_action(2.0, queued, running)
        assert action.kind == "decode"

    def test_interactive_running_not_preempted_by_interactive(self):
        running = _running(
            _request(0, 0.0, priority="interactive"),
            _request(1, 0.0, priority="interactive"),
        )
        queued = [_request(2, arrival=1.0, priority="interactive")]
        action = self.scheduler.next_action(2.0, queued, running)
        assert action.kind == "decode"

    def test_unarrived_interactive_does_not_preempt(self):
        running = _running(
            _request(0, 0.0, priority="batch"), _request(1, 0.0, priority="batch")
        )
        queued = [_request(2, arrival=9.0, priority="interactive")]
        action = self.scheduler.next_action(2.0, queued, running)
        assert action.kind == "decode"

    def test_preemption_disabled_by_default(self):
        scheduler = ContinuousBatchingScheduler(ServingConfig(max_batch_size=2))
        running = _running(
            _request(0, 0.0, priority="batch"), _request(1, 0.0, priority="batch")
        )
        queued = [_request(2, arrival=1.0, priority="interactive")]
        assert scheduler.next_action(2.0, queued, running).kind == "decode"

    def test_paused_request_resumes_when_slot_frees(self):
        paused = _preempted(_request(0, 0.0, priority="batch"))
        action = self.scheduler.next_action(
            2.0, [], _running(_request(1, 0.0)), preempted=paused
        )
        assert action.kind == "resume"
        assert action.request is paused[0]

    def test_arrived_higher_priority_beats_resumption(self):
        paused = _preempted(_request(0, 0.0, priority="batch"))
        queued = [_request(2, arrival=1.0, priority="interactive")]
        action = self.scheduler.next_action(
            2.0, queued, _running(_request(1, 0.0)), preempted=paused
        )
        assert action.kind == "admit"
        assert action.request is queued[0]

    def test_resumption_beats_later_equal_priority_arrival(self):
        paused = _preempted(_request(0, 0.0, priority="batch"))
        queued = [_request(2, arrival=1.0, priority="batch")]
        action = self.scheduler.next_action(
            2.0, queued, _running(_request(1, 0.0)), preempted=paused
        )
        assert action.kind == "resume"
        assert action.request is paused[0]

    def test_warm_engine_shift_does_not_break_fcfs_within_class(self):
        """A preempted request's arrival was shifted onto the warm
        clock at admission; ordering must still use the trace-relative
        instant, or later arrivals would overtake it."""
        paused = _preempted(_request(0, arrival=0.1, priority="batch"))
        # Simulate admission on a warm engine with origin 2.0.
        paused[0].arrival_shift = 2.0
        paused[0].arrival_time += 2.0
        queued = [_request(2, arrival=1.5, priority="batch")]
        action = self.scheduler.next_action(
            3.0, queued, _running(_request(1, 0.0)), preempted=paused
        )
        assert action.kind == "resume"
        assert action.request is paused[0]
