"""Request lifecycle container semantics."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.serving.request import Request, RequestStatus
from repro.workloads.generator import serving_workload


def _request(**overrides):
    defaults = dict(
        request_id=0,
        prompt_tokens=np.arange(8),
        decode_steps=4,
        arrival_time=0.5,
    )
    defaults.update(overrides)
    return Request(**defaults)


class TestValidation:
    def test_fresh_request_is_queued(self):
        request = _request()
        assert request.status is RequestStatus.QUEUED
        assert request.prompt_len == 8
        assert not request.is_finished

    def test_empty_prompt_rejected(self):
        with pytest.raises(ConfigError):
            _request(prompt_tokens=np.array([], dtype=np.int64))

    def test_2d_prompt_rejected(self):
        with pytest.raises(ConfigError):
            _request(prompt_tokens=np.zeros((2, 4), dtype=np.int64))

    def test_negative_decode_steps_rejected(self):
        with pytest.raises(ConfigError):
            _request(decode_steps=-1)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigError):
            _request(arrival_time=-0.1)

    def test_prompt_cast_to_int64(self):
        request = _request(prompt_tokens=[1, 2, 3])
        assert request.prompt_tokens.dtype == np.int64


class TestRecord:
    def test_to_record_before_finish_raises(self):
        with pytest.raises(SimulationError):
            _request().to_record()

    def test_record_latency_derivations(self):
        request = _request()
        request.status = RequestStatus.FINISHED
        request.prefill_start = 0.7
        request.first_token_time = 1.0
        request.finish_time = 2.0
        request.tbt_values = [0.1, 0.3]
        record = request.to_record()
        assert record.queueing_delay == pytest.approx(0.2)
        assert record.ttft == pytest.approx(0.5)
        assert record.e2e_latency == pytest.approx(1.5)
        assert record.decode_tokens == 2
        assert record.p50_tbt == pytest.approx(0.2)
        row = record.summary()
        assert {"queue_delay_s", "ttft_s", "p99_tbt_s", "e2e_s"} <= set(row)


class TestFromWorkload:
    def test_trace_entries_map_to_requests(self):
        trace = serving_workload(num_requests=3, arrival_rate=2.0, decode_steps=5, seed=1)
        requests = [Request.from_workload(i, entry) for i, entry in enumerate(trace)]
        for i, (request, entry) in enumerate(zip(requests, trace)):
            assert request.request_id == i
            assert request.arrival_time == entry.arrival_time
            assert request.decode_steps == 5
            assert request.sample_seed == i
            np.testing.assert_array_equal(
                request.prompt_tokens, entry.workload.prompt_tokens
            )
