"""Behavioural contracts of the four baseline strategies."""

import numpy as np

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_strategy
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel


def _engine(tiny_config, strategy_name, cache_ratio=0.5, **strategy_kwargs):
    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=cache_ratio, seed=0, profile_prompt_len=8, profile_decode_steps=2
    )
    return InferenceEngine(
        model, make_strategy(strategy_name, **strategy_kwargs), paper_testbed(), config
    )


class TestKTransformers:
    def test_static_cache_never_changes(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "ktransformers")
        before = engine.runtime.cache.resident_keys
        engine.generate(prompt_tokens, decode_steps=4)
        assert engine.runtime.cache.resident_keys == before

    def test_decode_uses_cpu_not_transfers(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "ktransformers", cache_ratio=0.25)
        engine.generate(prompt_tokens, decode_steps=4)
        pcie = engine.runtime.clock.pcie.intervals
        prefill_end = engine.runtime.clock.cpu.intervals  # decode uses CPU
        # After prefill, no further transfers (CPU computes misses).
        result_labels = [iv.label for iv in pcie]
        assert all("prefetch" not in label for label in result_labels)
        assert any(iv.label.startswith("cpu") or True for iv in prefill_end)

    def test_pinned_count_matches_capacity(self, tiny_config):
        engine = _engine(tiny_config, "ktransformers", cache_ratio=0.25)
        assert len(engine.runtime.cache.pinned_keys) == engine.runtime.capacity


class TestLlamaCpp:
    def test_layer_split_matches_ratio(self, tiny_config):
        engine = _engine(tiny_config, "llamacpp", cache_ratio=0.34)
        strategy = engine.strategy
        expected = int(round(0.34 * tiny_config.num_layers))
        assert len(strategy.gpu_layers) == expected

    def test_no_transfers_at_all(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "llamacpp")
        engine.generate(prompt_tokens, decode_steps=4)
        assert engine.runtime.clock.pcie.intervals == []

    def test_cpu_layers_use_cpu_attention(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "llamacpp", cache_ratio=0.34)
        engine.generate(prompt_tokens, decode_steps=1)
        cpu_labels = [iv.label for iv in engine.runtime.clock.cpu.intervals]
        assert any(label.startswith("attn") for label in cpu_labels)

    def test_gpu_layer_runs_fully_on_gpu(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "llamacpp", cache_ratio=1.0)
        engine.generate(prompt_tokens, decode_steps=1)
        assert engine.runtime.clock.cpu.intervals == []


class TestAdapMoE:
    def test_never_uses_cpu_compute(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "adapmoe", cache_ratio=0.25)
        engine.generate(prompt_tokens, decode_steps=4)
        cpu_labels = [iv.label for iv in engine.runtime.clock.cpu.intervals]
        assert all(not label.startswith("cpu L") for label in cpu_labels)
        assert engine.runtime.clock.cpu.intervals == []

    def test_prefetches_next_layer(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "adapmoe", cache_ratio=0.25)
        engine.generate(prompt_tokens, decode_steps=4)
        labels = [iv.label for iv in engine.runtime.clock.pcie.intervals]
        assert any("prefetch" in label for label in labels)

    def test_transferred_experts_enter_lru_cache(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "adapmoe", cache_ratio=0.25)
        before = set(engine.runtime.cache.resident_keys)
        engine.generate(prompt_tokens, decode_steps=4)
        after = set(engine.runtime.cache.resident_keys)
        assert after != before  # dynamic cache evolved


class TestOnDemand:
    def test_no_prefetch_no_cpu(self, tiny_config, prompt_tokens):
        engine = _engine(tiny_config, "ondemand", cache_ratio=0.25)
        engine.generate(prompt_tokens, decode_steps=4)
        labels = [iv.label for iv in engine.runtime.clock.pcie.intervals]
        assert labels and all("prefetch" not in label for label in labels)
        assert engine.runtime.clock.cpu.intervals == []


class TestCrossStrategyOrdering:
    """Coarse performance relationships the paper reports (Fig. 7/8)."""

    def test_llamacpp_worst_at_prefill(self, tiny_config):
        prompt = np.arange(64)
        latencies = {}
        for name in ("llamacpp", "ktransformers", "hybrimoe"):
            engine = _engine(tiny_config, name, cache_ratio=0.25)
            latencies[name] = engine.generate(prompt).ttft
        assert latencies["llamacpp"] > latencies["ktransformers"]
        assert latencies["llamacpp"] > latencies["hybrimoe"]

    def test_hybrimoe_beats_ktransformers_decode(self, tiny_config):
        prompt = np.arange(16)
        tbt = {}
        for name in ("ktransformers", "hybrimoe"):
            engine = _engine(tiny_config, name, cache_ratio=0.25)
            tbt[name] = engine.generate(prompt, decode_steps=8).mean_tbt
        assert tbt["hybrimoe"] <= tbt["ktransformers"] * 1.05

    def test_hybrimoe_beats_ondemand_decode(self, tiny_config):
        prompt = np.arange(16)
        tbt = {}
        for name in ("ondemand", "hybrimoe"):
            engine = _engine(tiny_config, name, cache_ratio=0.25)
            tbt[name] = engine.generate(prompt, decode_steps=8).mean_tbt
        assert tbt["hybrimoe"] < tbt["ondemand"]
