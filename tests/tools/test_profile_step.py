"""Smoke test for the step profiler's structured report.

``tools/profile_step.py`` is a debugging entry point, not library
code, so one fast end-to-end pass is enough: profile a handful of
decode steps on both engine cores and pin the report shape the CI
docs job (and any tooling) consumes.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from profile_step import profile_report  # noqa: E402


def test_report_shape_and_sanity():
    report = profile_report(steps=5, num_layers=2, cache_ratio=0.5, top=5)
    assert report["steps"] == 5
    assert report["model"] == "deepseek"
    assert report["strategy"] == "hybrimoe"
    for core in ("fast", "reference"):
        block = report[core]
        assert block["elapsed_s"] > 0.0
        assert block["steps_per_s"] > 0.0
        assert 0 < len(block["top"]) <= 5
        for row in block["top"]:
            assert set(row) == {"function", "ncalls", "tottime_s", "cumtime_s"}
            assert row["ncalls"] >= 1
            assert row["tottime_s"] >= 0.0
            assert row["cumtime_s"] >= 0.0


def test_top_rows_follow_sort_order():
    report = profile_report(steps=2, num_layers=2, cache_ratio=0.5, top=10)
    cumtimes = [row["cumtime_s"] for row in report["fast"]["top"]]
    assert cumtimes == sorted(cumtimes, reverse=True)
