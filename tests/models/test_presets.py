"""Table II presets must match the paper exactly."""

import pytest

from repro.errors import ConfigError
from repro.models.config import ExpertShape
from repro.models.presets import MODEL_PRESETS, get_preset


class TestTableII:
    """Each assertion mirrors one cell of paper Table II."""

    def test_mixtral_architecture(self):
        config = get_preset("mixtral")
        assert config.num_layers == 32
        assert config.num_shared_experts == 0
        assert config.num_routed_experts == 8
        assert config.num_activated_experts == 2
        assert config.routed_expert_shape == ExpertShape(4096, 14336)
        assert config.shared_expert_shape is None

    def test_qwen2_architecture(self):
        config = get_preset("qwen2")
        assert config.num_layers == 28
        assert config.num_shared_experts == 1
        assert config.num_routed_experts == 64
        assert config.num_activated_experts == 8
        assert config.routed_expert_shape == ExpertShape(3584, 18944)
        assert config.shared_expert_shape == ExpertShape(3584, 20480)

    def test_deepseek_architecture(self):
        config = get_preset("deepseek")
        assert config.num_layers == 26
        assert config.num_shared_experts == 2
        assert config.num_routed_experts == 64
        assert config.num_activated_experts == 6
        assert config.routed_expert_shape == ExpertShape(2048, 1408)
        assert config.shared_expert_shape == ExpertShape(2048, 1408)


class TestRegistry:
    def test_all_presets_constructible(self):
        for name in MODEL_PRESETS:
            assert get_preset(name).name == name

    def test_layer_override(self):
        assert get_preset("mixtral", num_layers=4).num_layers == 4

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigError, match="unknown model preset"):
            get_preset("gpt5")

    def test_mixtral_expert_is_largest(self):
        mixtral = get_preset("mixtral").routed_expert_shape.param_count
        deepseek = get_preset("deepseek").routed_expert_shape.param_count
        assert mixtral > 20 * deepseek
