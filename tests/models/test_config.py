"""Unit tests for model architecture configuration."""

import pytest

from repro.errors import ConfigError
from repro.models.config import ExpertShape, MoEModelConfig


class TestExpertShape:
    def test_param_count_is_three_swiglu_matrices(self):
        shape = ExpertShape(4, 8)
        assert shape.param_count == 3 * 4 * 8

    def test_flops_per_token_is_two_per_mac(self):
        shape = ExpertShape(4, 8)
        assert shape.flops_per_token() == 2 * shape.param_count

    @pytest.mark.parametrize("d_model,d_ff", [(0, 8), (4, 0), (-1, 8), (4, -2)])
    def test_rejects_non_positive_dims(self, d_model, d_ff):
        with pytest.raises(ConfigError):
            ExpertShape(d_model, d_ff)


class TestMoEModelConfig:
    def _config(self, **overrides):
        defaults = dict(
            name="m",
            num_layers=4,
            num_shared_experts=0,
            num_routed_experts=8,
            num_activated_experts=2,
            routed_expert_shape=ExpertShape(16, 32),
            shared_expert_shape=None,
        )
        defaults.update(overrides)
        return MoEModelConfig(**defaults)

    def test_total_routed_experts(self):
        assert self._config().total_routed_experts == 32

    def test_has_shared_experts_false_without_shared(self):
        assert not self._config().has_shared_experts

    def test_has_shared_experts_true_with_shared(self):
        config = self._config(
            num_shared_experts=2, shared_expert_shape=ExpertShape(16, 32)
        )
        assert config.has_shared_experts

    def test_shared_without_shape_rejected(self):
        with pytest.raises(ConfigError):
            self._config(num_shared_experts=1, shared_expert_shape=None)

    def test_zero_layers_rejected(self):
        with pytest.raises(ConfigError):
            self._config(num_layers=0)

    def test_activated_beyond_pool_rejected(self):
        with pytest.raises(ConfigError):
            self._config(num_activated_experts=9)

    def test_zero_activated_rejected(self):
        with pytest.raises(ConfigError):
            self._config(num_activated_experts=0)

    def test_negative_shared_rejected(self):
        with pytest.raises(ConfigError):
            self._config(num_shared_experts=-1)

    def test_with_layers_returns_renamed_copy(self):
        reduced = self._config().with_layers(2)
        assert reduced.num_layers == 2
        assert "l2" in reduced.name

    def test_total_expert_params_counts_shared(self):
        base = self._config()
        with_shared = self._config(
            num_shared_experts=1, shared_expert_shape=ExpertShape(16, 32)
        )
        extra = with_shared.total_expert_params() - base.total_expert_params()
        assert extra == 4 * ExpertShape(16, 32).param_count

    def test_describe_mentions_name_and_counts(self):
        text = self._config().describe()
        assert "m" in text and "8 routed" in text
