"""Unit and property tests for softmax top-K routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigError
from repro.models.gating import route_tokens, softmax, top_k_indices


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-6)

    def test_handles_large_logits_without_overflow(self):
        out = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] > 0.999

    def test_invariant_to_constant_shift(self):
        x = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(x), softmax(x + 5.0), rtol=1e-6)


class TestTopK:
    def test_selects_largest(self):
        scores = np.array([[0.1, 0.5, 0.2, 0.2]])
        idx = top_k_indices(scores, 2)
        assert idx[0, 0] == 1

    def test_tie_break_prefers_lower_index(self):
        scores = np.array([[0.3, 0.3, 0.4]])
        idx = top_k_indices(scores, 2)
        assert list(idx[0]) == [2, 0]

    def test_k_equals_n(self):
        scores = np.array([[0.2, 0.3, 0.5]])
        idx = top_k_indices(scores, 3)
        assert sorted(idx[0]) == [0, 1, 2]

    @pytest.mark.parametrize("k", [0, 5, -1])
    def test_invalid_k_rejected(self, k):
        with pytest.raises(ConfigError):
            top_k_indices(np.ones((2, 4)), k)

    def test_requires_2d(self):
        with pytest.raises(ConfigError):
            top_k_indices(np.ones(4), 1)


class TestRouteTokens:
    def test_weights_sum_to_one_per_token(self):
        scores = softmax(np.random.default_rng(2).normal(size=(6, 8)))
        router = route_tokens(scores, 3)
        np.testing.assert_allclose(router.topk_weights.sum(axis=1), 1.0, rtol=1e-6)

    def test_loads_count_assignments(self):
        scores = softmax(np.random.default_rng(3).normal(size=(10, 4)))
        router = route_tokens(scores, 2)
        assert router.loads.sum() == 10 * 2

    def test_tokens_for_expert_matches_topk(self):
        scores = softmax(np.random.default_rng(4).normal(size=(8, 5)))
        router = route_tokens(scores, 2)
        for expert in router.activated_experts():
            rows = router.tokens_for_expert(expert)
            assert len(rows) == router.loads[expert]
            for row in rows:
                assert expert in router.topk_idx[row]

    def test_weights_for_expert_positive(self):
        scores = softmax(np.random.default_rng(5).normal(size=(8, 5)))
        router = route_tokens(scores, 2)
        for expert in router.activated_experts():
            assert (router.weights_for_expert(expert) > 0).all()

    def test_mean_scores_shape(self):
        scores = softmax(np.random.default_rng(6).normal(size=(4, 9)))
        router = route_tokens(scores, 2)
        assert router.mean_scores().shape == (9,)

    @given(
        logits=arrays(
            np.float64,
            (7, 6),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        k=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_every_token_gets_k_distinct_experts(self, logits, k):
        router = route_tokens(softmax(logits), k)
        for row in router.topk_idx:
            assert len(set(int(e) for e in row)) == k

    @given(
        logits=arrays(
            np.float64,
            (5, 8),
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        k=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_load_conservation(self, logits, k):
        router = route_tokens(softmax(logits), k)
        assert int(router.loads.sum()) == 5 * k
        assert len(router.activated_experts()) <= min(8, 5 * k)
