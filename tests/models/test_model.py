"""Tests of the functional reference model and its routing dynamics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.model import ReferenceMoEModel
from repro.rng import derive_rng


class TestConstruction:
    def test_invalid_compute_dims(self, tiny_config):
        with pytest.raises(ConfigError):
            ReferenceMoEModel(tiny_config, d_model=0)

    def test_invalid_vocab(self, tiny_config):
        with pytest.raises(ConfigError):
            ReferenceMoEModel(tiny_config, vocab_size=1)

    def test_invalid_temperature(self, tiny_config):
        with pytest.raises(ConfigError):
            ReferenceMoEModel(tiny_config, gate_temperature=0.0)

    def test_invalid_coherence(self, tiny_config):
        with pytest.raises(ConfigError):
            ReferenceMoEModel(tiny_config, input_coherence=1.0)

    def test_same_seed_same_weights(self, tiny_config, prompt_tokens):
        a = ReferenceMoEModel(tiny_config, seed=3)
        b = ReferenceMoEModel(tiny_config, seed=3)
        ha, _, _ = a.forward(prompt_tokens)
        hb, _, _ = b.forward(prompt_tokens)
        np.testing.assert_array_equal(ha, hb)

    def test_different_seed_different_weights(self, tiny_config, prompt_tokens):
        a = ReferenceMoEModel(tiny_config, seed=3)
        b = ReferenceMoEModel(tiny_config, seed=4)
        ha, _, _ = a.forward(prompt_tokens)
        hb, _, _ = b.forward(prompt_tokens)
        assert not np.allclose(ha, hb)


class TestForward:
    def test_forward_shapes(self, tiny_model, prompt_tokens):
        hidden, routers, state = tiny_model.forward(prompt_tokens)
        assert hidden.shape == (prompt_tokens.size, tiny_model.d_model)
        assert len(routers) == tiny_model.config.num_layers
        assert state.position == prompt_tokens.size

    def test_router_outputs_match_architecture(self, tiny_model, prompt_tokens):
        _, routers, _ = tiny_model.forward(prompt_tokens)
        for router in routers:
            assert router.n_experts == tiny_model.config.num_routed_experts
            assert router.k == tiny_model.config.num_activated_experts

    def test_decode_continues_state(self, tiny_model, prompt_tokens):
        _, _, state = tiny_model.forward(prompt_tokens)
        _, _, state = tiny_model.forward(np.array([5]), state)
        assert state.position == prompt_tokens.size + 1

    def test_hidden_states_finite_through_depth(self, tiny_config, prompt_tokens):
        deep = ReferenceMoEModel(tiny_config.with_layers(24), seed=0)
        hidden, _, _ = deep.forward(prompt_tokens)
        assert np.isfinite(hidden).all()

    def test_tokens_taken_modulo_vocab(self, tiny_model):
        a = tiny_model.embed(np.array([1]))
        b = tiny_model.embed(np.array([1 + tiny_model.vocab_size]))
        np.testing.assert_array_equal(a, b)

    def test_rejects_2d_tokens(self, tiny_model):
        with pytest.raises(ConfigError):
            tiny_model.embed(np.ones((2, 2), dtype=np.int64))


class TestMoEDecomposition:
    """Per-expert execution must recombine to the reference output."""

    def test_moe_forward_equals_manual_accumulation(self, tiny_model, prompt_tokens):
        state = tiny_model.new_state()
        x = tiny_model.prepare_inputs(prompt_tokens, state)
        h = tiny_model.attention(x, 0, state)
        z = tiny_model.moe_input(h)
        router = tiny_model.route(z, 0)
        reference = tiny_model.moe_forward(z, 0, router)
        manual = np.zeros_like(z)
        for expert in router.activated_experts():
            rows = router.tokens_for_expert(expert)
            weights = router.weights_for_expert(expert)
            out = tiny_model.expert_forward(z[rows], 0, expert)
            np.add.at(manual, rows, out * weights[:, None].astype(z.dtype))
        np.testing.assert_allclose(manual, reference, rtol=1e-6)

    def test_shared_forward_zero_without_shared(self, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, num_shared_experts=0, shared_expert_shape=None)
        model = ReferenceMoEModel(config, seed=0)
        z = derive_rng(0, "z").normal(size=(4, model.d_model)).astype(np.float32)
        assert np.allclose(model.shared_forward(z, 0), 0.0)


class TestRoutingDynamics:
    """The emergent statistics the paper's techniques rely on."""

    def test_gate_scores_rows_sum_to_one(self, tiny_model, prompt_tokens):
        state = tiny_model.new_state()
        x = tiny_model.prepare_inputs(prompt_tokens, state)
        z = tiny_model.moe_input(tiny_model.attention(x, 0, state))
        scores = tiny_model.gate_scores(z, 2)
        np.testing.assert_allclose(scores.sum(axis=1), 1.0, rtol=1e-5)

    def test_gate_scores_layer_out_of_range(self, tiny_model):
        z = np.zeros((1, tiny_model.d_model), dtype=np.float32)
        with pytest.raises(ConfigError):
            tiny_model.gate_scores(z, tiny_model.config.num_layers)

    def test_input_coherence_raises_step_correlation(self, tiny_config):
        """Higher coherence => higher consecutive-step score correlation."""

        def mean_corr(coherence: float) -> float:
            model = ReferenceMoEModel(
                tiny_config, seed=0, input_coherence=coherence
            )
            rng = derive_rng(1, "tokens")
            state = None
            prev, corrs = None, []
            _, _, state = model.forward(np.arange(8), state)
            for _ in range(12):
                token = int(rng.integers(0, model.vocab_size))
                _, routers, state = model.forward(np.array([token]), state)
                current = routers[0].mean_scores()
                if prev is not None:
                    corrs.append(float(np.corrcoef(prev, current)[0, 1]))
                prev = current
            return float(np.mean(corrs))

        assert mean_corr(0.8) > mean_corr(0.0)

    def test_sampled_decode_does_not_fixate(self, tiny_model, prompt_tokens):
        hidden, _, state = tiny_model.forward(prompt_tokens)
        rng = derive_rng(2, "sample")
        tokens = []
        last = hidden[-1]
        for _ in range(12):
            token = tiny_model.sample_next_token(last, rng)
            tokens.append(token)
            hidden, _, state = tiny_model.forward(np.array([token]), state)
            last = hidden[-1]
        assert len(set(tokens)) > 3

    def test_sample_rejects_bad_temperature(self, tiny_model, prompt_tokens):
        hidden, _, _ = tiny_model.forward(prompt_tokens)
        with pytest.raises(ConfigError):
            tiny_model.sample_next_token(hidden[-1], derive_rng(0, "s"), temperature=0)

    def test_greedy_next_token_deterministic(self, tiny_model, prompt_tokens):
        hidden, _, _ = tiny_model.forward(prompt_tokens)
        assert tiny_model.greedy_next_token(hidden[-1]) == tiny_model.greedy_next_token(
            hidden[-1]
        )


class TestDecodeState:
    def test_clone_is_independent(self, tiny_model, prompt_tokens):
        _, _, state = tiny_model.forward(prompt_tokens)
        clone = state.clone()
        tiny_model.forward(np.array([3]), state)
        assert clone.position == prompt_tokens.size
        assert state.position == prompt_tokens.size + 1
