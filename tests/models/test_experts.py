"""Unit tests for SwiGLU expert kernels."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.experts import ExpertWeights, expert_forward, init_expert, silu
from repro.rng import derive_rng


class TestSilu:
    def test_zero_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_approaches_identity_for_large_positive(self):
        np.testing.assert_allclose(silu(np.array([50.0]))[0], 50.0, rtol=1e-6)

    def test_no_overflow_for_large_negative(self):
        out = silu(np.array([-1e6]))
        assert np.isfinite(out).all()
        assert abs(out[0]) < 1e-3 or out[0] <= 0.0


class TestExpertWeights:
    def test_shape_validation_w_up(self):
        rng = derive_rng(0, "t")
        with pytest.raises(ConfigError):
            ExpertWeights(
                w_gate=rng.normal(size=(4, 8)),
                w_up=rng.normal(size=(4, 7)),
                w_down=rng.normal(size=(8, 4)),
            )

    def test_shape_validation_w_down(self):
        rng = derive_rng(0, "t")
        with pytest.raises(ConfigError):
            ExpertWeights(
                w_gate=rng.normal(size=(4, 8)),
                w_up=rng.normal(size=(4, 8)),
                w_down=rng.normal(size=(4, 8)),
            )

    def test_param_count(self):
        weights = init_expert(derive_rng(0, "t"), 4, 8)
        assert weights.param_count == 3 * 4 * 8


class TestInitExpert:
    def test_deterministic_given_rng_seed(self):
        a = init_expert(derive_rng(7, "e"), 8, 16)
        b = init_expert(derive_rng(7, "e"), 8, 16)
        np.testing.assert_array_equal(a.w_gate, b.w_gate)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigError):
            init_expert(derive_rng(0, "e"), 0, 4)

    def test_output_magnitude_bounded(self):
        """Unit-RMS input must map to O(1) output (stable residuals)."""
        weights = init_expert(derive_rng(3, "e"), 64, 128)
        x = derive_rng(4, "x").normal(size=(32, 64))
        x /= np.sqrt(np.mean(x**2, axis=-1, keepdims=True))
        out = expert_forward(x, weights)
        rms = float(np.sqrt(np.mean(out**2)))
        assert 0.05 < rms < 5.0


class TestExpertForward:
    def test_matches_manual_swiglu(self):
        weights = init_expert(derive_rng(5, "e"), 4, 8)
        x = derive_rng(6, "x").normal(size=(3, 4))
        expected = (silu(x @ weights.w_gate) * (x @ weights.w_up)) @ weights.w_down
        np.testing.assert_allclose(expert_forward(x, weights), expected)

    def test_batch_consistency(self):
        """Row-wise application equals batched application."""
        weights = init_expert(derive_rng(8, "e"), 4, 8)
        x = derive_rng(9, "x").normal(size=(5, 4))
        batched = expert_forward(x, weights)
        rows = np.vstack([expert_forward(x[i : i + 1], weights) for i in range(5)])
        np.testing.assert_allclose(batched, rows, rtol=1e-12)

    def test_wrong_width_rejected(self):
        weights = init_expert(derive_rng(10, "e"), 4, 8)
        with pytest.raises(ConfigError):
            expert_forward(np.ones((2, 5)), weights)

    def test_one_dim_input_rejected(self):
        weights = init_expert(derive_rng(11, "e"), 4, 8)
        with pytest.raises(ConfigError):
            expert_forward(np.ones(4), weights)
