"""Cost-model semantics: roofline shapes, calibration, noise."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hardware.cost_model import (
    AnalyticCostModel,
    HardwareProfile,
    NoisyCostModel,
)
from repro.hardware.platform_presets import paper_testbed
from repro.models.config import ExpertShape
from repro.models.presets import get_preset


@pytest.fixture
def cost() -> AnalyticCostModel:
    return AnalyticCostModel(paper_testbed())


SHAPE = ExpertShape(2048, 1408)


class TestProfileValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError):
            HardwareProfile(
                name="bad",
                gpu_flops=-1,
                gpu_mem_bw=1,
                gpu_overhead_s=0,
                cpu_flops=1,
                cpu_mem_bw=1,
                cpu_task_overhead_s=0,
                cpu_warmup_s=0,
                pcie_bw=1,
                pcie_latency_s=0,
            )

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigError):
            HardwareProfile(
                name="bad",
                gpu_flops=1,
                gpu_mem_bw=1,
                gpu_overhead_s=-1,
                cpu_flops=1,
                cpu_mem_bw=1,
                cpu_task_overhead_s=0,
                cpu_warmup_s=0,
                pcie_bw=1,
                pcie_latency_s=0,
            )


class TestRooflineShapes:
    """The Fig. 3e/f shapes every scheduling decision relies on."""

    def test_gpu_flat_at_small_loads(self, cost):
        t1 = cost.gpu_expert_time(SHAPE, 1)
        t16 = cost.gpu_expert_time(SHAPE, 16)
        assert t16 == pytest.approx(t1, rel=0.01)

    def test_cpu_grows_linearly(self, cost):
        t64 = cost.cpu_expert_time(SHAPE, 64)
        t256 = cost.cpu_expert_time(SHAPE, 256)
        assert t256 / t64 == pytest.approx(4.0, rel=0.15)

    def test_cpu_gpu_crossover_exists(self, cost):
        """CPU wins at a single token (no transfer), GPU wins at batch."""
        single_cpu = cost.cpu_expert_time(SHAPE, 1)
        single_gpu_with_load = cost.gpu_expert_time(SHAPE, 1) + cost.transfer_time(SHAPE)
        assert single_cpu < single_gpu_with_load
        batch_cpu = cost.cpu_expert_time(SHAPE, 512)
        batch_gpu_with_load = cost.gpu_expert_time(SHAPE, 512) + cost.transfer_time(SHAPE)
        assert batch_gpu_with_load < batch_cpu

    def test_first_task_warmup_penalty(self, cost):
        warm = cost.cpu_expert_time(SHAPE, 4, first_task=False)
        cold = cost.cpu_expert_time(SHAPE, 4, first_task=True)
        assert cold > warm

    def test_zero_tokens_is_free(self, cost):
        assert cost.gpu_expert_time(SHAPE, 0) == 0.0
        assert cost.cpu_expert_time(SHAPE, 0) == 0.0
        assert cost.attention_time(512, 0) == 0.0

    def test_transfer_scales_with_bytes(self, cost):
        small = cost.transfer_time(get_preset("deepseek").routed_expert_shape)
        large = cost.transfer_time(get_preset("mixtral").routed_expert_shape)
        assert large > 10 * small

    def test_expert_bytes_match_quantisation(self, cost):
        bits = paper_testbed().bits_per_param
        assert cost.expert_bytes(SHAPE) == pytest.approx(SHAPE.param_count * bits / 8)

    def test_attention_cpu_slower_than_gpu(self, cost):
        assert cost.attention_time(4096, 128, "cpu") > cost.attention_time(
            4096, 128, "gpu"
        )

    def test_attention_rejects_unknown_device(self, cost):
        with pytest.raises(ConfigError):
            cost.attention_time(512, 4, "tpu")

    def test_negative_tokens_rejected(self, cost):
        with pytest.raises(ConfigError):
            cost.gpu_expert_time(SHAPE, -1)

    def test_device_dispatch(self, cost):
        assert cost.device_expert_time("gpu", SHAPE, 4) == cost.gpu_expert_time(SHAPE, 4)
        assert cost.device_expert_time("cpu", SHAPE, 4) == cost.cpu_expert_time(SHAPE, 4)
        with pytest.raises(ConfigError):
            cost.device_expert_time("npu", SHAPE, 4)

    @given(tokens=st.integers(1, 4096))
    @settings(max_examples=50, deadline=None)
    def test_property_durations_positive_and_monotone(self, tokens):
        cost = AnalyticCostModel(paper_testbed())
        assert cost.cpu_expert_time(SHAPE, tokens) > 0
        assert cost.gpu_expert_time(SHAPE, tokens) > 0
        assert cost.cpu_expert_time(SHAPE, tokens + 1) >= cost.cpu_expert_time(
            SHAPE, tokens
        )
        assert cost.gpu_expert_time(SHAPE, tokens + 1) >= cost.gpu_expert_time(
            SHAPE, tokens
        )


class TestNoisyCostModel:
    def test_zero_sigma_is_identity(self, cost):
        noisy = NoisyCostModel(cost, sigma=0.0)
        assert noisy.cpu_expert_time(SHAPE, 8) == cost.cpu_expert_time(SHAPE, 8)

    def test_noise_changes_durations(self, cost):
        noisy = NoisyCostModel(cost, sigma=0.2, seed=1)
        draws = {noisy.cpu_expert_time(SHAPE, 8) for _ in range(8)}
        assert len(draws) > 1

    def test_noise_preserves_positivity(self, cost):
        noisy = NoisyCostModel(cost, sigma=0.5, seed=2)
        for _ in range(50):
            assert noisy.transfer_time(SHAPE) > 0

    def test_negative_sigma_rejected(self, cost):
        with pytest.raises(ConfigError):
            NoisyCostModel(cost, sigma=-0.1)

    def test_bytes_not_jittered(self, cost):
        noisy = NoisyCostModel(cost, sigma=0.5, seed=3)
        assert noisy.expert_bytes(SHAPE) == cost.expert_bytes(SHAPE)
