"""Three-resource clock semantics (single- and multi-GPU)."""

import pytest

from repro.errors import SimulationError
from repro.hardware.simulator import Resource, ThreeResourceClock


class TestClock:
    def test_compute_frontier_ignores_pcie(self):
        clock = ThreeResourceClock()
        clock.gpu.reserve(0.0, 1.0, "g")
        clock.cpu.reserve(0.0, 2.0, "c")
        clock.pcie.reserve(0.0, 10.0, "x")
        assert clock.compute_frontier == pytest.approx(2.0)
        assert clock.frontier == pytest.approx(10.0)

    def test_timeline_lookup(self):
        clock = ThreeResourceClock()
        assert clock.timeline(Resource.GPU) is clock.gpu
        assert clock.timeline(Resource.CPU) is clock.cpu
        assert clock.timeline(Resource.PCIE) is clock.pcie

    def test_utilization_summary_keys(self):
        clock = ThreeResourceClock()
        clock.gpu.reserve(0.0, 1.0, "g")
        summary = clock.utilization_summary(0.0, 2.0)
        assert set(summary) == {"gpu", "cpu", "pcie"}
        assert summary["gpu"] == pytest.approx(0.5)
        assert summary["cpu"] == 0.0

    def test_validate_passes_on_clean_clock(self):
        clock = ThreeResourceClock()
        clock.gpu.reserve(0.0, 1.0, "a")
        clock.validate()


class TestMultiGpuClock:
    def test_device_count_validated(self):
        with pytest.raises(SimulationError):
            ThreeResourceClock(num_gpus=0)

    def test_per_device_timelines(self):
        clock = ThreeResourceClock(num_gpus=3)
        assert len(clock.gpus) == len(clock.pcie_links) == 3
        assert clock.gpu is clock.gpus[0]
        assert clock.pcie is clock.pcie_links[0]
        assert clock.gpu_timeline(2) is clock.gpus[2]
        assert clock.pcie_timeline(1) is clock.pcie_links[1]
        with pytest.raises(SimulationError):
            clock.gpu_timeline(3)

    def test_barrier_waits_for_every_device(self):
        clock = ThreeResourceClock(num_gpus=2)
        clock.gpus[0].reserve(0.0, 1.0, "g0")
        clock.gpus[1].reserve(0.0, 3.0, "g1")
        clock.cpu.reserve(0.0, 2.0, "c")
        clock.pcie_links[1].reserve(0.0, 9.0, "x1")
        assert clock.compute_frontier == pytest.approx(3.0)
        assert clock.frontier == pytest.approx(9.0)
        assert clock.min_pcie_available_at == pytest.approx(0.0)

    def test_utilization_reports_per_device(self):
        clock = ThreeResourceClock(num_gpus=2)
        clock.gpus[0].reserve(0.0, 2.0, "g0")
        summary = clock.utilization_summary(0.0, 2.0)
        assert summary["gpu0"] == pytest.approx(1.0)
        assert summary["gpu1"] == 0.0
        assert summary["gpu"] == pytest.approx(0.5)  # mean across devices
        assert {"cpu", "pcie", "pcie0", "pcie1"} <= set(summary)

    def test_validate_covers_all_devices(self):
        clock = ThreeResourceClock(num_gpus=4)
        for g, timeline in enumerate(clock.gpus):
            timeline.reserve(0.0, 0.5 + g, f"g{g}")
        clock.validate()
