"""Three-resource clock semantics."""

import pytest

from repro.hardware.simulator import Resource, ThreeResourceClock


class TestClock:
    def test_compute_frontier_ignores_pcie(self):
        clock = ThreeResourceClock()
        clock.gpu.reserve(0.0, 1.0, "g")
        clock.cpu.reserve(0.0, 2.0, "c")
        clock.pcie.reserve(0.0, 10.0, "x")
        assert clock.compute_frontier == pytest.approx(2.0)
        assert clock.frontier == pytest.approx(10.0)

    def test_timeline_lookup(self):
        clock = ThreeResourceClock()
        assert clock.timeline(Resource.GPU) is clock.gpu
        assert clock.timeline(Resource.CPU) is clock.cpu
        assert clock.timeline(Resource.PCIE) is clock.pcie

    def test_utilization_summary_keys(self):
        clock = ThreeResourceClock()
        clock.gpu.reserve(0.0, 1.0, "g")
        summary = clock.utilization_summary(0.0, 2.0)
        assert set(summary) == {"gpu", "cpu", "pcie"}
        assert summary["gpu"] == pytest.approx(0.5)
        assert summary["cpu"] == 0.0

    def test_validate_passes_on_clean_clock(self):
        clock = ThreeResourceClock()
        clock.gpu.reserve(0.0, 1.0, "a")
        clock.validate()
