"""Hardware fault primitives: validation, composition, cost wrapping."""

import pytest

from repro.errors import ConfigError
from repro.hardware.cost_model import AnalyticCostModel
from repro.hardware.faults import (
    NEUTRAL_STATE,
    DegradationState,
    DegradedCostModel,
    HardwareFault,
    HardwareFaultSchedule,
)
from repro.hardware.platform_presets import get_hardware_preset
from repro.models.config import ExpertShape

SHAPE = ExpertShape(d_model=64, d_ff=256)


def _fault(**overrides):
    fields = dict(kind="link_degrade", at_time=1.0, duration=2.0, severity=0.5)
    fields.update(overrides)
    return HardwareFault(**fields)


class TestHardwareFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown hardware fault kind"):
            _fault(kind="power_loss")

    def test_negative_replica_and_time_rejected(self):
        with pytest.raises(ConfigError, match="replica"):
            _fault(replica=-1)
        with pytest.raises(ConfigError, match="at_time"):
            _fault(at_time=-0.5)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ConfigError, match="positive duration"):
            _fault(duration=0.0)

    def test_link_degrade_severity_must_be_bandwidth_fraction(self):
        for severity in (0.0, 1.0, 1.5):
            with pytest.raises(ConfigError, match="in \\(0, 1\\)"):
                _fault(kind="link_degrade", severity=severity)

    def test_gpu_straggler_severity_must_slow_down(self):
        with pytest.raises(ConfigError, match="must be > 1"):
            _fault(kind="gpu_straggler", severity=0.9)

    def test_disk_stall_rejects_severity(self):
        with pytest.raises(ConfigError, match="ignores severity"):
            _fault(kind="disk_stall", severity=0.5)

    def test_window_containment(self):
        fault = _fault()
        assert not fault.active(0.999)
        assert fault.active(1.0)
        assert fault.active(2.999)
        assert not fault.active(3.0)  # end instant is exclusive


class TestScheduleValidation:
    def test_overlapping_same_kind_same_replica_rejected(self):
        with pytest.raises(ConfigError, match="overlapping"):
            HardwareFaultSchedule([_fault(), _fault(at_time=2.5)])

    def test_exact_duplicate_rejected(self):
        with pytest.raises(ConfigError, match="overlapping"):
            HardwareFaultSchedule([_fault(), _fault()])

    def test_same_kind_different_replicas_allowed(self):
        schedule = HardwareFaultSchedule([_fault(), _fault(replica=1)])
        assert len(schedule) == 2

    def test_different_kinds_may_overlap(self):
        schedule = HardwareFaultSchedule(
            [
                _fault(),
                _fault(kind="gpu_straggler", severity=2.0),
                _fault(kind="disk_stall", severity=1.0),
            ]
        )
        assert len(schedule.active_faults(0, 1.5)) == 3

    def test_back_to_back_windows_allowed(self):
        # [1, 3) then [3, 4): touching endpoints do not overlap.
        schedule = HardwareFaultSchedule(
            [_fault(), _fault(at_time=3.0, duration=1.0)]
        )
        assert len(schedule) == 2

    def test_for_replica_slices_preserving_ids(self):
        schedule = HardwareFaultSchedule([_fault(), _fault(replica=2)])
        sliced = schedule.for_replica(2)
        assert [f.replica for f in sliced] == [2]


class TestStateComposition:
    def test_neutral_outside_every_window(self):
        schedule = HardwareFaultSchedule([_fault()])
        assert schedule.state_at(0.0) is NEUTRAL_STATE
        assert schedule.state_at(10.0) is NEUTRAL_STATE
        assert not schedule.degraded(0, 0.0)

    def test_slowdowns_multiply_across_kinds(self):
        schedule = HardwareFaultSchedule(
            [
                _fault(severity=0.5),
                _fault(kind="gpu_straggler", severity=3.0),
            ]
        )
        state = schedule.state_at(1.5)
        assert state.pcie_slowdown == pytest.approx(2.0)
        assert state.gpu_slowdown == pytest.approx(3.0)

    def test_disk_stall_charges_remaining_window(self):
        schedule = HardwareFaultSchedule(
            [_fault(kind="disk_stall", severity=1.0)]
        )
        assert schedule.state_at(1.0).disk_stall_s == pytest.approx(2.0)
        assert schedule.state_at(2.5).disk_stall_s == pytest.approx(0.5)

    def test_other_replica_sees_neutral(self):
        schedule = HardwareFaultSchedule([_fault(replica=1)])
        assert schedule.state_at(1.5, replica=0) is NEUTRAL_STATE
        assert schedule.degraded(1, 1.5)
        assert not schedule.degraded(0, 1.5)


class TestDegradedCostModel:
    @pytest.fixture()
    def model(self):
        return DegradedCostModel(AnalyticCostModel(get_hardware_preset("paper")))

    def test_neutral_state_returns_base_floats_unchanged(self, model):
        base = model.base
        # Bit-identity, not approx: neutral must apply no arithmetic.
        assert model.gpu_expert_time(SHAPE, 7) == base.gpu_expert_time(SHAPE, 7)
        assert model.transfer_time(SHAPE) == base.transfer_time(SHAPE)
        assert model.disk_transfer_time(SHAPE) == base.disk_transfer_time(SHAPE)
        assert model.attention_time(64, 3) == base.attention_time(64, 3)
        assert model.cpu_expert_time(SHAPE, 7) == base.cpu_expert_time(SHAPE, 7)

    def test_degraded_state_scales_the_right_resources(self, model):
        base = model.base
        assert model.set_state(
            DegradationState(
                gpu_slowdown=2.0, pcie_slowdown=4.0, disk_stall_s=0.25
            )
        )
        assert model.gpu_expert_time(SHAPE, 7) == pytest.approx(
            2.0 * base.gpu_expert_time(SHAPE, 7)
        )
        assert model.attention_time(64, 3) == pytest.approx(
            2.0 * base.attention_time(64, 3)
        )
        # CPU-side work is untouched by a GPU straggler.
        assert model.cpu_expert_time(SHAPE, 7) == base.cpu_expert_time(SHAPE, 7)
        assert model.attention_time(64, 3, device="cpu") == base.attention_time(
            64, 3, device="cpu"
        )
        assert model.transfer_time(SHAPE) == pytest.approx(
            4.0 * base.transfer_time(SHAPE)
        )
        assert model.disk_transfer_time(SHAPE) == pytest.approx(
            base.disk_transfer_time(SHAPE) + 0.25
        )

    def test_set_state_reports_change(self, model):
        state = DegradationState(gpu_slowdown=2.0)
        assert model.set_state(state)
        assert not model.set_state(state)  # idempotent re-apply
        assert model.set_state(NEUTRAL_STATE)
        assert model.state.is_neutral
