"""Warmup calibration: fitted model must track ground truth."""

import pytest

from repro.errors import ConfigError
from repro.hardware.cost_model import AnalyticCostModel, NoisyCostModel
from repro.hardware.platform_presets import paper_testbed
from repro.hardware.warmup import WarmupCalibrator
from repro.models.config import ExpertShape
from repro.models.presets import get_preset


@pytest.fixture
def truth():
    return AnalyticCostModel(paper_testbed())


class TestCalibration:
    def test_fit_accuracy_within_probe_range(self, truth):
        config = get_preset("deepseek")
        fitted = WarmupCalibrator(truth).calibrate(config)
        shape = config.routed_expert_shape
        for tokens in (1, 8, 64, 512):
            assert fitted.cpu_expert_time(shape, tokens) == pytest.approx(
                truth.cpu_expert_time(shape, tokens), rel=0.35, abs=1e-4
            )

    def test_transfer_time_exact(self, truth):
        config = get_preset("mixtral")
        fitted = WarmupCalibrator(truth).calibrate(config)
        shape = config.routed_expert_shape
        assert fitted.transfer_time(shape) == pytest.approx(
            truth.transfer_time(shape)
        )

    def test_warmup_penalty_recovered(self, truth):
        config = get_preset("deepseek")
        fitted = WarmupCalibrator(truth).calibrate(config)
        shape = config.routed_expert_shape
        penalty = fitted.cpu_expert_time(shape, 1, first_task=True) - fitted.cpu_expert_time(
            shape, 1
        )
        assert penalty == pytest.approx(paper_testbed().cpu_warmup_s, rel=0.01)

    def test_shared_shape_also_calibrated(self, truth):
        config = get_preset("qwen2")
        fitted = WarmupCalibrator(truth).calibrate(config)
        assert fitted.gpu_expert_time(config.shared_expert_shape, 4) > 0

    def test_attention_fits_both_devices(self, truth):
        config = get_preset("deepseek")
        fitted = WarmupCalibrator(truth).calibrate(config)
        d_model = config.routed_expert_shape.d_model
        assert fitted.attention_time(d_model, 16, "cpu") > fitted.attention_time(
            d_model, 16, "gpu"
        )

    def test_uncalibrated_shape_rejected(self, truth):
        fitted = WarmupCalibrator(truth).calibrate(get_preset("deepseek"))
        with pytest.raises(ConfigError, match="calibration"):
            fitted.gpu_expert_time(ExpertShape(123, 456), 4)

    def test_noisy_truth_with_repeats_converges(self, truth):
        noisy = NoisyCostModel(truth, sigma=0.05, seed=0)
        fitted = WarmupCalibrator(noisy, repeats=16).calibrate(get_preset("deepseek"))
        shape = get_preset("deepseek").routed_expert_shape
        assert fitted.cpu_expert_time(shape, 64) == pytest.approx(
            truth.cpu_expert_time(shape, 64), rel=0.4
        )

    def test_invalid_probe_config(self, truth):
        with pytest.raises(ConfigError):
            WarmupCalibrator(truth, probe_tokens=())
        with pytest.raises(ConfigError):
            WarmupCalibrator(truth, probe_tokens=(0,))
        with pytest.raises(ConfigError):
            WarmupCalibrator(truth, repeats=0)


class TestPresets:
    def test_all_presets_valid(self):
        from repro.hardware.platform_presets import HARDWARE_PRESETS, get_hardware_preset

        for name in HARDWARE_PRESETS:
            assert get_hardware_preset(name).name

    def test_unknown_preset(self):
        from repro.hardware.platform_presets import get_hardware_preset

        with pytest.raises(ConfigError):
            get_hardware_preset("tpu-pod")

    def test_cpu_weak_halves_cpu(self):
        from repro.hardware.platform_presets import cpu_weak_testbed, paper_testbed

        assert cpu_weak_testbed().cpu_flops == pytest.approx(
            paper_testbed().cpu_flops / 2
        )

    def test_pcie_fast_doubles_bandwidth(self):
        from repro.hardware.platform_presets import paper_testbed, pcie_fast_testbed

        assert pcie_fast_testbed().pcie_bw == pytest.approx(2 * paper_testbed().pcie_bw)

    def test_edge_preset_shifts_every_ratio(self):
        """The edge SoC is not a rescaled paper rig: compute drops by an
        order of magnitude while the CPU/GPU bandwidth gap collapses
        (shared LPDDR), so transfer-vs-compute ratios genuinely shift."""
        from repro.hardware.platform_presets import edge_testbed, paper_testbed

        edge, paper = edge_testbed(), paper_testbed()
        assert edge.name == "orin-edge"
        assert edge.gpu_flops <= paper.gpu_flops / 10
        assert edge.cpu_flops < paper.cpu_flops
        assert edge.pcie_bw < paper.pcie_bw
        assert edge.disk_bw < paper.disk_bw
        # shared LPDDR: the GPU/CPU memory-bandwidth ratio collapses
        # relative to a discrete-GPU rig
        assert (edge.gpu_mem_bw / edge.cpu_mem_bw) < (
            paper.gpu_mem_bw / paper.cpu_mem_bw
        )

    def test_edge_preset_registered(self):
        from repro.hardware.platform_presets import HARDWARE_PRESETS, get_hardware_preset

        assert "edge" in HARDWARE_PRESETS
        assert get_hardware_preset("edge").name == "orin-edge"
