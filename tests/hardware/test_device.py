"""Resource timeline invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hardware.device import ResourceTimeline


class TestReserve:
    def test_sequential_queueing(self):
        timeline = ResourceTimeline("gpu")
        s1, f1 = timeline.reserve(0.0, 2.0, "a")
        s2, f2 = timeline.reserve(0.0, 3.0, "b")
        assert (s1, f1) == (0.0, 2.0)
        assert (s2, f2) == (2.0, 5.0)

    def test_gap_respected(self):
        timeline = ResourceTimeline("gpu")
        timeline.reserve(0.0, 1.0, "a")
        start, finish = timeline.reserve(5.0, 1.0, "b")
        assert (start, finish) == (5.0, 6.0)

    def test_zero_duration_does_not_record_interval(self):
        timeline = ResourceTimeline("gpu")
        timeline.reserve(1.0, 0.0, "noop")
        assert timeline.intervals == []

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            ResourceTimeline("gpu").reserve(0.0, -1.0, "bad")

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            ResourceTimeline("gpu").reserve(-1.0, 1.0, "bad")


class TestAccounting:
    def test_busy_time_full_window(self):
        timeline = ResourceTimeline("cpu")
        timeline.reserve(0.0, 2.0, "a")
        timeline.reserve(3.0, 1.0, "b")
        assert timeline.busy_time(0.0, 4.0) == pytest.approx(3.0)

    def test_busy_time_partial_window(self):
        timeline = ResourceTimeline("cpu")
        timeline.reserve(0.0, 4.0, "a")
        assert timeline.busy_time(1.0, 3.0) == pytest.approx(2.0)

    def test_utilization(self):
        timeline = ResourceTimeline("cpu")
        timeline.reserve(0.0, 1.0, "a")
        assert timeline.utilization(0.0, 4.0) == pytest.approx(0.25)

    def test_empty_window_utilization_zero(self):
        assert ResourceTimeline("cpu").utilization(1.0, 1.0) == 0.0

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            ResourceTimeline("cpu").busy_time(2.0, 1.0)

    @given(
        durations=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=20),
        gaps=st.lists(st.floats(0.0, 3.0), min_size=1, max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_no_overlap_and_busy_bound(self, durations, gaps):
        timeline = ResourceTimeline("x")
        cursor = 0.0
        for duration, gap in zip(durations, gaps):
            cursor += gap
            timeline.reserve(cursor, duration, "t")
        timeline.validate()
        total = sum(d for d, _ in zip(durations, gaps))
        assert timeline.busy_time() == pytest.approx(total, rel=1e-9)
        assert timeline.busy_time() <= timeline.available_at + 1e-9
