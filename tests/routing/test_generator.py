"""Trace generation from the functional model."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.routing.generator import generate_trace


class TestGenerateTrace:
    def test_structure(self, tiny_model, prompt_tokens):
        trace = generate_trace(tiny_model, prompt_tokens, decode_steps=4, seed=1)
        assert trace.num_steps == 5
        assert trace.steps[0].kind == "prefill"
        assert all(s.kind == "decode" for s in trace.steps[1:])
        assert trace.num_layers == tiny_model.config.num_layers
        assert trace.num_experts == tiny_model.config.num_routed_experts

    def test_prefill_load_conservation(self, tiny_model, prompt_tokens):
        trace = generate_trace(tiny_model, prompt_tokens, seed=1)
        k = tiny_model.config.num_activated_experts
        for routing in trace.steps[0].layers:
            assert routing.loads.sum() == prompt_tokens.size * k

    def test_decode_load_conservation(self, tiny_model, prompt_tokens):
        trace = generate_trace(tiny_model, prompt_tokens, decode_steps=3, seed=1)
        k = tiny_model.config.num_activated_experts
        for step in trace.decode_steps():
            for routing in step.layers:
                assert routing.loads.sum() == k

    def test_deterministic(self, tiny_model, prompt_tokens):
        a = generate_trace(tiny_model, prompt_tokens, decode_steps=3, seed=5)
        b = generate_trace(tiny_model, prompt_tokens, decode_steps=3, seed=5)
        for sa, sb in zip(a.steps, b.steps):
            for la, lb in zip(sa.layers, sb.layers):
                np.testing.assert_array_equal(la.loads, lb.loads)

    def test_token_sources_differ(self, tiny_model, prompt_tokens):
        sampled = generate_trace(
            tiny_model, prompt_tokens, decode_steps=6, seed=5,
            decode_token_source="sampled",
        )
        random = generate_trace(
            tiny_model, prompt_tokens, decode_steps=6, seed=5,
            decode_token_source="random",
        )
        any_diff = any(
            not np.array_equal(sa.layers[0].loads, sr.layers[0].loads)
            for sa, sr in zip(sampled.decode_steps(), random.decode_steps())
        )
        assert any_diff

    def test_empty_prompt_rejected(self, tiny_model):
        with pytest.raises(TraceError):
            generate_trace(tiny_model, np.array([], dtype=np.int64))

    def test_bad_source_rejected(self, tiny_model, prompt_tokens):
        with pytest.raises(TraceError):
            generate_trace(
                tiny_model, prompt_tokens, decode_token_source="beam"
            )
