"""Trace container invariants and npz round-trip."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.routing.trace import LayerRouting, RoutingTrace, StepTrace


def _layer(layer=0, n_experts=4, loads=None, scores=None):
    loads = np.array(loads if loads is not None else [2, 0, 1, 0], dtype=np.int64)
    scores = np.array(
        scores if scores is not None else [0.4, 0.1, 0.3, 0.2], dtype=np.float64
    )
    return LayerRouting(layer=layer, loads=loads, mean_scores=scores)


def _trace(num_layers=2, steps=2):
    step_list = [
        StepTrace(
            kind="prefill" if s == 0 else "decode",
            n_tokens=3 if s == 0 else 1,
            layers=[_layer(layer=l) for l in range(num_layers)],
        )
        for s in range(steps)
    ]
    return RoutingTrace(
        model_name="tiny",
        num_layers=num_layers,
        num_experts=4,
        num_activated=2,
        steps=step_list,
    )


class TestLayerRouting:
    def test_activated_lists_nonzero_loads(self):
        assert _layer().activated() == [0, 2]

    def test_activated_with_loads(self):
        assert _layer().activated_with_loads() == [(0, 2), (2, 1)]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TraceError):
            LayerRouting(0, np.zeros(3, dtype=np.int64), np.zeros(4))


class TestStepTrace:
    def test_invalid_kind_rejected(self):
        with pytest.raises(TraceError):
            StepTrace(kind="warmup", n_tokens=1, layers=[_layer()])

    def test_zero_tokens_rejected(self):
        with pytest.raises(TraceError):
            StepTrace(kind="decode", n_tokens=0, layers=[_layer()])

    def test_layer_index_mismatch_rejected(self):
        with pytest.raises(TraceError):
            StepTrace(kind="decode", n_tokens=1, layers=[_layer(layer=3)])


class TestRoutingTrace:
    def test_wrong_layer_count_rejected(self):
        with pytest.raises(TraceError):
            RoutingTrace("t", 3, 4, 2, steps=_trace().steps)

    def test_wrong_expert_count_rejected(self):
        with pytest.raises(TraceError):
            RoutingTrace("t", 2, 5, 2, steps=_trace().steps)

    def test_step_filters(self):
        trace = _trace()
        assert len(trace.prefill_steps()) == 1
        assert len(trace.decode_steps()) == 1

    def test_roundtrip(self, tmp_path):
        trace = _trace()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RoutingTrace.load(path)
        assert loaded.model_name == trace.model_name
        assert loaded.num_steps == trace.num_steps
        for orig, new in zip(trace.steps, loaded.steps):
            assert orig.kind == new.kind
            assert orig.n_tokens == new.n_tokens
            for a, b in zip(orig.layers, new.layers):
                np.testing.assert_array_equal(a.loads, b.loads)
                np.testing.assert_allclose(a.mean_scores, b.mean_scores)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            RoutingTrace.load(tmp_path / "absent.npz")
