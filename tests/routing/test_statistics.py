"""Routing statistics behind the Fig. 3 motivation analyses."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.routing.generator import generate_trace
from repro.routing.statistics import (
    activation_cdf,
    adjacent_layer_overlap,
    expert_activation_frequency,
    expert_transition_counts,
    gate_reuse_accuracy,
    prefill_load_distribution,
    reuse_probability_by_rank,
    synthetic_neuron_activation_cdf,
)


@pytest.fixture
def trace(tiny_model, prompt_tokens):
    return generate_trace(tiny_model, prompt_tokens, decode_steps=16, seed=2)


class TestActivationCdf:
    def test_monotone_and_normalised(self, trace):
        proportion, cumulative = activation_cdf(trace)
        assert np.all(np.diff(cumulative) >= -1e-12)
        assert cumulative[-1] == pytest.approx(1.0)
        assert proportion[-1] == pytest.approx(1.0)

    def test_neuron_cdf_more_skewed_than_experts(self, trace):
        """The Fig. 3a contrast: neurons concentrate, experts spread."""
        prop_e, cum_e = activation_cdf(trace)
        prop_n, cum_n = synthetic_neuron_activation_cdf(seed=0)
        at = 0.2
        assert np.interp(at, prop_n, cum_n) > np.interp(at, prop_e, cum_e)

    def test_neuron_cdf_invalid_size(self):
        with pytest.raises(TraceError):
            synthetic_neuron_activation_cdf(n_neurons=0)


class TestReuseProbability:
    def test_shape_and_range(self, trace):
        reuse = reuse_probability_by_rank(trace)
        assert reuse.shape == (trace.num_experts,)
        assert ((0.0 <= reuse) & (reuse <= 1.0)).all()

    def test_top_ranks_beat_bottom_ranks(self, trace):
        """The Fig. 3b signal that justifies score-aware caching."""
        reuse = reuse_probability_by_rank(trace)
        k = trace.num_activated
        assert reuse[:k].mean() > reuse[-k:].mean()

    def test_needs_two_decode_steps(self, tiny_model, prompt_tokens):
        short = generate_trace(tiny_model, prompt_tokens, decode_steps=1, seed=0)
        with pytest.raises(TraceError):
            reuse_probability_by_rank(short)


class TestLoadDistribution:
    def test_sorted_descending(self, trace):
        loads = prefill_load_distribution(trace, layer=1)
        assert np.all(np.diff(loads) <= 0)

    def test_conserves_assignments(self, trace, prompt_tokens):
        loads = prefill_load_distribution(trace)
        assert loads.sum() == prompt_tokens.size * trace.num_activated

    def test_layer_out_of_range(self, trace):
        with pytest.raises(TraceError):
            prefill_load_distribution(trace, layer=99)

    def test_requires_prefill(self, trace):
        from repro.routing.trace import RoutingTrace

        decode_only = RoutingTrace(
            trace.model_name,
            trace.num_layers,
            trace.num_experts,
            trace.num_activated,
            trace.decode_steps(),
        )
        with pytest.raises(TraceError):
            prefill_load_distribution(decode_only)


class TestLayerOverlap:
    def test_in_unit_interval(self, trace):
        overlap = adjacent_layer_overlap(trace)
        assert 0.0 <= overlap <= 1.0

    def test_distance_validation(self, trace):
        with pytest.raises(TraceError):
            adjacent_layer_overlap(trace, distance=0)


class TestFrequency:
    def test_counts_bounded_by_steps(self, trace):
        counts = expert_activation_frequency(trace)
        assert counts.shape == (trace.num_layers, trace.num_experts)
        assert counts.max() <= trace.num_steps


class TestGateReuse:
    def test_accuracy_beats_chance(self, tiny_model, prompt_tokens):
        """Gate reuse must beat random guessing, else prefetch is noise."""
        recall = gate_reuse_accuracy(tiny_model, prompt_tokens, max_distance=2)
        chance = (
            tiny_model.config.num_activated_experts
            / tiny_model.config.num_routed_experts
        )
        assert recall[0] > 2 * chance

    def test_accuracy_decays_with_distance(self, tiny_model, prompt_tokens):
        recall = gate_reuse_accuracy(tiny_model, prompt_tokens, max_distance=2)
        assert recall[0] >= recall[1] - 0.05

    def test_invalid_distance(self, tiny_model, prompt_tokens):
        with pytest.raises(TraceError):
            gate_reuse_accuracy(tiny_model, prompt_tokens, max_distance=0)

    def test_empty_prompt(self, tiny_model):
        with pytest.raises(TraceError):
            gate_reuse_accuracy(tiny_model, np.array([], dtype=np.int64))


class TestTransitionCounts:
    def test_shape_and_totals(self, trace):
        counts = expert_transition_counts(trace)
        assert counts.shape == (
            trace.num_layers - 1,
            trace.num_experts,
            trace.num_experts,
        )
        assert counts.dtype == np.int64
        assert (counts >= 0).all()
        # Each observation contributes |sources| * |targets| pairs, at
        # most E^2 per step per layer pair (prefill steps activate the
        # union of every token's top-k, so the bound is E, not k).
        total_steps = trace.num_steps * (trace.num_layers - 1)
        assert counts.sum() <= total_steps * trace.num_experts**2

    def test_distance_two_shrinks_layer_axis(self, trace):
        counts = expert_transition_counts(trace, distance=2)
        assert counts.shape[0] == trace.num_layers - 2

    def test_pairs_come_from_activated_sets(self, trace):
        """Every counted pair must be an observed (source, target) pair."""
        counts = expert_transition_counts(trace)
        expected = np.zeros_like(counts)
        for step in trace.steps:
            for layer in range(trace.num_layers - 1):
                sources = np.flatnonzero(step.layers[layer].loads > 0)
                targets = np.flatnonzero(step.layers[layer + 1].loads > 0)
                if sources.size and targets.size:
                    expected[layer][np.ix_(sources, targets)] += 1
        np.testing.assert_array_equal(counts, expected)

    def test_invalid_distance(self, trace):
        with pytest.raises(TraceError):
            expert_transition_counts(trace, distance=0)
        with pytest.raises(TraceError):
            expert_transition_counts(trace, distance=trace.num_layers)
