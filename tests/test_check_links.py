"""The docs link checker: catches rot, passes the real doc set."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CHECKER = REPO / "tools" / "check_links.py"


def run_checker(*paths):
    return subprocess.run(
        [sys.executable, str(CHECKER), *map(str, paths)],
        capture_output=True,
        text=True,
    )


def test_repo_docs_have_no_broken_links():
    docs = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    result = run_checker(*docs)
    assert result.returncode == 0, result.stdout + result.stderr


def test_broken_file_and_anchor_detected(tmp_path):
    target = tmp_path / "b.md"
    target.write_text("# Other\n## Section Two\n")
    source = tmp_path / "a.md"
    source.write_text(
        "# Title\n"
        "[ok](b.md) [ok anchor](b.md#section-two) [self](#title)\n"
        "[bad](missing.md) [bad anchor](b.md#nope)\n"
    )
    result = run_checker(source)
    assert result.returncode == 1
    assert "missing.md" in result.stdout
    assert "b.md#nope" in result.stdout


def test_code_blocks_and_external_links_ignored(tmp_path):
    doc = tmp_path / "c.md"
    doc.write_text(
        "# C\n"
        "[web](https://example.com/404) `[code](gone.md)`\n"
        "```\n[fenced](gone.md)\n```\n"
    )
    result = run_checker(doc)
    assert result.returncode == 0, result.stdout


def test_heading_inside_code_block_creates_no_anchor(tmp_path):
    doc = tmp_path / "e.md"
    doc.write_text(
        "# Real\n"
        "```bash\n# fake heading in code\n```\n"
        "[bad](#fake-heading-in-code) [ok](#real)\n"
    )
    result = run_checker(doc)
    assert result.returncode == 1
    assert "#fake-heading-in-code" in result.stdout


def test_duplicate_headings_get_suffixed_anchors(tmp_path):
    doc = tmp_path / "d.md"
    doc.write_text(
        "# Setup\n# Setup\n"
        "[first](#setup) [second](#setup-1) [third](#setup-2)\n"
    )
    result = run_checker(doc)
    assert result.returncode == 1
    assert "#setup-2" in result.stdout and "#setup-1" not in result.stdout
