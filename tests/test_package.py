"""Package-level smoke tests: public API surface and versioning."""

import repro


def test_version_is_semver_like():
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_public_api_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_available_strategies_lists_all_five():
    assert repro.available_strategies() == [
        "adapmoe",
        "hybrimoe",
        "ktransformers",
        "llamacpp",
        "ondemand",
    ]


def test_error_hierarchy():
    assert issubclass(repro.ConfigError, repro.ReproError)
    assert issubclass(repro.SchedulingError, repro.ReproError)
    assert issubclass(repro.CacheError, repro.ReproError)
    assert issubclass(repro.SimulationError, repro.ReproError)
    assert issubclass(repro.TraceError, repro.ReproError)


def test_rng_derivation_stable():
    from repro.rng import derive_seed

    assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)
    assert derive_seed(0, "a", 1) != derive_seed(0, "a", 2)
    assert derive_seed(0, "a") != derive_seed(1, "a")
    assert derive_seed(0, 1) != derive_seed(0, "1")
