"""Shared fixtures: small models, toy cost models, standard oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tasks import LayerCostOracle
from repro.hardware.cost_model import AnalyticCostModel
from repro.hardware.platform_presets import paper_testbed
from repro.models.config import ExpertShape, MoEModelConfig
from repro.models.model import ReferenceMoEModel


@pytest.fixture
def tiny_config() -> MoEModelConfig:
    """A DeepSeek-shaped miniature: 3 layers, 8 experts, top-2, 1 shared."""
    return MoEModelConfig(
        name="tiny",
        num_layers=3,
        num_shared_experts=1,
        num_routed_experts=8,
        num_activated_experts=2,
        routed_expert_shape=ExpertShape(256, 512),
        shared_expert_shape=ExpertShape(256, 512),
    )


@pytest.fixture
def tiny_model(tiny_config) -> ReferenceMoEModel:
    return ReferenceMoEModel(
        tiny_config, d_model=16, d_ff=32, vocab_size=128, seed=0
    )


@pytest.fixture
def paper_cost() -> AnalyticCostModel:
    return AnalyticCostModel(paper_testbed())


class ToyCostModel:
    """Deterministic unit-scale cost model mirroring the Fig. 5 example.

    GPU compute is constant (2), CPU compute is 1.5 per unit load,
    transfers take 3, shared blocks take 2 per shared expert. The CPU
    warmup penalty is configurable for first-task tests.
    """

    def __init__(self, cpu_warmup: float = 0.0) -> None:
        self.cpu_warmup = cpu_warmup

    def expert_bytes(self, shape) -> float:
        return float(shape.param_count)

    def gpu_expert_time(self, shape, tokens: int) -> float:
        return 2.0 if tokens > 0 else 0.0

    def cpu_expert_time(self, shape, tokens: int, first_task: bool = False) -> float:
        if tokens == 0:
            return 0.0
        return 1.5 * tokens + (self.cpu_warmup if first_task else 0.0)

    def transfer_time(self, shape) -> float:
        return 3.0

    def disk_transfer_time(self, shape) -> float:
        return 4.0

    def attention_time(self, d_model: int, tokens: int, device: str = "gpu") -> float:
        if tokens == 0:
            return 0.0
        return 0.5 if device == "gpu" else 2.0


@pytest.fixture
def toy_cost() -> ToyCostModel:
    return ToyCostModel()


@pytest.fixture
def toy_oracle_factory(tiny_config, toy_cost):
    """``(n_tokens) -> LayerCostOracle`` over the toy cost model."""

    def factory(n_tokens: int) -> LayerCostOracle:
        return LayerCostOracle.for_model(toy_cost, tiny_config, n_tokens)

    return factory


@pytest.fixture
def prompt_tokens() -> np.ndarray:
    return np.arange(24, dtype=np.int64)
