"""Property tests for fleet routing.

Driven against real fleets over hypothesis-generated traces (clustered
arrivals with many exact ties, the worst case for tie-breaking):

1. every submitted request finishes exactly once, fleet-wide;
2. per-replica batch occupancy never exceeds ``max_batch_size``;
3. fault-free ``round_robin`` assignment counts differ by at most one;
4. ``least_loaded`` never picks a replica strictly more loaded than
   another candidate (checked against the load snapshot each
   :class:`~repro.fleet.fleet.RoutingDecision` recorded);
5. routing is deterministic: two fresh fleets over the same trace make
   identical decisions and produce identical merged reports.

Plus engine-free unit checks of the policy tie-break rules on stub
replicas (cheap enough to enumerate exhaustively).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.factory import make_fleet
from repro.fleet.router import (
    LeastLoadedPolicy,
    RoundRobinPolicy,
    available_routers,
    make_router,
)
from repro.workloads.generator import serving_workload

MODEL = "mixtral"
NUM_LAYERS = 3
MAX_BATCH = 3
VOCAB = 512


def _fleet(replicas, router):
    return make_fleet(
        model=MODEL,
        strategy="hybrimoe",
        cache_ratio=0.5,
        num_layers=NUM_LAYERS,
        seed=0,
        max_batch_size=MAX_BATCH,
        replicas=replicas,
        router=router,
    )


def _trace(arrival_times, seed):
    return serving_workload(
        arrival_times=arrival_times,
        decode_steps=3,
        vocab_size=VOCAB,
        seed=seed,
    )


@st.composite
def fleet_case(draw):
    """(replicas, router, clustered arrival trace, workload seed)."""
    replicas = draw(st.integers(min_value=1, max_value=3))
    router = draw(st.sampled_from(available_routers()))
    n = draw(st.integers(min_value=1, max_value=8))
    # Integer instants scaled down: many exact arrival ties, bursts
    # denser than the batch ceiling, and idle gaps — the regimes where
    # tie-breaking and the idle-hold rule actually decide something.
    ticks = sorted(draw(st.lists(st.integers(0, 6), min_size=n, max_size=n)))
    times = [t * 0.05 for t in ticks]
    seed = draw(st.integers(min_value=0, max_value=3))
    return replicas, router, times, seed


class TestFleetProperties:
    @settings(max_examples=12, deadline=None)
    @given(case=fleet_case())
    def test_exactly_once_occupancy_and_snapshots(self, case):
        replicas, router, times, seed = case
        trace = _trace(times, seed)
        report = _fleet(replicas, router).serve_trace(trace)

        # Exactly once: the merged report holds every trace request id
        # one single time (ServingReport.merged rejects duplicates, so
        # id multiplicity is already impossible; coverage is not).
        assert sorted(r.request_id for r in report.merged.requests) == list(
            range(len(trace))
        )

        # Occupancy cap, fleet-wide, at the per-session high-water mark.
        assert all(
            peak <= MAX_BATCH for peak in report.peak_occupancy.values()
        )

        # One routing decision per request, each choosing a snapshot
        # candidate; least_loaded must pick a minimum-load candidate.
        assert sorted(d.request_id for d in report.decisions) == list(
            range(len(trace))
        )
        for decision in report.decisions:
            loads = dict(decision.loads)
            assert decision.replica in loads
            if router == "least_loaded":
                assert loads[decision.replica] == min(loads.values())

        if router == "round_robin":
            counts = report.assignment_counts()
            filled = [counts.get(i, 0) for i in range(replicas)]
            assert max(filled) - min(filled) <= 1

    @settings(max_examples=8, deadline=None)
    @given(case=fleet_case())
    def test_routing_is_deterministic(self, case):
        replicas, router, times, seed = case
        first = _fleet(replicas, router).serve_trace(_trace(times, seed))
        second = _fleet(replicas, router).serve_trace(_trace(times, seed))
        assert first.decisions == second.decisions
        assert first.assignment_counts() == second.assignment_counts()
        assert [r for r, _ in first.per_replica] == [
            r for r, _ in second.per_replica
        ]
        assert first.merged.requests == second.merged.requests


class _StubReplica:
    def __init__(self, replica_id, load):
        self.replica_id = replica_id
        self.load = load


class _StubFleet:
    def __init__(self, num_replicas):
        self.num_replicas = num_replicas


class TestPolicyUnits:
    """Engine-free checks of the pure tie-break arithmetic."""

    def test_round_robin_rotates_and_skips_missing(self):
        policy = RoundRobinPolicy()
        fleet = _StubFleet(3)
        full = [_StubReplica(i, 0) for i in range(3)]
        order = [policy.choose(None, full, fleet).replica_id for _ in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]
        # Replica 1 drops out (crash/blackout): the rotation skips it
        # without double-serving its neighbours.
        partial = [full[0], full[2]]
        order = [policy.choose(None, partial, fleet).replica_id for _ in range(4)]
        assert order == [0, 2, 0, 2]

    def test_round_robin_reset_restarts_rotation(self):
        policy = RoundRobinPolicy()
        fleet = _StubFleet(2)
        replicas = [_StubReplica(i, 0) for i in range(2)]
        assert policy.choose(None, replicas, fleet).replica_id == 0
        policy.reset()
        assert policy.choose(None, replicas, fleet).replica_id == 0

    def test_least_loaded_breaks_ties_by_id(self):
        policy = LeastLoadedPolicy()
        fleet = _StubFleet(3)
        replicas = [_StubReplica(0, 2), _StubReplica(1, 1), _StubReplica(2, 1)]
        assert policy.choose(None, replicas, fleet).replica_id == 1

    def test_make_router_round_trips_every_name(self):
        for name in available_routers():
            assert make_router(name).name == name

    def test_make_router_rejects_unknown(self):
        import pytest

        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown router"):
            make_router("random")
