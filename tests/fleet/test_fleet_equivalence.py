"""A single-replica fleet is the bare serving engine, bit for bit.

The fleet's event loop interleaves replica sessions in global time
order and holds idle sessions whenever an unrouted arrival could still
win an admission tie-break; with one replica those rules must collapse
to exactly the step sequence of ``ServingEngine.serve`` — same records
(arrival/prefill/first-token/finish instants, TBT vectors, sampled
tokens), same cache counters — for every strategy and every routing
policy (a 1-candidate policy cannot matter).
"""

import numpy as np
import pytest

from repro.engine.factory import (
    available_strategies,
    make_fleet,
    make_serving_engine,
)
from repro.fleet.router import available_routers
from repro.workloads.generator import serving_workload

MODEL = "mixtral"
NUM_LAYERS = 3
CACHE_RATIO = 0.5
MAX_BATCH = 4
VOCAB = 512


def _trace(num_requests=6, seed=0, **kwargs):
    kwargs.setdefault("arrival_rate", 4.0)
    return serving_workload(
        num_requests=num_requests,
        decode_steps=4,
        vocab_size=VOCAB,
        seed=seed,
        **kwargs,
    )


def _fleet(replicas=1, router="round_robin", strategy="hybrimoe", **kwargs):
    return make_fleet(
        model=MODEL,
        strategy=strategy,
        cache_ratio=CACHE_RATIO,
        num_layers=NUM_LAYERS,
        seed=0,
        max_batch_size=MAX_BATCH,
        replicas=replicas,
        router=router,
        **kwargs,
    )


def _serving(strategy="hybrimoe"):
    return make_serving_engine(
        model=MODEL,
        strategy=strategy,
        cache_ratio=CACHE_RATIO,
        num_layers=NUM_LAYERS,
        seed=0,
        max_batch_size=MAX_BATCH,
    )


def assert_reports_identical(fleet_report, engine_report):
    """Field-for-field identity of the merged fleet report vs the engine's."""
    assert fleet_report.total_hits == engine_report.total_hits
    assert fleet_report.total_misses == engine_report.total_misses
    assert fleet_report.preemptions == engine_report.preemptions
    assert len(fleet_report.requests) == len(engine_report.requests)
    for ours, theirs in zip(
        sorted(fleet_report.requests, key=lambda r: r.request_id),
        sorted(engine_report.requests, key=lambda r: r.request_id),
    ):
        # Frozen dataclass equality covers every lifecycle instant, the
        # TBT tuple and the embedded GenerationResult (whose StepMetrics
        # carry exact float timings) — bit-identical, not approximate.
        assert ours == theirs


class TestSingleReplicaEquivalence:
    @pytest.mark.parametrize("strategy", available_strategies())
    def test_every_strategy_matches_bare_engine(self, strategy):
        engine_report = _serving(strategy).serve_trace(_trace())
        fleet_report = _fleet(strategy=strategy).serve_trace(_trace())
        assert_reports_identical(fleet_report.merged, engine_report)

    @pytest.mark.parametrize("router", available_routers())
    def test_every_router_matches_bare_engine(self, router):
        engine_report = _serving().serve_trace(_trace())
        fleet_report = _fleet(router=router).serve_trace(_trace())
        assert_reports_identical(fleet_report.merged, engine_report)
        assert all(d.replica == 0 for d in fleet_report.decisions)

    def test_single_request_solo_sampling_matches(self):
        # One request exercises the solo-sampling derivation: the fleet
        # must pass the fleet-wide batch size's verdict to the session.
        trace = _trace(num_requests=1)
        engine_report = _serving().serve_trace(trace)
        fleet_report = _fleet().serve_trace(_trace(num_requests=1))
        assert_reports_identical(fleet_report.merged, engine_report)

    def test_second_serve_on_warm_fleet_matches_warm_engine(self):
        # Reusing a fleet (benchmark warmup + measurement) anchors every
        # session at the shared fleet frontier; with one replica that is
        # the engine's own frontier — the bare-engine rule.
        serving = _serving()
        fleet = _fleet()
        assert_reports_identical(
            fleet.serve_trace(_trace()).merged, serving.serve_trace(_trace())
        )
        second = _trace(num_requests=4, seed=7)
        assert_reports_identical(
            fleet.serve_trace(second).merged,
            serving.serve_trace(_trace(num_requests=4, seed=7)),
        )

    def test_fleet_runs_are_deterministic(self):
        first = _fleet(replicas=2, router="cache_affinity").serve_trace(_trace())
        second = _fleet(replicas=2, router="cache_affinity").serve_trace(_trace())
        assert first.decisions == second.decisions
        assert_reports_identical(first.merged, second.merged)
        for (rid_a, rep_a), (rid_b, rep_b) in zip(
            first.per_replica, second.per_replica
        ):
            assert rid_a == rid_b
            assert_reports_identical(rep_a, rep_b)

    def test_output_tokens_match_bare_engine(self):
        # Token-level check on top of record equality: the actual
        # sampled ids, not just their timings.
        trace = _trace()
        engine_report = _serving().serve_trace(trace)
        fleet_report = _fleet().serve_trace(_trace())
        for ours, theirs in zip(
            fleet_report.merged.per_request_rows(),
            engine_report.per_request_rows(),
        ):
            assert ours == theirs or _rows_equal_with_nan(ours, theirs)

    def test_multi_replica_splits_work(self):
        report = _fleet(replicas=2).serve_trace(_trace(num_requests=8))
        counts = report.assignment_counts()
        assert set(counts) == {0, 1}
        assert sum(counts.values()) == 8
        assert report.merged.num_requests == 8


def _rows_equal_with_nan(a: dict, b: dict) -> bool:
    """Dict equality treating NaN == NaN (prefill-only TBT columns)."""
    if a.keys() != b.keys():
        return False
    for key, left in a.items():
        right = b[key]
        if isinstance(left, float) and np.isnan(left):
            if not (isinstance(right, float) and np.isnan(right)):
                return False
        elif left != right:
            return False
    return True
