"""Replica fault injection: lossless failover and schedule transparency.

Crash instants are not hard-coded: a fault-free probe run of the same
(deterministic) fleet supplies real per-request lifecycle instants, and
each test schedules its crash inside the window it wants to hit —
mid-decode (between first token and finish) or mid-prefill (between
prefill start and first token) of a request served by the doomed
replica. This keeps the tests pinned to the scenario they claim to
cover even if engine timings drift.
"""

import pytest

from repro.engine.factory import make_fleet
from repro.errors import ConfigError, SimulationError
from repro.fleet.faults import FaultSchedule, ReplicaFault
from repro.workloads.generator import serving_workload

MODEL = "mixtral"
NUM_LAYERS = 3
MAX_BATCH = 4
VOCAB = 512
ARRIVALS = [0.0, 0.02, 0.04, 0.06, 0.3, 0.32, 0.34, 0.36]


def _fleet(fault_schedule=None, replicas=2, router="round_robin"):
    return make_fleet(
        model=MODEL,
        strategy="hybrimoe",
        cache_ratio=0.5,
        num_layers=NUM_LAYERS,
        seed=0,
        max_batch_size=MAX_BATCH,
        replicas=replicas,
        router=router,
        fault_schedule=fault_schedule,
    )


def _trace():
    return serving_workload(
        arrival_times=ARRIVALS, decode_steps=4, vocab_size=VOCAB, seed=0
    )


@pytest.fixture(scope="module")
def probe():
    """Fault-free reference run: (report, record) with a replica-0 record.

    Fleet runs are deterministic, so these lifecycle instants are exact
    for every fault-free rerun of the same configuration.
    """
    report = _fleet().serve_trace(_trace())
    replica0 = dict(report.per_replica)[0]
    # A replica-0 request that decodes (has a first token and a later
    # finish) — both crash windows of interest exist for it.
    record = next(
        r for r in replica0.requests if r.finish_time > r.first_token_time
    )
    return report, record


def _crash_run(at_time):
    schedule = FaultSchedule([ReplicaFault(replica=0, at_time=at_time)])
    return _fleet(fault_schedule=schedule).serve_trace(_trace())


def assert_lossless(report, num_requests=len(ARRIVALS)):
    """Every trace request finished exactly once, fleet-wide."""
    assert sorted(r.request_id for r in report.merged.requests) == list(
        range(num_requests)
    )


class TestCrashFailover:
    def test_crash_mid_decode_reroutes_in_flight(self, probe):
        _, record = probe
        crash_at = (record.first_token_time + record.finish_time) / 2
        report = _crash_run(crash_at)

        assert_lossless(report)
        assert report.num_failovers >= 1
        # The probed request was decoding on replica 0 at the crash:
        # its record must carry the failover and finish elsewhere.
        merged = {r.request_id: r for r in report.merged.requests}
        assert merged[record.request_id].num_failovers == 1
        survivors = dict(report.per_replica)
        assert record.request_id in {
            r.request_id for r in survivors[1].requests
        }
        # Replica 0 kept the records of requests it finished pre-crash.
        assert all(
            r.finish_time <= crash_at + 1e-9
            for r in survivors.get(0, type("E", (), {"requests": ()})).requests
        )

    def test_crash_mid_prefill_reroutes_in_flight(self, probe):
        _, record = probe
        crash_at = (record.prefill_start + record.first_token_time) / 2
        report = _crash_run(crash_at)

        assert_lossless(report)
        merged = {r.request_id: r for r in report.merged.requests}
        assert merged[record.request_id].num_failovers == 1
        # Partial prefill died with the replica: the re-routed request
        # restarts from arrival, so its prefill begins after the crash.
        assert merged[record.request_id].prefill_start >= crash_at

    def test_failover_requests_are_rerouted_decisions(self, probe):
        _, record = probe
        crash_at = (record.first_token_time + record.finish_time) / 2
        report = _crash_run(crash_at)
        routed = {}
        for decision in report.decisions:
            routed.setdefault(decision.request_id, []).append(decision.replica)
        # Each failed-over request was routed at least twice, the last
        # time away from the dead replica; each clean one exactly once.
        for request in report.merged.requests:
            hops = routed[request.request_id]
            assert len(hops) == request.num_failovers + 1
            if request.num_failovers:
                assert hops[-1] != 0

    def test_crash_on_drained_replica_never_fires(self, probe):
        fault_free, _ = probe
        # Scheduled far past the fault-free makespan: every replica has
        # drained, nothing observes the fault, reports are identical.
        report = _crash_run(fault_free.merged.last_finish + 100.0)
        assert report.num_failovers == 0
        assert report.merged.requests == fault_free.merged.requests
        assert report.decisions == fault_free.decisions

    def test_all_replicas_crashed_raises(self):
        schedule = FaultSchedule(
            [
                ReplicaFault(replica=0, at_time=0.001),
                ReplicaFault(replica=1, at_time=0.001),
            ]
        )
        with pytest.raises(SimulationError, match="every fleet replica"):
            _fleet(fault_schedule=schedule).serve_trace(_trace())


class TestScheduleTransparency:
    def test_unfired_schedule_is_bit_identical_to_none(self, probe):
        fault_free, _ = probe
        horizon = fault_free.merged.last_finish + 50.0
        schedule = FaultSchedule(
            [
                ReplicaFault(replica=1, at_time=horizon),
                ReplicaFault(
                    replica=0, at_time=horizon, kind="slow", duration=5.0
                ),
            ]
        )
        report = _fleet(fault_schedule=schedule).serve_trace(_trace())
        assert report.merged.requests == fault_free.merged.requests
        assert report.decisions == fault_free.decisions
        assert dict(report.per_replica)[0].requests == dict(
            fault_free.per_replica
        )[0].requests

    def test_slow_window_blacks_replica_out_of_routing(self, probe):
        fault_free, _ = probe
        window = (0.25, fault_free.merged.last_finish + 1.0)
        schedule = FaultSchedule(
            [
                ReplicaFault(
                    replica=0,
                    at_time=window[0],
                    kind="slow",
                    duration=window[1] - window[0],
                )
            ]
        )
        report = _fleet(fault_schedule=schedule).serve_trace(_trace())
        assert_lossless(report)
        assert report.num_failovers == 0  # blackouts shed no work
        for decision in report.decisions:
            if window[0] <= decision.time < window[1]:
                assert decision.replica != 0

    def test_fault_beyond_pool_rejected(self):
        schedule = FaultSchedule([ReplicaFault(replica=5, at_time=1.0)])
        with pytest.raises(ConfigError, match="fault targets replica 5"):
            _fleet(fault_schedule=schedule)


class TestScheduleValidation:
    def test_duplicate_crash_same_instant_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultSchedule(
                [
                    ReplicaFault(replica=0, at_time=1.0),
                    ReplicaFault(replica=0, at_time=1.0),
                ]
            )

    def test_duplicate_slow_same_instant_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultSchedule(
                [
                    ReplicaFault(
                        replica=0, at_time=1.0, kind="slow", duration=1.0
                    ),
                    ReplicaFault(
                        replica=0, at_time=1.0, kind="slow", duration=2.0
                    ),
                ]
            )

    def test_second_crash_on_replica_rejected_even_later(self):
        with pytest.raises(ConfigError, match="more than one scheduled"):
            FaultSchedule(
                [
                    ReplicaFault(replica=0, at_time=1.0),
                    ReplicaFault(replica=0, at_time=2.0),
                ]
            )

    def test_same_fault_different_replicas_allowed(self):
        schedule = FaultSchedule(
            [
                ReplicaFault(replica=0, at_time=1.0),
                ReplicaFault(replica=1, at_time=1.0),
            ]
        )
        assert len(schedule) == 2

    def test_crash_inside_slow_window_allowed(self):
        # Documented precedence: the crash wins, the rest of the slow
        # window is moot. Scheduling both is the fail-slow-then-stop
        # sequence and must construct fine.
        schedule = FaultSchedule(
            [
                ReplicaFault(replica=0, at_time=1.0, kind="slow", duration=5.0),
                ReplicaFault(replica=0, at_time=3.0),
            ]
        )
        assert len(schedule.crashes()) == 1
