"""Threshold autoscaling and cache-affinity specialisation behaviour.

Autoscaling is exercised against the bursty arrival process it is
sized for (flash crowds on a quiet baseline); cache-affinity routing
against the skewed hot-profile trace it is designed for. Fleet runs
are deterministic, so behavioural assertions (scale-up on the burst,
one replica per profile, warm-cache hit-rate wins) are exact replays,
not statistical hopes.
"""

import pytest

from repro.engine.factory import make_fleet
from repro.errors import ConfigError
from repro.fleet.autoscale import AutoscaleConfig
from repro.workloads.generator import (
    bursty_arrivals,
    poisson_arrivals,
    skewed_serving_workload,
    serving_workload,
)

MODEL = "mixtral"
VOCAB = 512


def _fleet(replicas=3, autoscale=None, router="round_robin", **kwargs):
    kwargs.setdefault("model", MODEL)
    kwargs.setdefault("strategy", "hybrimoe")
    kwargs.setdefault("cache_ratio", 0.5)
    kwargs.setdefault("num_layers", 3)
    kwargs.setdefault("max_batch_size", 2)
    return make_fleet(
        seed=0,
        replicas=replicas,
        router=router,
        autoscale=autoscale,
        **kwargs,
    )


class TestAutoscaling:
    def test_burst_scales_up_then_quiet_scales_down(self):
        times = bursty_arrivals(
            24,
            base_rate=0.5,
            burst_rate=40.0,
            burst_every=30.0,
            burst_duration=2.0,
            seed=0,
        )
        trace = serving_workload(
            arrival_times=list(times), decode_steps=4, vocab_size=VOCAB, seed=0
        )
        config = AutoscaleConfig(
            min_replicas=1,
            max_replicas=3,
            high_watermark=2.0,
            low_watermark=0.5,
        )
        report = _fleet(autoscale=config).serve_trace(trace)

        assert sorted(r.request_id for r in report.merged.requests) == list(
            range(24)
        )
        actions = [e.action for e in report.autoscale_events]
        assert "scale_up" in actions
        assert actions[0] == "scale_up"  # the burst hits before any lull
        up = next(e for e in report.autoscale_events if e.action == "scale_up")
        assert up.load >= config.high_watermark
        for event in report.autoscale_events:
            if event.action == "scale_down":
                assert event.load <= config.low_watermark

        # Replay the event log: the active count must stay in bounds.
        active = config.min_replicas
        for event in report.autoscale_events:
            active += 1 if event.action == "scale_up" else -1
            assert config.min_replicas <= active <= config.max_replicas

        # Standby replicas take no requests outside an active window.
        # Scale events fire at routing points *before* the route at the
        # same instant, so replaying events with time <= decision time
        # reconstructs the active set each decision saw.
        for decision in report.decisions:
            active_set = set(range(config.min_replicas))
            for event in report.autoscale_events:
                if event.time > decision.time:
                    break
                if event.action == "scale_up":
                    active_set.add(event.replica)
                else:
                    active_set.discard(event.replica)
            assert decision.replica in active_set

    def test_cooldown_spaces_scale_events(self):
        times = bursty_arrivals(
            24,
            base_rate=0.5,
            burst_rate=40.0,
            burst_every=30.0,
            burst_duration=2.0,
            seed=0,
        )
        trace = serving_workload(
            arrival_times=list(times), decode_steps=4, vocab_size=VOCAB, seed=0
        )
        config = AutoscaleConfig(
            min_replicas=1,
            max_replicas=3,
            high_watermark=2.0,
            low_watermark=0.5,
            cooldown=0.5,
        )
        report = _fleet(autoscale=config).serve_trace(trace)
        events = report.autoscale_events
        for earlier, later in zip(events, events[1:]):
            assert later.time - earlier.time >= config.cooldown

    def test_standby_replicas_are_never_built_without_load(self):
        trace = serving_workload(
            arrival_times=[0.0, 5.0, 10.0],
            decode_steps=2,
            vocab_size=VOCAB,
            seed=0,
        )
        fleet = _fleet(
            autoscale=AutoscaleConfig(
                min_replicas=1,
                max_replicas=3,
                high_watermark=50.0,  # unreachable: never scales up
                low_watermark=0.0,
            )
        )
        report = fleet.serve_trace(trace)
        assert report.autoscale_events == []
        assert fleet.replicas[0].built
        assert not fleet.replicas[1].built  # lazy: standby engine unbuilt
        assert not fleet.replicas[2].built
        assert len(report.per_replica) == 1

    def test_autoscale_beyond_pool_rejected(self):
        with pytest.raises(ConfigError, match="exceeds the replica pool"):
            _fleet(
                replicas=2,
                autoscale=AutoscaleConfig(min_replicas=1, max_replicas=3),
            )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(min_replicas=0), "min_replicas"),
            (dict(min_replicas=3, max_replicas=2), "max_replicas"),
            (dict(high_watermark=1.0, low_watermark=1.0), "low_watermark"),
            (dict(cooldown=-1.0), "cooldown"),
        ],
    )
    def test_config_validation(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            AutoscaleConfig(**kwargs)


class TestCacheAffinityBehaviour:
    """The skewed-trace payoff the fleet-perf benchmark gates on."""

    @pytest.fixture(scope="class")
    def skewed_runs(self):
        """Warm-then-measure runs of both routers on identical fleets."""
        results = {}
        for router in ("round_robin", "cache_affinity"):
            fleet = _fleet(
                replicas=2,
                router=router,
                # The benchmark's skewed scenario: a 64-expert model
                # whose 8-token profiles activate sparse, distinct
                # expert sets, on the recency cache that preserves them
                # (mixtral's 8 experts are all hot for every profile).
                model="deepseek",
                strategy="ondemand",
                cache_ratio=0.45,
                num_layers=6,
                max_batch_size=4,
            )
            warm = skewed_serving_workload(
                num_requests=24,
                arrival_rate=3.0,
                num_profiles=2,
                decode_steps=4,
                vocab_size=VOCAB,
                prompt_length=8,
                seed=0,
            )
            fleet.serve_trace(warm)
            measure = skewed_serving_workload(
                arrival_times=list(poisson_arrivals(48, 250.0, seed=1000)),
                num_profiles=2,
                decode_steps=4,
                vocab_size=VOCAB,
                prompt_length=8,
                seed=0,
            )
            results[router] = (fleet, measure, fleet.serve_trace(measure))
        return results

    def test_profiles_specialise_onto_replicas(self, skewed_runs):
        fleet, measure, report = skewed_runs["cache_affinity"]
        by_profile: dict[bytes, list[int]] = {}
        replica_of = {d.request_id: d.replica for d in report.decisions}
        for request_id, entry in enumerate(measure):
            key = entry.workload.prompt_tokens.tobytes()
            by_profile.setdefault(key, []).append(replica_of[request_id])
        assert len(by_profile) == 2
        majorities = []
        for assignments in by_profile.values():
            counts = {r: assignments.count(r) for r in set(assignments)}
            majority = max(counts, key=counts.get)
            # Each profile keeps a home-replica majority. Perfect
            # pinning is impossible by design: the policy's load guard
            # spills a request to the other replica whenever its home
            # is more than one request deeper — under a saturating
            # burst that happens regularly (and is what keeps the
            # merged makespan from being lost to count imbalance).
            assert counts[majority] / len(assignments) > 0.55
            majorities.append(majority)
        assert sorted(majorities) == [0, 1]  # distinct homes, not a funnel

    def test_affinity_beats_round_robin_hit_rate(self, skewed_runs):
        _, _, affinity = skewed_runs["cache_affinity"]
        _, _, round_robin = skewed_runs["round_robin"]
        assert affinity.merged.hit_rate > round_robin.merged.hit_rate

    def test_shared_origin_keeps_one_time_base(self, skewed_runs):
        fleet, _, report = skewed_runs["cache_affinity"]
        # Second serve on a warm fleet: every record is anchored at the
        # shared fleet origin, so no request can appear to arrive
        # before it, and the merged makespan stays trace-sized instead
        # of clock-drift-sized.
        origin = report.merged.first_arrival
        assert all(r.arrival_time >= origin for r in report.merged.requests)
        spans = [rep.makespan for _, rep in report.per_replica]
        assert max(spans) <= report.merged.makespan + 1e-9
        assert report.merged.makespan < 10.0  # not inflated by drift
