"""Report-merge backfill: the merged fleet report is pure pooling.

Every aggregate the merged :class:`~repro.engine.metrics.ServingReport`
exposes — goodput, token throughput, TTFT/TBT percentiles, per-class
goodput, queueing delay — must equal a by-hand recomputation from the
pooled per-replica request records, exactly as a single engine that had
served every request itself would report them.
"""

import numpy as np
import pytest

from repro.engine.factory import make_fleet
from repro.engine.metrics import RequestRecord, ServingReport
from repro.errors import SimulationError
from repro.workloads.generator import serving_workload

MODEL = "mixtral"
VOCAB = 512


@pytest.fixture(scope="module")
def fleet_report():
    """A 3-replica run with two priority classes and real contention."""
    fleet = make_fleet(
        model=MODEL,
        strategy="hybrimoe",
        cache_ratio=0.5,
        num_layers=3,
        seed=0,
        max_batch_size=3,
        replicas=3,
        router="least_loaded",
    )
    trace = serving_workload(
        num_requests=12,
        arrival_rate=6.0,
        decode_steps=4,
        vocab_size=VOCAB,
        seed=0,
        priority_mix={"interactive": 0.5, "batch": 0.5},
    )
    return fleet.serve_trace(trace)


def _pooled(report):
    return [r for _, rep in report.per_replica for r in rep.requests]


class TestMergedEqualsPooledRecomputation:
    def test_record_pool_is_a_partition(self, fleet_report):
        pooled = _pooled(fleet_report)
        assert sorted(r.request_id for r in pooled) == [
            r.request_id for r in fleet_report.merged.requests
        ]
        assert len(fleet_report.per_replica) == 3

    def test_goodput_and_throughput(self, fleet_report):
        pooled = _pooled(fleet_report)
        first = min(r.arrival_time for r in pooled)
        last = max(r.finish_time for r in pooled)
        merged = fleet_report.merged
        assert merged.makespan == pytest.approx(last - first)
        assert merged.goodput == pytest.approx(len(pooled) / (last - first))
        assert merged.token_throughput == pytest.approx(
            sum(r.decode_tokens for r in pooled) / (last - first)
        )

    def test_latency_percentiles(self, fleet_report):
        pooled = _pooled(fleet_report)
        merged = fleet_report.merged
        ttfts = [r.ttft for r in pooled]
        tbts = [tbt for r in pooled for tbt in r.tbt_values]
        for q in (50, 95, 99):
            assert merged.ttft_percentiles()[f"p{q}"] == pytest.approx(
                float(np.percentile(ttfts, q))
            )
            assert merged.tbt_percentiles()[f"p{q}"] == pytest.approx(
                float(np.percentile(tbts, q))
            )
        assert merged.mean_queueing_delay == pytest.approx(
            float(np.mean([r.queueing_delay for r in pooled]))
        )

    def test_class_goodput(self, fleet_report):
        pooled = _pooled(fleet_report)
        merged = fleet_report.merged
        span = merged.makespan
        classes = sorted({r.priority for r in pooled})
        assert merged.priority_classes() == classes
        assert len(classes) == 2
        for priority in classes:
            of_class = [r for r in pooled if r.priority == priority]
            assert merged.class_goodput(priority) == pytest.approx(
                len(of_class) / span
            )
        rows = {row["class"]: row for row in merged.class_summary()}
        for priority in classes:
            of_class = [r for r in pooled if r.priority == priority]
            assert rows[priority]["requests"] == len(of_class)
            assert rows[priority]["p99_ttft_s"] == pytest.approx(
                float(np.percentile([r.ttft for r in of_class], 99))
            )

    def test_cache_counters_sum(self, fleet_report):
        merged = fleet_report.merged
        assert merged.total_hits == sum(
            rep.total_hits for _, rep in fleet_report.per_replica
        )
        assert merged.total_misses == sum(
            rep.total_misses for _, rep in fleet_report.per_replica
        )
        hits, misses = merged.total_hits, merged.total_misses
        assert merged.hit_rate == pytest.approx(hits / (hits + misses))


def _report(records, **overrides):
    fields = dict(
        model_name="m",
        strategy_name="s",
        cache_ratio=0.5,
        max_batch_size=4,
        requests=records,
    )
    fields.update(overrides)
    return ServingReport(**fields)


def _record(request_id):
    return RequestRecord(
        request_id=request_id,
        prompt_len=4,
        decode_tokens=2,
        arrival_time=0.0,
        prefill_start=0.1,
        first_token_time=0.2,
        finish_time=0.5,
        tbt_values=(0.1, 0.2),
    )


class TestMergeValidation:
    def test_duplicate_request_ids_rejected(self):
        with pytest.raises(SimulationError, match="more than one replica"):
            ServingReport.merged([_report([_record(0)]), _report([_record(0)])])

    def test_heterogeneous_reports_rejected(self):
        with pytest.raises(SimulationError, match="heterogeneous"):
            ServingReport.merged(
                [_report([_record(0)]), _report([_record(1)], cache_ratio=0.25)]
            )

    def test_zero_reports_rejected(self):
        with pytest.raises(SimulationError, match="zero serving reports"):
            ServingReport.merged([])

    def test_merging_one_report_is_identity(self):
        report = _report([_record(1), _record(0)])
        merged = ServingReport.merged([report])
        assert [r.request_id for r in merged.requests] == [0, 1]
        assert merged.total_hits == report.total_hits

    def test_one_empty_replica_merges_transparently(self):
        # A replica that served nothing (crashed early, never routed)
        # contributes no records but must not poison the aggregates.
        merged = ServingReport.merged(
            [_report([_record(0), _record(1)]), _report([])]
        )
        assert [r.request_id for r in merged.requests] == [0, 1]
        assert merged.goodput == ServingReport.merged(
            [_report([_record(0), _record(1)])]
        ).goodput

    def test_all_replicas_empty_merges_to_empty_report(self):
        merged = ServingReport.merged([_report([]), _report([])])
        assert merged.num_requests == 0
        assert merged.num_completed == 0
        # Window-derived aggregates have no defined value on an empty
        # report and must refuse loudly rather than emit garbage.
        with pytest.raises(SimulationError, match="no requests"):
            _ = merged.makespan
        with pytest.raises(SimulationError, match="no requests"):
            _ = merged.goodput
