"""Fleet degraded-mode: steering, retries, and chaos invariants.

Fleet-level counterpart of ``tests/serving/test_degraded_serving.py``:
hardware fault schedules sliced per replica, router steering away from
degraded replicas, timeout retry-with-backoff re-routing, and a small
seeded chaos campaign run through the ``tools/chaos.py`` harness with
its invariant checker.
"""

import sys
from pathlib import Path

import pytest

from repro.engine.factory import make_fleet
from repro.errors import ConfigError
from repro.hardware.faults import HardwareFault, HardwareFaultSchedule
from repro.workloads.generator import serving_workload

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from chaos import CampaignSpec, check_invariants, run_campaign  # noqa: E402

MODEL = "mixtral"
NUM_LAYERS = 3
VOCAB = 512
ARRIVALS = [0.0, 0.02, 0.04, 0.06, 0.3, 0.32, 0.34, 0.36]


def _fleet(replicas=2, router="round_robin", **knobs):
    return make_fleet(
        model=MODEL,
        strategy="hybrimoe",
        cache_ratio=0.5,
        num_layers=NUM_LAYERS,
        seed=0,
        max_batch_size=4,
        replicas=replicas,
        router=router,
        **knobs,
    )


def _trace(arrivals=ARRIVALS, decode_steps=4):
    return serving_workload(
        arrival_times=arrivals,
        decode_steps=decode_steps,
        vocab_size=VOCAB,
        seed=0,
    )


class TestFleetScheduleTransparency:
    def test_unfired_hardware_schedule_bit_identical(self):
        baseline = _fleet(router="cache_affinity").serve_trace(_trace())
        horizon = baseline.merged.last_finish + 50.0
        schedule = HardwareFaultSchedule(
            [
                HardwareFault(
                    kind="gpu_straggler",
                    at_time=horizon,
                    duration=5.0,
                    severity=2.0,
                    replica=0,
                ),
                HardwareFault(
                    kind="link_degrade",
                    at_time=horizon,
                    duration=5.0,
                    severity=0.5,
                    replica=1,
                ),
            ]
        )
        shadowed = _fleet(
            router="cache_affinity", hardware_faults=schedule
        ).serve_trace(_trace())
        assert shadowed.merged.requests == baseline.merged.requests
        assert shadowed.decisions == baseline.decisions
        assert shadowed.merged.degradations == []

    def test_fault_beyond_pool_rejected(self):
        schedule = HardwareFaultSchedule(
            [
                HardwareFault(
                    kind="disk_stall", at_time=1.0, duration=1.0, replica=5
                )
            ]
        )
        with pytest.raises(ConfigError, match="replica 5"):
            _fleet(hardware_faults=schedule)


class TestDegradationSteering:
    def test_router_avoids_degraded_replica_in_window(self):
        baseline = _fleet().serve_trace(_trace())
        window = (0.25, baseline.merged.last_finish + 1.0)
        schedule = HardwareFaultSchedule(
            [
                HardwareFault(
                    kind="gpu_straggler",
                    at_time=window[0],
                    duration=window[1] - window[0],
                    severity=8.0,
                    replica=0,
                )
            ]
        )
        report = _fleet(hardware_faults=schedule).serve_trace(_trace())
        assert sorted(r.request_id for r in report.merged.requests) == list(
            range(len(ARRIVALS))
        )
        for decision in report.decisions:
            if window[0] <= decision.time < window[1]:
                assert decision.replica != 0

    def test_degraded_replica_readmitted_when_alone(self):
        # Both replicas degraded: steering must not strand requests.
        schedule = HardwareFaultSchedule(
            [
                HardwareFault(
                    kind="gpu_straggler",
                    at_time=0.0,
                    duration=1e6,
                    severity=2.0,
                    replica=r,
                )
                for r in (0, 1)
            ]
        )
        report = _fleet(hardware_faults=schedule).serve_trace(_trace())
        assert report.merged.num_completed == len(ARRIVALS)


class TestTimeoutRetries:
    def test_retries_rescue_timed_out_requests(self):
        no_retry = _fleet(request_timeout_s=0.08).serve_trace(_trace())
        assert no_retry.merged.num_timeouts >= 1

        retried = _fleet(
            request_timeout_s=0.08, max_retries=4, retry_backoff_s=0.1
        ).serve_trace(_trace())
        # Conservation: one terminal record per submitted request.
        assert sorted(r.request_id for r in retried.merged.requests) == list(
            range(len(ARRIVALS))
        )
        assert retried.merged.num_retries >= 1
        # Retries strictly improve on the no-retry run's completions.
        assert retried.merged.num_completed > no_retry.merged.num_completed
        rescued = [
            r
            for r in retried.merged.requests
            if r.num_retries >= 1 and r.status == "finished"
        ]
        assert rescued

    def test_exhausted_retries_end_timed_out(self):
        report = _fleet(
            request_timeout_s=1e-6, max_retries=1, retry_backoff_s=1e-6
        ).serve_trace(_trace())
        assert report.merged.num_timeouts == len(ARRIVALS)
        for record in report.merged.requests:
            assert record.status == "timed_out"
            assert record.num_retries == 1  # budget spent before giving up

    def test_retry_knob_validation(self):
        with pytest.raises(ConfigError, match="max_retries"):
            _fleet(max_retries=-1)
        with pytest.raises(ConfigError, match="retry_backoff_s"):
            _fleet(max_retries=1, retry_backoff_s=0.0)


class TestChaosCampaign:
    def test_small_campaign_holds_all_invariants(self):
        spec = CampaignSpec(
            seed=0,
            replicas=2,
            num_requests=12,
            num_crashes=1,
            num_slow=1,
            num_hardware=2,
            model=MODEL,
            num_layers=NUM_LAYERS,
            decode_steps=4,
            request_timeout_s=1.0,
            shed_queue_depth=6,
        )
        result = run_campaign(spec)
        assert result.violations == ()
        counts = result.outcome_counts()
        assert sum(counts.values()) == spec.num_requests

    def test_invariant_checker_catches_loss_and_duplication(self):
        spec = CampaignSpec(
            seed=1, replicas=2, num_requests=8, model=MODEL,
            num_layers=NUM_LAYERS, decode_steps=4,
        )
        result = run_campaign(spec)
        report = result.report
        # Drop a record fleet-wide: both the merged pool and the
        # replica that held it lose it (conservation still holds, so
        # the loss shows up as a missing id).
        victim = report.merged.requests[0]
        report.merged.requests.remove(victim)
        for _, rep in report.per_replica:
            if victim in rep.requests:
                rep.requests.remove(victim)
        violations = check_invariants(spec.num_requests, report)
        assert any("exactly-once" in v for v in violations)

        # Duplicate one: caught as both duplication and conservation skew.
        report.merged.requests.append(report.merged.requests[0])
        violations = check_invariants(spec.num_requests, report)
        assert any("duplicated" in v for v in violations)
