"""Experiment harness smoke tests with miniature scales.

These assert structure and the paper's headline *orderings*, not
absolute values; the benchmarks regenerate the real tables.
"""

import pytest

from repro.experiments.figures import (
    ExperimentScale,
    fig3a_activation_cdf,
    fig3e_expert_count_sweep,
    fig3f_workload_sweep,
    fig7_prefill,
    fig8_decode,
    fig9_cache_hit_rate,
    replay_cache_hit_rate,
    table3_ablation,
)
from repro.errors import ConfigError

TINY = ExperimentScale(
    num_layers=3, prefill_buckets=(32,), decode_steps=6, trace_decode_steps=24
)


class TestFig3Analyses:
    def test_fig3a_rows_monotone(self):
        rows = fig3a_activation_cdf(scale=TINY, curve_points=5)
        values = [r["deepseek-expert"] for r in rows]
        assert values == sorted(values)
        assert rows[-1]["opt-neuron"] == pytest.approx(1.0)

    def test_fig3e_cpu_overlap_effect(self):
        rows = fig3e_expert_count_sweep(max_experts=4)
        # CPU marginal cost of expert 2..n is below the first (warmup).
        first = rows[0]["cpu_time_s"]
        marginal = rows[1]["cpu_time_s"] - rows[0]["cpu_time_s"]
        assert marginal < first

    def test_fig3f_gpu_flat_cpu_linear(self):
        rows = fig3f_workload_sweep(workloads=(1, 64, 512))
        gpu_ratio = rows[-1]["gpu_time_s"] / rows[0]["gpu_time_s"]
        cpu_ratio = rows[-1]["cpu_time_s"] / rows[0]["cpu_time_s"]
        assert cpu_ratio > 10 * gpu_ratio


class TestEndToEndGrids:
    def test_fig7_structure_and_ordering(self):
        rows = fig7_prefill(
            models=("deepseek",),
            ratios=(0.25,),
            strategies=("llamacpp", "ktransformers", "hybrimoe"),
            scale=TINY,
        )
        assert len(rows) == 3
        by_strategy = {r["strategy"]: r["ttft_s"] for r in rows}
        assert by_strategy["llamacpp"] > by_strategy["hybrimoe"]

    def test_fig8_structure(self):
        rows = fig8_decode(
            models=("deepseek",),
            ratios=(0.5,),
            strategies=("ktransformers", "hybrimoe"),
            scale=TINY,
        )
        assert {r["strategy"] for r in rows} == {"ktransformers", "hybrimoe"}
        assert all(r["mean_tbt_s"] > 0 for r in rows)

    def test_table3_baseline_normalised(self):
        rows = table3_ablation(model_name="deepseek", scale=TINY, prefill_len=24)
        assert rows[0]["config"] == "baseline"
        assert rows[0]["prefill_speedup"] == pytest.approx(1.0)
        assert rows[0]["decode_speedup"] == pytest.approx(1.0)
        assert {r["config"] for r in rows} == {
            "baseline",
            "baseline+scheduling",
            "baseline+prefetching",
            "baseline+caching",
            "all",
        }


class TestFig9:
    def test_mrs_beats_lru_at_low_capacity(self):
        rows = fig9_cache_hit_rate(
            models=("deepseek",), percentages=(0.3,), scale=TINY
        )
        by_policy = {r["policy"]: r["hit_rate"] for r in rows}
        assert by_policy["mrs"] >= by_policy["lru"] - 0.02

    def test_hit_rate_increases_with_capacity(self):
        rows = fig9_cache_hit_rate(
            models=("deepseek",), percentages=(0.3, 0.7), policies=("lru",),
            scale=TINY,
        )
        small, large = rows[0]["hit_rate"], rows[1]["hit_rate"]
        assert large >= small

    def test_replay_requires_capacity(self, tiny_model, prompt_tokens):
        from repro.routing.generator import generate_trace

        trace = generate_trace(tiny_model, prompt_tokens, decode_steps=4, seed=0)
        with pytest.raises(ConfigError):
            replay_cache_hit_rate(trace, 0, "lru")


class TestScaleValidation:
    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            ExperimentScale(
                num_layers=2, prefill_buckets=(32,), decode_steps=0,
                trace_decode_steps=8,
            )
