"""Experiment runner: model memoisation and configuration plumbing."""

import pytest

from repro.engine.engine import EngineConfig
from repro.experiments.runner import cached_model, run_workload
from repro.workloads import decode_workload, prefill_workloads


class TestCachedModel:
    def test_same_key_same_instance(self):
        a = cached_model("deepseek", 2, 0)
        b = cached_model("deepseek", 2, 0)
        assert a is b

    def test_different_seed_different_instance(self):
        a = cached_model("deepseek", 2, 0)
        b = cached_model("deepseek", 2, 1)
        assert a is not b

    def test_layer_override_respected(self):
        model = cached_model("mixtral", 3, 0)
        assert model.config.num_layers == 3


class TestRunWorkload:
    def test_prefill_workload(self):
        workload = prefill_workloads(32, seed=0)[0]
        result = run_workload(
            "deepseek", "ktransformers", 0.5, workload, num_layers=2, seed=0
        )
        assert result.prefill.n_tokens == workload.prompt_len
        assert result.decode_steps == []

    def test_decode_workload(self):
        workload = decode_workload(3, seed=0)
        result = run_workload(
            "deepseek", "hybrimoe", 0.5, workload, num_layers=2, seed=0
        )
        assert len(result.decode_steps) == 3

    def test_engine_config_overrides(self):
        workload = decode_workload(2, seed=0)
        config = EngineConfig(cache_ratio=0.25, seed=0, prefetch_lookahead=1)
        result = run_workload(
            "deepseek",
            "hybrimoe",
            cache_ratio=0.9,  # ignored: engine_config wins
            workload=workload,
            num_layers=2,
            seed=0,
            engine_config=config,
        )
        assert result.cache_ratio == pytest.approx(0.25)

    def test_strategy_kwargs_reach_strategy(self):
        workload = decode_workload(2, seed=0)
        result = run_workload(
            "deepseek",
            "hybrimoe",
            0.5,
            workload,
            num_layers=2,
            seed=0,
            strategy_kwargs={"scheduling": False, "prefetching": False, "caching": False},
        )
        assert result.strategy_name == "hybrimoe[baseline]"

    def test_runs_are_reproducible(self):
        workload = decode_workload(2, seed=0)
        a = run_workload("deepseek", "hybrimoe", 0.5, workload, num_layers=2, seed=0)
        b = run_workload("deepseek", "hybrimoe", 0.5, workload, num_layers=2, seed=0)
        assert a.ttft == pytest.approx(b.ttft)
        assert a.mean_tbt == pytest.approx(b.mean_tbt)
