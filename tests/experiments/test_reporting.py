"""Reporting helpers: tables, speedups, persistence."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.reporting import (
    add_speedup_column,
    format_table,
    geometric_mean,
    save_csv,
    save_json,
)

ROWS = [
    {"model": "a", "cache_ratio": 0.5, "strategy": "ktransformers", "ttft": 2.0},
    {"model": "a", "cache_ratio": 0.5, "strategy": "hybrimoe", "ttft": 1.0},
    {"model": "b", "cache_ratio": 0.5, "strategy": "ktransformers", "ttft": 3.0},
    {"model": "b", "cache_ratio": 0.5, "strategy": "hybrimoe", "ttft": 2.0},
]


class TestFormatTable:
    def test_contains_all_cells(self):
        text = format_table(ROWS, title="demo")
        assert "demo" in text
        assert "hybrimoe" in text
        assert "ktransformers" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="x")

    def test_column_subset(self):
        text = format_table(ROWS, columns=["model", "ttft"])
        assert "strategy" not in text


class TestSpeedup:
    def test_speedup_vs_baseline(self):
        annotated = add_speedup_column(ROWS, "ttft")
        by_key = {(r["model"], r["strategy"]): r for r in annotated}
        assert by_key[("a", "hybrimoe")]["speedup"] == pytest.approx(2.0)
        assert by_key[("b", "hybrimoe")]["speedup"] == pytest.approx(1.5)
        assert by_key[("a", "ktransformers")]["speedup"] == pytest.approx(1.0)

    def test_missing_baseline_leaves_rows_unannotated(self):
        rows = [dict(r) for r in ROWS if r["strategy"] != "ktransformers"]
        annotated = add_speedup_column(rows, "ttft")
        assert all("speedup" not in r for r in annotated)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])


class TestPersistence:
    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "rows.json"
        save_json(ROWS, path)
        assert json.loads(path.read_text()) == ROWS

    def test_csv_header_union(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = tmp_path / "rows.csv"
        save_csv(rows, path)
        header = path.read_text().splitlines()[0]
        assert header == "a,b"

    def test_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_csv([], path)
        assert path.read_text() == ""
