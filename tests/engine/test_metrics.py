"""Metric container semantics."""

import numpy as np
import pytest

from repro.engine.metrics import (
    GenerationResult,
    RequestRecord,
    ServingReport,
    StepMetrics,
    latency_percentiles,
)
from repro.errors import SimulationError


def _step(stage="decode", start=0.0, end=1.0, hits=3, misses=1):
    return StepMetrics(
        stage=stage,
        n_tokens=1,
        start=start,
        end=end,
        hits=hits,
        misses=misses,
        utilization={"gpu": 0.5, "cpu": 0.25, "pcie": 0.0},
    )


class TestStepMetrics:
    def test_duration(self):
        assert _step(start=1.0, end=3.5).duration == pytest.approx(2.5)

    def test_hit_rate(self):
        assert _step(hits=3, misses=1).hit_rate == pytest.approx(0.75)

    def test_hit_rate_no_accesses(self):
        assert _step(hits=0, misses=0).hit_rate == 0.0


class TestGenerationResult:
    def _result(self):
        return GenerationResult(
            model_name="tiny",
            strategy_name="hybrimoe",
            cache_ratio=0.5,
            prefill=_step(stage="prefill", start=0.0, end=2.0),
            decode_steps=[
                _step(start=2.0, end=2.5),
                _step(start=2.5, end=3.5),
            ],
            total_hits=9,
            total_misses=3,
        )

    def test_ttft(self):
        assert self._result().ttft == pytest.approx(2.0)

    def test_mean_tbt(self):
        assert self._result().mean_tbt == pytest.approx(0.75)

    def test_throughput_inverse_of_tbt(self):
        result = self._result()
        assert result.decode_throughput == pytest.approx(1.0 / result.mean_tbt)

    def test_hit_rates(self):
        result = self._result()
        assert result.hit_rate == pytest.approx(0.75)
        assert result.decode_hit_rate() == pytest.approx(0.75)

    def test_missing_prefill_raises(self):
        result = GenerationResult("t", "s", 0.5, prefill=None)
        with pytest.raises(SimulationError):
            _ = result.ttft

    def test_missing_decode_raises(self):
        result = GenerationResult("t", "s", 0.5, prefill=_step("prefill"))
        with pytest.raises(SimulationError):
            _ = result.mean_tbt

    def test_mean_utilization(self):
        util = self._result().mean_utilization("decode")
        assert util["gpu"] == pytest.approx(0.5)

    def test_summary_fields(self):
        summary = self._result().summary()
        assert summary["model"] == "tiny"
        assert "ttft" in summary and "mean_tbt" in summary

    def test_tbt_percentiles(self):
        result = self._result()
        values = result.tbt_values
        assert result.p50_tbt == pytest.approx(float(np.percentile(values, 50)))
        assert result.p95_tbt == pytest.approx(float(np.percentile(values, 95)))
        assert result.p99_tbt == pytest.approx(float(np.percentile(values, 99)))
        assert result.p50_tbt <= result.p95_tbt <= result.p99_tbt

    def test_tbt_percentiles_without_decode_raise(self):
        result = GenerationResult("t", "s", 0.5, prefill=_step("prefill"))
        with pytest.raises(SimulationError):
            _ = result.p99_tbt

    def test_summary_includes_percentiles(self):
        summary = self._result().summary()
        assert {"p50_tbt", "p95_tbt", "p99_tbt"} <= set(summary)

    def test_step_batch_size_defaults_to_one(self):
        assert _step().batch_size == 1


class TestLatencyPercentiles:
    def test_values(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        result = latency_percentiles(sample)
        assert set(result) == {"p50", "p95", "p99"}
        assert result["p50"] == pytest.approx(2.5)

    def test_empty_sample_raises(self):
        with pytest.raises(SimulationError):
            latency_percentiles([])


def _record(
    request_id=0,
    arrival=1.0,
    prefill_start=1.5,
    first_token=2.0,
    finish=3.0,
    priority="batch",
    tbt_deadline=None,
    num_preemptions=0,
):
    return RequestRecord(
        request_id=request_id,
        prompt_len=16,
        decode_tokens=2,
        arrival_time=arrival,
        prefill_start=prefill_start,
        first_token_time=first_token,
        finish_time=finish,
        tbt_values=(0.4, 0.6),
        priority=priority,
        tbt_deadline=tbt_deadline,
        num_preemptions=num_preemptions,
    )


class TestServingReport:
    def _report(self):
        return ServingReport(
            model_name="tiny",
            strategy_name="hybrimoe",
            cache_ratio=0.5,
            max_batch_size=4,
            requests=[
                _record(0, arrival=0.0, prefill_start=0.0, first_token=1.0, finish=2.0),
                _record(1, arrival=1.0, prefill_start=2.0, first_token=2.5, finish=5.0),
            ],
            total_hits=6,
            total_misses=2,
        )

    def test_window_and_goodput(self):
        report = self._report()
        assert report.makespan == pytest.approx(5.0)
        assert report.goodput == pytest.approx(2 / 5.0)
        assert report.token_throughput == pytest.approx(4 / 5.0)

    def test_queueing_and_ttft(self):
        report = self._report()
        assert report.mean_queueing_delay == pytest.approx(0.5)
        assert report.ttft_percentiles()["p50"] == pytest.approx(1.25)

    def test_summary_fields(self):
        summary = self._report().summary()
        assert summary["hit_rate"] == pytest.approx(0.75)
        assert {
            "goodput_rps",
            "mean_queue_delay_s",
            "p50_ttft_s",
            "p99_tbt_s",
        } <= set(summary)

    def test_per_request_rows_sorted(self):
        rows = self._report().per_request_rows()
        assert [row["request"] for row in rows] == [0, 1]

    def test_empty_report_raises(self):
        empty = ServingReport("t", "s", 0.5, max_batch_size=1)
        with pytest.raises(SimulationError):
            _ = empty.makespan


class TestDeadlines:
    def test_no_deadline_is_unscored(self):
        assert _record().meets_tbt_deadline is None

    def test_met_and_missed_deadlines(self):
        assert _record(tbt_deadline=10.0).meets_tbt_deadline is True
        # p99 of (0.4, 0.6) is ~0.598 > 0.5.
        assert _record(tbt_deadline=0.5).meets_tbt_deadline is False

    def test_prefill_only_request_meets_trivially(self):
        record = RequestRecord(
            request_id=0,
            prompt_len=8,
            decode_tokens=0,
            arrival_time=0.0,
            prefill_start=0.0,
            first_token_time=1.0,
            finish_time=1.0,
            tbt_values=(),
            tbt_deadline=0.01,
        )
        assert record.meets_tbt_deadline is True


class TestClassSummary:
    def _report(self):
        return ServingReport(
            model_name="tiny",
            strategy_name="hybrimoe",
            cache_ratio=0.5,
            max_batch_size=4,
            requests=[
                _record(0, arrival=0.0, prefill_start=0.0, first_token=1.0,
                        finish=2.0, priority="batch", num_preemptions=1),
                _record(1, arrival=1.0, prefill_start=2.0, first_token=2.5,
                        finish=5.0, priority="interactive", tbt_deadline=10.0),
                _record(2, arrival=1.0, prefill_start=2.0, first_token=2.5,
                        finish=4.0, priority="interactive", tbt_deadline=0.5),
            ],
            total_hits=6,
            total_misses=2,
            preemptions=1,
        )

    def test_classes_and_goodput_partition(self):
        report = self._report()
        assert report.priority_classes() == ["batch", "interactive"]
        assert report.class_goodput("batch") == pytest.approx(1 / 5.0)
        assert report.class_goodput("interactive") == pytest.approx(2 / 5.0)
        assert sum(
            report.class_goodput(c) for c in report.priority_classes()
        ) == pytest.approx(report.goodput)

    def test_class_rows(self):
        rows = {row["class"]: row for row in self._report().class_summary()}
        assert rows["batch"]["requests"] == 1
        assert rows["batch"]["preemptions"] == 1
        assert rows["interactive"]["requests"] == 2
        # One of the two interactive deadlines (10.0) is met, one (0.5)
        # is missed by the ~0.598 p99.
        assert rows["interactive"]["slo_attainment"] == pytest.approx(0.5)
        assert rows["batch"]["slo_attainment"] != rows["batch"]["slo_attainment"]  # NaN
        assert {"p50_ttft_s", "p99_tbt_s", "goodput_rps"} <= set(rows["batch"])

    def test_summary_carries_preemptions(self):
        assert self._report().summary()["preemptions"] == 1

    def test_per_request_rows_carry_class(self):
        rows = self._report().per_request_rows()
        assert rows[0]["class"] == "batch"
        assert rows[0]["preemptions"] == 1
