"""Metric container semantics."""

import pytest

from repro.engine.metrics import GenerationResult, StepMetrics
from repro.errors import SimulationError


def _step(stage="decode", start=0.0, end=1.0, hits=3, misses=1):
    return StepMetrics(
        stage=stage,
        n_tokens=1,
        start=start,
        end=end,
        hits=hits,
        misses=misses,
        utilization={"gpu": 0.5, "cpu": 0.25, "pcie": 0.0},
    )


class TestStepMetrics:
    def test_duration(self):
        assert _step(start=1.0, end=3.5).duration == pytest.approx(2.5)

    def test_hit_rate(self):
        assert _step(hits=3, misses=1).hit_rate == pytest.approx(0.75)

    def test_hit_rate_no_accesses(self):
        assert _step(hits=0, misses=0).hit_rate == 0.0


class TestGenerationResult:
    def _result(self):
        return GenerationResult(
            model_name="tiny",
            strategy_name="hybrimoe",
            cache_ratio=0.5,
            prefill=_step(stage="prefill", start=0.0, end=2.0),
            decode_steps=[
                _step(start=2.0, end=2.5),
                _step(start=2.5, end=3.5),
            ],
            total_hits=9,
            total_misses=3,
        )

    def test_ttft(self):
        assert self._result().ttft == pytest.approx(2.0)

    def test_mean_tbt(self):
        assert self._result().mean_tbt == pytest.approx(0.75)

    def test_throughput_inverse_of_tbt(self):
        result = self._result()
        assert result.decode_throughput == pytest.approx(1.0 / result.mean_tbt)

    def test_hit_rates(self):
        result = self._result()
        assert result.hit_rate == pytest.approx(0.75)
        assert result.decode_hit_rate() == pytest.approx(0.75)

    def test_missing_prefill_raises(self):
        result = GenerationResult("t", "s", 0.5, prefill=None)
        with pytest.raises(SimulationError):
            _ = result.ttft

    def test_missing_decode_raises(self):
        result = GenerationResult("t", "s", 0.5, prefill=_step("prefill"))
        with pytest.raises(SimulationError):
            _ = result.mean_tbt

    def test_mean_utilization(self):
        util = self._result().mean_utilization("decode")
        assert util["gpu"] == pytest.approx(0.5)

    def test_summary_fields(self):
        summary = self._result().summary()
        assert summary["model"] == "tiny"
        assert "ttft" in summary and "mean_tbt" in summary
