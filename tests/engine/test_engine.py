"""Engine integration: clock integrity, cache accounting, determinism."""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_strategy
from repro.errors import ConfigError
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel


@pytest.fixture
def small_engine(tiny_config):
    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=0.5, seed=0, profile_prompt_len=8, profile_decode_steps=2
    )
    return InferenceEngine(
        model, make_strategy("hybrimoe"), paper_testbed(), config
    )


class TestGenerate:
    def test_result_structure(self, small_engine, prompt_tokens):
        result = small_engine.generate(prompt_tokens, decode_steps=3)
        assert result.prefill is not None
        assert len(result.decode_steps) == 3
        assert result.ttft > 0
        assert result.mean_tbt > 0

    def test_empty_prompt_rejected(self, small_engine):
        with pytest.raises(ConfigError):
            small_engine.generate(np.array([], dtype=np.int64))

    def test_bad_token_source_rejected(self, small_engine, prompt_tokens):
        with pytest.raises(ConfigError):
            small_engine.generate(prompt_tokens, decode_token_source="beam")

    def test_timeline_invariants_after_run(self, small_engine, prompt_tokens):
        small_engine.generate(prompt_tokens, decode_steps=4)
        small_engine.runtime.clock.validate()
        small_engine.runtime.cache.validate()

    def test_steps_monotone_in_time(self, small_engine, prompt_tokens):
        result = small_engine.generate(prompt_tokens, decode_steps=4)
        cursor = result.prefill.end
        for step in result.decode_steps:
            assert step.start >= result.prefill.start
            assert step.end >= cursor - 1e-9
            cursor = step.end

    def test_hit_accounting_totals(self, small_engine, prompt_tokens):
        result = small_engine.generate(prompt_tokens, decode_steps=2)
        step_hits = result.prefill.hits + sum(s.hits for s in result.decode_steps)
        step_misses = result.prefill.misses + sum(
            s.misses for s in result.decode_steps
        )
        # Engine totals come from cache stats, which include only the
        # generation's accesses (profiling traces never touch the cache).
        assert result.total_hits == step_hits
        assert result.total_misses == step_misses

    def test_decode_only_convenience(self, small_engine):
        result = small_engine.decode_only(num_steps=3)
        assert len(result.decode_steps) == 3


class TestDeterminism:
    def test_same_seed_same_latency(self, tiny_config, prompt_tokens):
        def run():
            model = ReferenceMoEModel(tiny_config, seed=0)
            config = EngineConfig(
                cache_ratio=0.5, seed=0, profile_prompt_len=8, profile_decode_steps=2
            )
            engine = InferenceEngine(
                model, make_strategy("hybrimoe"), paper_testbed(), config
            )
            return engine.generate(prompt_tokens, decode_steps=3)

        a, b = run(), run()
        assert a.ttft == b.ttft
        np.testing.assert_array_equal(a.tbt_values, b.tbt_values)
        assert a.total_hits == b.total_hits


class TestEngineConfigValidation:
    def test_cache_ratio_bounds(self):
        with pytest.raises(ConfigError):
            EngineConfig(cache_ratio=1.5)

    def test_noise_sigma_bounds(self):
        with pytest.raises(ConfigError):
            EngineConfig(noise_sigma=-0.5)

    def test_lookahead_bounds(self):
        with pytest.raises(ConfigError):
            EngineConfig(prefetch_lookahead=0)

    @pytest.mark.parametrize("value", [0, -4])
    def test_profile_prompt_len_must_be_positive(self, value):
        with pytest.raises(ConfigError):
            EngineConfig(profile_prompt_len=value)

    @pytest.mark.parametrize("value", [0, -1])
    def test_profile_decode_steps_must_be_positive(self, value):
        with pytest.raises(ConfigError):
            EngineConfig(profile_decode_steps=value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_mrs_alpha_bounds(self, value):
        with pytest.raises(ConfigError):
            EngineConfig(mrs_alpha=value)

    @pytest.mark.parametrize("value", [0.0, 0.7, 1.0])
    def test_mrs_alpha_endpoints_accepted(self, value):
        assert EngineConfig(mrs_alpha=value).mrs_alpha == value


class TestNoiseRobustness:
    def test_noisy_execution_still_valid(self, tiny_config, prompt_tokens):
        """Estimate-vs-reality gaps must not break any invariant."""
        model = ReferenceMoEModel(tiny_config, seed=0)
        config = EngineConfig(
            cache_ratio=0.5,
            seed=0,
            noise_sigma=0.3,
            profile_prompt_len=8,
            profile_decode_steps=2,
        )
        engine = InferenceEngine(
            model, make_strategy("hybrimoe"), paper_testbed(), config
        )
        result = engine.generate(prompt_tokens, decode_steps=4)
        engine.runtime.clock.validate()
        assert result.ttft > 0


class TestUncalibratedPlanner:
    def test_ground_truth_planner_runs(self, tiny_config, prompt_tokens):
        model = ReferenceMoEModel(tiny_config, seed=0)
        config = EngineConfig(
            cache_ratio=0.5,
            seed=0,
            calibrate=False,
            profile_prompt_len=8,
            profile_decode_steps=2,
        )
        engine = InferenceEngine(
            model, make_strategy("hybrimoe"), paper_testbed(), config
        )
        result = engine.generate(prompt_tokens, decode_steps=2)
        assert result.ttft > 0


class TestRuntime:
    def test_capacity_from_ratio(self, small_engine):
        runtime = small_engine.runtime
        expected = round(0.5 * runtime.model_config.total_routed_experts)
        assert runtime.capacity == expected

    def test_frequency_ranking_covers_all_experts(self, small_engine):
        ranking = small_engine.runtime.frequency_ranking()
        config = small_engine.model.config
        assert len(ranking) == config.total_routed_experts
        assert len(set(ranking)) == len(ranking)

    def test_warmup_trace_cached(self, small_engine):
        assert small_engine.runtime.warmup_trace is small_engine.runtime.warmup_trace
