"""Factory and session construction paths."""

import numpy as np
import pytest

from repro.engine.factory import available_strategies, make_engine, make_strategy
from repro.engine.session import GenerationSession, SessionSpec
from repro.errors import ConfigError


class TestMakeStrategy:
    def test_all_names_constructible(self):
        for name in available_strategies():
            assert make_strategy(name).name in (name, "hybrimoe")

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_strategy("vllm")

    def test_kwargs_forwarded(self):
        strategy = make_strategy("hybrimoe", scheduling=False)
        assert strategy.scheduling is False


class TestMakeEngine:
    def test_defaults(self):
        engine = make_engine(num_layers=2)
        assert engine.model.config.name.startswith("deepseek")
        assert engine.strategy.name == "hybrimoe"

    def test_model_instance_passthrough(self, tiny_model):
        engine = make_engine(model=tiny_model, num_layers=None)
        assert engine.model is tiny_model

    def test_strategy_kwargs_with_instance_rejected(self, tiny_model):
        strategy = make_strategy("ondemand")
        with pytest.raises(ConfigError):
            make_engine(
                model=tiny_model, strategy=strategy, strategy_kwargs={"x": 1}
            )

    def test_hardware_preset_by_name(self):
        engine = make_engine(num_layers=2, hardware="pcie-fast")
        assert engine.runtime is not None

    def test_generation_runs(self):
        engine = make_engine(model="mixtral", num_layers=2, cache_ratio=0.25, seed=1)
        result = engine.generate(np.arange(8), decode_steps=2)
        assert result.ttft > 0


class TestGenerationSession:
    def test_spec_or_kwargs_exclusive(self):
        with pytest.raises(ConfigError):
            GenerationSession(SessionSpec(), model="deepseek")

    def test_run_with_synthetic_prompt(self):
        session = GenerationSession(
            model="deepseek", strategy="ktransformers", num_layers=2,
            cache_ratio=0.25,
        )
        result = session.run(prompt_len=12, decode_steps=2)
        assert result.prefill.n_tokens == 12
        assert len(result.decode_steps) == 2

    def test_runs_are_independent(self):
        session = GenerationSession(model="deepseek", num_layers=2, cache_ratio=0.25)
        a = session.run(prompt_len=8, decode_steps=1)
        b = session.run(prompt_len=8, decode_steps=1)
        assert a.ttft == pytest.approx(b.ttft)

    def test_invalid_prompt_len(self):
        session = GenerationSession(model="deepseek", num_layers=2)
        with pytest.raises(ConfigError):
            session.run(prompt_len=0, decode_steps=1)

    def test_explicit_prompt_used(self):
        session = GenerationSession(model="deepseek", num_layers=2)
        result = session.run(prompt_tokens=np.arange(5), decode_steps=1)
        assert result.prefill.n_tokens == 5
