"""Functional equivalence: scheduled execution == reference forward.

The central correctness claim of the whole system: no matter which
strategy schedules the experts (and therefore which simulated device
"computes" them, in what order, with what transfers), the numerical
output must match the reference model's plain forward pass.
"""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_strategy
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel

STRATEGIES = ["hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand"]


@pytest.mark.parametrize("strategy_name", STRATEGIES)
def test_prefill_hidden_states_match_reference(
    tiny_config, prompt_tokens, strategy_name
):
    reference = ReferenceMoEModel(tiny_config, seed=0)
    ref_hidden, _, _ = reference.forward(prompt_tokens)

    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=0.25, seed=0, profile_prompt_len=8, profile_decode_steps=2
    )
    engine = InferenceEngine(
        model, make_strategy(strategy_name), paper_testbed(), config
    )
    hidden, _ = engine._run_step(prompt_tokens, "prefill")
    np.testing.assert_allclose(hidden, ref_hidden, rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("strategy_name", ["hybrimoe", "ktransformers"])
def test_decode_trajectory_matches_reference(tiny_config, prompt_tokens, strategy_name):
    """Greedy decode must produce the same token trajectory regardless
    of scheduling strategy."""
    reference = ReferenceMoEModel(tiny_config, seed=0)
    hidden, _, state = reference.forward(prompt_tokens)
    ref_tokens = []
    last = hidden[-1]
    for _ in range(4):
        token = reference.greedy_next_token(last)
        ref_tokens.append(token)
        hidden, _, state = reference.forward(np.array([token]), state)
        last = hidden[-1]

    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=0.25, seed=0, profile_prompt_len=8, profile_decode_steps=2
    )
    engine = InferenceEngine(
        model, make_strategy(strategy_name), paper_testbed(), config
    )
    eng_hidden, _ = engine._run_step(prompt_tokens, "prefill")
    eng_tokens = []
    last = eng_hidden[-1]
    for _ in range(4):
        token = engine.model.greedy_next_token(last)
        eng_tokens.append(token)
        eng_hidden, _ = engine._run_step(np.array([token]), "decode")
        last = eng_hidden[-1]

    assert eng_tokens == ref_tokens


@pytest.mark.parametrize("cache_ratio", [0.0, 0.25, 0.75, 1.0])
def test_equivalence_holds_at_all_cache_ratios(tiny_config, prompt_tokens, cache_ratio):
    reference = ReferenceMoEModel(tiny_config, seed=0)
    ref_hidden, _, _ = reference.forward(prompt_tokens)
    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=cache_ratio, seed=0, profile_prompt_len=8, profile_decode_steps=2
    )
    engine = InferenceEngine(
        model, make_strategy("hybrimoe"), paper_testbed(), config
    )
    hidden, _ = engine._run_step(prompt_tokens, "prefill")
    np.testing.assert_allclose(hidden, ref_hidden, rtol=1e-5, atol=1e-6)


def test_noise_does_not_change_numerics(tiny_config, prompt_tokens):
    """Execution-time noise affects timings, never the model output."""
    reference = ReferenceMoEModel(tiny_config, seed=0)
    ref_hidden, _, _ = reference.forward(prompt_tokens)
    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=0.5,
        seed=0,
        noise_sigma=0.5,
        profile_prompt_len=8,
        profile_decode_steps=2,
    )
    engine = InferenceEngine(
        model, make_strategy("hybrimoe"), paper_testbed(), config
    )
    hidden, _ = engine._run_step(prompt_tokens, "prefill")
    np.testing.assert_allclose(hidden, ref_hidden, rtol=1e-5, atol=1e-6)
