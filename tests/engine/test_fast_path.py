"""Engine fast path: bit-equivalence against the reference engine core.

``EngineConfig.engine_fast_path`` switches the vectorized step
pipeline, record-free batched plan execution, event-heap clock
frontiers and indexed cache lookups on; the reference path keeps the
historical per-task walks. The contract is *bit-identity* — not
approximate agreement: every fast branch either performs the same
IEEE-754 operations in the same order or is a pure selection that adds
no arithmetic. These tests pin that contract over the full strategy ×
GPU-count × memory-tier matrix (the same harness shape as
``tests/engine/test_tiered.py``):

- identical step fingerprints (timings, hit/miss counters, utilization),
- identical hidden states,
- identical cache state (per-tier residency and statistics),
- identical clock timelines and frontiers.
"""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_strategy
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel

STRATEGIES = ["hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand"]

#: (num_gpus, cpu_cache_capacity or None) — single/multi GPU crossed
#: with two-tier (no DRAM tier) and three-tier (constrained DRAM, so
#: spills and disk reads actually happen) memory.
PLATFORMS = [
    pytest.param(1, None, id="1gpu-two-tier"),
    pytest.param(2, None, id="2gpu-two-tier"),
    pytest.param(1, 4, id="1gpu-three-tier"),
    pytest.param(2, 4, id="2gpu-three-tier"),
]


def build_engine(tiny_config, strategy_name, fast, num_gpus, cpu_capacity):
    model = ReferenceMoEModel(tiny_config, seed=0)
    overrides = {}
    if cpu_capacity is not None:
        overrides["cpu_cache_capacity"] = cpu_capacity
    config = EngineConfig(
        cache_ratio=0.25,
        seed=0,
        num_gpus=num_gpus,
        profile_prompt_len=8,
        profile_decode_steps=2,
        engine_fast_path=fast,
        **overrides,
    )
    return InferenceEngine(
        model, make_strategy(strategy_name), paper_testbed(), config
    )


def step_fingerprint(metrics):
    return (
        metrics.stage,
        metrics.n_tokens,
        metrics.start,
        metrics.end,
        metrics.hits,
        metrics.misses,
        metrics.batch_size,
        tuple(sorted(metrics.utilization.items())),
    )


def result_fingerprint(result):
    steps = [result.prefill, *result.decode_steps]
    return (
        tuple(step_fingerprint(s) for s in steps),
        result.total_hits,
        result.total_misses,
    )


def cache_fingerprint(cache):
    """Residency and counters of every tier, order-normalised."""
    stats = cache.stats
    fingerprint = [
        tuple(sorted(cache.resident_keys)),
        (stats.hits, stats.misses, stats.insertions, stats.evictions,
         stats.rejected_inserts),
        tuple(sorted(stats.per_layer_hits.items())),
        tuple(sorted(stats.per_layer_misses.items())),
    ]
    cpu_tier = getattr(cache, "cpu_tier", None)
    if cpu_tier is not None:
        fingerprint.append(tuple(sorted(cpu_tier.resident_keys)))
        fingerprint.append(
            (cpu_tier.stats.hits, cpu_tier.stats.misses,
             cpu_tier.stats.insertions, cpu_tier.stats.evictions)
        )
    return tuple(fingerprint)


def clock_fingerprint(clock, num_gpus):
    """Every timeline's committed intervals plus the derived frontiers."""
    timelines = [clock.cpu] + [
        tl
        for device in range(num_gpus)
        for tl in (clock.gpu_timeline(device), clock.pcie_timeline(device))
    ]
    if clock.disk is not None:
        timelines.append(clock.disk)
    return (
        tuple(tuple(tl.intervals) for tl in timelines),
        tuple(tl.available_at for tl in timelines),
        clock.compute_frontier,
        clock.frontier,
        clock.min_pcie_available_at,
    )


@pytest.mark.parametrize("num_gpus,cpu_capacity", PLATFORMS)
@pytest.mark.parametrize("strategy_name", STRATEGIES)
class TestFastPathBitEquivalence:
    def test_run_bit_identical(
        self, tiny_config, prompt_tokens, strategy_name, num_gpus, cpu_capacity
    ):
        fast = build_engine(tiny_config, strategy_name, True, num_gpus, cpu_capacity)
        ref = build_engine(tiny_config, strategy_name, False, num_gpus, cpu_capacity)

        result_fast = fast.generate(prompt_tokens, decode_steps=4)
        result_ref = ref.generate(prompt_tokens, decode_steps=4)

        assert result_fingerprint(result_fast) == result_fingerprint(result_ref)
        assert cache_fingerprint(fast.runtime.cache) == cache_fingerprint(
            ref.runtime.cache
        )
        assert clock_fingerprint(fast.runtime.clock, num_gpus) == clock_fingerprint(
            ref.runtime.clock, num_gpus
        )
        fast.runtime.clock.validate()
        fast.runtime.cache.validate()

    def test_hidden_states_bit_identical(
        self, tiny_config, prompt_tokens, strategy_name, num_gpus, cpu_capacity
    ):
        fast = build_engine(tiny_config, strategy_name, True, num_gpus, cpu_capacity)
        ref = build_engine(tiny_config, strategy_name, False, num_gpus, cpu_capacity)
        hidden_fast, _ = fast._run_step(prompt_tokens, "prefill")
        hidden_ref, _ = ref._run_step(prompt_tokens, "prefill")
        np.testing.assert_array_equal(hidden_fast, hidden_ref)


class TestFastPathKnob:
    def test_default_is_on(self):
        assert EngineConfig().engine_fast_path is True

    def test_flag_threads_to_subsystems(self, tiny_config):
        for fast in (True, False):
            engine = build_engine(tiny_config, "hybrimoe", fast, 1, None)
            assert engine.runtime.clock.fast is fast
            assert engine.runtime.cache.fast_path is fast

    def test_mrs_victim_matches_reference_under_churn(self, tiny_config):
        """The incremental victim index agrees with the lexsort oracle
        through arbitrary insert/evict/lock/score churn."""
        from repro.cache.manager import ExpertCache
        from repro.cache.mrs import MRSPolicy

        rng = np.random.default_rng(7)
        fast_cache = ExpertCache(6, MRSPolicy(top_p=4))
        ref_cache = ExpertCache(6, MRSPolicy(top_p=4))
        ref_cache.set_fast_path(False)
        for _ in range(300):
            op = rng.integers(0, 4)
            key = (int(rng.integers(0, 3)), int(rng.integers(0, 8)))
            if op == 0:
                assert fast_cache.insert(key) == ref_cache.insert(key)
            elif op == 1:
                fast_cache.access(key)
                ref_cache.access(key)
            elif op == 2:
                scores = rng.random(8)
                fast_cache.observe_scores(key[0], scores)
                ref_cache.observe_scores(key[0], scores)
            else:
                assert fast_cache.would_admit(key) == ref_cache.would_admit(key)
            assert fast_cache.resident_keys == ref_cache.resident_keys
        fast_cache.validate()
        ref_cache.validate()
