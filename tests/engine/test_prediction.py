"""Predictive scheduling: bit-identity off, effect and counters on.

The confidence-gated predictor must be invisible unless it *earns*
influence: ``predictor=None`` (the default) and ``confidence_gate=1.0``
(calibrated confidence is strictly below 1) must both reproduce the
historical engine bit-for-bit — same step timings, same cache state.
When the gate does fire, the prefetch-hit counters account for what
speculation bought.
"""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_strategy
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel

STRATEGIES = ["hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand"]


def build_engine(tiny_config, strategy_name, cpu_capacity=None, **config_overrides):
    model = ReferenceMoEModel(tiny_config, seed=0)
    overrides = dict(config_overrides)
    if cpu_capacity is not None:
        overrides["cpu_cache_capacity"] = cpu_capacity
    config = EngineConfig(
        cache_ratio=0.25,
        seed=0,
        profile_prompt_len=8,
        profile_decode_steps=2,
        **overrides,
    )
    return InferenceEngine(
        model, make_strategy(strategy_name), paper_testbed(), config
    )


def step_fingerprint(metrics):
    return (
        metrics.stage,
        metrics.n_tokens,
        metrics.start,
        metrics.end,
        metrics.hits,
        metrics.misses,
        metrics.batch_size,
        tuple(sorted(metrics.utilization.items())),
    )


def result_fingerprint(result):
    steps = [result.prefill, *result.decode_steps]
    return (
        tuple(step_fingerprint(s) for s in steps),
        result.total_hits,
        result.total_misses,
    )


def cache_fingerprint(cache):
    stats = cache.stats
    fingerprint = [
        tuple(sorted(cache.resident_keys)),
        (stats.hits, stats.misses, stats.insertions, stats.evictions,
         stats.rejected_inserts),
    ]
    cpu_tier = getattr(cache, "cpu_tier", None)
    if cpu_tier is not None:
        fingerprint.append(tuple(sorted(cpu_tier.resident_keys)))
        fingerprint.append(
            (cpu_tier.stats.hits, cpu_tier.stats.misses,
             cpu_tier.stats.insertions, cpu_tier.stats.evictions)
        )
    return tuple(fingerprint)


def run(engine, decode_steps=6):
    prompt = np.arange(8, dtype=np.int64)
    return engine.generate(prompt, decode_steps=decode_steps)


class TestGateOneBitIdentity:
    """``confidence_gate=1.0`` can never fire, so it must be invisible."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("predictor", ["frequency", "transition"])
    def test_matches_predictor_off(self, tiny_config, strategy, predictor):
        base = build_engine(tiny_config, strategy)
        gated = build_engine(
            tiny_config, strategy, predictor=predictor, confidence_gate=1.0
        )
        r_base, r_gated = run(base), run(gated)
        assert result_fingerprint(r_base) == result_fingerprint(r_gated)
        assert cache_fingerprint(base.runtime.cache) == cache_fingerprint(
            gated.runtime.cache
        )

    def test_matches_on_tiered_memory(self, tiny_config):
        base = build_engine(tiny_config, "hybrimoe", cpu_capacity=4)
        gated = build_engine(
            tiny_config,
            "hybrimoe",
            cpu_capacity=4,
            predictor="transition",
            confidence_gate=1.0,
        )
        r_base, r_gated = run(base), run(gated)
        assert result_fingerprint(r_base) == result_fingerprint(r_gated)
        assert cache_fingerprint(base.runtime.cache) == cache_fingerprint(
            gated.runtime.cache
        )


class TestPredictorOffDefaults:
    def test_default_config_has_no_gate(self, tiny_config):
        engine = build_engine(tiny_config, "hybrimoe")
        assert engine.runtime.prediction_gate is None
        run(engine)
        assert engine.runtime.prefetch_issued >= 0
        assert engine.runtime.prefetch_used == 0 or engine.runtime.prefetch_issued > 0

    def test_invalid_predictor_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="predictor"):
            EngineConfig(predictor="oracle")
        with pytest.raises(ConfigError, match="predict_horizon"):
            EngineConfig(predict_horizon=0)
        with pytest.raises(ConfigError, match="confidence_gate"):
            EngineConfig(confidence_gate=1.5)


class TestGateFires:
    def test_counters_and_calibration_accumulate(self, tiny_config):
        engine = build_engine(
            tiny_config,
            "hybrimoe",
            predictor="transition",
            confidence_gate=0.05,
        )
        run(engine, decode_steps=12)
        runtime = engine.runtime
        assert runtime.prediction_gate is not None
        assert runtime.prefetch_issued > 0
        assert 0.0 <= runtime.prefetch_hit_rate() <= 1.0
        accuracy = runtime.prediction_gate.predictor.calibrated_accuracy()
        assert accuracy and all(0.0 <= a <= 1.0 for a in accuracy.values())

    def test_warmup_trace_primes_the_predictor(self, tiny_config):
        engine = build_engine(
            tiny_config, "hybrimoe", predictor="frequency", confidence_gate=0.9
        )
        predictor = engine.runtime.prediction_gate.predictor
        # fit_trace over the warmup phase ran inside engine construction.
        assert predictor._obs_count.sum() > 0

    def test_hit_rate_zero_before_any_issue(self, tiny_config):
        engine = build_engine(
            tiny_config, "hybrimoe", predictor="transition", confidence_gate=0.05
        )
        assert engine.runtime.prefetch_hit_rate() == 0.0


class TestScreenPredictionBatch:
    def test_batch_equals_per_call_screen(self, tiny_config):
        """The batched screen must be float-equal to the scalar calls."""
        engine = build_engine(tiny_config, "hybrimoe")
        run(engine)
        scheduler = engine.runtime.scheduler
        items = [
            ([(0, 1), (1, 1)], {0}, 1, [2, 3], frozenset()),
            ([(2, 1), (3, 1)], set(), 1, [0], frozenset({3})),
            ([(1, 4)], {1, 2}, 4, [], frozenset()),
        ]
        batched = scheduler.screen_prediction_batch(items, disk_fetch_s=0.5)
        for item, got in zip(items, batched):
            activated, cached, n_tokens, candidates, spilled = item
            want = scheduler.quick_screen(
                activated, cached, n_tokens, candidates,
                spilled=spilled, disk_fetch_s=0.5,
            )
            assert got == want
