"""Multi-GPU engine: 1-GPU sharded equivalence, fleet dispatch, knobs.

Two contracts are pinned here:

- **Equivalence** — with one GPU, routing every operation through the
  sharded machinery (``sharded_cache=True``) reproduces the unsharded
  engine bit-for-bit: same hidden states, same sampled tokens, same
  step timings, same hit/miss counters, for all five strategies. Since
  the unsharded path is the historical single-GPU code, this transitively
  pins the multi-GPU refactor to the pre-sharding engine's behaviour.
- **Fleet dispatch** — with several GPUs the numerics still match the
  reference model, every timeline/shard invariant holds, and runs are
  deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_engine, make_serving_engine, make_strategy
from repro.errors import ConfigError
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request
from repro.workloads.generator import serving_workload

STRATEGIES = ["hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand"]


def build_engine(tiny_config, strategy_name, **overrides):
    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=0.25,
        seed=0,
        profile_prompt_len=8,
        profile_decode_steps=2,
        **overrides,
    )
    return InferenceEngine(
        model, make_strategy(strategy_name), paper_testbed(), config
    )


def step_fingerprint(metrics):
    return (
        metrics.stage,
        metrics.n_tokens,
        metrics.start,
        metrics.end,
        metrics.hits,
        metrics.misses,
        metrics.batch_size,
        tuple(sorted(metrics.utilization.items())),
    )


def result_fingerprint(result):
    steps = [result.prefill, *result.decode_steps]
    return (
        tuple(step_fingerprint(s) for s in steps),
        result.total_hits,
        result.total_misses,
    )


class TestShardedSingleGpuEquivalence:
    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_generate_bit_identical(self, tiny_config, prompt_tokens, strategy_name):
        plain = build_engine(tiny_config, strategy_name)
        sharded = build_engine(tiny_config, strategy_name, sharded_cache=True)
        assert plain.runtime.sharded is False
        assert sharded.runtime.sharded is True

        result_plain = plain.generate(prompt_tokens, decode_steps=4)
        result_sharded = sharded.generate(prompt_tokens, decode_steps=4)
        assert result_fingerprint(result_plain) == result_fingerprint(result_sharded)

    def test_serving_bit_identical(self, tiny_config):
        reports = []
        tokens = []
        for sharded_flag in (None, True):
            engine = build_engine(tiny_config, "hybrimoe", sharded_cache=sharded_flag)
            requests = [
                Request(
                    request_id=i,
                    prompt_tokens=np.arange(4) + i,
                    decode_steps=3,
                    arrival_time=0.002 * i,
                )
                for i in range(3)
            ]
            reports.append(ServingEngine(engine).serve(requests).summary())
            tokens.append([list(r.output_tokens) for r in requests])
        assert reports[0] == reports[1]
        assert tokens[0] == tokens[1]

    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_hidden_states_bit_identical(
        self, tiny_config, prompt_tokens, strategy_name
    ):
        plain = build_engine(tiny_config, strategy_name)
        sharded = build_engine(tiny_config, strategy_name, sharded_cache=True)
        hidden_plain, _ = plain._run_step(prompt_tokens, "prefill")
        hidden_sharded, _ = sharded._run_step(prompt_tokens, "prefill")
        np.testing.assert_array_equal(hidden_plain, hidden_sharded)


class TestMultiGpuDispatch:
    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_numerics_match_reference(self, tiny_config, prompt_tokens, strategy_name):
        reference = ReferenceMoEModel(tiny_config, seed=0)
        ref_hidden, _, _ = reference.forward(prompt_tokens)
        engine = build_engine(tiny_config, strategy_name, num_gpus=3)
        hidden, _ = engine._run_step(prompt_tokens, "prefill")
        np.testing.assert_allclose(hidden, ref_hidden, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("placement", ["round_robin", "layer_striped", "load_aware"])
    def test_invariants_hold_under_load(self, tiny_config, prompt_tokens, placement):
        engine = build_engine(
            tiny_config, "hybrimoe", num_gpus=4, placement=placement
        )
        engine.generate(prompt_tokens, decode_steps=4)
        engine.runtime.clock.validate()
        cache = engine.runtime.cache
        cache.validate()
        for shard in cache.shards:
            assert len(shard.dynamic_keys) <= shard.capacity

    def test_every_device_receives_work(self, tiny_config, prompt_tokens):
        engine = build_engine(tiny_config, "ondemand", num_gpus=2)
        engine.generate(prompt_tokens, decode_steps=4)
        for gpu in engine.runtime.clock.gpus:
            assert gpu.busy_time() > 0.0

    def test_aggregate_capacity_matches_unsharded(self, tiny_config):
        plain = build_engine(tiny_config, "ondemand")
        fleet = build_engine(tiny_config, "ondemand", num_gpus=4)
        assert fleet.runtime.cache.capacity == plain.runtime.cache.capacity

    def test_deterministic_under_fixed_seed(self, tiny_config, prompt_tokens):
        fingerprints = []
        for _ in range(2):
            engine = build_engine(
                tiny_config, "hybrimoe", num_gpus=4, placement="load_aware"
            )
            result = engine.generate(prompt_tokens, decode_steps=4)
            cache = engine.runtime.cache
            fingerprints.append(
                (
                    result_fingerprint(result),
                    cache.placement.assignments,
                    [sorted(s.resident_keys) for s in cache.shards],
                )
            )
        assert fingerprints[0] == fingerprints[1]

    def test_no_prefetch_to_zero_capacity_shards(self, tiny_config, prompt_tokens):
        """A fleet larger than the slot budget leaves some shards at
        capacity 0; prefetches must never pay for transfers they can't
        land (the insert would be rejected)."""
        model = ReferenceMoEModel(tiny_config, seed=0)
        config = EngineConfig(
            cache_ratio=0.25,
            seed=0,
            profile_prompt_len=8,
            profile_decode_steps=2,
            prefetch_lookahead=1,
            num_gpus=8,
        )
        engine = InferenceEngine(
            model,
            make_strategy("hybrimoe", caching=False, prefetching=True),
            paper_testbed(),
            config,
        )
        cache = engine.runtime.cache
        zero_cap = [g for g, shard in enumerate(cache.shards) if shard.capacity == 0]
        assert zero_cap, "fixture should produce zero-capacity shards"
        engine.generate(prompt_tokens, decode_steps=4)
        for device in zero_cap:
            labels = [
                interval.label
                for interval in engine.runtime.clock.pcie_links[device].intervals
            ]
            assert not any(label.startswith("prefetch") for label in labels)

    def test_serving_on_fleet(self, tiny_config):
        serving = make_serving_engine(
            model="deepseek",
            strategy="hybrimoe",
            cache_ratio=0.25,
            num_layers=2,
            num_gpus=2,
            max_batch_size=4,
        )
        trace = serving_workload(
            num_requests=4, arrival_rate=8.0, decode_steps=3, seed=0
        )
        report = serving.serve_trace(trace)
        assert report.num_requests == 4
        hit_rates = serving.engine.runtime.cache.per_device_hit_rates()
        assert len(hit_rates) == 2
        serving.engine.runtime.clock.validate()


class TestConfigKnobs:
    def test_num_gpus_validated(self):
        with pytest.raises(ConfigError):
            EngineConfig(num_gpus=0)

    def test_placement_validated(self):
        with pytest.raises(ConfigError):
            EngineConfig(placement="alphabetical")

    def test_unsharded_fleet_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(num_gpus=2, sharded_cache=False)

    def test_factory_threads_topology(self):
        engine = make_engine(num_layers=2, num_gpus=2, placement="layer_striped")
        assert engine.runtime.num_gpus == 2
        assert engine.runtime.sharded is True
        assert engine.runtime.cache.placement.name == "layer_striped"
        assert len(engine.runtime.clock.gpus) == 2
        assert len(engine.runtime.clock.pcie_links) == 2
