"""Tiered memory engine: two-tier equivalence, spill mechanics, knobs.

Two contracts are pinned here:

- **Equivalence** — the default configuration (unbounded CPU tier, no
  disk) is bit-identical to the pre-tiering engine. Enforced the same
  way PR 2 pinned the sharding refactor: forcing the *tiered machinery*
  on with a DRAM tier big enough that nothing ever spills must
  reproduce the default engine bit-for-bit (same hidden states, same
  step timings, same hit/miss counters) for all five strategies.
- **Spill mechanics** — under a DRAM-constrained configuration spilled
  experts pay disk reads on the shared disk link, get promoted into
  the DRAM tier afterwards, and every clock/cache invariant holds, on
  one GPU and on a sharded fleet.
"""

import numpy as np
import pytest

from repro.engine.engine import EngineConfig, InferenceEngine
from repro.engine.factory import make_engine, make_serving_engine, make_strategy
from repro.errors import ConfigError
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel
from repro.workloads.generator import serving_workload

STRATEGIES = ["hybrimoe", "ktransformers", "adapmoe", "llamacpp", "ondemand"]


def build_engine(tiny_config, strategy_name, **overrides):
    model = ReferenceMoEModel(tiny_config, seed=0)
    config = EngineConfig(
        cache_ratio=0.25,
        seed=0,
        profile_prompt_len=8,
        profile_decode_steps=2,
        **overrides,
    )
    return InferenceEngine(
        model, make_strategy(strategy_name), paper_testbed(), config
    )


def step_fingerprint(metrics, drop_disk=False):
    utilization = dict(metrics.utilization)
    if drop_disk:
        assert utilization.pop("disk") == 0.0
    return (
        metrics.stage,
        metrics.n_tokens,
        metrics.start,
        metrics.end,
        metrics.hits,
        metrics.misses,
        metrics.batch_size,
        tuple(sorted(utilization.items())),
    )


def result_fingerprint(result, drop_disk=False):
    steps = [result.prefill, *result.decode_steps]
    return (
        tuple(step_fingerprint(s, drop_disk) for s in steps),
        result.total_hits,
        result.total_misses,
    )


class TestUnboundedTierEquivalence:
    """Forced-on tiered machinery with an unspillable DRAM tier must be
    bit-identical to the default two-tier engine (the disk utilisation
    entry — always 0.0 — is the only schema difference)."""

    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_generate_bit_identical(self, tiny_config, prompt_tokens, strategy_name):
        plain = build_engine(tiny_config, strategy_name)
        tiered = build_engine(
            tiny_config,
            strategy_name,
            cpu_cache_capacity=tiny_config.total_routed_experts,
        )
        assert plain.runtime.tiered is False
        assert tiered.runtime.tiered is True

        result_plain = plain.generate(prompt_tokens, decode_steps=4)
        result_tiered = tiered.generate(prompt_tokens, decode_steps=4)
        assert result_fingerprint(result_plain) == result_fingerprint(
            result_tiered, drop_disk=True
        )
        # Nothing ever spilled, so the disk link never saw traffic.
        assert tiered.runtime.clock.disk.intervals == []

    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_hidden_states_bit_identical(
        self, tiny_config, prompt_tokens, strategy_name
    ):
        plain = build_engine(tiny_config, strategy_name)
        tiered = build_engine(
            tiny_config,
            strategy_name,
            cpu_cache_capacity=tiny_config.total_routed_experts,
        )
        hidden_plain, _ = plain._run_step(prompt_tokens, "prefill")
        hidden_tiered, _ = tiered._run_step(prompt_tokens, "prefill")
        np.testing.assert_array_equal(hidden_plain, hidden_tiered)


class TestSpillMechanics:
    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_constrained_dram_pays_disk_reads(
        self, tiny_config, prompt_tokens, strategy_name
    ):
        engine = build_engine(tiny_config, strategy_name, cpu_cache_capacity=4)
        result = engine.generate(prompt_tokens, decode_steps=4)
        disk = engine.runtime.clock.disk
        assert disk is not None and len(disk.intervals) > 0
        assert disk.busy_time() > 0.0
        # Spilling slows the run down relative to unbounded DRAM.
        baseline = build_engine(tiny_config, strategy_name)
        base_result = baseline.generate(prompt_tokens, decode_steps=4)
        assert result.decode_steps[-1].end > base_result.decode_steps[-1].end
        engine.runtime.clock.validate()
        engine.runtime.cache.validate()

    def test_staged_experts_are_promoted_to_dram(self, tiny_config, prompt_tokens):
        engine = build_engine(tiny_config, "ondemand", cpu_cache_capacity=4)
        cache = engine.runtime.cache
        engine.generate(prompt_tokens, decode_steps=2)
        cpu_tier = cache.cpu_tier
        # The tier filled up to capacity and its counters moved.
        assert len(cpu_tier) == 4
        assert cpu_tier.stats.insertions > 0
        assert cpu_tier.stats.accesses > 0

    def test_numerics_unaffected_by_spilling(self, tiny_config, prompt_tokens):
        reference = ReferenceMoEModel(tiny_config, seed=0)
        ref_hidden, _, _ = reference.forward(prompt_tokens)
        engine = build_engine(tiny_config, "hybrimoe", cpu_cache_capacity=3)
        hidden, _ = engine._run_step(prompt_tokens, "prefill")
        np.testing.assert_allclose(hidden, ref_hidden, rtol=1e-5, atol=1e-6)

    def test_deterministic_under_fixed_seed(self, tiny_config, prompt_tokens):
        fingerprints = []
        for _ in range(2):
            engine = build_engine(tiny_config, "hybrimoe", cpu_cache_capacity=4)
            result = engine.generate(prompt_tokens, decode_steps=4)
            cache = engine.runtime.cache
            fingerprints.append(
                (
                    result_fingerprint(result),
                    sorted(cache.cpu_tier.resident_keys),
                    len(engine.runtime.clock.disk.intervals),
                )
            )
        assert fingerprints[0] == fingerprints[1]

    def test_zero_capacity_dram_tier_runs(self, tiny_config, prompt_tokens):
        """Everything uncached spills — the degenerate GPU-or-disk config."""
        engine = build_engine(tiny_config, "hybrimoe", cpu_cache_capacity=0)
        result = engine.generate(prompt_tokens, decode_steps=2)
        assert result.total_misses > 0
        assert len(engine.runtime.clock.disk.intervals) > 0
        assert len(engine.runtime.cache.cpu_tier) == 0

    def test_sharded_fleet_with_tiered_memory(self, tiny_config, prompt_tokens):
        engine = build_engine(
            tiny_config, "hybrimoe", num_gpus=2, cpu_cache_capacity=4
        )
        engine.generate(prompt_tokens, decode_steps=4)
        clock = engine.runtime.clock
        assert len(clock.disk.intervals) > 0
        clock.validate()
        cache = engine.runtime.cache
        cache.validate()
        assert cache.sharded
        assert len(cache.per_device_hit_rates()) == 2

    def test_serving_on_tiered_memory(self, tiny_config):
        serving = make_serving_engine(
            model="deepseek",
            strategy="hybrimoe",
            cache_ratio=0.25,
            num_layers=2,
            cpu_cache_capacity=8,
            max_batch_size=4,
        )
        trace = serving_workload(
            num_requests=4, arrival_rate=8.0, decode_steps=3, seed=0
        )
        report = serving.serve_trace(trace)
        assert report.num_requests == 4
        rates = serving.engine.runtime.cache.per_tier_hit_rates()
        assert set(rates) == {"gpu", "cpu"}
        serving.engine.runtime.clock.validate()

    def test_inflight_dram_staging_gates_residency(self, tiny_config):
        """A prefetch-issued disk read flips DRAM residency only once a
        layer starts past its finish time — never while in flight."""
        engine = build_engine(tiny_config, "hybrimoe", cpu_cache_capacity=4)
        runtime = engine.runtime
        cache = runtime.cache
        pipeline = engine.pipeline
        spilled_keys = sorted(
            (layer, expert)
            for layer in range(tiny_config.num_layers)
            for expert in cache.spilled_experts(
                layer, range(tiny_config.num_routed_experts)
            )
        )
        early, late = spilled_keys[0], spilled_keys[1]
        assert cache.is_spilled(early) and cache.is_spilled(late)
        runtime.pending_dram = {early: 1.0, late: 5.0}

        pipeline._commit_landed_promotions(0.5)   # neither read landed
        assert not cache.dram_resident(early) and not cache.dram_resident(late)
        pipeline._commit_landed_promotions(2.0)   # only the early one
        assert cache.dram_resident(early)
        assert not cache.dram_resident(late)
        assert runtime.pending_dram == {late: 5.0}
        pipeline._commit_landed_promotions(5.0)   # boundary: ready <= now
        assert cache.dram_resident(late)
        assert runtime.pending_dram == {}

    def test_layer_staging_supersedes_pending_prefetch(self, tiny_config):
        engine = build_engine(tiny_config, "hybrimoe", cpu_cache_capacity=4)
        runtime = engine.runtime
        key = (0, 7)
        runtime.pending_dram = {key: 99.0}
        engine.pipeline._promote_spilled(0, frozenset({7}))
        assert runtime.cache.dram_resident(key)
        assert key not in runtime.pending_dram

    def test_mrs_dram_tier_policy(self, tiny_config, prompt_tokens):
        engine = build_engine(
            tiny_config, "hybrimoe", cpu_cache_capacity=4, cpu_cache_policy="mrs"
        )
        engine.generate(prompt_tokens, decode_steps=3)
        assert engine.runtime.cache.cpu_tier.policy.name == "mrs"
        engine.runtime.cache.validate()


class TestConfigKnobs:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(cpu_cache_capacity=-1)

    def test_unknown_dram_policy_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(cpu_cache_capacity=4, cpu_cache_policy="fifo")

    def test_disk_bandwidth_requires_cpu_tier(self):
        with pytest.raises(ConfigError):
            EngineConfig(disk_bandwidth=1e9)

    def test_non_positive_disk_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(cpu_cache_capacity=4, disk_bandwidth=0.0)

    def test_profile_without_disk_rejected_when_tiered(self, tiny_config):
        from dataclasses import replace

        model = ReferenceMoEModel(tiny_config, seed=0)
        profile = replace(paper_testbed(), disk_bw=None)
        config = EngineConfig(
            cpu_cache_capacity=4, profile_prompt_len=8, profile_decode_steps=2
        )
        with pytest.raises(ConfigError):
            InferenceEngine(model, make_strategy("hybrimoe"), profile, config)

    def test_disk_bandwidth_override_restores_disk(self, tiny_config, prompt_tokens):
        from dataclasses import replace

        model = ReferenceMoEModel(tiny_config, seed=0)
        profile = replace(paper_testbed(), disk_bw=None)
        config = EngineConfig(
            cpu_cache_capacity=4,
            disk_bandwidth=1e9,
            profile_prompt_len=8,
            profile_decode_steps=2,
        )
        engine = InferenceEngine(model, make_strategy("hybrimoe"), profile, config)
        engine.generate(prompt_tokens, decode_steps=2)
        assert len(engine.runtime.clock.disk.intervals) > 0

    def test_slower_disk_slower_run(self, tiny_config, prompt_tokens):
        ends = []
        for bandwidth in (20e9, 0.2e9):
            engine = build_engine(
                tiny_config,
                "ondemand",
                cpu_cache_capacity=2,
                disk_bandwidth=bandwidth,
            )
            result = engine.generate(prompt_tokens, decode_steps=4)
            ends.append(result.decode_steps[-1].end)
        assert ends[1] > ends[0]

    def test_factory_threads_tiered_knobs(self):
        engine = make_engine(
            num_layers=2, cpu_cache_capacity=4, cpu_cache_policy="lfu"
        )
        assert engine.runtime.tiered is True
        assert engine.runtime.cache.cpu_tier.capacity == 4
        assert engine.runtime.cache.cpu_tier.policy.name == "lfu"
        assert engine.runtime.clock.disk is not None
        assert engine.runtime.disk_fetch_est_s > 0
