"""Disk-aware scheduling: surcharges, fast==reference, executor chains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.executor import execute_plan
from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.prefetch import ImpactDrivenPrefetcher, PredictedLayer
from repro.core.tasks import LayerCostOracle
from repro.errors import SchedulingError
from repro.hardware.simulator import ThreeResourceClock
from repro.models.config import ExpertShape, MoEModelConfig

DISK_FETCH = 4.0  # toy scale: > transfer (3.0), ~ a few CPU token units


def _property_oracle_factory():
    """Fixture-free oracle factory for the hypothesis properties."""
    from tests.conftest import ToyCostModel

    config = MoEModelConfig(
        name="tiered-prop",
        num_layers=1,
        num_shared_experts=1,
        num_routed_experts=8,
        num_activated_experts=2,
        routed_expert_shape=ExpertShape(256, 512),
        shared_expert_shape=ExpertShape(256, 512),
    )
    cost = ToyCostModel()

    def factory(n_tokens):
        return LayerCostOracle.for_model(cost, config, n_tokens)

    return factory


class TestPlannerSurcharges:
    def test_spilled_raises_makespan(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 4), (1, 2), (2, 1)]
        base = scheduler.simulate_makespan(activated, {0}, n_tokens=4)
        spilled = scheduler.simulate_makespan(
            activated, {0}, n_tokens=4, spilled={1, 2}, disk_fetch_s=DISK_FETCH
        )
        assert spilled > base

    def test_cached_experts_never_pay_disk(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 4), (1, 2)]
        base = scheduler.simulate_makespan(activated, {0, 1}, n_tokens=4)
        marked = scheduler.simulate_makespan(
            activated, {0, 1}, n_tokens=4, spilled={0, 1}, disk_fetch_s=DISK_FETCH
        )
        assert marked == base

    def test_zero_disk_fetch_is_identity(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 4), (1, 2), (2, 1)]
        assert scheduler.simulate_makespan(
            activated, {0}, n_tokens=4, spilled={1, 2}, disk_fetch_s=0.0
        ) == scheduler.simulate_makespan(activated, {0}, n_tokens=4)

    def test_negative_disk_fetch_rejected(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        with pytest.raises(SchedulingError):
            scheduler.simulate_makespan(
                [(0, 1)], set(), n_tokens=1, spilled={0}, disk_fetch_s=-1.0
            )

    def test_plan_covers_spilled_experts(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 4), (1, 2), (2, 1)]
        plan = scheduler.plan(
            layer=0,
            activated=activated,
            cached_experts={0},
            n_tokens=4,
            spilled={1, 2},
            disk_fetch_s=DISK_FETCH,
        )
        plan.validate(dict(activated), {0})
        assert sorted(plan.computed_experts()) == [0, 1, 2]

    def test_memo_distinguishes_spill_inputs(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 4), (1, 2)]
        a = scheduler.simulate_makespan(activated, set(), n_tokens=4)
        b = scheduler.simulate_makespan(
            activated, set(), n_tokens=4, spilled={0, 1}, disk_fetch_s=DISK_FETCH
        )
        c = scheduler.simulate_makespan(
            activated, set(), n_tokens=4, spilled={0, 1}, disk_fetch_s=2 * DISK_FETCH
        )
        assert a < b < c

    def test_expensive_disk_shifts_allocation_to_cpu(self, toy_oracle_factory):
        """With spilled transfers paying a huge disk hop, the planner
        keeps spilled experts on the CPU (one disk read, no chain)."""
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 8), (1, 8)]
        plan_cheap = scheduler.plan(
            layer=0, activated=activated, cached_experts=set(), n_tokens=8
        )
        plan_spill = scheduler.plan(
            layer=0,
            activated=activated,
            cached_experts=set(),
            n_tokens=8,
            spilled={0, 1},
            disk_fetch_s=100.0,
        )
        assert len(plan_spill.transfers) <= len(plan_cheap.transfers)


@st.composite
def spilled_layer_case(draw):
    n_experts = draw(st.integers(min_value=1, max_value=8))
    loads = draw(
        st.lists(
            st.integers(min_value=1, max_value=16),
            min_size=n_experts,
            max_size=n_experts,
        )
    )
    cached = draw(st.sets(st.integers(min_value=0, max_value=n_experts - 1)))
    spilled = draw(st.sets(st.integers(min_value=0, max_value=n_experts - 1)))
    disk_fetch = draw(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False)
    )
    backlog = draw(st.floats(min_value=0.0, max_value=6.0, allow_nan=False))
    return list(enumerate(loads)), cached, spilled, disk_fetch, backlog


class TestFastPathEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(case=spilled_layer_case())
    def test_fast_matches_reference_with_spill(self, case):
        activated, cached, spilled, disk_fetch, backlog = case
        factory = _property_oracle_factory()
        fast = HybridScheduler(
            factory, SchedulerConfig(fast_path=True, plan_cache_size=0)
        )
        reference = HybridScheduler(
            factory, SchedulerConfig(fast_path=False, plan_cache_size=0)
        )
        kwargs = dict(
            n_tokens=4,
            pcie_backlog=backlog,
            spilled=spilled,
            disk_fetch_s=disk_fetch,
        )
        assert fast.simulate_makespan(
            activated, cached, **kwargs
        ) == reference.simulate_makespan(activated, cached, **kwargs)
        plan_fast = fast.plan(0, activated, cached, **kwargs)
        plan_ref = reference.plan(0, activated, cached, **kwargs)
        assert plan_fast.transfers == plan_ref.transfers
        assert plan_fast.gpu_tasks == plan_ref.gpu_tasks
        assert plan_fast.cpu_tasks == plan_ref.cpu_tasks
        assert plan_fast.estimated_makespan == plan_ref.estimated_makespan

    @settings(max_examples=60, deadline=None)
    @given(case=spilled_layer_case())
    def test_lower_bound_stays_below_quick(self, case):
        activated, cached, spilled, disk_fetch, _ = case
        scheduler = HybridScheduler(_property_oracle_factory())
        bound = scheduler.quick_makespan_lower_bound(
            activated, cached, n_tokens=4, spilled=spilled, disk_fetch_s=disk_fetch
        )
        quick = scheduler.simulate_makespan(
            activated,
            cached,
            n_tokens=4,
            quick=True,
            spilled=spilled,
            disk_fetch_s=disk_fetch,
        )
        assert bound <= quick + 1e-12


class TestExecutorDiskChains:
    def test_spilled_transfer_rides_disk_then_pcie(
        self, toy_oracle_factory
    ):
        scheduler = HybridScheduler(toy_oracle_factory)
        oracle = toy_oracle_factory(4)
        plan = scheduler.plan(
            layer=0,
            activated=[(0, 4), (1, 1)],
            cached_experts=set(),
            n_tokens=4,
            spilled={0, 1},
            disk_fetch_s=oracle.disk_fetch(),
        )
        clock = ThreeResourceClock(disk=True)
        result = execute_plan(
            plan, clock, oracle, start_time=0.0, spilled=frozenset({0, 1})
        )
        disk_records = [r for r in result.records if r.resource == "disk"]
        assert disk_records, "spilled experts must reserve disk reads"
        by_expert = {r.expert: r for r in disk_records}
        for record in result.records:
            if record.resource == "pcie" and record.expert in by_expert:
                assert record.start >= by_expert[record.expert].finish
            if (
                record.resource == "cpu"
                and record.kind == "compute"
                and record.expert in by_expert
            ):
                assert record.start >= by_expert[record.expert].finish
        clock.validate()

    def test_disk_reads_serialise_on_one_link(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        oracle = toy_oracle_factory(4)
        plan = scheduler.plan(
            layer=0,
            activated=[(0, 4), (1, 3), (2, 2)],
            cached_experts=set(),
            n_tokens=4,
            spilled={0, 1, 2},
            disk_fetch_s=DISK_FETCH,
        )
        clock = ThreeResourceClock(disk=True)
        execute_plan(plan, clock, oracle, 0.0, spilled=frozenset({0, 1, 2}))
        intervals = clock.disk.intervals
        for earlier, later in zip(intervals, intervals[1:]):
            assert later.start >= earlier.finish
        clock.validate()

    def test_spilled_without_disk_clock_raises(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        oracle = toy_oracle_factory(4)
        plan = scheduler.plan(
            layer=0, activated=[(0, 4)], cached_experts=set(), n_tokens=4
        )
        clock = ThreeResourceClock()
        with pytest.raises(SchedulingError):
            execute_plan(plan, clock, oracle, 0.0, spilled=frozenset({0}))

    def test_empty_spill_set_is_historic_execution(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        oracle = toy_oracle_factory(4)
        plan = scheduler.plan(
            layer=0, activated=[(0, 4), (1, 1)], cached_experts={0}, n_tokens=4
        )
        with_disk = ThreeResourceClock(disk=True)
        without = ThreeResourceClock()
        r1 = execute_plan(plan.clone(), with_disk, oracle, 0.0, spilled=frozenset())
        r2 = execute_plan(plan.clone(), without, oracle, 0.0)
        assert r1.records == r2.records
        assert with_disk.disk.intervals == []


class TestPrefetcherSpillAwareness:
    def _prefetcher(self, toy_oracle_factory, disk_fetch_s):
        scheduler = HybridScheduler(toy_oracle_factory)
        return ImpactDrivenPrefetcher(
            scheduler=scheduler,
            transfer_time_fn=lambda: 3.0,
            num_activated=2,
            lookahead=2,
            disk_fetch_s=disk_fetch_s,
        )

    def test_spilled_candidate_costs_disk_lead_time(self, toy_oracle_factory):
        import numpy as np

        scores = np.array([0.9, 0.6, 0.05, 0.05])
        plain = self._prefetcher(toy_oracle_factory, 0.0).evaluate_candidates(
            [
                PredictedLayer(
                    layer=1, scores=scores, n_tokens=4, cached_experts=frozenset()
                )
            ],
            current_layer=0,
        )
        spilled = self._prefetcher(toy_oracle_factory, DISK_FETCH).evaluate_candidates(
            [
                PredictedLayer(
                    layer=1,
                    scores=scores,
                    n_tokens=4,
                    cached_experts=frozenset(),
                    spilled_experts=frozenset({0, 1}),
                )
            ],
            current_layer=0,
        )
        plain_costs = {d.expert: d.cost for d in plain}
        spilled_costs = {d.expert: d.cost for d in spilled}
        for expert in spilled_costs:
            if expert in plain_costs and expert in (0, 1):
                assert spilled_costs[expert] == pytest.approx(
                    plain_costs[expert] + DISK_FETCH
                )

    def test_negative_disk_fetch_rejected(self, toy_oracle_factory):
        with pytest.raises(SchedulingError):
            self._prefetcher(toy_oracle_factory, -1.0)
