"""ExecutionPlan validation and the layer cost oracle."""

import pytest

from repro.core.tasks import (
    SHARED_BLOCK,
    ComputeTask,
    Device,
    ExecutionPlan,
    LayerCostOracle,
    TransferTask,
)
from repro.errors import SchedulingError


def _plan(gpu=(), cpu=(), transfers=(), layer=0, n_tokens=4):
    return ExecutionPlan(
        layer=layer,
        n_tokens=n_tokens,
        gpu_tasks=list(gpu),
        cpu_tasks=list(cpu),
        transfers=list(transfers),
    )


def _gpu(expert, load, after_transfer=False):
    return ComputeTask(0, expert, load, Device.GPU, after_transfer=after_transfer)


def _cpu(expert, load):
    return ComputeTask(0, expert, load, Device.CPU)


class TestTaskValidation:
    def test_negative_load_rejected(self):
        with pytest.raises(SchedulingError):
            ComputeTask(0, 1, -1, Device.GPU)

    def test_after_transfer_only_on_gpu(self):
        with pytest.raises(SchedulingError):
            ComputeTask(0, 1, 1, Device.CPU, after_transfer=True)

    def test_transfer_of_shared_rejected(self):
        with pytest.raises(SchedulingError):
            TransferTask(0, SHARED_BLOCK, 1)


class TestPlanValidation:
    def test_valid_plan_passes(self):
        plan = _plan(
            gpu=[_gpu(0, 3), _gpu(1, 2, after_transfer=True)],
            cpu=[_cpu(2, 1)],
            transfers=[TransferTask(0, 1, 2)],
        )
        plan.validate({0: 3, 1: 2, 2: 1}, {0})

    def test_missing_expert_detected(self):
        plan = _plan(gpu=[_gpu(0, 3)])
        with pytest.raises(SchedulingError, match="coverage"):
            plan.validate({0: 3, 1: 1}, {0, 1})

    def test_duplicate_compute_detected(self):
        plan = _plan(gpu=[_gpu(0, 3)], cpu=[_cpu(0, 3)])
        with pytest.raises(SchedulingError, match="more than once"):
            plan.validate({0: 3}, {0})

    def test_load_mismatch_detected(self):
        plan = _plan(gpu=[_gpu(0, 5)])
        with pytest.raises(SchedulingError, match="load"):
            plan.validate({0: 3}, {0})

    def test_gpu_without_weights_detected(self):
        plan = _plan(gpu=[_gpu(1, 2)])
        with pytest.raises(SchedulingError, match="without cached weights"):
            plan.validate({1: 2}, set())

    def test_transfer_of_cached_detected(self):
        plan = _plan(
            gpu=[_gpu(0, 2, after_transfer=True)], transfers=[TransferTask(0, 0, 2)]
        )
        with pytest.raises(SchedulingError, match="already cached"):
            plan.validate({0: 2}, {0})

    def test_duplicate_transfers_detected(self):
        plan = _plan(
            gpu=[_gpu(1, 2, after_transfer=True)],
            transfers=[TransferTask(0, 1, 2), TransferTask(0, 1, 2)],
        )
        with pytest.raises(SchedulingError, match="duplicate transfers"):
            plan.validate({1: 2}, set())

    def test_shared_tasks_ignored_by_coverage(self):
        plan = _plan(gpu=[ComputeTask(0, SHARED_BLOCK, 4, Device.GPU), _gpu(0, 2)])
        plan.validate({0: 2}, {0})

    def test_device_of(self):
        plan = _plan(gpu=[_gpu(0, 2)], cpu=[_cpu(1, 1)])
        assert plan.device_of(0) == Device.GPU
        assert plan.device_of(1) == Device.CPU
        with pytest.raises(SchedulingError):
            plan.device_of(7)


class TestLayerCostOracle:
    def test_shared_compute_zero_without_shared(self, toy_cost, tiny_config):
        from dataclasses import replace

        config = replace(
            tiny_config, num_shared_experts=0, shared_expert_shape=None
        )
        oracle = LayerCostOracle.for_model(toy_cost, config, 4)
        assert oracle.shared_compute(Device.GPU) == 0.0

    def test_shared_compute_scales_with_count(self, toy_cost, tiny_config):
        from dataclasses import replace

        single = LayerCostOracle.for_model(toy_cost, tiny_config, 4)
        double = LayerCostOracle.for_model(
            toy_cost, replace(tiny_config, num_shared_experts=2), 4
        )
        assert double.shared_compute(Device.GPU) == pytest.approx(
            2 * single.shared_compute(Device.GPU)
        )

    def test_cpu_first_task_flag(self, tiny_config):
        from tests.conftest import ToyCostModel

        oracle = LayerCostOracle.for_model(ToyCostModel(cpu_warmup=1.0), tiny_config, 4)
        assert oracle.cpu_compute(2, first_task=True) == pytest.approx(
            oracle.cpu_compute(2) + 1.0
        )

    def test_compute_dispatch(self, toy_oracle_factory):
        oracle = toy_oracle_factory(4)
        assert oracle.compute(Device.GPU, 3) == oracle.gpu_compute(3)
        assert oracle.compute(Device.CPU, 3) == oracle.cpu_compute(3)
