"""Fixed-mapping and GPU-only plan builders (prior-art behaviour)."""

from repro.core.fixed_plan import fixed_mapping_plan, gpu_only_plan

ACTIVATED = [(0, 3), (1, 1), (2, 5), (3, 2)]
CACHED = {0, 2}


class TestFixedMappingPlan:
    def test_decode_uncached_on_cpu(self, toy_oracle_factory):
        plan = fixed_mapping_plan(0, ACTIVATED, CACHED, 4, "decode", toy_oracle_factory(4))
        cpu_experts = [t.expert for t in plan.cpu_tasks]
        assert cpu_experts == [1, 3]  # id order, no load awareness
        assert plan.transfers == []
        plan.validate(dict(ACTIVATED), CACHED)

    def test_prefill_uncached_transferred(self, toy_oracle_factory):
        plan = fixed_mapping_plan(0, ACTIVATED, CACHED, 4, "prefill", toy_oracle_factory(4))
        assert plan.cpu_tasks == []
        assert [t.expert for t in plan.transfers] == [1, 3] or [
            t.expert for t in plan.transfers
        ] == [3, 1]
        plan.validate(dict(ACTIVATED), CACHED)

    def test_gpu_cached_descending_load(self, toy_oracle_factory):
        plan = fixed_mapping_plan(0, ACTIVATED, CACHED, 4, "decode", toy_oracle_factory(4))
        cached_tasks = [t for t in plan.gpu_tasks if not t.is_shared]
        assert [t.expert for t in cached_tasks] == [2, 0]

    def test_shared_block_first_on_gpu(self, toy_oracle_factory):
        plan = fixed_mapping_plan(0, ACTIVATED, CACHED, 4, "decode", toy_oracle_factory(4))
        assert plan.gpu_tasks[0].is_shared

    def test_estimate_positive(self, toy_oracle_factory):
        plan = fixed_mapping_plan(0, ACTIVATED, CACHED, 4, "decode", toy_oracle_factory(4))
        assert plan.estimated_makespan > 0


class TestGpuOnlyPlan:
    def test_no_cpu_tasks_ever(self, toy_oracle_factory):
        plan = gpu_only_plan(0, ACTIVATED, CACHED, 4, toy_oracle_factory(4))
        assert plan.cpu_tasks == []
        plan.validate(dict(ACTIVATED), CACHED)

    def test_all_uncached_transferred(self, toy_oracle_factory):
        plan = gpu_only_plan(0, ACTIVATED, CACHED, 4, toy_oracle_factory(4))
        assert sorted(plan.transferred_experts()) == [1, 3]

    def test_cached_before_transferred_in_gpu_order(self, toy_oracle_factory):
        plan = gpu_only_plan(0, ACTIVATED, CACHED, 4, toy_oracle_factory(4))
        routed = [t for t in plan.gpu_tasks if not t.is_shared]
        transferred_positions = [
            i for i, t in enumerate(routed) if t.after_transfer
        ]
        cached_positions = [i for i, t in enumerate(routed) if not t.after_transfer]
        assert max(cached_positions) < min(transferred_positions)

    def test_empty_cache_all_transferred(self, toy_oracle_factory):
        plan = gpu_only_plan(0, ACTIVATED, set(), 4, toy_oracle_factory(4))
        assert len(plan.transfers) == len(ACTIVATED)
        plan.validate(dict(ACTIVATED), set())
