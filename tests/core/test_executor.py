"""Plan executor: dependency and timeline semantics."""

import pytest

from repro.core.executor import execute_plan
from repro.core.hybrid_scheduler import HybridScheduler
from repro.core.tasks import (
    SHARED_BLOCK,
    ComputeTask,
    Device,
    ExecutionPlan,
    TransferTask,
)
from repro.errors import SchedulingError
from repro.hardware.simulator import ThreeResourceClock


@pytest.fixture
def oracle(toy_oracle_factory):
    return toy_oracle_factory(1)


class TestExecutePlan:
    def test_gpu_task_waits_for_transfer(self, oracle):
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            gpu_tasks=[ComputeTask(0, 1, 2, Device.GPU, after_transfer=True)],
            transfers=[TransferTask(0, 1, 2)],
        )
        result = execute_plan(plan, clock, oracle, start_time=0.0)
        gpu = result.records_on("gpu")[0]
        pcie = result.records_on("pcie")[0]
        assert gpu.start == pytest.approx(pcie.finish)

    def test_cpu_first_task_warmup(self, tiny_config):
        from tests.conftest import ToyCostModel
        from repro.core.tasks import LayerCostOracle

        oracle = LayerCostOracle.for_model(ToyCostModel(cpu_warmup=1.0), tiny_config, 1)
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            cpu_tasks=[ComputeTask(0, 0, 2, Device.CPU), ComputeTask(0, 1, 2, Device.CPU)],
        )
        result = execute_plan(plan, clock, oracle, start_time=0.0)
        first, second = result.records_on("cpu")
        assert first.duration == pytest.approx(second.duration + 1.0)

    def test_serial_order_preserved(self, oracle):
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            gpu_tasks=[
                ComputeTask(0, 0, 3, Device.GPU),
                ComputeTask(0, 1, 1, Device.GPU),
            ],
        )
        result = execute_plan(plan, clock, oracle, start_time=0.0)
        first, second = result.records_on("gpu")
        assert second.start >= first.finish

    def test_external_arrival_gates_gpu(self, oracle):
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            gpu_tasks=[ComputeTask(0, 5, 2, Device.GPU)],
        )
        result = execute_plan(
            plan, clock, oracle, start_time=0.0, external_arrivals={(0, 5): 7.0}
        )
        assert result.records_on("gpu")[0].start == pytest.approx(7.0)

    def test_start_time_respected_everywhere(self, oracle):
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            gpu_tasks=[ComputeTask(0, 0, 1, Device.GPU)],
            cpu_tasks=[ComputeTask(0, 1, 1, Device.CPU)],
            transfers=[TransferTask(0, 2, 1)],
        )
        result = execute_plan(plan, clock, oracle, start_time=4.0)
        for record in result.records:
            assert record.start >= 4.0

    def test_shared_block_on_cpu(self, oracle):
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            cpu_tasks=[ComputeTask(0, SHARED_BLOCK, 1, Device.CPU)],
        )
        result = execute_plan(plan, clock, oracle, start_time=0.0)
        assert result.records_on("cpu")[0].kind == "shared"

    def test_negative_start_rejected(self, oracle):
        with pytest.raises(SchedulingError):
            execute_plan(
                ExecutionPlan(layer=0, n_tokens=1),
                ThreeResourceClock(),
                oracle,
                start_time=-1.0,
            )

    def test_makespan_accounting(self, oracle):
        clock = ThreeResourceClock()
        plan = ExecutionPlan(
            layer=0,
            n_tokens=1,
            gpu_tasks=[ComputeTask(0, 0, 1, Device.GPU)],
        )
        result = execute_plan(plan, clock, oracle, start_time=2.0)
        assert result.makespan == pytest.approx(2.0)  # toy GPU time
        assert result.compute_end == pytest.approx(4.0)


class TestPlannerExecutorAgreement:
    def test_executed_makespan_matches_estimate_with_same_cost(
        self, toy_oracle_factory
    ):
        """With identical planner/executor cost models and an idle clock,
        executed duration equals the simulated makespan."""
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(0, 1), (1, 1), (2, 3), (3, 4), (4, 1)]
        cached = {3, 4}
        plan = scheduler.plan(0, activated, cached, n_tokens=1)
        clock = ThreeResourceClock()
        result = execute_plan(plan, clock, toy_oracle_factory(1), start_time=0.0)
        assert result.makespan == pytest.approx(plan.estimated_makespan)
