"""Total-order determinism of the planner (fast/reference comparability).

The fast-path equality guarantee rests on every ordering decision in
the scheduler being a *total* order — any tie broken by expert id so no
two distinct inputs compare equal:

- ``by_load_desc``: ``(-load, expert)``;
- CPU queue: ``(load, expert)``;
- ``arrivals.sort``: ``(time, -load, expert)`` (expert unique);
- GPU-pool insertion: load desc, then expert asc;
- steal candidate: ``min`` by ``(load, expert)``;
- allocation argmin: strict ``1e-15`` improvement, ties keep the
  earlier (fewer-transfer) candidate of the ascending count order;
- prefetch decisions: ``(-gain, distance, layer, expert)``.

These tests enforce the observable consequence: the planner is a pure
function of the *set* of inputs — invariant to iteration/presentation
order and stable across repeated runs — even under adversarial
all-equal-load inputs where every comparator falls through to the id
tie-break.
"""

import random

from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.tasks import LayerCostOracle
from repro.models.config import ExpertShape, MoEModelConfig
from repro.rng import derive_rng

_MODEL = MoEModelConfig(
    name="det",
    num_layers=1,
    num_shared_experts=1,
    num_routed_experts=32,
    num_activated_experts=4,
    routed_expert_shape=ExpertShape(8, 8),
    shared_expert_shape=ExpertShape(8, 8),
)


class _Cost:
    def __init__(self, gpu=2.0, cpu=1.5, transfer=3.0):
        self.gpu, self.cpu, self.transfer_s = gpu, cpu, transfer

    def expert_bytes(self, shape):
        return 1.0

    def gpu_expert_time(self, shape, tokens):
        return self.gpu if tokens else 0.0

    def cpu_expert_time(self, shape, tokens, first_task=False):
        return self.cpu * tokens if tokens else 0.0

    def transfer_time(self, shape):
        return self.transfer_s

    def attention_time(self, d_model, tokens, device="gpu"):
        return 0.1


def _scheduler(fast_path, steal=True, **cost_kwargs):
    cost = _Cost(**cost_kwargs)

    def factory(n_tokens):
        return LayerCostOracle.for_model(cost, _MODEL, n_tokens)

    return HybridScheduler(
        factory,
        SchedulerConfig(
            fast_path=fast_path, plan_cache_size=0, allow_cpu_steal=steal
        ),
    )


def test_plan_invariant_to_presentation_order():
    """Shuffling the activated list, the cached-set iteration order and
    the inflight dict insertion order never changes the plan."""
    rng = derive_rng(0, "determinism", "shuffle")
    pyrng = random.Random(0)
    for fast_path in (True, False):
        scheduler = _scheduler(fast_path)
        for _ in range(40):
            n = int(rng.integers(2, 14))
            experts = [int(e) for e in rng.choice(32, size=n, replace=False)]
            activated = [(e, int(rng.integers(1, 9))) for e in experts]
            cached_list = [e for e in experts if rng.random() < 0.5]
            inflight_items = [
                (e, float(rng.uniform(0, 5))) for e in cached_list if rng.random() < 0.5
            ]
            canonical = scheduler.plan(
                0,
                sorted(activated),
                set(cached_list),
                n_tokens=1,
                inflight=dict(inflight_items),
            )
            for _ in range(3):
                shuffled = list(activated)
                pyrng.shuffle(shuffled)
                pyrng.shuffle(cached_list)
                pyrng.shuffle(inflight_items)
                assert (
                    scheduler.plan(
                        0,
                        shuffled,
                        set(cached_list),
                        n_tokens=1,
                        inflight=dict(inflight_items),
                    )
                    == canonical
                )


def test_all_equal_loads_hit_every_id_tie_break():
    """With every load identical, every comparator falls through to the
    expert-id tie-break; the result must still be one deterministic
    plan, identical across paths and repetitions."""
    for fast_path in (True, False):
        scheduler = _scheduler(fast_path)
        activated = [(e, 4) for e in range(10)]
        cached = {1, 3, 5, 7, 9}
        plans = [
            scheduler.plan(0, list(reversed(activated)) if i % 2 else activated,
                           set(cached), n_tokens=2)
            for i in range(4)
        ]
        assert all(p == plans[0] for p in plans)
        # CPU queue of equal load is ordered by ascending expert id
        # (stolen experts, if any, append after the queue).
        n_queue = len(plans[0].cpu_tasks) - len(plans[0].metadata["stolen"])
        cpu_queue = [t.expert for t in plans[0].cpu_tasks[:n_queue]]
        assert cpu_queue == sorted(cpu_queue)

    fast = _scheduler(True).plan(0, [(e, 4) for e in range(10)], {1, 3, 5, 7, 9}, 2)
    ref = _scheduler(False).plan(0, [(e, 4) for e in range(10)], {1, 3, 5, 7, 9}, 2)
    assert fast == ref


def test_equal_arrival_instants_are_ordered_by_load_then_id():
    """Two inflight experts becoming ready at the same instant join the
    GPU queue high-load first, then lowest id — deterministically."""
    for fast_path in (True, False):
        scheduler = _scheduler(fast_path, steal=False)
        plan = scheduler.plan(
            0,
            [(2, 5), (4, 5), (6, 9)],
            {2, 4, 6},
            n_tokens=1,
            inflight={2: 1.0, 4: 1.0, 6: 1.0},
        )
        experts = [t.expert for t in plan.gpu_tasks if not t.is_shared]
        assert experts == [6, 2, 4]


def test_makespan_tie_prefers_fewer_transfers():
    """When several transfer counts tie exactly, both paths keep the
    smallest k (fewest transfers)."""
    # Free transfers, unit costs, 4 unit loads: k=1 and k=2 both yield
    # an exact 3.0 makespan — the argmin must keep k=1 on both paths.
    fast = _scheduler(True, gpu=1.0, cpu=1.0, transfer=0.0)
    ref = _scheduler(False, gpu=1.0, cpu=1.0, transfer=0.0)
    activated = [(e, 1) for e in range(4)]
    plan_fast = fast.plan(0, activated, set(), n_tokens=1)
    plan_ref = ref.plan(0, activated, set(), n_tokens=1)
    assert plan_fast == plan_ref
    assert plan_fast.estimated_makespan == 3.0
    assert plan_fast.metadata["transfer_count"] == 1
