"""Hybrid scheduler unit tests, including the paper's Fig. 5 example."""

import pytest

from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.tasks import SHARED_BLOCK
from repro.errors import SchedulingError

# The Fig. 5 scenario: A=0:1, B=1:1, C=2:3 uncached; D=3:4, E=4:1 cached.
FIG5_ACTIVATED = [(0, 1), (1, 1), (2, 3), (3, 4), (4, 1)]
FIG5_CACHED = {3, 4}


@pytest.fixture
def scheduler(toy_oracle_factory) -> HybridScheduler:
    return HybridScheduler(toy_oracle_factory)


class TestFig5Example:
    """The worked example of paper §IV-B / Fig. 5."""

    def test_transfers_high_load_uncached(self, scheduler):
        plan = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, n_tokens=1)
        assert plan.transferred_experts() == [2]

    def test_cpu_computes_low_load_then_steals_cached(self, scheduler):
        plan = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, n_tokens=1)
        assert [t.expert for t in plan.cpu_tasks] == [0, 1, 4]
        assert plan.metadata["stolen"] == [4]

    def test_gpu_runs_shared_then_high_load(self, scheduler):
        plan = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, n_tokens=1)
        experts = [t.expert for t in plan.gpu_tasks]
        assert experts[0] == SHARED_BLOCK
        assert experts[1] == 3  # D, the high-load cached expert
        assert experts[2] == 2  # C, after its transfer lands

    def test_plan_validates(self, scheduler):
        plan = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, n_tokens=1)
        plan.validate(dict(FIG5_ACTIVATED), FIG5_CACHED)

    def test_makespan_beats_no_transfer(self, scheduler, toy_oracle_factory):
        chosen = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, 1).estimated_makespan
        no_transfer = HybridScheduler(
            toy_oracle_factory, SchedulerConfig(allow_cpu_steal=True)
        )._simulate(
            dict(FIG5_ACTIVATED), FIG5_CACHED, toy_oracle_factory(1), 0, 0.0, True
        )
        assert chosen < no_transfer.makespan


class TestDegenerateInputs:
    def test_all_cached(self, scheduler):
        plan = scheduler.plan(0, [(0, 2), (1, 1)], {0, 1}, n_tokens=1)
        assert plan.transfers == []
        plan.validate({0: 2, 1: 1}, {0, 1})

    def test_none_cached(self, scheduler):
        plan = scheduler.plan(0, [(0, 2), (1, 1)], set(), n_tokens=1)
        plan.validate({0: 2, 1: 1}, set())

    def test_single_expert(self, scheduler):
        plan = scheduler.plan(0, [(5, 4)], set(), n_tokens=1)
        assert plan.computed_experts() == [5]

    def test_duplicate_activation_rejected(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.plan(0, [(0, 1), (0, 2)], set(), n_tokens=1)

    def test_zero_load_rejected(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.plan(0, [(0, 0)], set(), n_tokens=1)

    def test_negative_backlog_rejected(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.plan(0, [(0, 1)], set(), n_tokens=1, pcie_backlog=-1.0)


class TestPriorityRules:
    def test_gpu_descending_load_order(self, scheduler):
        plan = scheduler.plan(
            0, [(0, 1), (1, 5), (2, 3)], {0, 1, 2}, n_tokens=1
        )
        routed = [t for t in plan.gpu_tasks if not t.is_shared]
        loads = [t.load for t in routed]
        # CPU stealing may take low-load tasks, but GPU order must stay desc.
        assert loads == sorted(loads, reverse=True)

    def test_cpu_ascending_load_order(self, toy_oracle_factory):
        scheduler = HybridScheduler(
            toy_oracle_factory, SchedulerConfig(allow_cpu_steal=False)
        )
        plan = scheduler.plan(0, [(0, 3), (1, 1), (2, 2)], set(), n_tokens=1)
        cpu_loads = [t.load for t in plan.cpu_tasks]
        assert cpu_loads == sorted(cpu_loads)

    def test_transfer_descending_load(self, scheduler):
        plan = scheduler.plan(
            0, [(0, 1), (1, 8), (2, 4), (3, 9)], set(), n_tokens=1
        )
        loads = [t.load for t in plan.transfers]
        assert loads == sorted(loads, reverse=True)

    def test_steal_disabled_respected(self, toy_oracle_factory):
        scheduler = HybridScheduler(
            toy_oracle_factory, SchedulerConfig(allow_cpu_steal=False)
        )
        plan = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, n_tokens=1)
        assert plan.metadata["stolen"] == []

    def test_pcie_backlog_delays_arrivals(self, scheduler):
        fast = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, 1, pcie_backlog=0.0)
        slow = scheduler.plan(0, FIG5_ACTIVATED, FIG5_CACHED, 1, pcie_backlog=10.0)
        assert slow.estimated_makespan >= fast.estimated_makespan

    def test_inflight_expert_delays_gpu(self, scheduler):
        base = scheduler.plan(0, [(0, 4)], {0}, n_tokens=1)
        delayed = scheduler.plan(0, [(0, 4)], {0}, n_tokens=1, inflight={0: 5.0})
        assert delayed.estimated_makespan > base.estimated_makespan

    def test_inflight_of_unactivated_ignored(self, scheduler):
        base = scheduler.plan(0, [(0, 4)], {0}, n_tokens=1)
        same = scheduler.plan(0, [(0, 4)], {0}, n_tokens=1, inflight={7: 99.0})
        assert same.estimated_makespan == base.estimated_makespan


class TestSearch:
    def test_quick_mode_subset_of_full(self, toy_oracle_factory):
        full = HybridScheduler(toy_oracle_factory)
        activated = [(e, e + 1) for e in range(6)]
        best_full = full.simulate_makespan(activated, {0, 1}, 1)
        best_quick = full.simulate_makespan(activated, {0, 1}, 1, quick=True)
        assert best_full <= best_quick + 1e-12

    def test_max_search_width_keeps_extremes(self, toy_oracle_factory):
        scheduler = HybridScheduler(
            toy_oracle_factory, SchedulerConfig(max_search_width=3)
        )
        counts = scheduler._candidate_transfer_counts(10, force_quick=False)
        assert 0 in counts and 10 in counts and len(counts) <= 4

    def test_invalid_config(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(steal_margin=1.5)
        with pytest.raises(SchedulingError):
            SchedulerConfig(max_search_width=1)

    def test_search_beats_or_matches_extremes(self, toy_oracle_factory):
        scheduler = HybridScheduler(toy_oracle_factory)
        activated = [(e, (e * 7) % 5 + 1) for e in range(8)]
        cached = {1, 4}
        full = scheduler.simulate_makespan(activated, cached, 1)
        quick = scheduler.simulate_makespan(activated, cached, 1, quick=True)
        assert full <= quick + 1e-12


class TestSearchWidthSubsampling:
    """`max_search_width` candidate subsampling (nested dyadic family)."""

    def _counts(self, toy_oracle_factory, width, n_uncached):
        scheduler = HybridScheduler(
            toy_oracle_factory, SchedulerConfig(max_search_width=width)
        )
        return scheduler._candidate_transfer_counts(n_uncached, force_quick=False)

    def test_extremes_always_included(self, toy_oracle_factory):
        for n_uncached in (1, 2, 5, 10, 33):
            for width in (2, 3, 4, 7, None):
                counts = self._counts(toy_oracle_factory, width, n_uncached)
                assert counts[0] == 0 and counts[-1] == n_uncached
                assert counts == sorted(set(counts))
                if width is not None:
                    assert len(counts) <= max(width, 2)

    def test_width_two_equals_quick_mode(self, toy_oracle_factory):
        scheduler = HybridScheduler(
            toy_oracle_factory, SchedulerConfig(max_search_width=2)
        )
        for n_uncached in (1, 3, 10):
            assert scheduler._candidate_transfer_counts(
                n_uncached, force_quick=False
            ) == scheduler._candidate_transfer_counts(n_uncached, force_quick=True)
        activated = [(e, (e * 5) % 7 + 1) for e in range(9)]
        cached = {0, 2}
        width2 = scheduler.simulate_makespan(activated, cached, 1)
        quick = HybridScheduler(toy_oracle_factory).simulate_makespan(
            activated, cached, 1, quick=True
        )
        assert width2 == quick

    def test_widening_is_nested(self, toy_oracle_factory):
        """The width-w candidate set is a subset of every wider set —
        the structural property behind makespan monotonicity."""
        for n_uncached in (4, 9, 17, 30):
            previous: set[int] = set()
            for width in range(2, n_uncached + 2):
                counts = set(self._counts(toy_oracle_factory, width, n_uncached))
                assert previous <= counts
                previous = counts
            assert previous == set(range(n_uncached + 1))

    def test_monotone_widening_never_worsens_makespan(self, toy_oracle_factory):
        """Because widening only adds candidates, the chosen makespan is
        non-increasing in the search width, down to the exhaustive
        optimum."""
        from repro.rng import derive_rng

        rng = derive_rng(0, "width-monotone")
        for trial in range(15):
            n = int(rng.integers(5, 14))
            experts = [int(e) for e in rng.choice(32, size=n, replace=False)]
            activated = [(e, int(rng.integers(1, 12))) for e in experts]
            cached = {e for e in experts if rng.random() < 0.3}
            best_so_far = float("inf")
            for width in (2, 3, 4, 6, 9, None):
                scheduler = HybridScheduler(
                    toy_oracle_factory, SchedulerConfig(max_search_width=width)
                )
                makespan = scheduler.simulate_makespan(activated, cached, 1)
                assert makespan <= best_so_far + 1e-12
                best_so_far = min(best_so_far, makespan)
            exhaustive = HybridScheduler(toy_oracle_factory).simulate_makespan(
                activated, cached, 1
            )
            assert abs(best_so_far - exhaustive) <= 1e-12
