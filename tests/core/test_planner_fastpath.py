"""Fast-path vs reference planner equality (the PR 3 tentpole contract).

The incremental fast path prunes candidates, memoizes durations and
skips plan materialisation for losing allocations — but it must emit
**bit-identical plans** to the reference event-driven simulator. These
property tests pin that down over randomized activations, cache
states, in-flight arrivals, backlogs and cost regimes, at the raw
scheduler level, through every strategy's ``plan_layer`` (single- and
multi-GPU-shaped contexts), and end-to-end through the engine.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.tasks import LayerCostOracle
from repro.engine.engine import EngineConfig
from repro.engine.factory import available_strategies, make_engine
from repro.engine.strategy_base import LayerContext
from repro.models.config import ExpertShape, MoEModelConfig
from repro.rng import derive_rng


class _RandomCost:
    """Arbitrary but consistent positive cost model for properties."""

    def __init__(self, gpu, cpu_per_token, transfer, warmup=0.0):
        self.gpu = gpu
        self.cpu_per_token = cpu_per_token
        self.transfer = transfer
        self.warmup = warmup

    def expert_bytes(self, shape):
        return 1.0

    def gpu_expert_time(self, shape, tokens):
        return self.gpu if tokens else 0.0

    def cpu_expert_time(self, shape, tokens, first_task=False):
        if not tokens:
            return 0.0
        return self.cpu_per_token * tokens + (self.warmup if first_task else 0.0)

    def transfer_time(self, shape):
        return self.transfer

    def attention_time(self, d_model, tokens, device="gpu"):
        return 0.1


_MODEL = MoEModelConfig(
    name="prop",
    num_layers=1,
    num_shared_experts=1,
    num_routed_experts=32,
    num_activated_experts=4,
    routed_expert_shape=ExpertShape(8, 8),
    shared_expert_shape=ExpertShape(8, 8),
)


def _scheduler_pair(gpu, cpu, transfer, warmup, steal, margin, width):
    cost = _RandomCost(gpu, cpu, transfer, warmup)

    def factory(n_tokens):
        return LayerCostOracle.for_model(cost, _MODEL, n_tokens)

    fast = HybridScheduler(
        factory,
        SchedulerConfig(
            allow_cpu_steal=steal,
            steal_margin=margin,
            max_search_width=width,
            fast_path=True,
        ),
    )
    reference = HybridScheduler(
        factory,
        SchedulerConfig(
            allow_cpu_steal=steal,
            steal_margin=margin,
            max_search_width=width,
            fast_path=False,
            plan_cache_size=0,
        ),
    )
    return fast, reference


_ACTIVATION = st.dictionaries(
    st.integers(0, 31), st.integers(1, 40), min_size=1, max_size=16
)


class TestFastPathEquality:
    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        inflight_raw=st.dictionaries(
            st.integers(0, 31), st.floats(0.0, 15.0), max_size=6
        ),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
        warmup=st.floats(0.0, 2.0),
        pcie_backlog=st.floats(0.0, 12.0),
        cpu_backlog=st.floats(0.0, 12.0),
        steal=st.booleans(),
        margin=st.sampled_from([0.0, 0.1, 0.3]),
        width=st.sampled_from([None, 2, 3, 5]),
        include_shared=st.booleans(),
        n_tokens=st.sampled_from([1, 4, 128]),
    )
    @settings(max_examples=220, deadline=None)
    def test_plans_bit_identical(
        self,
        loads,
        cached_mask,
        inflight_raw,
        gpu,
        cpu,
        transfer,
        warmup,
        pcie_backlog,
        cpu_backlog,
        steal,
        margin,
        width,
        include_shared,
        n_tokens,
    ):
        """The fast search and the reference simulator agree exactly —
        tasks, order, transfers, makespan float and metadata."""
        fast, reference = _scheduler_pair(
            gpu, cpu, transfer, warmup, steal, margin, width
        )
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        inflight = {e: t for e, t in inflight_raw.items()}
        args = (7, activated, cached, n_tokens)
        kwargs = dict(
            pcie_backlog=pcie_backlog,
            include_shared=include_shared,
            inflight=inflight,
            cpu_backlog=cpu_backlog,
        )
        plan_fast = fast.plan(*args, **kwargs)
        plan_ref = reference.plan(*args, **kwargs)
        assert plan_fast == plan_ref
        assert plan_fast.estimated_makespan == plan_ref.estimated_makespan
        # The memoized replay is bit-identical too.
        assert fast.plan(*args, **kwargs) == plan_ref

    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
        quick=st.booleans(),
        cpu_backlog=st.floats(0.0, 8.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_makespans_bit_identical(
        self, loads, cached_mask, gpu, cpu, transfer, quick, cpu_backlog
    ):
        fast, reference = _scheduler_pair(gpu, cpu, transfer, 0.0, True, 0.0, None)
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        mk_fast = fast.simulate_makespan(
            activated, cached, 4, quick=quick, cpu_backlog=cpu_backlog
        )
        mk_ref = reference.simulate_makespan(
            activated, cached, 4, quick=quick, cpu_backlog=cpu_backlog
        )
        assert mk_fast == mk_ref

    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_quick_lower_bound_is_a_lower_bound(
        self, loads, cached_mask, gpu, cpu, transfer
    ):
        """The prefetcher's screening bound never exceeds the exact
        quick makespan (the property that makes screening exact)."""
        fast, _ = _scheduler_pair(gpu, cpu, transfer, 0.0, True, 0.0, None)
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        bound = fast.quick_makespan_lower_bound(activated, cached, 4)
        exact = fast.simulate_makespan(activated, cached, 4, quick=True)
        assert bound <= exact


# ----------------------------------------------------------------------
# every strategy, 1-GPU and multi-GPU-shaped contexts
# ----------------------------------------------------------------------

_TINY = MoEModelConfig(
    name="tiny-fastpath",
    num_layers=3,
    num_shared_experts=1,
    num_routed_experts=8,
    num_activated_experts=2,
    routed_expert_shape=ExpertShape(256, 512),
    shared_expert_shape=ExpertShape(256, 512),
)


def _engine_pair(strategy_name):
    from repro.models.model import ReferenceMoEModel

    engines = []
    for fast in (True, False):
        engines.append(
            make_engine(
                model=ReferenceMoEModel(
                    _TINY, d_model=16, d_ff=32, vocab_size=128, seed=0
                ),
                strategy=strategy_name,
                engine_config=EngineConfig(
                    cache_ratio=0.5, planner_fast_path=fast
                ),
            )
        )
    return engines


def _random_context(rng, layer, multi_gpu):
    n = int(rng.integers(1, 9))
    experts = sorted(int(e) for e in rng.choice(8, size=n, replace=False))
    activated = tuple((e, int(rng.integers(1, 20))) for e in experts)
    cached = frozenset(
        int(e) for e in rng.choice(experts, size=int(rng.integers(0, n + 1)), replace=False)
    )
    inflight = tuple(
        (e, float(rng.uniform(0.001, 0.01)))
        for e in cached
        if rng.random() < 0.3
    )
    return LayerContext(
        layer=layer,
        stage="decode" if rng.random() < 0.7 else "prefill",
        n_tokens=int(rng.choice([1, 2, 8])),
        router=None,  # no strategy consults the router during planning
        activated=activated,
        cached_experts=cached,
        moe_start=float(rng.uniform(0.0, 1.0)),
        pcie_backlog=float(rng.choice([0.0, rng.uniform(0.0, 0.01)])),
        inflight_offsets=inflight,
        device_id=int(rng.integers(0, 4)) if multi_gpu else 0,
        include_shared=bool(rng.random() < 0.5) if multi_gpu else True,
        cpu_backlog=float(rng.uniform(0.0, 0.01)) if multi_gpu else 0.0,
    )


@pytest.mark.parametrize("strategy_name", available_strategies())
def test_strategy_plans_identical_across_paths(strategy_name):
    """For randomized layer contexts — including multi-GPU device-group
    shapes (partial activations, cpu_backlog, include_shared=False) —
    every strategy's plan is bit-identical under both planner paths.

    Five strategies x 40 contexts = 200 randomized cases.
    """
    engine_fast, engine_ref = _engine_pair(strategy_name)
    rng = derive_rng(0, "fastpath-strategy", strategy_name)
    for case in range(40):
        ctx = _random_context(rng, layer=case % 3, multi_gpu=case % 2 == 1)
        plan_fast = engine_fast.strategy.plan_layer(ctx)
        plan_ref = engine_ref.strategy.plan_layer(ctx)
        assert plan_fast == plan_ref, f"case {case}: {strategy_name} plans diverged"


def test_end_to_end_generation_identical(prompt_tokens):
    """A full generate() run (prefill + sampled decode, prefetching and
    MRS caching active) is step-for-step identical under both paths."""
    engine_fast, engine_ref = _engine_pair("hybrimoe")
    result_fast = engine_fast.generate(prompt_tokens, decode_steps=6)
    result_ref = engine_ref.generate(prompt_tokens, decode_steps=6)
    assert result_fast.prefill == result_ref.prefill
    assert result_fast.decode_steps == result_ref.decode_steps
    assert result_fast.total_hits == result_ref.total_hits
    assert result_fast.total_misses == result_ref.total_misses


def test_end_to_end_sharded_identical(prompt_tokens):
    """The sharded (multi-GPU) dispatch path threads the same memoized
    planner; a 2-GPU run is identical under both planner paths."""
    results = []
    for fast in (True, False):
        engine = make_engine(
            model="deepseek",
            strategy="hybrimoe",
            num_layers=2,
            engine_config=EngineConfig(
                cache_ratio=0.25, num_gpus=2, planner_fast_path=fast
            ),
        )
        results.append(engine.generate(prompt_tokens, decode_steps=4))
    fast_result, ref_result = results
    assert fast_result.prefill == ref_result.prefill
    assert fast_result.decode_steps == ref_result.decode_steps
    assert fast_result.total_hits == ref_result.total_hits


# ----------------------------------------------------------------------
# memoization semantics
# ----------------------------------------------------------------------


class TestPlanMemo:
    def _scheduler(self, size):
        cost = _RandomCost(2.0, 1.5, 3.0)

        def factory(n_tokens):
            return LayerCostOracle.for_model(cost, _MODEL, n_tokens)

        return HybridScheduler(
            factory, SchedulerConfig(plan_cache_size=size)
        )

    def test_hit_returns_fresh_equal_plan(self):
        scheduler = self._scheduler(16)
        activated = [(0, 3), (1, 1), (2, 5)]
        first = scheduler.plan(0, activated, {1}, n_tokens=1)
        second = scheduler.plan(0, activated, {1}, n_tokens=1)
        assert first == second
        assert first is not second  # callers own their copy
        assert first.gpu_tasks is not second.gpu_tasks
        assert first.metadata is not second.metadata
        info = scheduler.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_mutating_a_hit_does_not_poison_the_memo(self):
        scheduler = self._scheduler(16)
        activated = [(0, 3), (1, 1)]
        first = scheduler.plan(0, activated, set(), n_tokens=1)
        first.gpu_tasks.clear()
        first.metadata["stolen"].append(99)
        second = scheduler.plan(0, activated, set(), n_tokens=1)
        assert second == self._scheduler(0).plan(0, activated, set(), n_tokens=1)

    def test_key_distinguishes_every_input(self):
        scheduler = self._scheduler(64)
        base = dict(layer=0, activated=[(0, 3), (1, 1)], cached_experts=set(), n_tokens=1)
        scheduler.plan(**base)
        variants = [
            dict(base, layer=1),
            dict(base, activated=[(0, 3), (1, 2)]),
            dict(base, cached_experts={0}),
            dict(base, n_tokens=2),
        ]
        for kwargs in variants:
            scheduler.plan(**kwargs)
        scheduler.plan(0, [(0, 3), (1, 1)], set(), 1, pcie_backlog=0.5)
        scheduler.plan(0, [(0, 3), (1, 1)], set(), 1, cpu_backlog=0.5)
        scheduler.plan(0, [(0, 3), (1, 1)], set(), 1, inflight={0: 1.0})
        assert scheduler.cache_info()["hits"] == 0
        assert scheduler.cache_info()["misses"] == 8

    def test_activation_order_shares_one_entry(self):
        scheduler = self._scheduler(16)
        a = scheduler.plan(0, [(0, 3), (1, 1)], set(), n_tokens=1)
        b = scheduler.plan(0, [(1, 1), (0, 3)], set(), n_tokens=1)
        assert a == b
        assert scheduler.cache_info() == {
            "hits": 1, "misses": 1, "size": 1, "capacity": 16
        }

    def test_lru_bound_and_disable(self):
        scheduler = self._scheduler(2)
        for expert in range(5):
            scheduler.plan(0, [(expert, 1)], set(), n_tokens=1)
        assert scheduler.cache_info()["size"] == 2
        disabled = self._scheduler(0)
        disabled.plan(0, [(0, 1)], set(), n_tokens=1)
        disabled.plan(0, [(0, 1)], set(), n_tokens=1)
        assert disabled.cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "capacity": 0
        }

    def test_invalid_inputs_still_raise(self):
        from repro.errors import SchedulingError

        scheduler = self._scheduler(16)
        with pytest.raises(SchedulingError):
            scheduler.plan(0, [(0, 1), (0, 2)], set(), n_tokens=1)
        with pytest.raises(SchedulingError):
            scheduler.plan(0, [(0, 1)], set(), n_tokens=1, pcie_backlog=-1.0)


def test_engine_threads_fast_path_override():
    """EngineConfig.planner_fast_path overrides the scheduler config on
    the runtime's planner (both directions)."""
    cfg_on = EngineConfig(planner_fast_path=True, scheduler=SchedulerConfig(fast_path=False))
    cfg_off = EngineConfig(planner_fast_path=False)
    cfg_none = EngineConfig(scheduler=SchedulerConfig(fast_path=False))
    assert cfg_on.scheduler_config().fast_path is True
    assert cfg_off.scheduler_config().fast_path is False
    # False selects the full pre-fast-path baseline: memo off too, so
    # timings against it measure the from-scratch planner, not hits.
    assert cfg_off.scheduler_config().plan_cache_size == 0
    assert cfg_none.scheduler_config().fast_path is False
    assert cfg_none.scheduler_config().plan_cache_size > 0
    assert EngineConfig().scheduler_config().fast_path is True
    assert EngineConfig().scheduler_config().plan_cache_size > 0


def test_runtime_memoizes_oracles():
    """StepPipeline asks for an oracle per layer; the runtime hands back
    the same frozen object per (kind, n_tokens)."""
    from repro.models.model import ReferenceMoEModel

    engine = make_engine(
        model=ReferenceMoEModel(_TINY, d_model=16, d_ff=32, vocab_size=128, seed=0),
        strategy="hybrimoe",
    )
    runtime = engine.runtime
    assert runtime.estimated_oracle(4) is runtime.estimated_oracle(4)
    assert runtime.actual_oracle(4) is runtime.actual_oracle(4)
    assert runtime.estimated_oracle(4) is not runtime.estimated_oracle(5)
    assert runtime.estimated_oracle(4) is not runtime.actual_oracle(4)


def test_prefetcher_exact_top_m_validation():
    from repro.core.prefetch import ImpactDrivenPrefetcher
    from repro.errors import SchedulingError

    cost = _RandomCost(2.0, 1.5, 3.0)

    def factory(n_tokens):
        return LayerCostOracle.for_model(cost, _MODEL, n_tokens)

    scheduler = HybridScheduler(factory)
    with pytest.raises(SchedulingError):
        ImpactDrivenPrefetcher(scheduler, lambda: 1.0, 2, exact_top_m=0)
    with pytest.raises(SchedulingError):
        ImpactDrivenPrefetcher(
            scheduler, lambda: 1.0, 2, exact_top_m=4, delta_screen=False
        )


def test_prefetch_screening_preserves_decisions():
    """Delta screening (fast scheduler) returns exactly the decisions of
    the unscreened reference-path prefetcher."""
    from repro.core.prefetch import ImpactDrivenPrefetcher, PredictedLayer

    cost = _RandomCost(1.0, 2.5, 4.0)

    def factory(n_tokens):
        return LayerCostOracle.for_model(cost, _MODEL, n_tokens)

    fast_sched = HybridScheduler(factory, SchedulerConfig(fast_path=True))
    ref_sched = HybridScheduler(
        factory, SchedulerConfig(fast_path=False, plan_cache_size=0)
    )
    screened = ImpactDrivenPrefetcher(
        fast_sched, lambda: 4.0, 4, lookahead=3, delta_screen=True
    )
    unscreened = ImpactDrivenPrefetcher(
        ref_sched, lambda: 4.0, 4, lookahead=3, delta_screen=False
    )
    rng = derive_rng(0, "prefetch-screen")
    for _ in range(25):
        predictions = []
        for distance in range(1, int(rng.integers(2, 4))):
            cached = frozenset(
                int(e) for e in rng.choice(32, size=int(rng.integers(0, 12)), replace=False)
            )
            predictions.append(
                PredictedLayer(
                    layer=5 + distance,
                    scores=rng.random(32),
                    n_tokens=int(rng.choice([1, 4])),
                    cached_experts=cached,
                )
            )
        assert screened.evaluate_candidates(predictions, 5) == (
            unscreened.evaluate_candidates(predictions, 5)
        )
