"""Impact-driven prefetcher: impact ranking, budget and lead time."""

import numpy as np
import pytest

from repro.core.hybrid_scheduler import HybridScheduler
from repro.core.prefetch import ImpactDrivenPrefetcher, PredictedLayer
from repro.errors import SchedulingError


@pytest.fixture
def scheduler(toy_oracle_factory):
    return HybridScheduler(toy_oracle_factory)


@pytest.fixture
def prefetcher(scheduler):
    return ImpactDrivenPrefetcher(
        scheduler=scheduler,
        transfer_time_fn=lambda: 3.0,
        num_activated=2,
        lookahead=3,
        confidence_decay=0.8,
    )


def _prediction(layer, scores, cached=(), n_tokens=4):
    return PredictedLayer(
        layer=layer,
        scores=np.asarray(scores, dtype=np.float64),
        n_tokens=n_tokens,
        cached_experts=frozenset(cached),
    )


class TestPredictedActivation:
    def test_top_k_selected(self, prefetcher):
        activation = prefetcher.predicted_activation(
            _prediction(1, [0.05, 0.5, 0.05, 0.4])
        )
        experts = {e for e, _ in activation}
        assert experts == {1, 3}

    def test_loads_positive_and_bounded(self, prefetcher):
        activation = prefetcher.predicted_activation(
            _prediction(1, [0.7, 0.1, 0.1, 0.1], n_tokens=8)
        )
        for _, load in activation:
            assert 1 <= load <= 8

    def test_degenerate_scores_fall_back_to_uniform(self, prefetcher):
        activation = prefetcher.predicted_activation(
            _prediction(1, [0.0, 0.0, 0.0, 0.0])
        )
        assert len(activation) == 2


class TestImpactRanking:
    def test_cached_experts_not_candidates(self, prefetcher):
        decisions = prefetcher.evaluate_candidates(
            [_prediction(1, [0.6, 0.4, 0.0, 0.0], cached={0, 1})], current_layer=0
        )
        assert decisions == []

    def test_gains_sorted_descending(self, prefetcher):
        decisions = prefetcher.evaluate_candidates(
            [
                _prediction(1, [0.5, 0.3, 0.1, 0.1]),
                _prediction(2, [0.4, 0.4, 0.1, 0.1]),
            ],
            current_layer=0,
        )
        gains = [d.gain for d in decisions]
        assert gains == sorted(gains, reverse=True)

    def test_distance_confidence_discount(self, scheduler):
        eager = ImpactDrivenPrefetcher(scheduler, lambda: 3.0, 2, 3, 1.0)
        discounted = ImpactDrivenPrefetcher(scheduler, lambda: 3.0, 2, 3, 0.5)
        prediction = _prediction(3, [0.5, 0.3, 0.1, 0.1])
        gain_eager = eager.evaluate_candidates([prediction], 0)[0].gain
        gain_disc = discounted.evaluate_candidates([prediction], 0)[0].gain
        assert gain_disc == pytest.approx(gain_eager * 0.25)

    def test_beyond_lookahead_ignored(self, prefetcher):
        decisions = prefetcher.evaluate_candidates(
            [_prediction(9, [0.5, 0.3, 0.1, 0.1])], current_layer=0
        )
        assert decisions == []


class TestSelection:
    def test_budget_limits_count(self, prefetcher):
        predictions = [
            _prediction(1, [0.5, 0.3, 0.1, 0.1]),
            _prediction(2, [0.4, 0.3, 0.2, 0.1]),
        ]
        within = prefetcher.select(predictions, 0, budget_s=3.5)
        assert len(within) == 1  # one 3.0-unit transfer fits

    def test_zero_budget_selects_nothing(self, prefetcher):
        assert prefetcher.select([_prediction(1, [1, 0, 0, 0])], 0, 0.0) == []

    def test_lead_time_gating(self, prefetcher):
        """A transfer that cannot land before its layer is skipped."""
        predictions = [_prediction(1, [0.5, 0.3, 0.1, 0.1])]
        allowed = prefetcher.select(
            predictions, 0, budget_s=100.0, layer_span_s=5.0, backlog_s=0.0
        )
        blocked = prefetcher.select(
            predictions, 0, budget_s=100.0, layer_span_s=1.0, backlog_s=0.0
        )
        assert allowed and not blocked

    def test_backlog_consumes_lead_time(self, prefetcher):
        predictions = [_prediction(1, [0.5, 0.3, 0.1, 0.1])]
        blocked = prefetcher.select(
            predictions, 0, budget_s=100.0, layer_span_s=4.0, backlog_s=3.0
        )
        assert blocked == []

    def test_negative_backlog_rejected(self, prefetcher):
        with pytest.raises(SchedulingError):
            prefetcher.select([], 0, 1.0, backlog_s=-1.0)


class TestValidation:
    def test_invalid_construction(self, scheduler):
        with pytest.raises(SchedulingError):
            ImpactDrivenPrefetcher(scheduler, lambda: 1.0, 2, lookahead=0)
        with pytest.raises(SchedulingError):
            ImpactDrivenPrefetcher(scheduler, lambda: 1.0, 2, confidence_decay=0.0)
        with pytest.raises(SchedulingError):
            ImpactDrivenPrefetcher(scheduler, lambda: 1.0, 0)
