"""Property-based tests: executed timelines honour all dependencies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_scheduler import HybridScheduler
from repro.core.tasks import LayerCostOracle
from repro.core.executor import execute_plan
from repro.hardware.simulator import ThreeResourceClock
from repro.models.config import ExpertShape, MoEModelConfig


class _Cost:
    def __init__(self, gpu, cpu, transfer):
        self.gpu, self.cpu, self.transfer_s = gpu, cpu, transfer

    def expert_bytes(self, shape):
        return 1.0

    def gpu_expert_time(self, shape, tokens):
        return self.gpu if tokens else 0.0

    def cpu_expert_time(self, shape, tokens, first_task=False):
        return self.cpu * tokens if tokens else 0.0

    def transfer_time(self, shape):
        return self.transfer_s

    def attention_time(self, d_model, tokens, device="gpu"):
        return 0.1


def _setup(gpu, cpu, transfer):
    config = MoEModelConfig(
        name="prop",
        num_layers=1,
        num_shared_experts=1,
        num_routed_experts=16,
        num_activated_experts=2,
        routed_expert_shape=ExpertShape(8, 8),
        shared_expert_shape=ExpertShape(8, 8),
    )
    cost = _Cost(gpu, cpu, transfer)

    def factory(n):
        return LayerCostOracle.for_model(cost, config, n)

    return HybridScheduler(factory), factory


@given(
    loads=st.dictionaries(st.integers(0, 15), st.integers(1, 20), min_size=1, max_size=10),
    cached_mask=st.sets(st.integers(0, 15), max_size=8),
    gpu=st.floats(0.1, 3.0),
    cpu=st.floats(0.1, 3.0),
    transfer=st.floats(0.1, 5.0),
    start=st.floats(0.0, 10.0),
)
@settings(max_examples=100, deadline=None)
def test_executed_schedule_respects_all_dependencies(
    loads, cached_mask, gpu, cpu, transfer, start
):
    """For any scheduler-produced plan and start time:

    - no two tasks overlap on a serial resource;
    - each transferred expert's GPU compute starts at/after its transfer;
    - nothing starts before the layer's start time;
    - the layer result's makespan matches the timeline frontier.
    """
    scheduler, factory = _setup(gpu, cpu, transfer)
    activated = sorted(loads.items())
    cached = cached_mask & set(loads)
    plan = scheduler.plan(0, activated, cached, n_tokens=4)
    clock = ThreeResourceClock()
    result = execute_plan(plan, clock, factory(4), start_time=start)

    clock.validate()
    for record in result.records:
        assert record.start >= start - 1e-9

    transfer_finish = {
        (r.layer, r.expert): r.finish
        for r in result.records
        if r.kind == "transfer"
    }
    for record in result.records:
        if record.resource == "gpu" and record.kind == "compute":
            key = (record.layer, record.expert)
            if key in transfer_finish:
                assert record.start >= transfer_finish[key] - 1e-9

    compute_finishes = [
        r.finish for r in result.records if r.resource in ("gpu", "cpu")
    ]
    if compute_finishes:
        assert result.compute_end == max(compute_finishes)


@given(
    loads=st.dictionaries(st.integers(0, 15), st.integers(1, 20), min_size=1, max_size=10),
    gpu=st.floats(0.1, 3.0),
    cpu=st.floats(0.1, 3.0),
    transfer=st.floats(0.1, 5.0),
)
@settings(max_examples=60, deadline=None)
def test_planner_estimate_matches_execution_on_idle_clock(loads, gpu, cpu, transfer):
    """When planner and executor share one cost model and the clock is
    idle, the executed makespan equals the simulated estimate — the
    schedule simulation *is* the execution model."""
    scheduler, factory = _setup(gpu, cpu, transfer)
    activated = sorted(loads.items())
    plan = scheduler.plan(0, activated, set(), n_tokens=4)
    clock = ThreeResourceClock()
    result = execute_plan(plan, clock, factory(4), start_time=0.0)
    assert abs(result.makespan - plan.estimated_makespan) < 1e-9
