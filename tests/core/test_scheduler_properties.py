"""Property-based tests of the hybrid scheduler's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.tasks import LayerCostOracle
from repro.models.config import ExpertShape, MoEModelConfig


class _RandomCost:
    """Arbitrary but consistent positive cost model for properties."""

    def __init__(self, gpu: float, cpu_per_token: float, transfer: float):
        self.gpu = gpu
        self.cpu_per_token = cpu_per_token
        self.transfer = transfer

    def expert_bytes(self, shape):
        return 1.0

    def gpu_expert_time(self, shape, tokens):
        return self.gpu if tokens else 0.0

    def cpu_expert_time(self, shape, tokens, first_task=False):
        return self.cpu_per_token * tokens if tokens else 0.0

    def transfer_time(self, shape):
        return self.transfer

    def attention_time(self, d_model, tokens, device="gpu"):
        return 0.1


def _make_scheduler(gpu, cpu, transfer, steal=True, search=True):
    config = MoEModelConfig(
        name="prop",
        num_layers=1,
        num_shared_experts=1,
        num_routed_experts=32,
        num_activated_experts=4,
        routed_expert_shape=ExpertShape(8, 8),
        shared_expert_shape=ExpertShape(8, 8),
    )
    cost = _RandomCost(gpu, cpu, transfer)

    def factory(n_tokens):
        return LayerCostOracle.for_model(cost, config, n_tokens)

    return HybridScheduler(
        factory, SchedulerConfig(allow_cpu_steal=steal, search_transfers=search)
    )


_ACTIVATION = st.dictionaries(
    st.integers(0, 31), st.integers(1, 40), min_size=1, max_size=16
)


class TestPlanProperties:
    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
        steal=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_every_plan_is_valid_and_complete(
        self, loads, cached_mask, gpu, cpu, transfer, steal
    ):
        """Coverage, no-duplicates, GPU-weights and load invariants hold
        for arbitrary activations, cache states and cost regimes."""
        scheduler = _make_scheduler(gpu, cpu, transfer, steal=steal)
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        plan = scheduler.plan(0, activated, cached, n_tokens=4)
        plan.validate(loads, cached)
        assert sorted(plan.computed_experts()) == sorted(loads)

    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_makespan_lower_bound(self, loads, cached_mask, gpu, cpu, transfer):
        """The simulated makespan can never beat the single-resource
        lower bounds (critical-path sanity of the simulation)."""
        scheduler = _make_scheduler(gpu, cpu, transfer)
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        plan = scheduler.plan(0, activated, cached, n_tokens=4)
        # Lower bound 1: the largest single task on its fastest device.
        per_expert_best = [
            min(gpu if e in cached else gpu + transfer, cpu * load)
            for e, load in activated
        ]
        assert plan.estimated_makespan >= max(per_expert_best) - 1e-9

    @given(
        loads=_ACTIVATION,
        gpu=st.floats(0.1, 2.0),
        cpu_factor=st.floats(1.0, 10.0),
        transfer=st.floats(0.1, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_more_cache_rarely_hurts_in_realistic_regimes(
        self, loads, gpu, cpu_factor, transfer
    ):
        """On realistic platforms (GPU at least as fast per expert as
        the CPU at unit load — true of every profile we model), caching
        one more activated expert cannot meaningfully increase the
        optimal simulated makespan.

        Note this is *not* a theorem of the paper's greedy priority
        rules in adversarial cost regimes (a slow GPU can hold a cached
        expert hostage); the regime constraint is what makes it hold.
        """
        cpu = gpu * cpu_factor  # CPU per-token >= GPU per-expert
        scheduler = _make_scheduler(gpu, cpu, transfer)
        activated = sorted(loads.items())
        empty = scheduler.simulate_makespan(activated, set(), 4)
        first_expert = activated[0][0]
        cached = scheduler.simulate_makespan(activated, {first_expert}, 4)
        assert cached <= empty + gpu + 1e-9

    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_search_never_loses_to_quick(
        self, loads, cached_mask, gpu, cpu, transfer
    ):
        scheduler = _make_scheduler(gpu, cpu, transfer)
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        full = scheduler.simulate_makespan(activated, cached, 4)
        quick = scheduler.simulate_makespan(activated, cached, 4, quick=True)
        assert full <= quick + 1e-9

    @given(
        loads=_ACTIVATION,
        cached_mask=st.sets(st.integers(0, 31), max_size=16),
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfers_only_for_uncached(self, loads, cached_mask, gpu, cpu, transfer):
        scheduler = _make_scheduler(gpu, cpu, transfer)
        activated = sorted(loads.items())
        cached = cached_mask & set(loads)
        plan = scheduler.plan(0, activated, cached, n_tokens=4)
        for expert in plan.transferred_experts():
            assert expert not in cached

    @given(
        loads=_ACTIVATION,
        gpu=st.floats(0.1, 5.0),
        cpu=st.floats(0.1, 5.0),
        transfer=st.floats(0.1, 10.0),
        backlog=st.floats(0.0, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_backlog_monotone(self, loads, gpu, cpu, transfer, backlog):
        """More PCIe backlog can never shorten the optimal makespan."""
        scheduler = _make_scheduler(gpu, cpu, transfer)
        activated = sorted(loads.items())
        free = scheduler.simulate_makespan(activated, set(), 4, pcie_backlog=0.0)
        delayed = scheduler.simulate_makespan(
            activated, set(), 4, pcie_backlog=backlog
        )
        assert delayed >= free - 1e-9
