"""HybriMoE strategy: toggles, cache construction and refill behaviour."""

import numpy as np
import pytest

from repro.cache.mrs import MRSPolicy
from repro.core.strategy import HybriMoEStrategy
from repro.engine.engine import EngineConfig, InferenceEngine
from repro.hardware.platform_presets import paper_testbed
from repro.models.model import ReferenceMoEModel


@pytest.fixture
def engine_factory(tiny_config):
    def build(**strategy_kwargs):
        model = ReferenceMoEModel(tiny_config, seed=0)
        strategy = HybriMoEStrategy(**strategy_kwargs)
        config = EngineConfig(cache_ratio=0.5, seed=0, profile_prompt_len=8,
                              profile_decode_steps=2)
        return InferenceEngine(model, strategy, paper_testbed(), config)

    return build


class TestNames:
    def test_full_name(self):
        assert HybriMoEStrategy().name == "hybrimoe"

    def test_partial_names(self):
        assert HybriMoEStrategy(True, False, False).name == "hybrimoe[sched]"
        assert (
            HybriMoEStrategy(False, False, False).name == "hybrimoe[baseline]"
        )


class TestCacheConstruction:
    def test_caching_true_builds_mrs(self, engine_factory):
        engine = engine_factory(caching=True)
        assert isinstance(engine.runtime.cache.policy, MRSPolicy)
        assert engine.runtime.cache.capacity == engine.runtime.capacity
        assert len(engine.runtime.cache.pinned_keys) == 0

    def test_caching_false_pins_by_frequency(self, engine_factory):
        engine = engine_factory(caching=False, prefetching=False)
        cache = engine.runtime.cache
        assert cache.capacity == 0
        assert len(cache.pinned_keys) == engine.runtime.capacity

    def test_prefetch_without_caching_gets_scratch(self, engine_factory):
        engine = engine_factory(caching=False, prefetching=True)
        cache = engine.runtime.cache
        assert cache.capacity > 0  # the scratch ring
        assert len(cache.pinned_keys) == engine.runtime.capacity

    def test_mrs_primed_from_warmup(self, engine_factory):
        engine = engine_factory(caching=True)
        policy = engine.runtime.cache.policy
        primed = [s for s in policy.priority_snapshot().values() if s > 0]
        assert primed  # warmup scores flowed into priorities

    def test_warm_fill_uses_frequency_ranking(self, engine_factory):
        engine = engine_factory(caching=True)
        ranking = engine.runtime.frequency_ranking()
        expected = set(ranking[: engine.runtime.capacity])
        assert engine.runtime.cache.resident_keys == expected


class TestToggleBehaviour:
    def test_baseline_matches_ktransformers_latency(self, tiny_config):
        """All toggles off must reproduce the kTransformers baseline."""
        from repro.baselines.ktransformers import KTransformersStrategy

        results = {}
        for name, strategy in (
            ("baseline", HybriMoEStrategy(False, False, False)),
            ("ktrans", KTransformersStrategy()),
        ):
            model = ReferenceMoEModel(tiny_config, seed=0)
            config = EngineConfig(cache_ratio=0.5, seed=0, profile_prompt_len=8,
                                  profile_decode_steps=2)
            engine = InferenceEngine(model, strategy, paper_testbed(), config)
            results[name] = engine.generate(np.arange(16), decode_steps=4)
        assert results["baseline"].ttft == pytest.approx(results["ktrans"].ttft)
        assert results["baseline"].mean_tbt == pytest.approx(
            results["ktrans"].mean_tbt
        )

    def test_scheduling_off_produces_fixed_plans(self, engine_factory):
        engine = engine_factory(scheduling=False, prefetching=False, caching=False)
        result = engine.generate(np.arange(16), decode_steps=2)
        assert result.mean_tbt > 0

    def test_prefetch_off_never_reserves_prefetch(self, engine_factory):
        engine = engine_factory(prefetching=False)
        engine.generate(np.arange(16), decode_steps=2)
        labels = [iv.label for iv in engine.runtime.clock.pcie.intervals]
        assert not any("prefetch" in label for label in labels)

    def test_prefetch_on_reserves_prefetch(self, engine_factory):
        engine = engine_factory(prefetching=True)
        engine.generate(np.arange(16), decode_steps=4)
        labels = [iv.label for iv in engine.runtime.clock.pcie.intervals]
        assert any("prefetch" in label for label in labels)

    def test_refill_only_during_decode(self, engine_factory):
        engine = engine_factory(scheduling=False, prefetching=False, caching=True)
        engine.generate(np.arange(16), decode_steps=0)
        labels = [iv.label for iv in engine.runtime.clock.pcie.intervals]
        assert not any("refill" in label for label in labels)

    def test_decode_refills_appear(self, tiny_config):
        # Low ratio so decode misses exist to refill.
        model = ReferenceMoEModel(tiny_config, seed=0)
        strategy = HybriMoEStrategy(scheduling=False, prefetching=False, caching=True)
        config = EngineConfig(cache_ratio=0.25, seed=0, profile_prompt_len=8,
                              profile_decode_steps=2)
        engine = InferenceEngine(model, strategy, paper_testbed(), config)
        engine.generate(np.arange(16), decode_steps=8)
        labels = [iv.label for iv in engine.runtime.clock.pcie.intervals]
        assert any("refill" in label for label in labels)
