"""Setup shim enabling legacy editable installs (no `wheel` package needed).

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools lacks PEP 660
editable-wheel support.
"""

from setuptools import setup

setup()
