"""Chatbot serving scenario: decode latency across frameworks.

The paper's decode evaluation (Fig. 8) models interactive chat: a
ChatGPT-Prompts-style prompt followed by a long decode phase where
Time-Between-Tokens determines user-perceived speed. This example
compares all five frameworks on that workload at a constrained cache
ratio — the regime where scheduling policy matters most.

Run:  python examples/chatbot_decode.py
"""

from repro import available_strategies
from repro.experiments import format_table
from repro.experiments.runner import run_workload
from repro.workloads import decode_workload

MODEL = "deepseek"
CACHE_RATIO = 0.25
NUM_LAYERS = 12
DECODE_STEPS = 32


def main() -> None:
    workload = decode_workload(DECODE_STEPS, seed=0)
    print(
        f"chatbot workload: {workload.dataset} prompt "
        f"({workload.prompt_len} tokens) + {DECODE_STEPS} decode steps"
    )
    print(f"model={MODEL} ({NUM_LAYERS} layers), cache ratio {CACHE_RATIO:.0%}\n")

    rows = []
    for strategy in available_strategies():
        result = run_workload(
            model=MODEL,
            strategy=strategy,
            cache_ratio=CACHE_RATIO,
            workload=workload,
            num_layers=NUM_LAYERS,
            seed=0,
        )
        rows.append(
            {
                "strategy": strategy,
                "mean_tbt_ms": result.mean_tbt * 1e3,
                "tokens_per_s": result.decode_throughput,
                "decode_hit_rate": result.decode_hit_rate(),
                "cpu_util": result.mean_utilization("decode").get("cpu", 0.0),
                "gpu_util": result.mean_utilization("decode").get("gpu", 0.0),
            }
        )
    rows.sort(key=lambda r: r["mean_tbt_ms"])
    print(format_table(rows, title="decode serving comparison (best first)"))
    best = rows[0]["strategy"]
    print(f"\nfastest framework for this workload: {best}")


if __name__ == "__main__":
    main()
