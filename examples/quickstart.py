"""Quickstart: run HybriMoE inference on a DeepSeek-shaped model.

Builds an engine (functional MoE model + simulated A6000/Xeon testbed +
the HybriMoE strategy), generates a completion, and prints the paper's
metrics: TTFT for prefill, TBT for decode, cache hit rate, and
per-resource utilisation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import make_engine


def main() -> None:
    engine = make_engine(
        model="deepseek",        # Table II preset (Mixtral/Qwen2/DeepSeek)
        strategy="hybrimoe",     # or: ktransformers, adapmoe, llamacpp, ondemand
        cache_ratio=0.25,        # GPU holds 25% of all routed experts
        num_layers=12,           # reduced depth for a fast demo
        seed=0,
    )

    prompt = np.arange(128)  # token ids; content is synthetic
    result = engine.generate(prompt, decode_steps=32)

    print(f"model           : {result.model_name}")
    print(f"strategy        : {result.strategy_name}")
    print(f"cache ratio     : {result.cache_ratio:.0%}")
    print(f"TTFT (prefill)  : {result.ttft * 1e3:8.2f} ms")
    print(f"mean TBT        : {result.mean_tbt * 1e3:8.2f} ms/token")
    print(f"throughput      : {result.decode_throughput:8.1f} tokens/s")
    print(f"cache hit rate  : {result.hit_rate:.1%}")
    for stage in ("prefill", "decode"):
        util = result.mean_utilization(stage)
        pretty = ", ".join(f"{k}={v:.0%}" for k, v in util.items())
        print(f"{stage:7s} utilisation: {pretty}")


if __name__ == "__main__":
    main()
