"""Document-ingestion scenario: TTFT versus prompt length.

Long-prompt prefill (summarisation, RAG ingestion) is the paper's
Fig. 7 setting: Time-To-First-Token across input-length buckets. This
example sweeps the paper's buckets on one model and shows where each
framework's strategy pays off — llama.cpp's static layer mapping
collapses with length, GPU-centric loading saturates PCIe, and hybrid
scheduling rebalances work between CPU and GPU.

Run:  python examples/prefill_latency_sweep.py
"""

from repro.experiments import add_speedup_column, format_table
from repro.experiments.runner import run_workload
from repro.workloads import PREFILL_BUCKETS, prefill_workloads

MODEL = "qwen2"
CACHE_RATIO = 0.5
NUM_LAYERS = 10
FRAMEWORKS = ("llamacpp", "adapmoe", "ktransformers", "hybrimoe")


def main() -> None:
    print(
        f"prefill sweep: model={MODEL} ({NUM_LAYERS} layers), "
        f"cache ratio {CACHE_RATIO:.0%}\n"
    )
    rows = []
    for bucket in PREFILL_BUCKETS:
        workload = prefill_workloads(bucket, seed=0)[0]
        for strategy in FRAMEWORKS:
            result = run_workload(
                model=MODEL,
                strategy=strategy,
                cache_ratio=CACHE_RATIO,
                workload=workload,
                num_layers=NUM_LAYERS,
                seed=0,
            )
            rows.append(
                {
                    "bucket": bucket,
                    "prompt_len": workload.prompt_len,
                    "strategy": strategy,
                    "ttft_ms": result.ttft * 1e3,
                    "model": MODEL,
                    "cache_ratio": CACHE_RATIO,
                }
            )
    rows = add_speedup_column(
        rows, "ttft_ms", group_columns=("model", "cache_ratio", "bucket")
    )
    print(
        format_table(
            rows,
            columns=["bucket", "prompt_len", "strategy", "ttft_ms", "speedup"],
            title="TTFT by input length (speedup vs kTransformers)",
        )
    )


if __name__ == "__main__":
    main()
