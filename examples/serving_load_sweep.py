"""Serving load sweep: arrival rate vs tail decode latency.

Sweeps the Poisson arrival rate and serves the same request mix with
HybriMoE and the on-demand baseline under continuous batching. As load
rises, decode batches grow and queueing compounds — the gap between a
contention-aware strategy and a naive one widens from "per-step" to
"per-request-experience" (p99 TBT, queueing delay, goodput).

Run:  python examples/serving_load_sweep.py
"""

from repro import make_serving_engine
from repro.experiments.reporting import format_table
from repro.workloads import serving_workload

ARRIVAL_RATES = (1.0, 2.0, 4.0, 8.0)
STRATEGIES = ("hybrimoe", "ondemand")
NUM_REQUESTS = 12
DECODE_STEPS = 16
NUM_LAYERS = 8
CACHE_RATIO = 0.25


def main() -> None:
    rows = []
    for rate in ARRIVAL_RATES:
        for strategy in STRATEGIES:
            serving = make_serving_engine(
                model="deepseek",
                strategy=strategy,
                cache_ratio=CACHE_RATIO,
                num_layers=NUM_LAYERS,
                seed=0,
                max_batch_size=8,
            )
            trace = serving_workload(
                num_requests=NUM_REQUESTS,
                arrival_rate=rate,
                decode_steps=DECODE_STEPS,
                seed=0,
            )
            report = serving.serve_trace(trace)
            summary = report.summary()
            rows.append(
                {
                    "arrival_rate": rate,
                    "strategy": strategy,
                    "goodput_rps": summary["goodput_rps"],
                    "queue_delay_s": summary["mean_queue_delay_s"],
                    "p99_ttft_s": summary["p99_ttft_s"],
                    "p99_tbt_s": summary["p99_tbt_s"],
                    "hit_rate": summary["hit_rate"],
                }
            )
    print(
        format_table(
            rows,
            title=(
                f"arrival rate sweep — deepseek @ {CACHE_RATIO:.0%} cache, "
                f"{NUM_REQUESTS} requests x {DECODE_STEPS} decode tokens"
            ),
        )
    )
    for rate in ARRIVAL_RATES:
        pair = {r["strategy"]: r for r in rows if r["arrival_rate"] == rate}
        ratio = pair["ondemand"]["p99_tbt_s"] / pair["hybrimoe"]["p99_tbt_s"]
        print(f"rate {rate:4.1f} req/s: hybrimoe p99 TBT advantage {ratio:5.2f}x")


if __name__ == "__main__":
    main()
