"""Cache-policy study: MRS versus LRU and LFU on routing traces.

Reproduces the paper's Fig. 9 methodology interactively: record a
routing trace from the functional model, replay it through caches of
varying capacity under each policy, and report decode hit rates. Also
sweeps the MRS parameters (alpha, top-p) around the paper's choice
``p = 2K`` (§IV-D).

Run:  python examples/cache_policy_study.py
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.figures import replay_cache_hit_rate
from repro.models import ReferenceMoEModel, get_preset
from repro.routing import generate_trace

MODEL = "deepseek"
NUM_LAYERS = 10
DECODE_STEPS = 128


def main() -> None:
    config = get_preset(MODEL, num_layers=NUM_LAYERS)
    model = ReferenceMoEModel(config, seed=0)
    prompt = np.arange(64)
    print(f"recording trace: {config.describe()}")
    trace = generate_trace(model, prompt, decode_steps=DECODE_STEPS, seed=0)
    total = trace.num_layers * trace.num_experts

    rows = []
    for percent in (0.2, 0.3, 0.4, 0.5, 0.6, 0.7):
        capacity = max(1, int(round(percent * total)))
        row = {"cached": f"{percent:.0%}", "slots": capacity}
        for policy in ("lru", "lfu", "mrs"):
            row[policy] = replay_cache_hit_rate(trace, capacity, policy)
        rows.append(row)
    print()
    print(format_table(rows, title=f"decode hit rate by policy ({MODEL})"))

    alpha_rows = []
    capacity = max(1, int(round(0.3 * total)))
    for alpha in (0.1, 0.3, 0.5, 0.7, 0.9):
        alpha_rows.append(
            {
                "alpha": alpha,
                "hit_rate": replay_cache_hit_rate(
                    trace, capacity, "mrs", mrs_alpha=alpha
                ),
            }
        )
    print()
    print(format_table(alpha_rows, title="MRS alpha sensitivity @ 30% capacity"))


if __name__ == "__main__":
    main()
