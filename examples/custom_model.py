"""Bring your own model and platform: a custom MoE on custom hardware.

Shows the full extension surface of the library:

1. define a new MoE architecture (a hypothetical 16-expert model);
2. define a new hardware profile (a laptop-class dGPU + 4-core CPU);
3. run HybriMoE on it and inspect the *per-layer schedule* — which
   experts went to which device, what was transferred, and how the
   three timelines interleave.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import EngineConfig, InferenceEngine, make_strategy
from repro.hardware import HardwareProfile
from repro.models import ExpertShape, MoEModelConfig, ReferenceMoEModel


def build_custom_model() -> ReferenceMoEModel:
    config = MoEModelConfig(
        name="pocket-moe",
        num_layers=8,
        num_shared_experts=1,
        num_routed_experts=16,
        num_activated_experts=4,
        routed_expert_shape=ExpertShape(1024, 2816),
        shared_expert_shape=ExpertShape(1024, 2816),
    )
    return ReferenceMoEModel(config, seed=42)


def build_laptop_profile() -> HardwareProfile:
    return HardwareProfile(
        name="laptop-dgpu",
        gpu_flops=8e12,
        gpu_mem_bw=250e9,
        gpu_overhead_s=40e-6,
        cpu_flops=60e9,
        cpu_mem_bw=30e9,
        cpu_task_overhead_s=20e-6,
        cpu_warmup_s=150e-6,
        pcie_bw=12e9,
        pcie_latency_s=50e-6,
        bits_per_param=4.5,
    )


def main() -> None:
    model = build_custom_model()
    engine = InferenceEngine(
        model,
        make_strategy("hybrimoe"),
        build_laptop_profile(),
        EngineConfig(cache_ratio=0.375, seed=0),
    )
    print(f"model    : {model.config.describe()}")
    print(f"platform : {build_laptop_profile().name}")
    print(f"capacity : {engine.runtime.capacity} expert slots\n")

    result = engine.generate(np.arange(64), decode_steps=8)
    print(f"TTFT {result.ttft*1e3:.2f} ms | mean TBT {result.mean_tbt*1e3:.3f} ms "
          f"| hit rate {result.hit_rate:.1%}\n")

    clock = engine.runtime.clock
    print("last ten GPU timeline entries:")
    for interval in clock.gpu.intervals[-10:]:
        print(
            f"  [{interval.start*1e3:9.3f}, {interval.finish*1e3:9.3f}] ms  "
            f"{interval.label}"
        )
    print("\nlast five PCIe transfers:")
    for interval in clock.pcie.intervals[-5:]:
        print(
            f"  [{interval.start*1e3:9.3f}, {interval.finish*1e3:9.3f}] ms  "
            f"{interval.label}"
        )
    print("\nlast five CPU tasks:")
    for interval in clock.cpu.intervals[-5:]:
        print(
            f"  [{interval.start*1e3:9.3f}, {interval.finish*1e3:9.3f}] ms  "
            f"{interval.label}"
        )


if __name__ == "__main__":
    main()
