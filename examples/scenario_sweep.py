"""Scenario sweep: register a custom scenario, sweep it against built-ins.

Shows the three moves the scenario API replaces bespoke benchmark
scripts with:

1. compose typed specs (``EngineSpec`` -> ``ServingSpec`` ->
   ``FleetSpec`` + a ``WorkloadRecipe``) into a named ``ScenarioSpec``
   and register it;
2. fan the custom scenario and two built-ins out across strategies
   with ``run_sweep`` (parallel workers, resumable output directory);
3. read the pooled ``SweepReport`` back as flat rows.

Run:  python examples/scenario_sweep.py
"""

import tempfile

from repro import (
    EngineSpec,
    FleetSpec,
    ScenarioSpec,
    ServingSpec,
    WorkloadRecipe,
    register_scenario,
    run_sweep,
)
from repro.experiments.reporting import format_table

# A scenario nobody shipped a script for: a priority mix served on the
# edge-class SoC preset with a capacity-limited DRAM tier. Registering
# it makes it sweepable by name, next to the built-ins.
register_scenario(
    ScenarioSpec(
        name="edge-tenant-mix",
        description="interactive/batch mix on the edge preset with DRAM spill",
        workload=WorkloadRecipe(
            kind="poisson",
            params={
                "num_requests": 10,
                "arrival_rate": 3.0,
                "decode_steps": 8,
                "priority_mix": {"interactive": 0.3, "batch": 0.7},
            },
        ),
        fleet=FleetSpec(
            serving=ServingSpec(
                engine=EngineSpec(
                    strategy="hybrimoe",
                    cache_ratio=0.3,
                    num_layers=6,
                    hardware="edge",
                    cpu_cache_capacity=24,
                ),
                max_batch_size=4,
            ),
            replicas=1,
        ),
    )
)


def main() -> None:
    out_dir = tempfile.mkdtemp(prefix="scenario-sweep-")
    report = run_sweep(
        ["edge-tenant-mix", "chat-multiturn", "disk-slow-spill"],
        out_dir,
        strategies=["hybrimoe", "ondemand"],
        processes=2,
        log=print,
    )
    print()
    print(format_table(report.rows(), title="scenarios x strategies"))
    print(f"\nper-cell JSON + merged report under {out_dir}")
    print("re-running against the same directory would skip every cell")


if __name__ == "__main__":
    main()
