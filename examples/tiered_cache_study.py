"""Tiered-memory study: DRAM-tier capacity x disk bandwidth sweep.

Mirrors ``examples/cache_policy_study.py`` one level down the memory
hierarchy: instead of sweeping the GPU cache, it sweeps the **CPU DRAM
tier** — how many routed experts fit in host memory before the rest
spill to disk — against the spill medium's read bandwidth (NVMe vs
SATA class), and reports per-tier hit rates, disk traffic and decode
latency for the HybriMoE strategy.

The shape to look for: the GPU-tier hit rate barely moves (the GPU
cache is the same size throughout), while the DRAM-tier hit rate — the
fraction of GPU misses served from host memory rather than disk —
falls with capacity, and mean TBT degrades in proportion to
``(1 - dram_hit_rate) * disk_read_time``. A faster disk flattens the
curve; it never restores the unbounded-DRAM latency. Also swept: the
DRAM tier's eviction policy — an empirical question, and the answer
differs from the GPU tier's: the DRAM tier only ever sees GPU
*misses*, a residual reuse pattern where plain recency/frequency
(LRU/LFU) beat the score-aware MRS ranking that wins one tier up.

Run:  python examples/tiered_cache_study.py
"""

from repro.engine.factory import make_engine
from repro.experiments import format_table
from repro.models import get_preset

MODEL = "deepseek"
NUM_LAYERS = 6
DECODE_STEPS = 24
GPU_CACHE_RATIO = 0.25
DISK_BANDWIDTHS = {"nvme (3.2 GB/s)": 3.2e9, "sata (0.5 GB/s)": 0.5e9}
DRAM_RATIOS = (1.0, 0.6, 0.4, 0.2)


def run_once(cpu_capacity, disk_bandwidth, policy="lru"):
    engine = make_engine(
        model=MODEL,
        strategy="hybrimoe",
        cache_ratio=GPU_CACHE_RATIO,
        num_layers=NUM_LAYERS,
        cpu_cache_capacity=cpu_capacity,
        cpu_cache_policy=policy,
        disk_bandwidth=disk_bandwidth,
        seed=0,
    )
    result = engine.decode_only(num_steps=DECODE_STEPS)
    runtime = engine.runtime
    rates = runtime.cache.per_tier_hit_rates()
    disk = runtime.clock.disk
    return {
        "gpu_hit": rates["gpu"],
        "dram_hit": rates["cpu"],
        "disk_reads": len(disk.intervals),
        "disk_busy_s": disk.busy_time(),
        "mean_tbt_s": result.mean_tbt,
    }


def main() -> None:
    total = get_preset(MODEL, num_layers=NUM_LAYERS).total_routed_experts
    print(
        f"model: {MODEL} ({NUM_LAYERS} layers, {total} routed experts), "
        f"GPU cache {GPU_CACHE_RATIO:.0%}, hybrimoe strategy"
    )

    rows = []
    for ratio in DRAM_RATIOS:
        capacity = max(1, int(round(ratio * total)))
        for disk_name, bandwidth in DISK_BANDWIDTHS.items():
            row = {"dram": f"{ratio:.0%}", "slots": capacity, "disk": disk_name}
            row.update(run_once(capacity, bandwidth))
            rows.append(row)
    print()
    print(
        format_table(
            rows, title="decode latency by DRAM capacity x disk bandwidth"
        )
    )

    policy_rows = []
    capacity = max(1, int(round(0.4 * total)))
    for policy in ("lru", "lfu", "mrs"):
        row = {"policy": policy, "slots": capacity}
        row.update(run_once(capacity, DISK_BANDWIDTHS["nvme (3.2 GB/s)"], policy))
        policy_rows.append(row)
    print()
    print(
        format_table(
            policy_rows, title="DRAM-tier eviction policy @ 40% DRAM capacity"
        )
    )


if __name__ == "__main__":
    main()
