"""Sharded expert cache: per-device :class:`ExpertCache` shards.

:class:`ShardedCacheManager` presents the full single-device cache
interface (membership, access/insert/lock, stats, score observation)
over ``N`` independent :class:`~repro.cache.manager.ExpertCache`
shards, one per GPU. A :class:`~repro.cache.placement.PlacementPolicy`
routes every key to its home shard; each shard keeps its own eviction
policy instance and its own capacity budget, so per-device residency
decisions are exactly the single-GPU decisions made over that device's
slice of the expert population.

Construction goes through :class:`CacheSpec` — a declarative recipe
(aggregate capacity, a policy factory, pinned and warm-fill key orders)
that every :class:`~repro.engine.strategy_base.Strategy` provides. The
same spec materialises either one unsharded cache or ``N`` shards with
the aggregate capacity split evenly and the pinned/warm lists filtered
by placement, which is what makes the 1-GPU sharded configuration
bit-identical to the unsharded engine (test-enforced).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.cache.manager import CacheStats, ExpertCache
from repro.cache.placement import PlacementPolicy
from repro.errors import CacheError

__all__ = ["CacheSpec", "ShardedCacheManager", "split_capacity"]


def split_capacity(total: int, num_devices: int) -> list[int]:
    """Even split of an aggregate slot budget across devices.

    The first ``total % num_devices`` devices get one extra slot, so
    the split sums exactly to ``total`` and is deterministic.
    """
    if total < 0:
        raise CacheError(f"capacity must be non-negative, got {total}")
    if num_devices < 1:
        raise CacheError(f"num_devices must be >= 1, got {num_devices}")
    base, extra = divmod(total, num_devices)
    return [base + (1 if g < extra else 0) for g in range(num_devices)]


class CacheSpec:
    """Declarative cache recipe a strategy hands to the engine.

    Parameters
    ----------
    capacity:
        Aggregate dynamic-slot budget (summed across shards when the
        cache is sharded).
    policy_factory:
        Zero-argument callable building one *fresh* eviction policy.
        Called once per shard — policies are stateful, so shards must
        not share an instance. Strategies that prime their policy (the
        MRS warmup priming) do so inside the factory, giving every
        shard identically primed priorities.
    pinned:
        Permanently resident keys in priority order (outside the
        capacity budget), e.g. kTransformers' frequency-pinned set.
    warm:
        Warm-fill order for initial residency (truncated per shard to
        that shard's capacity).
    """

    def __init__(
        self,
        capacity: int,
        policy_factory: Callable[[], EvictionPolicy],
        pinned: Iterable[ExpertKey] = (),
        warm: Iterable[ExpertKey] = (),
    ) -> None:
        if capacity < 0:
            raise CacheError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.policy_factory = policy_factory
        self.pinned = tuple(pinned)
        self.warm = tuple(warm)

    def build(self) -> ExpertCache:
        """Materialise the unsharded (single-device) cache."""
        cache = ExpertCache(self.capacity, self.policy_factory(), pinned=self.pinned)
        cache.warm_fill(self.warm)
        return cache

    def build_sharded(self, placement: PlacementPolicy) -> "ShardedCacheManager":
        """Materialise one shard per device behind a manager.

        Capacity is split evenly (the aggregate budget is fixed, so the
        GPU-memory assumption of ``cache_ratio`` is preserved across
        ``num_gpus``); pinned and warm lists are routed to each key's
        home shard in spec order, which keeps load-aware assignment
        deterministic.
        """
        num_devices = placement.num_devices
        capacities = split_capacity(self.capacity, num_devices)
        pinned_per: list[list[ExpertKey]] = [[] for _ in range(num_devices)]
        occupancy = [0] * num_devices
        for key in self.pinned:
            device = placement.assign(key, occupancy)
            pinned_per[device].append(key)
            occupancy[device] += 1
        shards = [
            ExpertCache(capacities[g], self.policy_factory(), pinned=pinned_per[g])
            for g in range(num_devices)
        ]
        manager = ShardedCacheManager(shards, placement)
        manager.warm_fill(self.warm)
        return manager


class ShardedCacheManager:
    """Single-cache facade over per-device expert-cache shards.

    Implements the :class:`~repro.cache.manager.ExpertCache` surface the
    engine, pipeline and strategies consume (duck-typed), plus the
    device-routing queries the multi-GPU pipeline needs
    (:meth:`device_of`, :attr:`shards`, :meth:`per_device_stats`).

    With one shard every operation forwards verbatim, so a 1-device
    manager is operation-for-operation identical to its shard.
    """

    def __init__(
        self, shards: list[ExpertCache], placement: PlacementPolicy
    ) -> None:
        if not shards:
            raise CacheError("ShardedCacheManager needs at least one shard")
        if placement.num_devices != len(shards):
            raise CacheError(
                f"placement covers {placement.num_devices} devices but "
                f"{len(shards)} shards were given"
            )
        self.shards = shards
        self.placement = placement

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.shards)

    def _occupancy(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    def device_of(self, key: ExpertKey) -> int:
        """Home device of ``key`` (assigning it if load-aware and new)."""
        occupancy = self._occupancy() if self.placement.uses_occupancy else ()
        device = self.placement.assign(key, occupancy)
        if not 0 <= device < len(self.shards):
            raise CacheError(
                f"placement {self.placement.name!r} routed {key} to device "
                f"{device} (have {len(self.shards)})"
            )
        return device

    def peek_device_of(self, key: ExpertKey) -> int | None:
        """Home device of ``key`` without committing a new assignment.

        ``None`` (load-aware, key never routed) implies the key is
        resident nowhere — pure queries must not perturb placement.
        """
        device = self.placement.peek(key)
        if device is not None and not 0 <= device < len(self.shards):
            raise CacheError(
                f"placement {self.placement.name!r} routed {key} to device "
                f"{device} (have {len(self.shards)})"
            )
        return device

    def shard_of(self, key: ExpertKey) -> ExpertCache:
        """The shard that owns ``key``."""
        return self.shards[self.device_of(key)]

    # ------------------------------------------------------------------
    # ExpertCache interface (queries)
    # ------------------------------------------------------------------
    def __contains__(self, key: ExpertKey) -> bool:
        device = self.peek_device_of(key)
        if device is None:
            return False
        return key in self.shards[device]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    @property
    def capacity(self) -> int:
        """Aggregate dynamic capacity across shards."""
        return sum(shard.capacity for shard in self.shards)

    @property
    def resident_keys(self) -> set[ExpertKey]:
        keys: set[ExpertKey] = set()
        for shard in self.shards:
            keys |= shard.resident_keys
        return keys

    @property
    def pinned_keys(self) -> set[ExpertKey]:
        keys: set[ExpertKey] = set()
        for shard in self.shards:
            keys |= shard.pinned_keys
        return keys

    @property
    def locked_keys(self) -> set[ExpertKey]:
        keys: set[ExpertKey] = set()
        for shard in self.shards:
            keys |= shard.locked_keys
        return keys

    def cached_experts_of_layer(self, layer: int) -> set[int]:
        """Union of the layer's resident experts across all shards."""
        experts: set[int] = set()
        for shard in self.shards:
            experts |= shard.cached_experts_of_layer(layer)
        return experts

    def device_experts_of_layer(self, layer: int, device: int) -> set[int]:
        """Resident experts of ``layer`` on one device's shard."""
        return self.shards[device].cached_experts_of_layer(layer)

    # ------------------------------------------------------------------
    # ExpertCache interface (mutation)
    # ------------------------------------------------------------------
    def access(self, key: ExpertKey) -> bool:
        return self.shard_of(key).access(key)

    def touch(self, key: ExpertKey) -> None:
        device = self.peek_device_of(key)
        if device is not None:
            self.shards[device].touch(key)

    def insert(self, key: ExpertKey) -> list[ExpertKey]:
        return self.shard_of(key).insert(key)

    def insert_if_better(self, key: ExpertKey) -> list[ExpertKey]:
        return self.shard_of(key).insert_if_better(key)

    def would_admit(self, key: ExpertKey, margin: float = 0.0) -> bool:
        """Admission probe against the key's (would-be) home shard.

        A speculative query: routed through the placement *preview* so
        probing a load-aware manager for keys that are then rejected
        does not sticky-commit their placement.
        """
        occupancy = self._occupancy() if self.placement.uses_occupancy else ()
        device = self.placement.preview(key, occupancy)
        if not 0 <= device < len(self.shards):
            raise CacheError(
                f"placement {self.placement.name!r} routed {key} to device "
                f"{device} (have {len(self.shards)})"
            )
        return self.shards[device].would_admit(key, margin=margin)

    def warm_fill(self, keys: Iterable[ExpertKey]) -> None:
        for key in keys:
            self.shard_of(key).warm_fill([key])

    def lock(self, keys: Iterable[ExpertKey]) -> None:
        for key in keys:
            self.shard_of(key).lock([key])

    def unlock_all(self) -> None:
        for shard in self.shards:
            shard.unlock_all()

    def observe_scores(self, layer: int, scores: np.ndarray) -> None:
        """Broadcast routing scores to every shard's policy.

        Each shard keeps global priorities but only ever evicts among
        its own residents, so broadcasting is safe and keeps admission
        decisions consistent with the unsharded cache.
        """
        for shard in self.shards:
            shard.observe_scores(layer, scores)

    def set_fast_path(self, enabled: bool) -> None:
        """Forward the structural-acceleration toggle to every shard."""
        for shard in self.shards:
            shard.set_fast_path(enabled)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Aggregate hit/miss/eviction counters across shards.

        Returns a fresh summed snapshot; mutate per-shard stats via
        ``shards[g].stats`` if needed.
        """
        total = CacheStats()
        for shard in self.shards:
            s = shard.stats
            total.hits += s.hits
            total.misses += s.misses
            total.insertions += s.insertions
            total.evictions += s.evictions
            total.rejected_inserts += s.rejected_inserts
            for layer, count in s.per_layer_hits.items():
                total.per_layer_hits[layer] = total.per_layer_hits.get(layer, 0) + count
            for layer, count in s.per_layer_misses.items():
                total.per_layer_misses[layer] = (
                    total.per_layer_misses.get(layer, 0) + count
                )
        return total

    def per_device_stats(self) -> list[CacheStats]:
        """Per-shard counters, indexed by device id (live objects)."""
        return [shard.stats for shard in self.shards]

    def per_device_hit_rates(self) -> list[float]:
        """Hit rate of each device's shard (0 where never accessed)."""
        return [shard.stats.hit_rate for shard in self.shards]

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Validate every shard plus the routing invariant.

        Each shard checks its own capacity/pinning invariants; on top,
        every resident key must route back to the shard holding it —
        a violated routing invariant would make residency invisible to
        lookups.
        """
        for device, shard in enumerate(self.shards):
            shard.validate()
            for key in shard.resident_keys:
                home = self.peek_device_of(key)
                if home != device:
                    raise CacheError(
                        f"key {key} resident on device {device} but placement "
                        f"{self.placement.name!r} routes it to {home}"
                    )
