"""Least-Frequently-Used eviction policy."""

from __future__ import annotations

from collections.abc import Iterable

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.errors import CacheError

__all__ = ["LFUPolicy"]


class LFUPolicy(EvictionPolicy):
    """Evict the key with the fewest recorded uses.

    Frequency counts persist across evictions (a key re-entering the
    cache keeps its history), matching the LFU variant used by
    kTransformers-style frequency pinning. Ties break on recency, then
    key order, for determinism.
    """

    name = "lfu"

    def __init__(self) -> None:
        self._counts: dict[ExpertKey, int] = {}
        self._last_used: dict[ExpertKey, int] = {}

    def on_insert(self, key: ExpertKey, now: int) -> None:
        self._counts[key] = self._counts.get(key, 0)
        self._last_used[key] = now

    def on_access(self, key: ExpertKey, now: int) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1
        self._last_used[key] = now

    def victim(self, candidates: Iterable[ExpertKey]) -> ExpertKey:
        candidates = list(candidates)
        if not candidates:
            raise CacheError("LFU victim requested with no candidates")
        return min(
            candidates,
            key=lambda k: (self._counts.get(k, 0), self._last_used.get(k, -1), k),
        )

    def priority(self, key: ExpertKey) -> float:
        return float(self._counts.get(key, 0))

    def forget(self, key: ExpertKey) -> None:
        # Keep counts (history survives eviction); drop recency only.
        self._last_used.pop(key, None)

    def priority_snapshot(self) -> dict[ExpertKey, float]:
        return {k: float(v) for k, v in self._counts.items()}
