"""Expert cache management: policies and the per-tier capacity managers.

Each tier of the memory hierarchy (GPU memory, and optionally host
DRAM) holds a bounded number of routed experts; this package decides
*which*. Keys are ``(layer, expert)`` pairs. Policies:

- :class:`~repro.cache.lru.LRUPolicy` — least recently used;
- :class:`~repro.cache.lfu.LFUPolicy` — least frequently used;
- :class:`~repro.cache.mrs.MRSPolicy` — the paper's Minus Recent Score
  policy (§IV-D, eq. 3): per-expert priorities accumulate top-p routing
  scores with exponential averaging, and the minimum-priority expert is
  evicted.

:class:`~repro.cache.manager.ExpertCache` enforces capacity, pinning and
locking invariants and keeps hit/miss statistics.

On a multi-GPU platform the cache shards into per-device
:class:`~repro.cache.manager.ExpertCache` instances behind
:class:`~repro.cache.sharded.ShardedCacheManager`; a
:class:`~repro.cache.placement.PlacementPolicy` (round-robin,
layer-striped or load-aware) routes every key to its home device.

When host DRAM is itself capacity-limited,
:class:`~repro.cache.tiered.TieredCacheManager` composes the GPU cache
(sharded or not) with a second, capacity-limited DRAM-tier
:class:`ExpertCache`; experts resident in neither tier are spilled to
disk and pay a disk read before any use.
"""

from repro.cache.base import (
    EvictionPolicy,
    ExpertKey,
    available_policies,
    make_policy,
)
from repro.cache.lfu import LFUPolicy
from repro.cache.lru import LRUPolicy
from repro.cache.manager import CacheStats, ExpertCache
from repro.cache.mrs import MRSPolicy
from repro.cache.placement import (
    LayerStripedPlacement,
    LoadAwarePlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    available_placements,
    make_placement,
)
from repro.cache.sharded import CacheSpec, ShardedCacheManager, split_capacity
from repro.cache.tiered import TieredCacheManager

__all__ = [
    "ExpertKey",
    "EvictionPolicy",
    "available_policies",
    "make_policy",
    "LRUPolicy",
    "LFUPolicy",
    "MRSPolicy",
    "ExpertCache",
    "CacheStats",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LayerStripedPlacement",
    "LoadAwarePlacement",
    "available_placements",
    "make_placement",
    "CacheSpec",
    "ShardedCacheManager",
    "split_capacity",
    "TieredCacheManager",
]
