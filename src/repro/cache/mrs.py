"""Minus Recent Score (MRS) — the paper's score-aware policy (§IV-D).

Each routed expert keeps an estimated priority ``S`` updated whenever
its layer's routing scores are observed:

.. math::

    S \\leftarrow \\alpha \\cdot \\mathrm{TopP}(s) + (1 - \\alpha) \\cdot S

``TopP`` keeps only the top-``p`` scores of the layer (the paper sets
``p`` to twice the number of activated experts) and zeroes the rest —
low scores carry no reuse signal (Fig. 3b), so they only decay the
priority. Eviction removes the expert with the *minimum* S, hence the
name "Minus Recent Score".
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.errors import CacheError

__all__ = ["MRSPolicy"]


class MRSPolicy(EvictionPolicy):
    """Score-aware eviction driven by routing-score accumulation.

    Parameters
    ----------
    alpha:
        Averaging coefficient of eq. (3); higher values weigh the most
        recent iteration's scores more.
    top_p:
        Number of top scores per layer that accumulate. The paper uses
        ``2 * num_activated_experts``.
    """

    name = "mrs"

    def __init__(self, alpha: float = 0.7, top_p: int = 4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise CacheError(f"alpha must be in (0, 1], got {alpha}")
        if top_p < 1:
            raise CacheError(f"top_p must be >= 1, got {top_p}")
        self.alpha = alpha
        self.top_p = top_p
        self._scores: dict[ExpertKey, float] = {}
        self._last_used: dict[ExpertKey, int] = {}

    def on_insert(self, key: ExpertKey, now: int) -> None:
        self._scores.setdefault(key, 0.0)
        self._last_used[key] = now

    def on_access(self, key: ExpertKey, now: int) -> None:
        self._last_used[key] = now

    def on_scores(self, layer: int, scores: np.ndarray, now: int) -> None:
        """Apply eq. (3) to every expert of ``layer``.

        Experts inside the layer's top-``p`` accumulate
        ``alpha * score``; all others decay by ``(1 - alpha)``. Priorities
        are tracked for *all* experts of the layer — including uncached
        ones — because a high-scoring uncached expert must outrank stale
        cached entries the moment it is loaded.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise CacheError(f"scores must be 1-D, got shape {scores.shape}")
        p = min(self.top_p, scores.size)
        top_idx = set(int(i) for i in np.argsort(-scores, kind="stable")[:p])
        for expert in range(scores.size):
            key = (layer, expert)
            previous = self._scores.get(key, 0.0)
            contribution = float(scores[expert]) if expert in top_idx else 0.0
            self._scores[key] = self.alpha * contribution + (1.0 - self.alpha) * previous

    def victim(self, candidates: Iterable[ExpertKey]) -> ExpertKey:
        candidates = list(candidates)
        if not candidates:
            raise CacheError("MRS victim requested with no candidates")
        return min(
            candidates,
            key=lambda k: (self._scores.get(k, 0.0), self._last_used.get(k, -1), k),
        )

    def priority(self, key: ExpertKey) -> float:
        return self._scores.get(key, 0.0)

    def forget(self, key: ExpertKey) -> None:
        # Scores persist across evictions: reuse probability is a
        # property of the expert, not of its cache residency.
        self._last_used.pop(key, None)

    def priority_snapshot(self) -> dict[ExpertKey, float]:
        return dict(self._scores)

    def score_of(self, key: ExpertKey) -> float:
        """Current estimated priority of one expert (0 if never scored)."""
        return self._scores.get(key, 0.0)
