"""Minus Recent Score (MRS) — the paper's score-aware policy (§IV-D).

Each routed expert keeps an estimated priority ``S`` updated whenever
its layer's routing scores are observed:

.. math::

    S \\leftarrow \\alpha \\cdot \\mathrm{TopP}(s) + (1 - \\alpha) \\cdot S

``TopP`` keeps only the top-``p`` scores of the layer (the paper sets
``p`` to twice the number of activated experts) and zeroes the rest —
low scores carry no reuse signal (Fig. 3b), so they only decay the
priority. Eviction removes the expert with the *minimum* S, hence the
name "Minus Recent Score".

Priorities are stored as one numpy array per layer, so the eq. (3)
update — the policy's hot path, executed once per layer per step over
*all* experts of the layer — is a single vectorized expression, and
victim selection ranks candidates with one :func:`numpy.lexsort`
instead of a Python ``min`` over dict lookups. The arithmetic is the
same IEEE-754 double operations the historical per-key dict version
performed, so priorities and eviction order are bit-identical
(test-enforced against a reference implementation).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

import numpy as np

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.errors import CacheError

__all__ = ["MRSPolicy"]


class MRSPolicy(EvictionPolicy):
    """Score-aware eviction driven by routing-score accumulation.

    Parameters
    ----------
    alpha:
        Averaging coefficient of eq. (3); higher values weigh the most
        recent iteration's scores more.
    top_p:
        Number of top scores per layer that accumulate. The paper uses
        ``2 * num_activated_experts``.
    """

    name = "mrs"

    def __init__(self, alpha: float = 0.7, top_p: int = 4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise CacheError(f"alpha must be in (0, 1], got {alpha}")
        if top_p < 1:
            raise CacheError(f"top_p must be >= 1, got {top_p}")
        self.alpha = alpha
        self.top_p = top_p
        #: Per-layer priority arrays (index = expert id within layer).
        self._layer_scores: dict[int, np.ndarray] = {}
        #: Priorities of keys outside any layer array (inserted before
        #: their layer was ever scored, or beyond the array's extent).
        self._stray: dict[ExpertKey, float] = {}
        self._last_used: dict[ExpertKey, int] = {}
        # Fast-victim support structures (see victim_resident): the
        # sorted resident key list with parallel (layer, expert) index
        # arrays, maintained incrementally by on_insert/forget, and a
        # dense layer×expert mirror of _layer_scores so one fancy-index
        # gather reads every resident's live score.
        self._tracked_keys: list[ExpertKey] = []
        self._tracked_layer_list: list[int] = []
        self._tracked_expert_list: list[int] = []
        self._tracked_layers: np.ndarray = np.empty(0, dtype=np.intp)
        self._tracked_experts: np.ndarray = np.empty(0, dtype=np.intp)
        self._tracked_dirty = False
        self._dense: np.ndarray = np.zeros((0, 0), dtype=np.float64)

    # ------------------------------------------------------------------
    def _score(self, key: ExpertKey) -> float:
        arr = self._layer_scores.get(key[0])
        if arr is not None and 0 <= key[1] < arr.size:
            return float(arr[key[1]])
        return self._stray.get(key, 0.0)

    def _layer_array(self, layer: int, size: int) -> np.ndarray:
        """The layer's priority array, grown to ``size`` if needed.

        Stray keys of the layer that now fall inside the array are
        folded in so every expert has exactly one authoritative score.
        """
        arr = self._layer_scores.get(layer)
        if arr is None:
            arr = np.zeros(size, dtype=np.float64)
        elif arr.size < size:
            grown = np.zeros(size, dtype=np.float64)
            grown[: arr.size] = arr
            arr = grown
        for key in [k for k in self._stray if k[0] == layer and 0 <= k[1] < arr.size]:
            arr[key[1]] = self._stray.pop(key)
        self._layer_scores[layer] = arr
        return arr

    # ------------------------------------------------------------------
    def _track_add(self, key: ExpertKey) -> None:
        i = bisect.bisect_left(self._tracked_keys, key)
        if i < len(self._tracked_keys) and self._tracked_keys[i] == key:
            return
        self._tracked_keys.insert(i, key)
        self._tracked_layer_list.insert(i, key[0])
        self._tracked_expert_list.insert(i, key[1])
        self._tracked_dirty = True

    def _track_remove(self, key: ExpertKey) -> None:
        i = bisect.bisect_left(self._tracked_keys, key)
        if i >= len(self._tracked_keys) or self._tracked_keys[i] != key:
            return
        del self._tracked_keys[i]
        del self._tracked_layer_list[i]
        del self._tracked_expert_list[i]
        self._tracked_dirty = True

    def _track_rebuild(self, resident: set[ExpertKey]) -> None:
        self._tracked_keys = sorted(resident)
        self._tracked_layer_list = [k[0] for k in self._tracked_keys]
        self._tracked_expert_list = [k[1] for k in self._tracked_keys]
        self._tracked_dirty = True

    def _index_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Parallel (layer, expert) arrays for the tracked key list.

        Maintenance is split by cost: membership churn updates plain
        Python lists (an O(n) memmove each) and flips a dirty flag; the
        numpy mirrors are remade only when a victim query actually
        reads them — one C-speed ``np.array(list)`` conversion per
        burst of churn instead of an ``np.insert`` reallocation per
        mutation or a Python-level generator walk per query.
        """
        if self._tracked_dirty:
            self._tracked_layers = np.array(self._tracked_layer_list, dtype=np.intp)
            self._tracked_experts = np.array(
                self._tracked_expert_list, dtype=np.intp
            )
            self._tracked_dirty = False
        return self._tracked_layers, self._tracked_experts

    # ------------------------------------------------------------------
    def on_insert(self, key: ExpertKey, now: int) -> None:
        arr = self._layer_scores.get(key[0])
        if arr is None or not 0 <= key[1] < arr.size:
            self._stray.setdefault(key, 0.0)
        self._last_used[key] = now
        self._track_add(key)

    def on_access(self, key: ExpertKey, now: int) -> None:
        self._last_used[key] = now

    def on_scores(self, layer: int, scores: np.ndarray, now: int) -> None:
        """Apply eq. (3) to every expert of ``layer``.

        Experts inside the layer's top-``p`` accumulate
        ``alpha * score``; all others decay by ``(1 - alpha)``. Priorities
        are tracked for *all* experts of the layer — including uncached
        ones — because a high-scoring uncached expert must outrank stale
        cached entries the moment it is loaded.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise CacheError(f"scores must be 1-D, got shape {scores.shape}")
        p = min(self.top_p, scores.size)
        arr = self._layer_array(layer, scores.size)
        top_idx = np.argsort(-scores, kind="stable")[:p]
        contribution = np.zeros(scores.size, dtype=np.float64)
        contribution[top_idx] = scores[top_idx]
        arr[: scores.size] = (
            self.alpha * contribution + (1.0 - self.alpha) * arr[: scores.size]
        )
        # Mirror into the dense matrix the fast victim gathers from.
        dense = self._dense
        if layer >= dense.shape[0] or arr.size > dense.shape[1]:
            grown = np.zeros(
                (max(layer + 1, dense.shape[0]), max(arr.size, dense.shape[1])),
                dtype=np.float64,
            )
            grown[: dense.shape[0], : dense.shape[1]] = dense
            self._dense = dense = grown
        dense[layer, : arr.size] = arr

    def victim(self, candidates: Iterable[ExpertKey]) -> ExpertKey:
        candidates = list(candidates)
        if not candidates:
            raise CacheError("MRS victim requested with no candidates")
        n = len(candidates)
        layers = np.fromiter((k[0] for k in candidates), dtype=np.int64, count=n)
        experts = np.fromiter((k[1] for k in candidates), dtype=np.int64, count=n)
        scores = np.fromiter((self._score(k) for k in candidates), dtype=np.float64, count=n)
        last = np.fromiter(
            (self._last_used.get(k, -1) for k in candidates), dtype=np.int64, count=n
        )
        # Lexicographic min by (score, last_used, layer, expert) — the
        # historical `min(candidates, key=...)` order, vectorized.
        winner = np.lexsort((experts, layers, last, scores))[0]
        return candidates[winner]

    def victim_resident(
        self,
        resident: set[ExpertKey],
        locked: set[ExpertKey],
    ) -> ExpertKey:
        """Victim over live residents via the tracked index arrays.

        The ``on_insert``/``forget`` callbacks keep a sorted resident
        key list with parallel ``(layer, expert)`` index arrays, so
        each call gathers every resident's live score with **one**
        fancy-index read of the dense score matrix, masks locked
        residents to ``+inf`` (excluding them from the min exactly as
        dropping them from the candidate list does), and takes the
        min. Ties on the minimum score — an exact float comparison, so
        the same partition :meth:`victim`'s lexsort produces — fall
        back to the ``(last_used, layer, expert)`` order on the tied
        subset only; the selected key is identical to the reference
        lexsort's. The caller guarantees at least one unlocked
        resident.
        """
        keys = self._tracked_keys
        if len(keys) != len(resident):
            # Callback drift (e.g. a policy primed outside a cache):
            # fall back to a full rebuild, then proceed as usual.
            self._track_rebuild(resident)
            keys = self._tracked_keys
        layers, experts = self._index_arrays()
        n = len(keys)
        dense = self._dense
        rows, cols = dense.shape
        if rows == 0:
            inb = np.zeros(n, dtype=bool)
        else:
            inb = (layers < rows) & (experts < cols)
        if inb.all():
            scores = dense[layers, experts]
        else:
            scores = np.zeros(n, dtype=np.float64)
            scores[inb] = dense[layers[inb], experts[inb]]
        # Stray keys currently always carry score 0.0 (they are created
        # with it and folded into the layer arrays before any update),
        # which the zeros above / dense default already encode; the
        # overlay guards the invariant should that ever change.
        for key, value in self._stray.items():
            if value != 0.0:
                i = bisect.bisect_left(keys, key)
                if i < n and keys[i] == key:
                    scores[i] = value
        for key in locked:
            i = bisect.bisect_left(keys, key)
            if i < n and keys[i] == key:
                scores[i] = np.inf
        lowest = scores.min()
        tied = np.flatnonzero(scores == lowest)
        if tied.size == 1:
            return keys[int(tied[0])]
        last = self._last_used
        return min(
            (keys[int(i)] for i in tied),
            key=lambda k: (last.get(k, -1), k[0], k[1]),
        )

    def priority(self, key: ExpertKey) -> float:
        return self._score(key)

    def forget(self, key: ExpertKey) -> None:
        # Scores persist across evictions: reuse probability is a
        # property of the expert, not of its cache residency.
        self._last_used.pop(key, None)
        self._track_remove(key)

    def priority_snapshot(self) -> dict[ExpertKey, float]:
        snapshot = {
            (layer, expert): float(arr[expert])
            for layer, arr in self._layer_scores.items()
            for expert in range(arr.size)
        }
        snapshot.update(self._stray)
        return snapshot

    def score_of(self, key: ExpertKey) -> float:
        """Current estimated priority of one expert (0 if never scored)."""
        return self._score(key)
