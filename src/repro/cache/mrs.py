"""Minus Recent Score (MRS) — the paper's score-aware policy (§IV-D).

Each routed expert keeps an estimated priority ``S`` updated whenever
its layer's routing scores are observed:

.. math::

    S \\leftarrow \\alpha \\cdot \\mathrm{TopP}(s) + (1 - \\alpha) \\cdot S

``TopP`` keeps only the top-``p`` scores of the layer (the paper sets
``p`` to twice the number of activated experts) and zeroes the rest —
low scores carry no reuse signal (Fig. 3b), so they only decay the
priority. Eviction removes the expert with the *minimum* S, hence the
name "Minus Recent Score".

Priorities are stored as one numpy array per layer, so the eq. (3)
update — the policy's hot path, executed once per layer per step over
*all* experts of the layer — is a single vectorized expression, and
victim selection ranks candidates with one :func:`numpy.lexsort`
instead of a Python ``min`` over dict lookups. The arithmetic is the
same IEEE-754 double operations the historical per-key dict version
performed, so priorities and eviction order are bit-identical
(test-enforced against a reference implementation).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.errors import CacheError

__all__ = ["MRSPolicy"]


class MRSPolicy(EvictionPolicy):
    """Score-aware eviction driven by routing-score accumulation.

    Parameters
    ----------
    alpha:
        Averaging coefficient of eq. (3); higher values weigh the most
        recent iteration's scores more.
    top_p:
        Number of top scores per layer that accumulate. The paper uses
        ``2 * num_activated_experts``.
    """

    name = "mrs"

    def __init__(self, alpha: float = 0.7, top_p: int = 4) -> None:
        if not 0.0 < alpha <= 1.0:
            raise CacheError(f"alpha must be in (0, 1], got {alpha}")
        if top_p < 1:
            raise CacheError(f"top_p must be >= 1, got {top_p}")
        self.alpha = alpha
        self.top_p = top_p
        #: Per-layer priority arrays (index = expert id within layer).
        self._layer_scores: dict[int, np.ndarray] = {}
        #: Priorities of keys outside any layer array (inserted before
        #: their layer was ever scored, or beyond the array's extent).
        self._stray: dict[ExpertKey, float] = {}
        self._last_used: dict[ExpertKey, int] = {}

    # ------------------------------------------------------------------
    def _score(self, key: ExpertKey) -> float:
        arr = self._layer_scores.get(key[0])
        if arr is not None and 0 <= key[1] < arr.size:
            return float(arr[key[1]])
        return self._stray.get(key, 0.0)

    def _layer_array(self, layer: int, size: int) -> np.ndarray:
        """The layer's priority array, grown to ``size`` if needed.

        Stray keys of the layer that now fall inside the array are
        folded in so every expert has exactly one authoritative score.
        """
        arr = self._layer_scores.get(layer)
        if arr is None:
            arr = np.zeros(size, dtype=np.float64)
        elif arr.size < size:
            grown = np.zeros(size, dtype=np.float64)
            grown[: arr.size] = arr
            arr = grown
        for key in [k for k in self._stray if k[0] == layer and 0 <= k[1] < arr.size]:
            arr[key[1]] = self._stray.pop(key)
        self._layer_scores[layer] = arr
        return arr

    # ------------------------------------------------------------------
    def on_insert(self, key: ExpertKey, now: int) -> None:
        arr = self._layer_scores.get(key[0])
        if arr is None or not 0 <= key[1] < arr.size:
            self._stray.setdefault(key, 0.0)
        self._last_used[key] = now

    def on_access(self, key: ExpertKey, now: int) -> None:
        self._last_used[key] = now

    def on_scores(self, layer: int, scores: np.ndarray, now: int) -> None:
        """Apply eq. (3) to every expert of ``layer``.

        Experts inside the layer's top-``p`` accumulate
        ``alpha * score``; all others decay by ``(1 - alpha)``. Priorities
        are tracked for *all* experts of the layer — including uncached
        ones — because a high-scoring uncached expert must outrank stale
        cached entries the moment it is loaded.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise CacheError(f"scores must be 1-D, got shape {scores.shape}")
        p = min(self.top_p, scores.size)
        arr = self._layer_array(layer, scores.size)
        top_idx = np.argsort(-scores, kind="stable")[:p]
        contribution = np.zeros(scores.size, dtype=np.float64)
        contribution[top_idx] = scores[top_idx]
        arr[: scores.size] = (
            self.alpha * contribution + (1.0 - self.alpha) * arr[: scores.size]
        )

    def victim(self, candidates: Iterable[ExpertKey]) -> ExpertKey:
        candidates = list(candidates)
        if not candidates:
            raise CacheError("MRS victim requested with no candidates")
        n = len(candidates)
        layers = np.fromiter((k[0] for k in candidates), dtype=np.int64, count=n)
        experts = np.fromiter((k[1] for k in candidates), dtype=np.int64, count=n)
        scores = np.fromiter((self._score(k) for k in candidates), dtype=np.float64, count=n)
        last = np.fromiter(
            (self._last_used.get(k, -1) for k in candidates), dtype=np.int64, count=n
        )
        # Lexicographic min by (score, last_used, layer, expert) — the
        # historical `min(candidates, key=...)` order, vectorized.
        winner = np.lexsort((experts, layers, last, scores))[0]
        return candidates[winner]

    def priority(self, key: ExpertKey) -> float:
        return self._score(key)

    def forget(self, key: ExpertKey) -> None:
        # Scores persist across evictions: reuse probability is a
        # property of the expert, not of its cache residency.
        self._last_used.pop(key, None)

    def priority_snapshot(self) -> dict[ExpertKey, float]:
        snapshot = {
            (layer, expert): float(arr[expert])
            for layer, arr in self._layer_scores.items()
            for expert in range(arr.size)
        }
        snapshot.update(self._stray)
        return snapshot

    def score_of(self, key: ExpertKey) -> float:
        """Current estimated priority of one expert (0 if never scored)."""
        return self._score(key)
