"""Eviction-policy interface and factory.

A policy is a pure ranking component: the
:class:`~repro.cache.manager.ExpertCache` owns membership, capacity and
statistics, and asks its policy only two things — update internal
bookkeeping on events, and pick a victim among eviction candidates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

import numpy as np

from repro.errors import CacheError

__all__ = ["ExpertKey", "EvictionPolicy", "available_policies", "make_policy"]

#: Cache key: ``(layer_index, expert_index)``.
ExpertKey = tuple[int, int]


class EvictionPolicy(ABC):
    """Ranking strategy consulted by :class:`~repro.cache.manager.ExpertCache`."""

    #: Short identifier used in configs and reports (e.g. ``"lru"``).
    name: str = "abstract"

    #: Structural-acceleration toggle threaded from
    #: ``EngineConfig.engine_fast_path`` via the owning cache. Policies
    #: may use it to pick between equivalent victim-selection codepaths
    #: (the choice must be bit-identical either way).
    fast_path: bool = True

    @abstractmethod
    def on_insert(self, key: ExpertKey, now: int) -> None:
        """A key entered the cache at logical time ``now``."""

    @abstractmethod
    def on_access(self, key: ExpertKey, now: int) -> None:
        """A cached key was used at logical time ``now`` (a hit)."""

    def on_scores(self, layer: int, scores: np.ndarray, now: int) -> None:
        """Routing scores for one layer were observed.

        Score-agnostic policies ignore this; MRS accumulates priorities
        from it. ``scores`` has one entry per routed expert of ``layer``.
        """

    @abstractmethod
    def victim(self, candidates: Iterable[ExpertKey]) -> ExpertKey:
        """Pick the key to evict among ``candidates`` (never empty)."""

    @abstractmethod
    def priority(self, key: ExpertKey) -> float:
        """Retention priority of a key (higher = keep longer).

        Used by admission control: an insertion is rejected when the
        would-be victim has higher priority than the incoming key.
        """

    @abstractmethod
    def forget(self, key: ExpertKey) -> None:
        """A key left the cache; drop bookkeeping that only applies to members."""

    def priority_snapshot(self) -> dict[ExpertKey, float]:
        """Optional introspection hook: current priority per known key."""
        return {}


def _policy_registry() -> dict:
    # Imported here to avoid circular imports at package load.
    from repro.cache.lfu import LFUPolicy
    from repro.cache.lru import LRUPolicy
    from repro.cache.mrs import MRSPolicy

    return {"lru": LRUPolicy, "lfu": LFUPolicy, "mrs": MRSPolicy}


def available_policies() -> list[str]:
    """Short names accepted by :func:`make_policy`, sorted."""
    return sorted(_policy_registry())


def make_policy(name: str, **kwargs) -> EvictionPolicy:
    """Instantiate a policy by short name (``"lru"``, ``"lfu"``, ``"mrs"``).

    Keyword arguments are forwarded to the policy constructor (e.g.
    ``alpha`` and ``top_p`` for MRS).
    """
    policies = _policy_registry()
    try:
        cls = policies[name]
    except KeyError:
        known = ", ".join(sorted(policies))
        raise CacheError(f"unknown cache policy {name!r} (known: {known})") from None
    return cls(**kwargs)
