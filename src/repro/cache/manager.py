"""Expert cache: capacity, pinning, locking and statistics.

:class:`ExpertCache` owns the expert membership of one memory tier —
historically the GPU tier only; a
:class:`~repro.cache.tiered.TieredCacheManager` runs a second instance
as the capacity-limited host-DRAM tier. It enforces:

- **capacity** — at most ``capacity`` unpinned routed experts resident;
- **pinning** — pinned keys (e.g. kTransformers' frequency-pinned set)
  are never evicted and do not consume the dynamic capacity budget;
- **locking** — keys needed by an in-flight layer plan cannot be chosen
  as eviction victims (evicting a weight mid-use would be a use-after-
  free on the real system).

It also keeps the hit/miss counters behind the paper's Fig. 9.

Two structural accelerations ride behind the ``fast_path`` flag (the
engine threads ``EngineConfig.engine_fast_path`` here; both are
bit-identical to the historical behaviour and property-tested):

- a **per-layer residency index** so ``cached_experts_of_layer`` reads
  one bucket instead of scanning every resident key;
- a **victim memo** keyed on a monotone mutation counter: within one
  unchanged cache state, ``would_admit`` -> ``insert_if_better`` ->
  ``insert`` ask the policy for the same victim up to three times — the
  memo collapses those to a single policy consultation (any mutation
  bumps the version and invalidates it).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.errors import CacheError

__all__ = ["CacheStats", "ExpertCache"]


@dataclass
class CacheStats:
    """Hit/miss and eviction counters."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_inserts: int = 0
    per_layer_hits: dict[int, int] = field(default_factory=dict)
    per_layer_misses: dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all recorded accesses (0 if none)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def record(self, layer: int, hit: bool) -> None:
        if hit:
            self.hits += 1
            self.per_layer_hits[layer] = self.per_layer_hits.get(layer, 0) + 1
        else:
            self.misses += 1
            self.per_layer_misses[layer] = self.per_layer_misses.get(layer, 0) + 1


class ExpertCache:
    """Bounded set of one tier's resident routed experts, pluggable eviction.

    Parameters
    ----------
    capacity:
        Maximum number of *unpinned* experts resident at once. Zero is
        legal (a pure CPU-compute / on-demand configuration).
    policy:
        The eviction policy consulted when the cache is full.
    pinned:
        Keys that are permanently resident (outside the capacity
        budget). kTransformers-style strategies pin by frequency;
        HybriMoE leaves this empty and manages everything dynamically.
    """

    def __init__(
        self,
        capacity: int,
        policy: EvictionPolicy,
        pinned: Iterable[ExpertKey] = (),
    ) -> None:
        if capacity < 0:
            raise CacheError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self._pinned: set[ExpertKey] = set(pinned)
        self._resident: set[ExpertKey] = set()
        self._locked: set[ExpertKey] = set()
        self._clock = 0
        self.stats = CacheStats()
        self.fast_path = True
        # Monotone mutation counter: bumped by every operation that can
        # change a victim choice (membership, locking, policy state).
        self._version = 0
        self._victim_memo: tuple[int, ExpertKey] | None = None
        # Per-layer residency index (pinned keys included), kept in
        # lock-step with _resident/_pinned.
        self._by_layer: dict[int, set[int]] = {}
        for layer, expert in self._pinned:
            self._by_layer.setdefault(layer, set()).add(expert)

    def set_fast_path(self, enabled: bool) -> None:
        """Toggle the structural accelerations (bit-identical either way)."""
        self.fast_path = enabled
        self.policy.fast_path = enabled
        self._victim_memo = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, key: ExpertKey) -> bool:
        return key in self._resident or key in self._pinned

    def __len__(self) -> int:
        """Number of resident experts, pinned included."""
        return len(self._resident) + len(self._pinned)

    @property
    def resident_keys(self) -> set[ExpertKey]:
        """All resident keys (dynamic + pinned), as a fresh set."""
        return set(self._resident) | set(self._pinned)

    @property
    def dynamic_keys(self) -> set[ExpertKey]:
        """Only the dynamically managed (evictable) resident keys."""
        return set(self._resident)

    @property
    def pinned_keys(self) -> set[ExpertKey]:
        return set(self._pinned)

    def cached_experts_of_layer(self, layer: int) -> set[int]:
        """Expert ids of ``layer`` currently resident."""
        if self.fast_path:
            bucket = self._by_layer.get(layer)
            return set(bucket) if bucket else set()
        return {e for (l, e) in self.resident_keys if l == layer}

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._resident)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def access(self, key: ExpertKey) -> bool:
        """Record a lookup; returns True on hit.

        Misses do **not** auto-insert: whether a miss leads to a load is
        a *scheduling* decision (the CPU may compute the expert in
        place), so insertion is explicit.
        """
        self._clock += 1
        hit = key in self
        if hit and key in self._resident:
            self._version += 1
            self.policy.on_access(key, self._clock)
        self.stats.record(key[0], hit)
        return hit

    def touch(self, key: ExpertKey) -> None:
        """Refresh recency of a resident key without counting an access."""
        if key in self._resident:
            self._clock += 1
            self._version += 1
            self.policy.on_access(key, self._clock)

    def _victim(self) -> ExpertKey | None:
        """The policy's eviction choice over unlocked residents.

        Memoized per cache version on the fast path: between mutations
        the candidate set and every policy ranking are frozen, so the
        policy would return the same key — ``would_admit`` followed by
        ``insert_if_better`` and the ``insert`` it delegates to ask up
        to three times per admission.
        """
        candidates = self._resident - self._locked
        if not candidates:
            return None
        if self.fast_path:
            memo = self._victim_memo
            if memo is not None and memo[0] == self._version:
                return memo[1]
            victim_resident = getattr(self.policy, "victim_resident", None)
            if victim_resident is not None:
                victim = victim_resident(self._resident, self._locked)
            else:
                victim = self.policy.victim(candidates)
            self._victim_memo = (self._version, victim)
            return victim
        return self.policy.victim(candidates)

    def insert(self, key: ExpertKey) -> list[ExpertKey]:
        """Make ``key`` resident; returns the list of evicted keys.

        Inserting an already-resident or pinned key is a no-op. When the
        cache is full, victims are chosen by the policy among unpinned,
        unlocked residents; if every resident is locked, the insert is
        rejected (recorded in stats) rather than corrupting an in-flight
        plan.
        """
        if key in self:
            return []
        evicted: list[ExpertKey] = []
        if self.capacity == 0:
            self.stats.rejected_inserts += 1
            return []
        while len(self._resident) >= self.capacity:
            victim = self._victim()
            if victim is None:
                self.stats.rejected_inserts += 1
                return evicted
            if victim not in self._resident:
                raise CacheError(f"policy chose non-resident victim {victim}")
            self._evict(victim)
            evicted.append(victim)
        self._clock += 1
        self._version += 1
        self._resident.add(key)
        self._by_layer.setdefault(key[0], set()).add(key[1])
        self.policy.on_insert(key, self._clock)
        self.stats.insertions += 1
        return evicted

    def _evict(self, key: ExpertKey) -> None:
        if key in self._pinned:
            raise CacheError(f"attempted to evict pinned key {key}")
        if key in self._locked:
            raise CacheError(f"attempted to evict locked key {key}")
        self._version += 1
        self._resident.discard(key)
        bucket = self._by_layer.get(key[0])
        if bucket is not None:
            bucket.discard(key[1])
        self.policy.forget(key)
        self.stats.evictions += 1

    def would_admit(self, key: ExpertKey, margin: float = 0.0) -> bool:
        """Whether :meth:`insert_if_better` would currently admit ``key``.

        Lets callers check admission *before* paying for a transfer.
        ``margin`` demands the incoming key outrank the victim by a
        relative factor — speculative insertions (prefetches) use a
        positive margin so prediction noise cannot churn residents
        whose priority is only marginally lower.
        """
        if key in self:
            return False
        if self.capacity == 0:
            return False
        if len(self._resident) < self.capacity:
            return True
        victim = self._victim()
        if victim is None:
            return False
        return self.policy.priority(key) > self.policy.priority(victim) * (1.0 + margin)

    def insert_if_better(self, key: ExpertKey) -> list[ExpertKey]:
        """Insert only when the incoming key outranks the would-be victim.

        Admission control for transient loads: during prefill, every
        missed expert is transferred on demand, but blindly caching each
        one would thrash residency for later layers. The key is admitted
        when the cache has free slots, or when its policy priority
        strictly exceeds the chosen victim's.
        """
        if key in self:
            return []
        if self.capacity == 0:
            self.stats.rejected_inserts += 1
            return []
        if len(self._resident) < self.capacity:
            return self.insert(key)
        victim = self._victim()
        if victim is None:
            self.stats.rejected_inserts += 1
            return []
        if self.policy.priority(key) <= self.policy.priority(victim):
            self.stats.rejected_inserts += 1
            return []
        return self.insert(key)

    def evict_explicit(self, key: ExpertKey) -> None:
        """Force-remove a dynamic resident key (used by tests/tools)."""
        if key not in self._resident:
            raise CacheError(f"cannot evict non-resident key {key}")
        self._evict(key)

    def warm_fill(self, keys: Iterable[ExpertKey]) -> None:
        """Pre-populate the cache up to capacity (initial residency)."""
        for key in keys:
            if len(self._resident) >= self.capacity:
                break
            if key in self:
                continue
            self._clock += 1
            self._version += 1
            self._resident.add(key)
            self._by_layer.setdefault(key[0], set()).add(key[1])
            self.policy.on_insert(key, self._clock)

    # ------------------------------------------------------------------
    # locking & scores
    # ------------------------------------------------------------------
    def lock(self, keys: Iterable[ExpertKey]) -> None:
        """Protect keys from eviction while a plan that uses them runs."""
        self._version += 1
        self._locked.update(keys)

    def unlock_all(self) -> None:
        if self._locked:
            self._version += 1
            self._locked.clear()

    @property
    def locked_keys(self) -> set[ExpertKey]:
        return set(self._locked)

    def observe_scores(self, layer: int, scores: np.ndarray) -> None:
        """Feed one layer's routing scores to the policy (MRS signal)."""
        self._clock += 1
        self._version += 1
        self.policy.on_scores(layer, scores, self._clock)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check capacity/pinning invariants; raises on violation."""
        if len(self._resident) > self.capacity:
            raise CacheError(
                f"capacity exceeded: {len(self._resident)} resident, "
                f"capacity {self.capacity}"
            )
        overlap = self._resident & self._pinned
        if overlap:
            raise CacheError(f"keys both pinned and dynamic: {sorted(overlap)}")
        indexed = {
            (layer, expert)
            for layer, bucket in self._by_layer.items()
            for expert in bucket
        }
        members = self._resident | self._pinned
        if indexed != members:
            raise CacheError(
                f"per-layer index out of sync: {sorted(indexed ^ members)}"
            )
