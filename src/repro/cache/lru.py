"""Least-Recently-Used eviction policy."""

from __future__ import annotations

from collections.abc import Iterable

from repro.cache.base import EvictionPolicy, ExpertKey
from repro.errors import CacheError

__all__ = ["LRUPolicy"]


class LRUPolicy(EvictionPolicy):
    """Evict the key with the oldest last-use time.

    Ties (same logical timestamp) break deterministically on the key so
    repeated runs evict identically.
    """

    name = "lru"

    def __init__(self) -> None:
        self._last_used: dict[ExpertKey, int] = {}

    def on_insert(self, key: ExpertKey, now: int) -> None:
        self._last_used[key] = now

    def on_access(self, key: ExpertKey, now: int) -> None:
        if key not in self._last_used:
            raise CacheError(f"LRU access to unknown key {key}")
        self._last_used[key] = now

    def victim(self, candidates: Iterable[ExpertKey]) -> ExpertKey:
        candidates = list(candidates)
        if not candidates:
            raise CacheError("LRU victim requested with no candidates")
        return min(candidates, key=lambda k: (self._last_used.get(k, -1), k))

    def priority(self, key: ExpertKey) -> float:
        return float(self._last_used.get(key, -1))

    def forget(self, key: ExpertKey) -> None:
        self._last_used.pop(key, None)

    def priority_snapshot(self) -> dict[ExpertKey, float]:
        return {k: float(v) for k, v in self._last_used.items()}
