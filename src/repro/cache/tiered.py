"""Tiered expert memory: a capacity-limited DRAM tier over disk spill.

:class:`TieredCacheManager` generalises the two-tier memory model (a
GPU expert cache over an *infinite* CPU store) to the three-tier
hierarchy of memory-limited deployments:

- **GPU tier** — the existing :class:`~repro.cache.manager.ExpertCache`
  (or a :class:`~repro.cache.sharded.ShardedCacheManager` on a fleet),
  built from the strategy's :class:`~repro.cache.sharded.CacheSpec`
  exactly as before;
- **CPU DRAM tier** — a second, capacity-limited :class:`ExpertCache`
  with its own eviction policy from the same strategy registry
  (LRU/LFU/MRS apply per tier). An expert resident here can be
  CPU-computed in place or transferred to a GPU at plain PCIe cost;
- **disk tier** — the implicit backing store holding *every* expert.
  An expert resident in neither cache is **spilled**: using it first
  pays a disk -> DRAM read on the platform's shared disk link, before
  any CPU compute or PCIe transfer.

The manager duck-types the full single-cache surface the engine,
pipeline and strategies consume (membership and mutation always mean
the **GPU tier**, so two-tier callers are unaffected), and adds the
tier queries the scheduler and prefetcher need: :meth:`dram_resident`,
:meth:`spilled_experts`, :meth:`promote_to_dram`. GPU-tier statistics
stay authoritative for the paper's hit-rate figures; the DRAM tier
keeps its own counters, where an *access* is recorded only for GPU
misses — its hit rate is therefore the fraction of GPU misses served
from DRAM rather than disk.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.cache.base import ExpertKey
from repro.cache.manager import CacheStats, ExpertCache
from repro.cache.sharded import ShardedCacheManager
from repro.errors import CacheError

__all__ = ["TieredCacheManager"]


class TieredCacheManager:
    """GPU-tier facade composing a DRAM tier with implicit disk spill.

    Parameters
    ----------
    gpu_tier:
        The GPU expert cache (unsharded or sharded) the engine would
        have used on its own; every two-tier operation forwards here
        verbatim, which is what keeps the unbounded-DRAM configuration
        bit-identical to the historical engine.
    cpu_tier:
        The capacity-limited DRAM cache. Its capacity counts *routed
        expert slots* of host memory; keys outside both tiers are
        spilled to disk.
    """

    def __init__(self, gpu_tier: ExpertCache | ShardedCacheManager,
                 cpu_tier: ExpertCache) -> None:
        if cpu_tier.pinned_keys:
            raise CacheError("the DRAM tier does not support pinned keys")
        self.gpu_tier = gpu_tier
        self.cpu_tier = cpu_tier

    def set_fast_path(self, enabled: bool) -> None:
        """Forward the structural-acceleration toggle to both tiers."""
        self.gpu_tier.set_fast_path(enabled)
        self.cpu_tier.set_fast_path(enabled)

    # ------------------------------------------------------------------
    # tier queries
    # ------------------------------------------------------------------
    def dram_resident(self, key: ExpertKey) -> bool:
        """Whether ``key`` has a copy in host DRAM."""
        return key in self.cpu_tier

    def is_spilled(self, key: ExpertKey) -> bool:
        """Whether using ``key`` requires a disk read first."""
        return key not in self.gpu_tier and key not in self.cpu_tier

    def spilled_experts(self, layer: int, experts: Iterable[int]) -> frozenset[int]:
        """The subset of ``experts`` of ``layer`` resident in no tier."""
        return frozenset(
            expert for expert in experts if self.is_spilled((layer, expert))
        )

    def dram_experts_of_layer(self, layer: int) -> set[int]:
        """Expert ids of ``layer`` with a DRAM-resident copy."""
        return self.cpu_tier.cached_experts_of_layer(layer)

    def promote_to_dram(self, key: ExpertKey) -> list[ExpertKey]:
        """Make ``key`` DRAM-resident (after a disk read has been paid).

        Returns the DRAM keys evicted to make room. Evicting a DRAM
        copy of a GPU-resident expert is legal — the GPU copy is
        independent — but re-fetching it later costs a disk read.
        """
        return self.cpu_tier.insert(key)

    def dram_would_admit(self, key: ExpertKey, margin: float = 0.0) -> bool:
        """Whether a speculative DRAM promotion of ``key`` makes sense.

        With ``margin=0`` (the default): plain insertion semantics —
        any non-resident key is admitted as long as the tier has slots
        at all (evicting the policy's victim when full), the classic
        behaviour of an OS page cache. A positive ``margin`` makes the
        promotion policy-aware: when the tier is full, ``key`` must
        outrank the would-be victim by the relative margin
        (:meth:`~repro.cache.manager.ExpertCache.would_admit`).
        Confidence-gated prefetching passes a margin shrinking with
        prediction confidence, so only well-earned deep predictions
        churn DRAM residency.
        """
        if margin <= 0.0:
            return self.cpu_tier.capacity > 0 and key not in self.cpu_tier
        return self.cpu_tier.would_admit(key, margin=margin)

    def tier_stats(self) -> dict[str, CacheStats]:
        """Counters per tier (``gpu`` aggregate and ``cpu``)."""
        return {"gpu": self.gpu_tier.stats, "cpu": self.cpu_tier.stats}

    def per_tier_hit_rates(self) -> dict[str, float]:
        """Hit rate per tier; the CPU rate is over GPU misses only."""
        return {
            "gpu": self.gpu_tier.stats.hit_rate,
            "cpu": self.cpu_tier.stats.hit_rate,
        }

    # ------------------------------------------------------------------
    # ExpertCache interface (GPU-tier semantics)
    # ------------------------------------------------------------------
    def __contains__(self, key: ExpertKey) -> bool:
        return key in self.gpu_tier

    def __len__(self) -> int:
        return len(self.gpu_tier)

    @property
    def capacity(self) -> int:
        return self.gpu_tier.capacity

    @property
    def stats(self) -> CacheStats:
        return self.gpu_tier.stats

    @property
    def resident_keys(self) -> set[ExpertKey]:
        return self.gpu_tier.resident_keys

    @property
    def pinned_keys(self) -> set[ExpertKey]:
        return self.gpu_tier.pinned_keys

    @property
    def locked_keys(self) -> set[ExpertKey]:
        return self.gpu_tier.locked_keys

    def cached_experts_of_layer(self, layer: int) -> set[int]:
        return self.gpu_tier.cached_experts_of_layer(layer)

    def access(self, key: ExpertKey) -> bool:
        """Record a lookup; a GPU miss additionally probes the DRAM tier.

        The DRAM access keeps that tier's policy recency/score state
        live and counts its hit/miss (DRAM hit = the miss is served
        from host memory; DRAM miss = it spills to disk).
        """
        hit = self.gpu_tier.access(key)
        if not hit:
            self.cpu_tier.access(key)
        return hit

    def touch(self, key: ExpertKey) -> None:
        self.gpu_tier.touch(key)

    def insert(self, key: ExpertKey) -> list[ExpertKey]:
        return self.gpu_tier.insert(key)

    def insert_if_better(self, key: ExpertKey) -> list[ExpertKey]:
        return self.gpu_tier.insert_if_better(key)

    def would_admit(self, key: ExpertKey, margin: float = 0.0) -> bool:
        return self.gpu_tier.would_admit(key, margin=margin)

    def warm_fill(self, keys: Iterable[ExpertKey]) -> None:
        self.gpu_tier.warm_fill(keys)

    def lock(self, keys: Iterable[ExpertKey]) -> None:
        self.gpu_tier.lock(keys)

    def unlock_all(self) -> None:
        self.gpu_tier.unlock_all()

    def observe_scores(self, layer: int, scores: np.ndarray) -> None:
        """Feed routing scores to *both* tiers' policies.

        A score-aware DRAM policy (MRS) needs the same signal the GPU
        tier gets; score-agnostic policies ignore it.
        """
        self.gpu_tier.observe_scores(layer, scores)
        self.cpu_tier.observe_scores(layer, scores)

    # ------------------------------------------------------------------
    # sharded-cache pass-through (multi-GPU pipeline)
    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """Whether the GPU tier is device-sharded."""
        return isinstance(self.gpu_tier, ShardedCacheManager)

    @property
    def shards(self) -> list[ExpertCache]:
        return self.gpu_tier.shards

    @property
    def placement(self):
        return self.gpu_tier.placement

    @property
    def num_devices(self) -> int:
        return self.gpu_tier.num_devices

    def device_of(self, key: ExpertKey) -> int:
        return self.gpu_tier.device_of(key)

    def peek_device_of(self, key: ExpertKey) -> int | None:
        return self.gpu_tier.peek_device_of(key)

    def device_experts_of_layer(self, layer: int, device: int) -> set[int]:
        return self.gpu_tier.device_experts_of_layer(layer, device)

    def per_device_stats(self) -> list[CacheStats]:
        return self.gpu_tier.per_device_stats()

    def per_device_hit_rates(self) -> list[float]:
        return self.gpu_tier.per_device_hit_rates()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Validate both tiers' capacity/pinning/placement invariants."""
        self.gpu_tier.validate()
        self.cpu_tier.validate()
