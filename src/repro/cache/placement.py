"""Expert-placement policies: which GPU is home to each expert.

When the expert cache is sharded across ``N`` devices, every
``(layer, expert)`` key has exactly one **home device**: the shard that
may cache it, the PCIe link that transfers it, and the GPU that
computes it when it is (or becomes) resident. Placement is therefore
the multi-GPU analogue of the cache policy — it decides *where* an
expert can live, while the per-shard eviction policy decides *whether*
it stays.

Three policies are provided:

- :class:`RoundRobinPlacement` — ``expert_id % N``; spreads every
  layer's experts across all devices, so each fused step engages the
  whole fleet (maximum intra-layer parallelism, zero locality control);
- :class:`LayerStripedPlacement` — ``layer % N``; keeps each layer's
  working set on one device (whole-layer locality, like pipeline
  sharding), so consecutive layers alternate devices and per-layer
  transfers never compete across links;
- :class:`LoadAwarePlacement` — sticky least-loaded assignment: the
  first time a key needs a home it picks the device whose shard
  currently holds the fewest experts (ties to the lowest device id),
  and remembers the choice. Adapts to skewed expert popularity without
  ever moving a resident expert.

All policies are **deterministic**: the same key/occupancy sequence
produces the same assignment on every run — a property the placement
tests pin down, and a prerequisite for reproducible multi-GPU
experiments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.cache.base import ExpertKey
from repro.errors import CacheError

__all__ = [
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LayerStripedPlacement",
    "LoadAwarePlacement",
    "available_placements",
    "make_placement",
]


class PlacementPolicy(ABC):
    """Deterministic mapping from expert keys to home devices."""

    #: Short identifier used in configs and result tables.
    name: str = "abstract"

    #: Whether :meth:`assign` consults the occupancy argument. Static
    #: policies leave this False so callers on the hot path can skip
    #: building the per-shard occupancy list entirely.
    uses_occupancy: bool = False

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise CacheError(f"num_devices must be >= 1, got {num_devices}")
        self.num_devices = num_devices

    @abstractmethod
    def assign(self, key: ExpertKey, occupancy: Sequence[int]) -> int:
        """Home device of ``key``.

        Parameters
        ----------
        key:
            The ``(layer, expert)`` cache key needing a home.
        occupancy:
            Current resident count per shard (pinned included), one
            entry per device. Static policies ignore it; the load-aware
            policy consults it on first assignment.

        Returns
        -------
        int
            Device index in ``[0, num_devices)``. Must be stable: a key
            once assigned always maps to the same device.
        """

    def peek(self, key: ExpertKey) -> int | None:
        """Home device of ``key`` without committing a new assignment.

        ``None`` means the policy has not decided yet (only possible
        for stateful policies) — such a key cannot be resident
        anywhere, so pure membership queries can return False without
        perturbing future placement. Static policies answer from the
        key alone.
        """
        return self.assign(key, ())

    def preview(self, key: ExpertKey, occupancy: Sequence[int]) -> int:
        """Device :meth:`assign` *would* pick, without committing it.

        Speculative probes (admission checks before paying for a
        transfer) must not perturb a stateful policy's future
        placement; they route through this. Static policies are pure,
        so the default simply delegates to :meth:`assign`.
        """
        return self.assign(key, occupancy)


class RoundRobinPlacement(PlacementPolicy):
    """Stripe experts across devices by expert id (``expert % N``)."""

    name = "round_robin"

    def assign(self, key: ExpertKey, occupancy: Sequence[int]) -> int:
        return key[1] % self.num_devices


class LayerStripedPlacement(PlacementPolicy):
    """Keep each layer's experts on one device (``layer % N``)."""

    name = "layer_striped"

    def assign(self, key: ExpertKey, occupancy: Sequence[int]) -> int:
        return key[0] % self.num_devices


class LoadAwarePlacement(PlacementPolicy):
    """Sticky least-loaded assignment.

    The first time a key is seen it is assigned to the device whose
    shard holds the fewest experts at that moment; ties break to the
    device with the fewest assignments so far, then to the lowest
    device id. The assignment-count tiebreak matters when residency
    cannot move — with capacity-0 shards (pure pinning strategies) the
    occupancy signal is constant, and without it every new key would
    pile onto one device. Assignments are remembered and never
    revised, so a resident expert's home cannot drift mid-flight.
    Determinism follows from the deterministic engine: identical runs
    present identical (key, occupancy) sequences.
    """

    name = "load_aware"
    uses_occupancy = True

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        self._assigned: dict[ExpertKey, int] = {}
        self._assign_counts = [0] * num_devices

    def peek(self, key: ExpertKey) -> int | None:
        """Existing sticky assignment, or None for an unseen key."""
        return self._assigned.get(key)

    def _choose(self, occupancy: Sequence[int]) -> int:
        if len(occupancy) != self.num_devices:
            raise CacheError(
                f"occupancy has {len(occupancy)} entries for "
                f"{self.num_devices} devices"
            )
        return min(
            range(self.num_devices),
            key=lambda g: (occupancy[g], self._assign_counts[g], g),
        )

    def preview(self, key: ExpertKey, occupancy: Sequence[int]) -> int:
        """The device :meth:`assign` would pick, without committing."""
        device = self._assigned.get(key)
        if device is None:
            device = self._choose(occupancy)
        return device

    def assign(self, key: ExpertKey, occupancy: Sequence[int]) -> int:
        device = self._assigned.get(key)
        if device is None:
            device = self._choose(occupancy)
            self._assigned[key] = device
            self._assign_counts[device] += 1
        return device

    @property
    def assignments(self) -> dict[ExpertKey, int]:
        """Snapshot of all sticky assignments (read-only view)."""
        return dict(self._assigned)


_PLACEMENTS = {
    "round_robin": RoundRobinPlacement,
    "layer_striped": LayerStripedPlacement,
    "load_aware": LoadAwarePlacement,
}


def available_placements() -> list[str]:
    """Names accepted by :func:`make_placement`."""
    return sorted(_PLACEMENTS)


def make_placement(name: str, num_devices: int) -> PlacementPolicy:
    """Instantiate a placement policy by short name."""
    try:
        cls = _PLACEMENTS[name]
    except KeyError:
        known = ", ".join(available_placements())
        raise CacheError(
            f"unknown placement policy {name!r} (known: {known})"
        ) from None
    return cls(num_devices)
