"""Trace capture: run the functional model and record routing decisions."""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.models.gating import RouterOutput
from repro.models.model import ReferenceMoEModel
from repro.routing.trace import LayerRouting, RoutingTrace, StepTrace
from repro.rng import derive_rng

__all__ = ["generate_trace"]


def _router_to_layer_routing(layer: int, router: RouterOutput) -> LayerRouting:
    return LayerRouting(
        layer=layer,
        loads=router.loads.astype(np.int64),
        mean_scores=router.mean_scores().astype(np.float64),
    )


def generate_trace(
    model: ReferenceMoEModel,
    prompt_tokens: np.ndarray,
    decode_steps: int = 0,
    seed: int = 0,
    decode_token_source: str = "sampled",
) -> RoutingTrace:
    """Run one prefill (plus optional decode) and record routing per layer.

    Parameters
    ----------
    model:
        The functional model to trace.
    prompt_tokens:
        1-D array of prompt token ids (the prefill batch).
    decode_steps:
        Number of auto-regressive decode tokens to append.
    seed:
        Seed for the ``"random"`` decode token source.
    decode_token_source:
        ``"sampled"`` (default) feeds seeded temperature samples of the
        model's own continuation — the realistic setting; ``"greedy"``
        feeds argmax continuations (the functional model then collapses
        to a fixed point, an idealised best case for caching);
        ``"random"`` feeds uniformly random ids (an adversarial upper
        bound on routing churn).

    Returns
    -------
    RoutingTrace
        One prefill step followed by ``decode_steps`` decode steps.
    """
    prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
    if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
        raise TraceError("prompt_tokens must be a non-empty 1-D id array")
    if decode_token_source not in ("sampled", "greedy", "random"):
        raise TraceError(
            "decode_token_source must be 'sampled', 'greedy' or 'random', "
            f"got {decode_token_source!r}"
        )

    rng = derive_rng(seed, "trace", model.config.name, "decode-tokens")
    steps: list[StepTrace] = []

    hidden, routers, state = model.forward(prompt_tokens)
    steps.append(
        StepTrace(
            kind="prefill",
            n_tokens=int(prompt_tokens.size),
            layers=[
                _router_to_layer_routing(layer, router)
                for layer, router in enumerate(routers)
            ],
        )
    )

    last_hidden = hidden[-1]
    for _ in range(decode_steps):
        if decode_token_source == "greedy":
            token = model.greedy_next_token(last_hidden)
        elif decode_token_source == "sampled":
            token = model.sample_next_token(last_hidden, rng)
        else:
            token = int(rng.integers(0, model.vocab_size))
        hidden, routers, state = model.forward(np.array([token]), state)
        last_hidden = hidden[-1]
        steps.append(
            StepTrace(
                kind="decode",
                n_tokens=1,
                layers=[
                    _router_to_layer_routing(layer, router)
                    for layer, router in enumerate(routers)
                ],
            )
        )

    return RoutingTrace(
        model_name=model.config.name,
        num_layers=model.config.num_layers,
        num_experts=model.config.num_routed_experts,
        num_activated=model.config.num_activated_experts,
        steps=steps,
    )
