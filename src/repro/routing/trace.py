"""Routing trace containers and persistence.

A :class:`RoutingTrace` is a sequence of :class:`StepTrace` objects (one
per forward pass: a whole prefill batch or a single decode token), each
holding one :class:`LayerRouting` per MoE layer. Traces are the exchange
format between the model substrate, the statistics module, and the
frequency-based baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import TraceError

__all__ = ["LayerRouting", "StepTrace", "RoutingTrace"]

_PREFILL = "prefill"
_DECODE = "decode"


@dataclass(frozen=True)
class LayerRouting:
    """Routing decision of one MoE layer for one forward step.

    Attributes
    ----------
    layer:
        Layer index.
    loads:
        Tokens routed to each expert, shape ``(n_experts,)``.
    mean_scores:
        Softmax scores averaged over the step's tokens, shape
        ``(n_experts,)`` — the signal consumed by the MRS cache.
    """

    layer: int
    loads: np.ndarray
    mean_scores: np.ndarray

    def __post_init__(self) -> None:
        if self.loads.shape != self.mean_scores.shape:
            raise TraceError(
                f"loads shape {self.loads.shape} != scores shape {self.mean_scores.shape}"
            )

    @property
    def n_experts(self) -> int:
        return int(self.loads.shape[0])

    def activated(self) -> list[int]:
        """Expert ids with at least one routed token."""
        return [int(e) for e in np.flatnonzero(self.loads > 0)]

    def activated_with_loads(self) -> list[tuple[int, int]]:
        """Pairs ``(expert_id, load)`` for all activated experts."""
        return [(int(e), int(self.loads[e])) for e in np.flatnonzero(self.loads > 0)]


@dataclass(frozen=True)
class StepTrace:
    """All layers' routing for one forward step."""

    kind: str
    n_tokens: int
    layers: list[LayerRouting]

    def __post_init__(self) -> None:
        if self.kind not in (_PREFILL, _DECODE):
            raise TraceError(f"step kind must be 'prefill' or 'decode', got {self.kind!r}")
        if self.n_tokens <= 0:
            raise TraceError(f"n_tokens must be positive, got {self.n_tokens}")
        for index, routing in enumerate(self.layers):
            if routing.layer != index:
                raise TraceError(
                    f"layer routing at position {index} claims layer {routing.layer}"
                )

    @property
    def is_prefill(self) -> bool:
        return self.kind == _PREFILL


@dataclass
class RoutingTrace:
    """A recorded model run: metadata plus an ordered list of steps."""

    model_name: str
    num_layers: int
    num_experts: int
    num_activated: int
    steps: list[StepTrace]

    def __post_init__(self) -> None:
        for step in self.steps:
            if len(step.layers) != self.num_layers:
                raise TraceError(
                    f"step has {len(step.layers)} layers, trace declares {self.num_layers}"
                )
            for routing in step.layers:
                if routing.n_experts != self.num_experts:
                    raise TraceError(
                        f"layer {routing.layer} has {routing.n_experts} experts, "
                        f"trace declares {self.num_experts}"
                    )

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def decode_steps(self) -> list[StepTrace]:
        return [step for step in self.steps if step.kind == _DECODE]

    def prefill_steps(self) -> list[StepTrace]:
        return [step for step in self.steps if step.kind == _PREFILL]

    # ------------------------------------------------------------------
    # persistence (single .npz file)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise the trace to a compressed ``.npz`` file."""
        loads = np.stack(
            [np.stack([lr.loads for lr in step.layers]) for step in self.steps]
        )
        scores = np.stack(
            [np.stack([lr.mean_scores for lr in step.layers]) for step in self.steps]
        )
        kinds = np.array([step.kind for step in self.steps])
        n_tokens = np.array([step.n_tokens for step in self.steps], dtype=np.int64)
        np.savez_compressed(
            Path(path),
            model_name=np.array(self.model_name),
            num_layers=np.int64(self.num_layers),
            num_experts=np.int64(self.num_experts),
            num_activated=np.int64(self.num_activated),
            loads=loads,
            scores=scores,
            kinds=kinds,
            n_tokens=n_tokens,
        )

    @classmethod
    def load(cls, path: str | Path) -> "RoutingTrace":
        """Load a trace previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        with np.load(path, allow_pickle=False) as data:
            loads = data["loads"]
            scores = data["scores"]
            kinds = [str(k) for k in data["kinds"]]
            n_tokens = data["n_tokens"]
            steps = [
                StepTrace(
                    kind=kinds[s],
                    n_tokens=int(n_tokens[s]),
                    layers=[
                        LayerRouting(
                            layer=layer,
                            loads=loads[s, layer],
                            mean_scores=scores[s, layer],
                        )
                        for layer in range(loads.shape[1])
                    ],
                )
                for s in range(loads.shape[0])
            ]
            return cls(
                model_name=str(data["model_name"]),
                num_layers=int(data["num_layers"]),
                num_experts=int(data["num_experts"]),
                num_activated=int(data["num_activated"]),
                steps=steps,
            )
