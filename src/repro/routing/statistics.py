"""Routing statistics behind the paper's motivation analyses (Fig. 3a-c).

All functions operate on recorded :class:`~repro.routing.trace.RoutingTrace`
objects (or, for gate-reuse accuracy, directly on a model) and return
plain numpy arrays ready for tabulation or plotting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError
from repro.models.model import ReferenceMoEModel
from repro.routing.trace import RoutingTrace
from repro.rng import derive_rng

__all__ = [
    "activation_cdf",
    "synthetic_neuron_activation_cdf",
    "reuse_probability_by_rank",
    "prefill_load_distribution",
    "adjacent_layer_overlap",
    "expert_activation_frequency",
    "expert_transition_counts",
    "gate_reuse_accuracy",
    "predicted_routing_profile",
]


def expert_activation_frequency(trace: RoutingTrace) -> np.ndarray:
    """Activation counts per ``(layer, expert)`` across all steps.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(num_layers, num_experts)``. This is the
        profiling signal the kTransformers baseline pins experts with.
    """
    counts = np.zeros((trace.num_layers, trace.num_experts), dtype=np.int64)
    for step in trace.steps:
        for routing in step.layers:
            counts[routing.layer] += (routing.loads > 0).astype(np.int64)
    return counts


def expert_transition_counts(trace: RoutingTrace, distance: int = 1) -> np.ndarray:
    """Cross-layer co-activation counts per ``(layer, expert, expert)``.

    Entry ``[l, a, b]`` counts the steps in which expert ``a`` was
    activated at layer ``l`` *and* expert ``b`` at layer
    ``l + distance``. This is the transition statistic
    :class:`~repro.prediction.transition.TransitionPredictor` fits
    online; extracting it from a recorded trace here gives tests and
    analyses an independent ground truth.

    Returns
    -------
    numpy.ndarray
        Integer array of shape
        ``(num_layers - distance, num_experts, num_experts)``.
    """
    if distance < 1:
        raise TraceError(f"distance must be >= 1, got {distance}")
    if distance >= trace.num_layers:
        raise TraceError(
            f"distance {distance} leaves no layer pairs in a "
            f"{trace.num_layers}-layer trace"
        )
    counts = np.zeros(
        (trace.num_layers - distance, trace.num_experts, trace.num_experts),
        dtype=np.int64,
    )
    for step in trace.steps:
        for layer in range(trace.num_layers - distance):
            sources = np.flatnonzero(step.layers[layer].loads > 0)
            targets = np.flatnonzero(step.layers[layer + distance].loads > 0)
            if sources.size and targets.size:
                counts[layer][np.ix_(sources, targets)] += 1
    return counts


def activation_cdf(trace: RoutingTrace) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative activation frequency curve (paper Fig. 3a).

    Experts (pooled over layers) are sorted by activation count
    descending; the curve maps the top ``x`` fraction of experts to the
    fraction of all activations they account for. A flat, diagonal-like
    curve means evenly spread activations (the MoE behaviour that makes
    static mapping ineffective).

    Returns
    -------
    tuple
        ``(expert_proportion, cumulative_activation)`` both in ``[0, 1]``.
    """
    counts = expert_activation_frequency(trace).ravel().astype(np.float64)
    if counts.sum() == 0:
        raise TraceError("trace contains no activations")
    ordered = np.sort(counts)[::-1]
    cumulative = np.cumsum(ordered) / ordered.sum()
    proportion = np.arange(1, ordered.size + 1) / ordered.size
    return proportion, cumulative


def synthetic_neuron_activation_cdf(
    n_neurons: int = 4096, zipf_exponent: float = 1.2, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic stand-in for the OPT neuron-activation CDF of Fig. 3a.

    PowerInfer-style neuron-level sparsity is highly skewed (a few hot
    neurons dominate). Absent the OPT model, we model neuron activation
    frequencies with a Zipf law, which reproduces the qualitative
    contrast against the near-uniform expert curve.
    """
    if n_neurons <= 0:
        raise TraceError(f"n_neurons must be positive, got {n_neurons}")
    rng = derive_rng(seed, "synthetic-neuron-cdf")
    ranks = np.arange(1, n_neurons + 1, dtype=np.float64)
    freqs = ranks ** (-zipf_exponent)
    freqs *= 1.0 + 0.05 * rng.standard_normal(n_neurons)
    freqs = np.clip(freqs, 1e-9, None)
    ordered = np.sort(freqs)[::-1]
    cumulative = np.cumsum(ordered) / ordered.sum()
    proportion = ranks / n_neurons
    return proportion, cumulative


def reuse_probability_by_rank(trace: RoutingTrace) -> np.ndarray:
    """P(expert activated at step t+1) by its score rank at step t (Fig. 3b).

    For every consecutive pair of *decode* steps and every layer, experts
    are ranked by their step-``t`` mean routing score (rank 0 = highest).
    The returned array gives, per rank, the empirical probability that
    the expert at that rank is activated at step ``t+1``. A monotonically
    decreasing curve is the signal exploited by score-aware caching.
    """
    decode = trace.decode_steps()
    if len(decode) < 2:
        raise TraceError("need at least two decode steps for reuse probability")
    hits = np.zeros(trace.num_experts, dtype=np.float64)
    totals = 0
    for prev, nxt in zip(decode[:-1], decode[1:]):
        for layer in range(trace.num_layers):
            order = np.argsort(-prev.layers[layer].mean_scores, kind="stable")
            activated_next = nxt.layers[layer].loads > 0
            hits += activated_next[order]
            totals += 1
    return hits / totals


def prefill_load_distribution(trace: RoutingTrace, layer: int = 0) -> np.ndarray:
    """Per-expert token loads in a prefill forward, sorted desc (Fig. 3c)."""
    prefill = trace.prefill_steps()
    if not prefill:
        raise TraceError("trace contains no prefill step")
    if not 0 <= layer < trace.num_layers:
        raise TraceError(f"layer {layer} out of range [0, {trace.num_layers})")
    loads = prefill[0].layers[layer].loads.astype(np.int64)
    return np.sort(loads)[::-1]


def adjacent_layer_overlap(trace: RoutingTrace, distance: int = 1) -> float:
    """Mean Jaccard overlap of activated sets between layers ``l``/``l+d``.

    High overlap between nearby layers is one of the structural patterns
    (Opportunity 1) that make cross-layer prefetching worthwhile.
    """
    if distance < 1:
        raise TraceError(f"distance must be >= 1, got {distance}")
    overlaps: list[float] = []
    for step in trace.steps:
        for layer in range(trace.num_layers - distance):
            a = set(step.layers[layer].activated())
            b = set(step.layers[layer + distance].activated())
            union = a | b
            if union:
                overlaps.append(len(a & b) / len(union))
    if not overlaps:
        raise TraceError("no layer pairs with activations found")
    return float(np.mean(overlaps))


def predicted_routing_profile(
    model: ReferenceMoEModel, prompt_tokens: np.ndarray
) -> np.ndarray:
    """Per-``(layer, expert)`` token loads of a prompt's prefill routing.

    Runs one stateless prefill forward of ``prompt_tokens`` through the
    model's routers and counts, per layer, how many prompt tokens
    select each expert — the routing profile the prompt would impose at
    admission. This is the **cache-affinity signal** fleet routing uses
    (LayerScope-style): a replica whose expert cache already holds the
    profile's hot experts will serve the request with fewer fetches.

    The forward is pure model math on a private decode state — no
    engine cache, clock or strategy is touched, so profiling a prompt
    never perturbs a replica's serving behaviour. Deterministic per
    ``(model, prompt)``.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(num_layers, num_experts)``; entry
        ``[l, e]`` is the number of prompt tokens routed to expert
        ``e`` at layer ``l``.
    """
    prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
    if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
        raise TraceError("prompt_tokens must be a non-empty 1-D id array")
    state = model.new_state()
    x = model.prepare_inputs(prompt_tokens, state)
    num_experts = model.config.num_routed_experts
    counts = np.zeros((model.config.num_layers, num_experts), dtype=np.int64)
    for layer in range(model.config.num_layers):
        h = model.attention(x, layer, state)
        z = model.moe_input(h)
        router = model.route(z, layer)
        counts[layer] = np.bincount(
            router.topk_idx.ravel(), minlength=num_experts
        )
        moe_out = model.shared_forward(z, layer) + model.moe_forward(z, layer, router)
        x = h + model.residual_scale * moe_out
    return counts


def gate_reuse_accuracy(
    model: ReferenceMoEModel,
    prompt_tokens: np.ndarray,
    max_distance: int = 3,
) -> np.ndarray:
    """Accuracy of the paper's gate-reuse prediction (§IV-C, Fig. 6).

    Applies layer ``l+d``'s gate to layer ``l``'s hidden state and
    measures, *per token*, what fraction of that token's truly selected
    top-K experts at layer ``l+d`` the prediction recovers, for
    ``d = 1..max_distance``. This quantifies how quickly prediction
    quality decays with lookahead depth, which motivates the
    prefetcher's confidence discounting.

    Returns
    -------
    numpy.ndarray
        Shape ``(max_distance,)`` with mean per-token recall in
        ``[0, 1]`` per distance.
    """
    prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
    if prompt_tokens.ndim != 1 or prompt_tokens.size == 0:
        raise TraceError("prompt_tokens must be a non-empty 1-D id array")
    if max_distance < 1:
        raise TraceError(f"max_distance must be >= 1, got {max_distance}")

    state = model.new_state()
    x = model.prepare_inputs(prompt_tokens, state)
    k = model.config.num_activated_experts
    recalls: list[list[float]] = [[] for _ in range(max_distance)]
    z_history: list[np.ndarray] = []
    actual_topk: list[np.ndarray] = []

    for layer in range(model.config.num_layers):
        h = model.attention(x, layer, state)
        z = model.moe_input(h)
        router = model.route(z, layer)
        z_history.append(z)
        actual_topk.append(router.topk_idx)
        moe_out = model.shared_forward(z, layer) + model.moe_forward(z, layer, router)
        x = h + model.residual_scale * moe_out

    n_tokens = prompt_tokens.size
    for layer, z in enumerate(z_history):
        for d in range(1, max_distance + 1):
            future = layer + d
            if future >= model.config.num_layers:
                break
            predicted_scores = model.gate_scores(z, future)
            predicted_order = np.argsort(-predicted_scores, axis=1, kind="stable")
            predicted_topk = predicted_order[:, :k]
            per_token = [
                len(set(predicted_topk[t]) & set(actual_topk[future][t])) / k
                for t in range(n_tokens)
            ]
            recalls[d - 1].append(float(np.mean(per_token)))

    return np.array(
        [float(np.mean(r)) if r else float("nan") for r in recalls], dtype=np.float64
    )
