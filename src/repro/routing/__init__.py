"""Routing traces: capture, persistence and statistics.

The scheduling system consumes *routing decisions* (which experts each
token activates, with what scores). This package records those decisions
from :class:`~repro.models.model.ReferenceMoEModel` runs, round-trips
them to disk, and computes the statistics behind the paper's motivation
figures (Fig. 3a-c) and the kTransformers frequency-pinning baseline.
"""

from repro.routing.generator import generate_trace
from repro.routing.statistics import (
    activation_cdf,
    adjacent_layer_overlap,
    expert_activation_frequency,
    gate_reuse_accuracy,
    predicted_routing_profile,
    prefill_load_distribution,
    reuse_probability_by_rank,
    synthetic_neuron_activation_cdf,
)
from repro.routing.trace import LayerRouting, RoutingTrace, StepTrace

__all__ = [
    "LayerRouting",
    "StepTrace",
    "RoutingTrace",
    "generate_trace",
    "activation_cdf",
    "adjacent_layer_overlap",
    "expert_activation_frequency",
    "gate_reuse_accuracy",
    "predicted_routing_profile",
    "prefill_load_distribution",
    "reuse_probability_by_rank",
    "synthetic_neuron_activation_cdf",
]
