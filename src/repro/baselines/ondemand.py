"""Pure on-demand loading baseline (paper Fig. 1a).

Every activated expert computes on the GPU; a miss stalls on a PCIe
load. No CPU computation, no prefetching — the reference point that
motivates hybrid execution in the first place. Uses an LRU cache like
other GPU-centric systems.
"""

from __future__ import annotations

from repro.cache.lru import LRUPolicy
from repro.cache.sharded import CacheSpec
from repro.core.fixed_plan import gpu_only_plan
from repro.core.tasks import ExecutionPlan
from repro.engine.strategy_base import LayerContext, Strategy

__all__ = ["OnDemandStrategy"]


class OnDemandStrategy(Strategy):
    """On-demand GPU loading with an LRU cache and no prefetch."""

    name = "ondemand"

    def cache_spec(self) -> CacheSpec:
        runtime = self._runtime()
        return CacheSpec(
            runtime.capacity, LRUPolicy, warm=runtime.frequency_ranking()
        )

    def observe_scores(self, ctx: LayerContext) -> None:
        """Score-agnostic."""

    def plan_layer(self, ctx: LayerContext) -> ExecutionPlan:
        runtime = self._runtime()
        return gpu_only_plan(
            layer=ctx.layer,
            activated=list(ctx.activated),
            cached_experts=set(ctx.cached_experts),
            n_tokens=ctx.n_tokens,
            oracle=runtime.estimated_oracle(ctx.n_tokens),
            include_shared=ctx.include_shared,
        )
