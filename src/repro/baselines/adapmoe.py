"""AdapMoE baseline: GPU-centric scheduling with prefetch + LRU cache.

AdapMoE is the state of the art for *GPU-only* MoE offloading: every
expert computes on the GPU, misses trigger on-demand loads, an LRU
cache retains recently used experts, and the next layer's experts are
prefetched during the current layer's non-MoE computation using
gate-reuse prediction. (AdapMoE's sensitivity-based adaptive gating —
skipping low-impact experts — changes model outputs and is out of scope
for a scheduling comparison; see DESIGN.md.)
"""

from __future__ import annotations

import numpy as np

from repro.cache.lru import LRUPolicy
from repro.cache.sharded import CacheSpec
from repro.core.fixed_plan import gpu_only_plan
from repro.core.prefetch import PredictedLayer
from repro.core.tasks import ExecutionPlan
from repro.engine.strategy_base import LayerContext, Strategy

__all__ = ["AdapMoEStrategy"]


class AdapMoEStrategy(Strategy):
    """GPU-centric on-demand loading with next-layer prefetching."""

    name = "adapmoe"

    def cache_spec(self) -> CacheSpec:
        runtime = self._runtime()
        return CacheSpec(
            runtime.capacity, LRUPolicy, warm=runtime.frequency_ranking()
        )

    def observe_scores(self, ctx: LayerContext) -> None:
        """LRU ignores scores; recency updates happen on access."""

    def plan_layer(self, ctx: LayerContext) -> ExecutionPlan:
        runtime = self._runtime()
        return gpu_only_plan(
            layer=ctx.layer,
            activated=list(ctx.activated),
            cached_experts=set(ctx.cached_experts),
            n_tokens=ctx.n_tokens,
            oracle=runtime.estimated_oracle(ctx.n_tokens),
            include_shared=ctx.include_shared,
        )

    def prefetch_requests(
        self,
        ctx: LayerContext,
        predictions: list[PredictedLayer],
        budget_s: float,
        layer_span_s: float = float("inf"),
        backlog_s: float = 0.0,
    ) -> list[tuple[int, int]]:
        """Prefetch the predicted top-K of the *next* layer by score."""
        if not predictions:
            return []
        runtime = self._runtime()
        nxt = predictions[0]
        k = runtime.model_config.num_activated_experts
        order = np.argsort(-np.asarray(nxt.scores), kind="stable")[:k]
        shape = runtime.model_config.routed_expert_shape
        cost = runtime.cost_estimated.transfer_time(shape)
        chosen: list[tuple[int, int]] = []
        spent = 0.0
        for expert in order:
            expert = int(expert)
            if expert in nxt.cached_experts:
                continue
            if spent + cost > budget_s:
                break
            chosen.append((nxt.layer, expert))
            spent += cost
        return chosen
