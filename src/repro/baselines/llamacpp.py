"""llama.cpp baseline: static layer-to-device mapping.

llama.cpp's ``-ngl`` offloading assigns the first N layers to the GPU
and the rest — attention included — to the CPU. The same memory budget
as the expert-cache configurations buys ``ratio * num_layers`` whole
GPU layers. No transfers ever happen at inference time; CPU layers pay
CPU prices for everything, which is why the paper finds this baseline
slow at prefill yet competitive at decode (small per-expert loads suit
the CPU, and zero transfer overhead helps).
"""

from __future__ import annotations

from repro.cache.lfu import LFUPolicy
from repro.cache.sharded import CacheSpec
from repro.core.tasks import (
    SHARED_BLOCK,
    ComputeTask,
    Device,
    ExecutionPlan,
)
from repro.engine.strategy_base import LayerContext, Strategy

__all__ = ["LlamaCppStrategy"]


class LlamaCppStrategy(Strategy):
    """Whole-layer static CPU/GPU split (llama.cpp ``-ngl`` style)."""

    name = "llamacpp"

    def __init__(self) -> None:
        super().__init__()
        self._gpu_layers: set[int] = set()

    def setup(self) -> None:
        runtime = self._runtime()
        num_layers = runtime.model_config.num_layers
        gpu_layer_count = int(round(runtime.config.cache_ratio * num_layers))
        self._gpu_layers = set(range(gpu_layer_count))

    @property
    def gpu_layers(self) -> set[int]:
        """Layers resident on the GPU (read-only view for tests)."""
        return set(self._gpu_layers)

    def cache_spec(self) -> CacheSpec:
        runtime = self._runtime()
        num_experts = runtime.model_config.num_routed_experts
        pinned = [
            (layer, expert)
            for layer in sorted(self._gpu_layers)
            for expert in range(num_experts)
        ]
        return CacheSpec(0, LFUPolicy, pinned=pinned)

    def observe_scores(self, ctx: LayerContext) -> None:
        """Static mapping: routing scores are ignored."""

    def attention_device(self, layer: int) -> str:
        return "gpu" if layer in self._gpu_layers else "cpu"

    def plan_layer(self, ctx: LayerContext) -> ExecutionPlan:
        runtime = self._runtime()
        oracle = runtime.estimated_oracle(ctx.n_tokens)
        on_gpu = ctx.layer in self._gpu_layers
        device = Device.GPU if on_gpu else Device.CPU
        ordered = sorted(ctx.activated, key=lambda pair: (-pair[1], pair[0]))

        tasks: list[ComputeTask] = []
        if oracle.num_shared > 0 and ctx.include_shared:
            tasks.append(ComputeTask(ctx.layer, SHARED_BLOCK, ctx.n_tokens, device))
        tasks.extend(
            ComputeTask(ctx.layer, expert, load, device) for expert, load in ordered
        )
        return ExecutionPlan(
            layer=ctx.layer,
            n_tokens=ctx.n_tokens,
            gpu_tasks=tasks if on_gpu else [],
            cpu_tasks=[] if on_gpu else tasks,
            transfers=[],
            estimated_makespan=0.0,
            metadata={"scheduler": "static-layer", "gpu_layer": on_gpu},
        )

    def after_layer(self, ctx: LayerContext, plan: ExecutionPlan) -> None:
        """Static mapping: nothing to maintain."""
