"""Baseline MoE offloading frameworks (paper §VI-A.3, Table I).

Each baseline reimplements the *scheduling policy* of an existing
open-source system on top of the same engine, cache and hardware
substrate, so comparisons isolate the policy:

- :class:`~repro.baselines.llamacpp.LlamaCppStrategy` — static
  layer-to-device mapping (whole layers on CPU beyond the GPU budget);
- :class:`~repro.baselines.adapmoe.AdapMoEStrategy` — GPU-centric
  scheduling with adaptive next-layer prefetching and an LRU cache;
- :class:`~repro.baselines.ktransformers.KTransformersStrategy` —
  frequency-pinned expert mapping; CPU computes uncached experts during
  decode, prefill loads them on demand;
- :class:`~repro.baselines.ondemand.OnDemandStrategy` — pure on-demand
  GPU loading (Fig. 1a), the no-CPU-compute reference point.
"""

from repro.baselines.adapmoe import AdapMoEStrategy
from repro.baselines.ktransformers import KTransformersStrategy
from repro.baselines.llamacpp import LlamaCppStrategy
from repro.baselines.ondemand import OnDemandStrategy

__all__ = [
    "LlamaCppStrategy",
    "AdapMoEStrategy",
    "KTransformersStrategy",
    "OnDemandStrategy",
]
