"""kTransformers baseline: frequency-pinned experts, fixed mapping.

kTransformers maps high-activation-frequency experts (and shared
experts) to the GPU once, then never changes the mapping. During decode
a cache miss sends the expert to the CPU; during prefill uncached
experts are loaded on demand (CPU computation is decode-only, paper
Table I). There is no balancing, no transfer search and no dynamic
cache — this is the paper's primary comparison target and the
"Baseline" row of Table III.
"""

from __future__ import annotations

from repro.cache.lfu import LFUPolicy
from repro.cache.sharded import CacheSpec
from repro.core.fixed_plan import fixed_mapping_plan
from repro.core.tasks import ExecutionPlan
from repro.engine.strategy_base import LayerContext, Strategy

__all__ = ["KTransformersStrategy"]


class KTransformersStrategy(Strategy):
    """Static frequency-based expert pinning with CPU decode fallback."""

    name = "ktransformers"

    def cache_spec(self) -> CacheSpec:
        runtime = self._runtime()
        pinned = runtime.frequency_ranking()[: runtime.capacity]
        return CacheSpec(0, LFUPolicy, pinned=pinned)

    def observe_scores(self, ctx: LayerContext) -> None:
        """Static mapping: routing scores are ignored."""

    def plan_layer(self, ctx: LayerContext) -> ExecutionPlan:
        runtime = self._runtime()
        return fixed_mapping_plan(
            layer=ctx.layer,
            activated=list(ctx.activated),
            cached_experts=set(ctx.cached_experts),
            n_tokens=ctx.n_tokens,
            stage=ctx.stage,
            oracle=runtime.estimated_oracle(ctx.n_tokens),
            include_shared=ctx.include_shared,
        )

    def after_layer(self, ctx: LayerContext, plan: ExecutionPlan) -> None:
        """Scratch loads are discarded; the pinned set never changes."""
