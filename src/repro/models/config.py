"""Architecture configuration for MoE models.

The configuration mirrors Table II of the HybriMoE paper: number of
layers, shared/routed expert counts, activated experts per token, and
the weight shapes of shared and routed experts. Weight shapes drive the
*cost model* (bytes to transfer, FLOPs to compute); the functional numpy
model may run with scaled-down dimensions while keeping the same
architecture (see :class:`repro.models.model.ReferenceMoEModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["ExpertShape", "MoEModelConfig"]

#: Number of weight matrices in a SwiGLU feed-forward expert
#: (gate, up and down projections).
SWIGLU_MATRICES = 3


@dataclass(frozen=True)
class ExpertShape:
    """Shape of one expert's feed-forward block.

    Parameters
    ----------
    d_model:
        Input/output width of the expert (the model hidden size).
    d_ff:
        Intermediate (feed-forward) width.

    The paper reports expert sizes as ``(d_model, d_ff)`` pairs in
    Table II, e.g. ``(4096, 14336)`` for a Mixtral routed expert.
    """

    d_model: int
    d_ff: int

    def __post_init__(self) -> None:
        if self.d_model <= 0 or self.d_ff <= 0:
            raise ConfigError(
                f"expert dimensions must be positive, got ({self.d_model}, {self.d_ff})"
            )

    @property
    def param_count(self) -> int:
        """Total parameters of the SwiGLU block (gate, up, down matrices)."""
        return SWIGLU_MATRICES * self.d_model * self.d_ff

    def flops_per_token(self) -> int:
        """Multiply-accumulate FLOPs to run one token through the expert."""
        return 2 * self.param_count


@dataclass(frozen=True)
class MoEModelConfig:
    """Architecture description of an MoE model (paper Table II).

    Parameters
    ----------
    name:
        Human-readable identifier (``"mixtral"``, ``"qwen2"``, ...).
    num_layers:
        Number of transformer layers, each containing one MoE block.
    num_shared_experts:
        Experts activated for *every* token (0 for Mixtral).
    num_routed_experts:
        Size of the routed expert pool per layer.
    num_activated_experts:
        Top-K routed experts activated per token.
    routed_expert_shape:
        Weight shape of each routed expert.
    shared_expert_shape:
        Weight shape of each shared expert, or ``None`` when the model
        has no shared experts.
    """

    name: str
    num_layers: int
    num_shared_experts: int
    num_routed_experts: int
    num_activated_experts: int
    routed_expert_shape: ExpertShape
    shared_expert_shape: ExpertShape | None = None

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ConfigError(f"num_layers must be positive, got {self.num_layers}")
        if self.num_routed_experts <= 0:
            raise ConfigError(
                f"num_routed_experts must be positive, got {self.num_routed_experts}"
            )
        if not 0 < self.num_activated_experts <= self.num_routed_experts:
            raise ConfigError(
                "num_activated_experts must be in [1, num_routed_experts], got "
                f"{self.num_activated_experts} of {self.num_routed_experts}"
            )
        if self.num_shared_experts < 0:
            raise ConfigError(
                f"num_shared_experts must be non-negative, got {self.num_shared_experts}"
            )
        if self.num_shared_experts > 0 and self.shared_expert_shape is None:
            raise ConfigError(
                f"model {self.name!r} declares shared experts but no shared_expert_shape"
            )

    @property
    def total_routed_experts(self) -> int:
        """Routed experts across all layers (the cacheable population)."""
        return self.num_layers * self.num_routed_experts

    @property
    def has_shared_experts(self) -> bool:
        return self.num_shared_experts > 0

    def routed_expert_params(self) -> int:
        """Parameters of a single routed expert."""
        return self.routed_expert_shape.param_count

    def total_expert_params(self) -> int:
        """Parameters of all experts (routed + shared) across all layers."""
        routed = self.total_routed_experts * self.routed_expert_shape.param_count
        shared = 0
        if self.shared_expert_shape is not None:
            shared = (
                self.num_layers
                * self.num_shared_experts
                * self.shared_expert_shape.param_count
            )
        return routed + shared

    def with_layers(self, num_layers: int) -> "MoEModelConfig":
        """Return a copy with a different layer count (for fast tests)."""
        return replace(self, num_layers=num_layers, name=f"{self.name}-l{num_layers}")

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        shared = (
            f"{self.num_shared_experts} shared {self.shared_expert_shape.d_model}x"
            f"{self.shared_expert_shape.d_ff}"
            if self.shared_expert_shape is not None and self.num_shared_experts
            else "no shared"
        )
        return (
            f"{self.name}: {self.num_layers} layers, "
            f"{self.num_routed_experts} routed experts "
            f"({self.routed_expert_shape.d_model}x{self.routed_expert_shape.d_ff}), "
            f"top-{self.num_activated_experts}, {shared}"
        )
