"""Functional numpy MoE model with realistic routing dynamics.

:class:`ReferenceMoEModel` is a scaled-down but *structurally faithful*
MoE transformer: tokens are embedded, flow through ``num_layers``
pre-norm residual layers, and each layer routes tokens through a softmax
top-K gate to SwiGLU experts (plus always-active shared experts, as in
Qwen2/DeepSeek — paper Fig. 2).

Why a functional model rather than a canned trace? The three phenomena
the paper's techniques exploit all *emerge* from the residual-stream
mechanics instead of being hard-coded:

- **temporal reuse correlation** (Fig. 3b) — decode hidden states evolve
  slowly because the attention context is a running mean over past
  tokens, so consecutive steps produce correlated gate scores;
- **adjacent-layer similarity** (the basis of §IV-C prefetching) — each
  layer adds a small residual update, so applying layer ``l+k``'s gate to
  layer ``l``'s hidden state predicts layer ``l+k``'s routing well;
- **uneven per-expert loads in prefill** (Fig. 3c) — multinomial top-K
  routing over a finite batch is naturally imbalanced.

The hidden dimensions default to small values so a full forward pass is
cheap; the *cost model* uses the paper-scale shapes from the
:class:`~repro.models.config.MoEModelConfig`, never these compute dims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.models.config import MoEModelConfig
from repro.models.experts import ExpertWeights, expert_forward, init_expert
from repro.models.gating import RouterOutput, route_tokens, softmax
from repro.rng import derive_rng

__all__ = [
    "DecodeState",
    "LayerWeights",
    "ReferenceMoEModel",
    "SequenceStateStore",
]

_EPS = 1e-6


@dataclass
class DecodeState:
    """Running per-layer attention context for incremental decoding.

    Attributes
    ----------
    position:
        Number of tokens processed so far (prefill + decode).
    ctx_sum:
        Per-layer running sums of normalised attention inputs, each of
        shape ``(d_model,)``; the attention stub uses their running mean
        as a causal context vector.
    input_ema:
        Last blended input representation (coherence chain across
        consecutive tokens), or ``None`` before the first token.
    """

    position: int = 0
    ctx_sum: list[np.ndarray] = field(default_factory=list)
    input_ema: np.ndarray | None = None

    def clone(self) -> "DecodeState":
        """Deep copy, used to evaluate lookaheads without mutating state."""
        return DecodeState(
            position=self.position,
            ctx_sum=[c.copy() for c in self.ctx_sum],
            input_ema=None if self.input_ema is None else self.input_ema.copy(),
        )


@dataclass(frozen=True)
class LayerWeights:
    """All weights of one transformer layer of the functional model."""

    w_attn: np.ndarray
    w_gate: np.ndarray
    routed: list[ExpertWeights]
    shared: list[ExpertWeights]


class ReferenceMoEModel:
    """A functional MoE transformer used as the routing/numerics substrate.

    Parameters
    ----------
    config:
        Architecture (layer/expert counts) — typically a Table II preset.
    d_model, d_ff:
        Compute dimensions of the numpy weights. These are deliberately
        small; timing always comes from ``config``'s paper-scale shapes.
    vocab_size:
        Size of the synthetic token vocabulary.
    seed:
        Root seed; all weights derive deterministically from it.
    gate_temperature:
        Softmax temperature of the router. Higher values flatten expert
        usage (MoE-like, Fig. 3a); lower values concentrate it.
    residual_scale:
        Magnitude of each residual update relative to the stream. Small
        values increase adjacent-layer similarity (and therefore the
        accuracy of gate-reuse prediction).
    input_coherence:
        Blend factor of consecutive token inputs, modelling the
        coherence of natural text: the effective input of token ``t`` is
        ``(1 - c) * emb(token_t) + c * input_{t-1}`` (renormalised).
        Zero gives i.i.d. inputs; values near one make consecutive
        decode steps route almost identically. This is the knob behind
        the temporal reuse correlation of paper Fig. 3b.
    """

    def __init__(
        self,
        config: MoEModelConfig,
        d_model: int = 32,
        d_ff: int = 64,
        vocab_size: int = 512,
        seed: int = 0,
        gate_temperature: float = 0.7,
        residual_scale: float = 0.12,
        input_coherence: float = 0.3,
    ) -> None:
        if d_model <= 0 or d_ff <= 0:
            raise ConfigError(f"compute dims must be positive, got ({d_model}, {d_ff})")
        if vocab_size <= 1:
            raise ConfigError(f"vocab_size must be > 1, got {vocab_size}")
        if gate_temperature <= 0:
            raise ConfigError(f"gate_temperature must be positive, got {gate_temperature}")
        if not 0.0 <= input_coherence < 1.0:
            raise ConfigError(
                f"input_coherence must be in [0, 1), got {input_coherence}"
            )
        self.config = config
        self.d_model = d_model
        self.d_ff = d_ff
        self.vocab_size = vocab_size
        self.seed = seed
        self.gate_temperature = gate_temperature
        self.residual_scale = residual_scale
        self.input_coherence = input_coherence

        emb_rng = derive_rng(seed, "model", config.name, "embedding")
        self._embedding = emb_rng.normal(0.0, 1.0, size=(vocab_size, d_model)).astype(
            np.float32
        )
        self._layers = [self._init_layer(layer) for layer in range(config.num_layers)]

    def _init_layer(self, layer: int) -> LayerWeights:
        cfg = self.config
        attn_rng = derive_rng(self.seed, "model", cfg.name, "attn", layer)
        gate_rng = derive_rng(self.seed, "model", cfg.name, "gate", layer)
        w_attn = attn_rng.normal(
            0.0, 1.0 / np.sqrt(self.d_model), size=(self.d_model, self.d_model)
        ).astype(np.float32)
        w_gate = gate_rng.normal(
            0.0, 1.0, size=(self.d_model, cfg.num_routed_experts)
        ).astype(np.float32) / np.sqrt(self.d_model, dtype=np.float32)
        routed = [
            _as_float32(
                init_expert(
                    derive_rng(self.seed, "model", cfg.name, "expert", layer, e),
                    self.d_model,
                    self.d_ff,
                )
            )
            for e in range(cfg.num_routed_experts)
        ]
        shared = [
            _as_float32(
                init_expert(
                    derive_rng(self.seed, "model", cfg.name, "shared", layer, s),
                    self.d_model,
                    self.d_ff,
                )
            )
            for s in range(cfg.num_shared_experts)
        ]
        return LayerWeights(w_attn=w_attn, w_gate=w_gate, routed=routed, shared=shared)

    # ------------------------------------------------------------------
    # basic blocks
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return self.config.num_layers

    def new_state(self) -> DecodeState:
        """Fresh decode state with empty per-layer attention context."""
        return DecodeState(
            position=0,
            ctx_sum=[
                np.zeros(self.d_model, dtype=np.float32)
                for _ in range(self.config.num_layers)
            ],
        )

    def embed(self, tokens: np.ndarray) -> np.ndarray:
        """Embed token ids (any of which are taken modulo the vocab)."""
        ids = np.asarray(tokens, dtype=np.int64) % self.vocab_size
        if ids.ndim != 1:
            raise ConfigError(f"tokens must be a 1-D id array, got shape {ids.shape}")
        return self._embedding[ids]

    def prepare_inputs(self, tokens: np.ndarray, state: DecodeState) -> np.ndarray:
        """Embed tokens and apply the input-coherence blend.

        Consecutive inputs are exponentially blended on the unit sphere:
        ``x_t = normalise((1 - c) * emb_t + c * x_{t-1})``. The chain
        continues across prefill/decode through ``state.input_ema``.
        ``state.position`` is *not* advanced here — the caller advances
        it once after all layers of the step have run (see
        :meth:`forward`).
        """
        emb = self.embed(tokens)
        c = self.input_coherence
        if c == 0.0:
            if emb.shape[0] > 0:
                state.input_ema = emb[-1].copy()
            return emb
        blended = np.empty_like(emb)
        prev = state.input_ema
        for t in range(emb.shape[0]):
            if prev is None:
                current = emb[t]
            else:
                current = (1.0 - c) * emb[t] + c * prev
            current = self.rms_norm(current)
            blended[t] = current
            prev = current
        if prev is not None:
            state.input_ema = prev.copy()
        return blended

    @staticmethod
    def rms_norm(x: np.ndarray) -> np.ndarray:
        """Root-mean-square normalisation along the last axis."""
        scale = np.sqrt(np.mean(np.square(x), axis=-1, keepdims=True) + _EPS)
        return x / scale

    def attention(
        self, x: np.ndarray, layer: int, state: DecodeState, update_state: bool = True
    ) -> np.ndarray:
        """Causal mean-context attention stub with residual connection.

        Each token attends to the running mean of all normalised inputs
        up to and including itself (continuing across prefill/decode via
        ``state``). The stub is linear-time, deterministic, and induces
        exactly the slow hidden-state drift the paper's prefetcher and
        MRS cache exploit.
        """
        normed = self.rms_norm(x)
        prior_count = state.position
        prior_sum = state.ctx_sum[layer]
        cumulative = np.cumsum(normed, axis=0) + prior_sum
        counts = prior_count + np.arange(1, x.shape[0] + 1, dtype=np.float32)
        ctx = cumulative / counts[:, None]
        if update_state:
            state.ctx_sum[layer] = cumulative[-1].copy()
        attn_out = ctx @ self._layers[layer].w_attn
        return x + self.residual_scale * attn_out

    def moe_input(self, h: np.ndarray) -> np.ndarray:
        """Pre-MoE normalisation (the ``z`` all expert kernels consume)."""
        return self.rms_norm(h)

    def gate_scores(self, z: np.ndarray, layer: int) -> np.ndarray:
        """Softmax router scores of ``layer`` for normalised input ``z``.

        Calling this with the *current* layer's ``z`` but a *future*
        layer index is exactly the paper's gate-reuse prediction
        (§IV-C, Fig. 6).
        """
        if not 0 <= layer < self.config.num_layers:
            raise ConfigError(f"layer {layer} out of range [0, {self.config.num_layers})")
        logits = (z @ self._layers[layer].w_gate) / self.gate_temperature
        return softmax(logits, axis=-1)

    def route(self, z: np.ndarray, layer: int) -> RouterOutput:
        """Route normalised tokens ``z`` through ``layer``'s top-K gate."""
        scores = self.gate_scores(z, layer)
        return route_tokens(scores, self.config.num_activated_experts)

    # ------------------------------------------------------------------
    # expert execution
    # ------------------------------------------------------------------
    def expert_forward(
        self, z_rows: np.ndarray, layer: int, expert_id: int
    ) -> np.ndarray:
        """Run selected token rows through one routed expert.

        This is the unit of work the scheduler assigns to CPU or GPU;
        numerics are device-independent by construction.
        """
        weights = self._layers[layer].routed[expert_id]
        return expert_forward(z_rows, weights)

    def shared_forward(self, z: np.ndarray, layer: int) -> np.ndarray:
        """Sum of all shared experts applied to every token (may be zero)."""
        out = np.zeros_like(z)
        for weights in self._layers[layer].shared:
            out += expert_forward(z, weights)
        return out

    def moe_forward(self, z: np.ndarray, layer: int, router: RouterOutput) -> np.ndarray:
        """Reference routed-expert combination (ascending expert id).

        The scheduled engines recombine per-expert outputs in the same
        ascending-id order, so their results match this reference to
        floating-point accumulation noise.
        """
        out = np.zeros_like(z)
        for expert_id in router.activated_experts():
            rows = router.tokens_for_expert(expert_id)
            weights = router.weights_for_expert(expert_id)
            expert_out = self.expert_forward(z[rows], layer, expert_id)
            np.add.at(out, rows, expert_out * weights[:, None].astype(z.dtype))
        return out

    def layer_forward(
        self, x: np.ndarray, layer: int, state: DecodeState
    ) -> tuple[np.ndarray, RouterOutput]:
        """Full reference layer: attention, gate, shared + routed experts."""
        h = self.attention(x, layer, state)
        z = self.moe_input(h)
        router = self.route(z, layer)
        moe_out = self.shared_forward(z, layer) + self.moe_forward(z, layer, router)
        return h + self.residual_scale * moe_out, router

    # ------------------------------------------------------------------
    # whole-model convenience
    # ------------------------------------------------------------------
    def forward(
        self, tokens: np.ndarray, state: DecodeState | None = None
    ) -> tuple[np.ndarray, list[RouterOutput], DecodeState]:
        """Run tokens through every layer; return hidden states + routing.

        Returns
        -------
        tuple
            ``(hidden, routers, state)`` where ``routers[l]`` is the
            routing decision of layer ``l`` for this batch.
        """
        if state is None:
            state = self.new_state()
        x = self.prepare_inputs(tokens, state)
        routers: list[RouterOutput] = []
        for layer in range(self.config.num_layers):
            x, router = self.layer_forward(x, layer, state)
            routers.append(router)
        state.position += int(np.asarray(tokens).shape[0])
        return x, routers, state

    def lm_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Project final hidden states back onto the vocabulary."""
        return self.rms_norm(hidden) @ self._embedding.T

    def greedy_next_token(self, hidden_last: np.ndarray) -> int:
        """Greedy next-token choice from the last position's hidden state."""
        logits = self.lm_logits(hidden_last[None, :])
        return int(np.argmax(logits[0]))

    def sample_next_token(
        self,
        hidden_last: np.ndarray,
        rng: np.random.Generator,
        temperature: float = 1.0,
    ) -> int:
        """Temperature sampling of the next token.

        Greedy decoding drives this functional model to a fixed point
        (it is a contraction), which would make decode routing
        unrealistically repetitive; sampled decoding keeps the
        hidden-state trajectory — and therefore expert routing —
        evolving the way natural text does.

        Logits are standardised before the temperature is applied; the
        raw logit scale grows with the compute width, which would
        otherwise make any fixed temperature effectively greedy.
        """
        if temperature <= 0:
            raise ConfigError(f"temperature must be positive, got {temperature}")
        logits = self.lm_logits(hidden_last[None, :])[0].astype(np.float64)
        spread = float(logits.std())
        if spread > 0:
            logits = (logits - logits.mean()) / spread
        logits = logits / temperature
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return int(rng.choice(self.vocab_size, p=probs))


class SequenceStateStore:
    """Per-sequence :class:`DecodeState` registry keyed by request id.

    Multi-request serving interleaves many independent sequences through
    one model; each needs its own attention context, coherence chain and
    position. The store owns that mapping and enforces the lifecycle:
    a sequence id is created once, consulted while its request decodes,
    and popped when the request finishes.
    """

    def __init__(self, model: "ReferenceMoEModel") -> None:
        self._model = model
        self._states: dict[object, DecodeState] = {}

    def __contains__(self, seq_id: object) -> bool:
        return seq_id in self._states

    def __len__(self) -> int:
        return len(self._states)

    def ids(self) -> list[object]:
        """Live sequence ids, in creation order."""
        return list(self._states)

    def create(self, seq_id: object) -> DecodeState:
        """Register a fresh decode state for ``seq_id``."""
        if seq_id in self._states:
            raise ConfigError(f"sequence {seq_id!r} already has a decode state")
        state = self._model.new_state()
        self._states[seq_id] = state
        return state

    def get(self, seq_id: object) -> DecodeState:
        """The live decode state of ``seq_id``."""
        try:
            return self._states[seq_id]
        except KeyError:
            raise ConfigError(f"no decode state for sequence {seq_id!r}") from None

    def pop(self, seq_id: object) -> DecodeState:
        """Remove and return the decode state of a finished sequence."""
        try:
            return self._states.pop(seq_id)
        except KeyError:
            raise ConfigError(f"no decode state for sequence {seq_id!r}") from None


def _as_float32(weights: ExpertWeights) -> ExpertWeights:
    """Cast an expert's weights to float32 to bound model memory."""
    return ExpertWeights(
        w_gate=weights.w_gate.astype(np.float32),
        w_up=weights.w_up.astype(np.float32),
        w_down=weights.w_down.astype(np.float32),
    )
