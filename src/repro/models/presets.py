"""Model presets matching Table II of the HybriMoE paper.

================  ========  ========  ==========
Field             Mixtral   Qwen2     DeepSeek
================  ========  ========  ==========
#Layers           32        28        26
#Shared Experts   0         1         2
#Routed Experts   8         64        64
#Activated        2         8         6
Shared size       /         3584x20480  2048x1408
Routed size       4096x14336  3584x18944  2048x1408
================  ========  ========  ==========

``*_sim`` helpers return layer-reduced copies for fast tests; the full
presets are used by the cost model and the benchmark harness.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.models.config import ExpertShape, MoEModelConfig

__all__ = [
    "mixtral_8x7b",
    "qwen2_57b_a14b",
    "deepseek_v2_lite",
    "MODEL_PRESETS",
    "get_preset",
]


def mixtral_8x7b() -> MoEModelConfig:
    """Mixtral-8x7B-Instruct: few large experts, no shared expert."""
    return MoEModelConfig(
        name="mixtral",
        num_layers=32,
        num_shared_experts=0,
        num_routed_experts=8,
        num_activated_experts=2,
        routed_expert_shape=ExpertShape(4096, 14336),
        shared_expert_shape=None,
    )


def qwen2_57b_a14b() -> MoEModelConfig:
    """Qwen2-57B-A14B-Instruct: many medium experts plus one shared."""
    return MoEModelConfig(
        name="qwen2",
        num_layers=28,
        num_shared_experts=1,
        num_routed_experts=64,
        num_activated_experts=8,
        routed_expert_shape=ExpertShape(3584, 18944),
        shared_expert_shape=ExpertShape(3584, 20480),
    )


def deepseek_v2_lite() -> MoEModelConfig:
    """DeepSeek-V2-Lite-Chat: many small experts plus two shared."""
    return MoEModelConfig(
        name="deepseek",
        num_layers=26,
        num_shared_experts=2,
        num_routed_experts=64,
        num_activated_experts=6,
        routed_expert_shape=ExpertShape(2048, 1408),
        shared_expert_shape=ExpertShape(2048, 1408),
    )


#: Registry of the three evaluated models, keyed by short name.
MODEL_PRESETS = {
    "mixtral": mixtral_8x7b,
    "qwen2": qwen2_57b_a14b,
    "deepseek": deepseek_v2_lite,
}


def get_preset(name: str, num_layers: int | None = None) -> MoEModelConfig:
    """Look up a preset by name, optionally overriding the layer count.

    Parameters
    ----------
    name:
        One of ``"mixtral"``, ``"qwen2"``, ``"deepseek"``.
    num_layers:
        When given, return a layer-reduced copy (used by fast tests and
        CI-sized benchmark runs).
    """
    try:
        factory = MODEL_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_PRESETS))
        raise ConfigError(f"unknown model preset {name!r} (known: {known})") from None
    config = factory()
    if num_layers is not None:
        config = config.with_layers(num_layers)
    return config
