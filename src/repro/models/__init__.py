"""Model substrate: functional MoE models with Table II architectures.

This package provides the *model side* of the reproduction:

- :mod:`repro.models.config` — architecture descriptions (layer counts,
  expert counts and shapes) matching Table II of the paper;
- :mod:`repro.models.presets` — the three evaluated models (Mixtral,
  Qwen2, DeepSeek) plus scaled-down simulation variants;
- :mod:`repro.models.gating` — softmax top-K routing;
- :mod:`repro.models.experts` — SwiGLU expert feed-forward kernels;
- :mod:`repro.models.model` — :class:`ReferenceMoEModel`, a functional
  numpy transformer-with-MoE whose hidden states flow through residual
  layers, so routing statistics (temporal reuse, adjacent-layer
  similarity, load imbalance) emerge from the same mechanism the paper
  exploits.
"""

from repro.models.config import ExpertShape, MoEModelConfig
from repro.models.experts import ExpertWeights, expert_forward, silu
from repro.models.gating import RouterOutput, route_tokens, softmax, top_k_indices
from repro.models.model import DecodeState, ReferenceMoEModel, SequenceStateStore
from repro.models.presets import (
    MODEL_PRESETS,
    deepseek_v2_lite,
    get_preset,
    mixtral_8x7b,
    qwen2_57b_a14b,
)

__all__ = [
    "ExpertShape",
    "MoEModelConfig",
    "ExpertWeights",
    "expert_forward",
    "silu",
    "RouterOutput",
    "route_tokens",
    "softmax",
    "top_k_indices",
    "DecodeState",
    "ReferenceMoEModel",
    "SequenceStateStore",
    "MODEL_PRESETS",
    "get_preset",
    "mixtral_8x7b",
    "qwen2_57b_a14b",
    "deepseek_v2_lite",
]
