"""SwiGLU expert feed-forward kernels.

Each expert is a SwiGLU block — the structure used by Mixtral, Qwen2 and
DeepSeek alike:

.. math::

    E(x) = \\left( \\mathrm{SiLU}(x W_g) \\odot (x W_u) \\right) W_d

Weights are plain numpy arrays; initialisation is variance-scaled so
hidden-state magnitudes stay stable as depth grows (the functional model
relies on a well-behaved residual stream for realistic routing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["silu", "ExpertWeights", "init_expert", "expert_forward"]


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation, ``x * sigmoid(x)``, computed stably."""
    # Clip the exponent argument to avoid overflow warnings for large
    # negative inputs; sigmoid saturates well before +-40.
    z = np.clip(x, -40.0, 40.0)
    return x / (1.0 + np.exp(-z))


@dataclass(frozen=True)
class ExpertWeights:
    """Weights of one SwiGLU expert.

    Attributes
    ----------
    w_gate:
        Gate projection, shape ``(d_model, d_ff)``.
    w_up:
        Up projection, shape ``(d_model, d_ff)``.
    w_down:
        Down projection, shape ``(d_ff, d_model)``.
    """

    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray

    def __post_init__(self) -> None:
        d_model, d_ff = self.w_gate.shape
        if self.w_up.shape != (d_model, d_ff):
            raise ConfigError(
                f"w_up shape {self.w_up.shape} != w_gate shape {(d_model, d_ff)}"
            )
        if self.w_down.shape != (d_ff, d_model):
            raise ConfigError(
                f"w_down shape {self.w_down.shape} != expected {(d_ff, d_model)}"
            )

    @property
    def d_model(self) -> int:
        return int(self.w_gate.shape[0])

    @property
    def d_ff(self) -> int:
        return int(self.w_gate.shape[1])

    @property
    def param_count(self) -> int:
        return self.w_gate.size + self.w_up.size + self.w_down.size


def init_expert(rng: np.random.Generator, d_model: int, d_ff: int) -> ExpertWeights:
    """Initialise one expert with variance-scaled Gaussian weights.

    The scale is chosen so that for unit-RMS input the expert output has
    RMS well below one; the residual stream then drifts slowly across
    layers, which is exactly the property the paper's prefetcher exploits
    (adjacent layers see similar hidden states).
    """
    if d_model <= 0 or d_ff <= 0:
        raise ConfigError(f"expert dims must be positive, got ({d_model}, {d_ff})")
    in_scale = 1.0 / np.sqrt(d_model)
    out_scale = 1.0 / np.sqrt(d_ff)
    return ExpertWeights(
        w_gate=rng.normal(0.0, in_scale, size=(d_model, d_ff)),
        w_up=rng.normal(0.0, in_scale, size=(d_model, d_ff)),
        w_down=rng.normal(0.0, out_scale, size=(d_ff, d_model)),
    )


def expert_forward(x: np.ndarray, weights: ExpertWeights) -> np.ndarray:
    """Run tokens through one expert.

    Parameters
    ----------
    x:
        Token activations of shape ``(n_tokens, d_model)``.
    weights:
        The expert's SwiGLU weights.

    Returns
    -------
    numpy.ndarray
        Expert output of shape ``(n_tokens, d_model)``.
    """
    if x.ndim != 2 or x.shape[1] != weights.d_model:
        raise ConfigError(
            f"input shape {x.shape} incompatible with expert d_model={weights.d_model}"
        )
    gate = silu(x @ weights.w_gate)
    up = x @ weights.w_up
    return (gate * up) @ weights.w_down
