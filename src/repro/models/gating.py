"""Softmax top-K routing for MoE layers.

Implements the gating function of eq. (1) in the paper:

.. math::

    y = \\sum_i \\mathrm{Softmax}(\\mathrm{TopK}(x W_g))_i \\, E_i(x)

Scores are computed with a full softmax over expert logits; the top-K
experts per token are selected and their weights renormalised so each
token's expert weights sum to one (the Mixtral convention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["softmax", "top_k_indices", "RouterOutput", "route_tokens"]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries per row, sorted by score desc.

    Parameters
    ----------
    scores:
        Array of shape ``(n_tokens, n_experts)``.
    k:
        Number of experts to select per token.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n_tokens, k)``. Ties are broken by
        expert index (lower index wins) so results are deterministic.
    """
    if scores.ndim != 2:
        raise ConfigError(f"scores must be 2-D (tokens, experts), got {scores.ndim}-D")
    n_experts = scores.shape[1]
    if not 0 < k <= n_experts:
        raise ConfigError(f"k must be in [1, {n_experts}], got {k}")
    # argsort on (-score, index): stable sort on negated scores gives
    # deterministic tie-breaking by expert index.
    order = np.argsort(-scores, axis=1, kind="stable")
    return order[:, :k]


@dataclass(frozen=True)
class RouterOutput:
    """Routing decision for one MoE layer over a batch of tokens.

    Attributes
    ----------
    scores:
        Full softmax scores, shape ``(n_tokens, n_experts)``.
    topk_idx:
        Selected expert indices per token, shape ``(n_tokens, k)``.
    topk_weights:
        Renormalised weights per selected expert, shape ``(n_tokens, k)``;
        rows sum to one.
    loads:
        Number of tokens routed to each expert, shape ``(n_experts,)``.
    """

    scores: np.ndarray
    topk_idx: np.ndarray
    topk_weights: np.ndarray
    loads: np.ndarray

    @property
    def n_tokens(self) -> int:
        return int(self.scores.shape[0])

    @property
    def n_experts(self) -> int:
        return int(self.scores.shape[1])

    @property
    def k(self) -> int:
        return int(self.topk_idx.shape[1])

    def activated_experts(self) -> list[int]:
        """Expert ids with at least one routed token, ascending."""
        return [int(e) for e in np.flatnonzero(self.loads > 0)]

    def mean_scores(self) -> np.ndarray:
        """Per-expert scores averaged over tokens (used by the MRS cache)."""
        return self.scores.mean(axis=0)

    def tokens_for_expert(self, expert_id: int) -> np.ndarray:
        """Row indices of tokens routed to ``expert_id``."""
        rows, _ = np.nonzero(self.topk_idx == expert_id)
        return rows

    def weights_for_expert(self, expert_id: int) -> np.ndarray:
        """Routing weights of the tokens routed to ``expert_id``."""
        rows, cols = np.nonzero(self.topk_idx == expert_id)
        return self.topk_weights[rows, cols]


def route_tokens(scores: np.ndarray, k: int) -> RouterOutput:
    """Select the top-``k`` experts per token and renormalise weights.

    Parameters
    ----------
    scores:
        Softmax scores of shape ``(n_tokens, n_experts)``; rows should
        sum to one (a full softmax output).
    k:
        Number of experts activated per token.
    """
    topk_idx = top_k_indices(scores, k)
    rows = np.arange(scores.shape[0])[:, None]
    selected = scores[rows, topk_idx]
    total = selected.sum(axis=1, keepdims=True)
    # Guard against a degenerate all-zero row (cannot happen with softmax
    # input, but keeps the function total for arbitrary score matrices).
    total = np.where(total <= 0.0, 1.0, total)
    topk_weights = selected / total
    loads = np.bincount(topk_idx.ravel(), minlength=scores.shape[1])
    return RouterOutput(
        scores=scores,
        topk_idx=topk_idx,
        topk_weights=topk_weights,
        loads=loads,
    )
