"""Version information for the HybriMoE reproduction package."""

__version__ = "0.1.0"

#: Paper reproduced by this package.
PAPER_TITLE = (
    "HybriMoE: Hybrid CPU-GPU Scheduling and Cache Management "
    "for Efficient MoE Inference"
)
PAPER_VENUE = "DAC 2025"
PAPER_ARXIV = "2504.05897"
