"""Impact-driven prefetching (paper §IV-C, Fig. 6).

Between MoE phases the PCIe link is often idle. HybriMoE fills that
window by preloading experts of *upcoming* layers — but unlike prior
work, which prefetches the next layer greedily, it decides **which
layer's experts** to prioritise by *simulating the impact*: for each
candidate expert of layers ``l+1 .. l+depth`` it runs the hybrid
schedule simulation with and without that expert cached, and ranks
candidates by the expected makespan reduction, discounted by prediction
confidence (gate-reuse accuracy decays with distance).

Predictions reuse the gating weights of the future layers applied to
the current hidden state — exactly the mechanism of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hybrid_scheduler import HybridScheduler
from repro.errors import SchedulingError

__all__ = ["PredictedLayer", "PrefetchDecision", "ImpactDrivenPrefetcher"]


@dataclass(frozen=True)
class PredictedLayer:
    """Gate-reuse prediction for one future layer.

    Attributes
    ----------
    layer:
        Future layer index.
    scores:
        Predicted per-expert routing scores (mean over tokens), shape
        ``(n_experts,)``.
    n_tokens:
        Tokens the step will route (same as the current step's).
    cached_experts:
        Expert ids of that layer currently resident or in flight.
    """

    layer: int
    scores: np.ndarray
    n_tokens: int
    cached_experts: frozenset[int]


@dataclass(frozen=True)
class PrefetchDecision:
    """One selected prefetch with its estimated benefit."""

    layer: int
    expert: int
    gain: float
    cost: float
    distance: int


class ImpactDrivenPrefetcher:
    """Rank prefetch candidates by simulated makespan reduction.

    Parameters
    ----------
    scheduler:
        The hybrid scheduler whose simulation estimates impact (shares
        the planner's *estimated* cost oracle).
    transfer_time_fn:
        Callable ``() -> float`` giving the estimated per-expert
        transfer duration (budget accounting).
    num_activated:
        Top-K of the model; predicted activation sets take the top-K
        experts by predicted score.
    lookahead:
        How many future layers to consider (the paper uses 3).
    confidence_decay:
        Multiplicative per-layer-distance discount on gains, modelling
        the decay of gate-reuse prediction accuracy.
    min_gain:
        Candidates whose discounted gain is not strictly above this
        threshold are dropped.
    """

    def __init__(
        self,
        scheduler: HybridScheduler,
        transfer_time_fn,
        num_activated: int,
        lookahead: int = 3,
        confidence_decay: float = 0.8,
        min_gain: float = 0.0,
    ) -> None:
        if lookahead < 1:
            raise SchedulingError(f"lookahead must be >= 1, got {lookahead}")
        if not 0.0 < confidence_decay <= 1.0:
            raise SchedulingError(
                f"confidence_decay must be in (0, 1], got {confidence_decay}"
            )
        if num_activated < 1:
            raise SchedulingError(f"num_activated must be >= 1, got {num_activated}")
        self.scheduler = scheduler
        self.transfer_time_fn = transfer_time_fn
        self.num_activated = num_activated
        self.lookahead = lookahead
        self.confidence_decay = confidence_decay
        self.min_gain = min_gain

    # ------------------------------------------------------------------
    def predicted_activation(
        self, prediction: PredictedLayer
    ) -> list[tuple[int, int]]:
        """Estimated ``(expert, load)`` set for a predicted layer.

        The top-K experts by predicted score are assumed activated.
        Loads are apportioned from scores: each of the ``n_tokens``
        tokens contributes K expert slots, distributed proportionally
        to the predicted scores of the selected experts (minimum 1).
        """
        scores = np.asarray(prediction.scores, dtype=np.float64)
        k = min(self.num_activated, scores.size)
        top = np.argsort(-scores, kind="stable")[:k]
        total_slots = prediction.n_tokens * k
        weights = scores[top]
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            shares = np.full(k, 1.0 / k)
        else:
            shares = weights / weight_sum
        loads = np.maximum(1, np.round(shares * total_slots).astype(int))
        # Cap at n_tokens: an expert cannot receive more tokens than exist.
        loads = np.minimum(loads, prediction.n_tokens)
        return [(int(e), int(load)) for e, load in zip(top, loads)]

    def evaluate_candidates(
        self, predictions: list[PredictedLayer], current_layer: int
    ) -> list[PrefetchDecision]:
        """Simulate the impact of each candidate expert, best first."""
        decisions: list[PrefetchDecision] = []
        for prediction in predictions:
            distance = prediction.layer - current_layer
            if distance < 1 or distance > self.lookahead:
                continue
            activated = self.predicted_activation(prediction)
            cached = set(prediction.cached_experts)
            candidates = [e for e, _ in activated if e not in cached]
            if not candidates:
                continue
            base = self.scheduler.simulate_makespan(
                activated, cached, prediction.n_tokens, quick=True
            )
            confidence = self.confidence_decay ** (distance - 1)
            for expert in candidates:
                with_expert = self.scheduler.simulate_makespan(
                    activated, cached | {expert}, prediction.n_tokens, quick=True
                )
                gain = (base - with_expert) * confidence
                if gain > self.min_gain:
                    decisions.append(
                        PrefetchDecision(
                            layer=prediction.layer,
                            expert=expert,
                            gain=gain,
                            cost=self.transfer_time_fn(),
                            distance=distance,
                        )
                    )
        decisions.sort(key=lambda d: (-d.gain, d.distance, d.layer, d.expert))
        return decisions

    def select(
        self,
        predictions: list[PredictedLayer],
        current_layer: int,
        budget_s: float,
        layer_span_s: float = float("inf"),
        backlog_s: float = 0.0,
    ) -> list[PrefetchDecision]:
        """Greedy selection of prefetches within budget and lead time.

        Two constraints gate each candidate:

        - **budget**: total prefetch transfer time stays within the
          estimated idle window of the PCIe link;
        - **lead time**: a transfer must be able to *finish* before its
          target layer's MoE phase, i.e. within ``distance *
          layer_span_s`` minus the link's current backlog. A prefetch
          that lands late merely stalls the GPU (the planner would have
          done better sending the expert to the CPU), so it is skipped.
        """
        if budget_s <= 0:
            return []
        if backlog_s < 0:
            raise SchedulingError(f"backlog_s must be non-negative, got {backlog_s}")
        chosen: list[PrefetchDecision] = []
        spent = 0.0
        for decision in self.evaluate_candidates(predictions, current_layer):
            if spent + decision.cost > budget_s:
                continue
            finish_offset = backlog_s + spent + decision.cost
            if finish_offset > decision.distance * layer_span_s:
                continue
            chosen.append(decision)
            spent += decision.cost
        return chosen
