"""Impact-driven prefetching (paper §IV-C, Fig. 6).

Between MoE phases the PCIe link is often idle. HybriMoE fills that
window by preloading experts of *upcoming* layers — but unlike prior
work, which prefetches the next layer greedily, it decides **which
layer's experts** to prioritise by *simulating the impact*: for each
candidate expert of layers ``l+1 .. l+depth`` it runs the hybrid
schedule simulation with and without that expert cached, and ranks
candidates by the expected makespan reduction, discounted by prediction
confidence (gate-reuse accuracy decays with distance).

Predictions reuse the gating weights of the future layers applied to
the current hidden state — exactly the mechanism of Fig. 6.

**Fast path.** A naive implementation pays a full with/without
simulation pair per candidate expert per lookahead layer, which makes
the prefetcher the planner's dominant cost in decode. Two mechanisms
cut that down without changing a single decision at default settings:

- *delta screening*: each candidate is first scored by a cheap
  timeline delta bound — the baseline makespan minus a provable lower
  bound on the with-expert makespan (built from the same duration
  floats the simulation would add). When even that optimistic gain
  cannot clear ``min_gain``, the exact simulation is skipped; the
  bound is one-sided, so screening can only drop candidates the exact
  path would also have dropped.
- *memoized simulations*: the scheduler's plan memo covers the quick
  impact simulations, and decode steps repeat near-identical predicted
  routing, so the surviving exact simulations are usually cache hits.

``exact_top_m`` additionally caps how many screening survivors get the
full simulation (best screening bound first). That is an *approximation*
— survivors beyond the cap are dropped — so it is off (``None``) by
default and exists for latency-critical deployments that accept small
decision drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hybrid_scheduler import HybridScheduler
from repro.errors import SchedulingError

__all__ = ["PredictedLayer", "PrefetchDecision", "ImpactDrivenPrefetcher"]


@dataclass(frozen=True)
class PredictedLayer:
    """Gate-reuse prediction for one future layer.

    Attributes
    ----------
    layer:
        Future layer index.
    scores:
        Predicted per-expert routing scores (mean over tokens), shape
        ``(n_experts,)``.
    n_tokens:
        Tokens the step will route (same as the current step's).
    cached_experts:
        Expert ids of that layer currently resident or in flight.
    spilled_experts:
        Expert ids of that layer resident in *no* memory tier (tiered
        platforms only): their impact simulations carry the disk-fetch
        surcharge, and a granted prefetch first stages them into DRAM.
    confidence:
        Calibrated confidence of a gate-backed prediction
        (:class:`~repro.prediction.gate.ConfidenceGate`), or ``None``
        for the historical heuristic prediction. When set it replaces
        the distance-decay discount on gains and licenses distances
        beyond the heuristic ``lookahead``.
    """

    layer: int
    scores: np.ndarray
    n_tokens: int
    cached_experts: frozenset[int]
    spilled_experts: frozenset[int] = frozenset()
    confidence: float | None = None


@dataclass(frozen=True)
class PrefetchDecision:
    """One selected prefetch with its estimated benefit."""

    layer: int
    expert: int
    gain: float
    cost: float
    distance: int
    confidence: float | None = None


class ImpactDrivenPrefetcher:
    """Rank prefetch candidates by simulated makespan reduction.

    Parameters
    ----------
    scheduler:
        The hybrid scheduler whose simulation estimates impact (shares
        the planner's *estimated* cost oracle).
    transfer_time_fn:
        Callable ``() -> float`` giving the estimated per-expert
        transfer duration (budget accounting).
    num_activated:
        Top-K of the model; predicted activation sets take the top-K
        experts by predicted score.
    lookahead:
        How many future layers to consider (the paper uses 3).
    confidence_decay:
        Multiplicative per-layer-distance discount on gains, modelling
        the decay of gate-reuse prediction accuracy.
    min_gain:
        Candidates whose discounted gain is not strictly above this
        threshold are dropped.
    delta_screen:
        Screen candidates with the cheap delta bound before paying for
        an exact impact simulation. Decision-preserving (the bound is
        one-sided); disable only to benchmark the unscreened path.
    exact_top_m:
        When set, at most this many screening survivors (best bound
        first) receive the exact simulation; the rest are dropped. An
        approximation knob — ``None`` (default) keeps decisions exact.
    disk_fetch_s:
        Estimated disk -> DRAM read time per spilled expert (tiered
        platforms; 0 keeps the two-tier behaviour). Impact simulations
        then cost the full disk -> CPU -> GPU chain, and prefetching a
        spilled expert is charged ``disk_fetch_s`` of extra lead time.
    fast_path:
        Screen with the scheduler's *batched* bound computation
        (:meth:`~repro.core.hybrid_scheduler.HybridScheduler.quick_makespan_lower_bounds`),
        which hoists the shared sorts and memoizes whole prediction
        batches. Bounds — and therefore decisions — are bit-identical
        either way; ``False`` keeps the per-candidate calls as a perf
        baseline (``EngineConfig.engine_fast_path`` threads here).
    """

    def __init__(
        self,
        scheduler: HybridScheduler,
        transfer_time_fn,
        num_activated: int,
        lookahead: int = 3,
        confidence_decay: float = 0.8,
        min_gain: float = 0.0,
        delta_screen: bool = True,
        exact_top_m: int | None = None,
        disk_fetch_s: float = 0.0,
        fast_path: bool = True,
    ) -> None:
        if lookahead < 1:
            raise SchedulingError(f"lookahead must be >= 1, got {lookahead}")
        if not 0.0 < confidence_decay <= 1.0:
            raise SchedulingError(
                f"confidence_decay must be in (0, 1], got {confidence_decay}"
            )
        if num_activated < 1:
            raise SchedulingError(f"num_activated must be >= 1, got {num_activated}")
        if exact_top_m is not None:
            if exact_top_m < 1:
                raise SchedulingError(f"exact_top_m must be >= 1, got {exact_top_m}")
            if not delta_screen:
                raise SchedulingError("exact_top_m requires delta_screen=True")
        if disk_fetch_s < 0:
            raise SchedulingError(
                f"disk_fetch_s must be non-negative, got {disk_fetch_s}"
            )
        self.scheduler = scheduler
        self.transfer_time_fn = transfer_time_fn
        self.num_activated = num_activated
        self.lookahead = lookahead
        self.confidence_decay = confidence_decay
        self.min_gain = min_gain
        self.delta_screen = delta_screen
        self.exact_top_m = exact_top_m
        self.disk_fetch_s = disk_fetch_s
        self.fast_path = fast_path

    # ------------------------------------------------------------------
    def predicted_activation(
        self, prediction: PredictedLayer
    ) -> list[tuple[int, int]]:
        """Estimated ``(expert, load)`` set for a predicted layer.

        The top-K experts by predicted score are assumed activated.
        Loads are apportioned from scores: each of the ``n_tokens``
        tokens contributes K expert slots, distributed proportionally
        to the predicted scores of the selected experts (minimum 1).
        """
        scores = np.asarray(prediction.scores, dtype=np.float64)
        k = min(self.num_activated, scores.size)
        top = np.argsort(-scores, kind="stable")[:k]
        if self.fast_path and prediction.n_tokens == 1:
            # Decode: the `min(load, n_tokens)` cap below forces every
            # load to exactly 1, so the share apportionment is dead
            # arithmetic — skip it.
            return [(int(e), 1) for e in top]
        total_slots = prediction.n_tokens * k
        weights = scores[top]
        weight_sum = float(weights.sum())
        if weight_sum <= 0:
            shares = np.full(k, 1.0 / k)
        else:
            shares = weights / weight_sum
        loads = np.maximum(1, np.round(shares * total_slots).astype(int))
        # Cap at n_tokens: an expert cannot receive more tokens than exist.
        loads = np.minimum(loads, prediction.n_tokens)
        return [(int(e), int(load)) for e, load in zip(top, loads)]

    def evaluate_candidates(
        self, predictions: list[PredictedLayer], current_layer: int
    ) -> list[PrefetchDecision]:
        """Simulate the impact of each candidate expert, best first.

        A prediction within ``lookahead`` is the historical heuristic:
        its gain is discounted by ``confidence_decay ** (distance-1)``.
        A prediction carrying a gate-calibrated ``confidence`` uses
        that value instead — and is the only kind admitted *beyond*
        ``lookahead`` (predictor-earned lead time).
        """
        prepared: list[tuple[PredictedLayer, int, list, set, list]] = []
        for prediction in predictions:
            distance = prediction.layer - current_layer
            if distance < 1:
                continue
            if prediction.confidence is None and distance > self.lookahead:
                continue
            activated = self.predicted_activation(prediction)
            cached = set(prediction.cached_experts)
            candidates = [e for e, _ in activated if e not in cached]
            if not candidates:
                continue
            prepared.append((prediction, distance, activated, cached, candidates))
        if not prepared:
            return []
        screens = None
        if self.fast_path:
            # Bases and screening bounds for *every* predicted layer
            # from one batched, memoized pass — the separate
            # per-prediction base simulation and per-candidate bound
            # calls repeat the same input validation and sorts. Floats
            # are bit-identical to the per-layer calls.
            screens = self.scheduler.screen_prediction_batch(
                [
                    (
                        activated,
                        cached,
                        prediction.n_tokens,
                        candidates if self.delta_screen else [],
                        prediction.spilled_experts,
                    )
                    for prediction, _, activated, cached, candidates in prepared
                ],
                disk_fetch_s=self.disk_fetch_s,
            )
        decisions: list[PrefetchDecision] = []
        for index, (prediction, distance, activated, cached, candidates) in enumerate(
            prepared
        ):
            spilled = prediction.spilled_experts
            bounds = None
            if screens is not None:
                base, bounds = screens[index]
            else:
                base = self.scheduler.simulate_makespan(
                    activated, cached, prediction.n_tokens, quick=True,
                    spilled=spilled, disk_fetch_s=self.disk_fetch_s,
                )
            if prediction.confidence is not None:
                confidence = prediction.confidence
            else:
                confidence = self.confidence_decay ** (distance - 1)
            survivors = self._screen(
                activated, cached, candidates, base, confidence,
                prediction.n_tokens, spilled, bounds=bounds,
            )
            with_makespans = None
            if self.fast_path and survivors:
                # One batched call hoists the shared sorts/validation
                # and memoizes the whole survivor set; values are
                # bit-identical to the per-expert simulations below.
                with_makespans = self.scheduler.quick_makespans_with(
                    activated, cached, prediction.n_tokens, survivors,
                    spilled=spilled, disk_fetch_s=self.disk_fetch_s,
                )
            for expert in survivors:
                # Simulating `expert` as cached: its own spill state is
                # moot (the scheduler intersects spilled with uncached),
                # but the rest of the layer keeps its surcharges.
                if with_makespans is not None:
                    with_expert = with_makespans[expert]
                else:
                    with_expert = self.scheduler.simulate_makespan(
                        activated, cached | {expert}, prediction.n_tokens, quick=True,
                        spilled=spilled, disk_fetch_s=self.disk_fetch_s,
                    )
                gain = (base - with_expert) * confidence
                if gain > self.min_gain:
                    cost = self.transfer_time_fn()
                    if expert in spilled:
                        # A spilled expert rides the disk link first —
                        # more lead time and more budget consumed.
                        cost += self.disk_fetch_s
                    decisions.append(
                        PrefetchDecision(
                            layer=prediction.layer,
                            expert=expert,
                            gain=gain,
                            cost=cost,
                            distance=distance,
                            confidence=prediction.confidence,
                        )
                    )
        decisions.sort(key=lambda d: (-d.gain, d.distance, d.layer, d.expert))
        return decisions

    def _screen(
        self,
        activated: list[tuple[int, int]],
        cached: set[int],
        candidates: list[int],
        base: float,
        confidence: float,
        n_tokens: int,
        spilled: frozenset[int] = frozenset(),
        bounds: dict[int, float] | None = None,
    ) -> list[int]:
        """Candidates whose exact simulation could still clear min_gain.

        The upper bound on a candidate's gain is
        ``(base - lower_bound(with-expert makespan)) * confidence``.
        A candidate is dropped only when even that bound cannot exceed
        ``min_gain`` — the exact path would have dropped it too, so the
        surviving set yields bit-identical decisions. ``exact_top_m``
        then optionally caps the survivors (approximation, off by
        default). ``bounds`` supplies precomputed screening bounds
        (:meth:`~repro.core.hybrid_scheduler.HybridScheduler.quick_screen`);
        otherwise they are fetched here.
        """
        if not self.delta_screen:
            return list(candidates)
        if bounds is None and self.fast_path:
            bounds = self.scheduler.quick_makespan_lower_bounds(
                activated, cached, n_tokens, candidates,
                spilled=spilled, disk_fetch_s=self.disk_fetch_s,
            )
        scored: list[tuple[float, int]] = []
        for expert in candidates:
            if bounds is not None:
                bound = bounds[expert]
            else:
                bound = self.scheduler.quick_makespan_lower_bound(
                    activated, cached | {expert}, n_tokens,
                    spilled=spilled, disk_fetch_s=self.disk_fetch_s,
                )
            gain_bound = (base - bound) * confidence
            if gain_bound > self.min_gain:
                scored.append((gain_bound, expert))
        if self.exact_top_m is not None and len(scored) > self.exact_top_m:
            scored.sort(key=lambda pair: (-pair[0], pair[1]))
            scored = scored[: self.exact_top_m]
        # Original candidate order is preserved so the exact evaluation
        # sequence matches the unscreened path.
        keep = {expert for _, expert in scored}
        return [expert for expert in candidates if expert in keep]

    def select(
        self,
        predictions: list[PredictedLayer],
        current_layer: int,
        budget_s: float,
        layer_span_s: float = float("inf"),
        backlog_s: float = 0.0,
    ) -> list[PrefetchDecision]:
        """Greedy selection of prefetches within budget and lead time.

        Two constraints gate each candidate:

        - **budget**: total prefetch transfer time stays within the
          estimated idle window of the PCIe link;
        - **lead time**: a transfer must be able to *finish* before its
          target layer's MoE phase, i.e. within ``distance *
          layer_span_s`` minus the link's current backlog. A prefetch
          that lands late merely stalls the GPU (the planner would have
          done better sending the expert to the CPU), so it is skipped.
        """
        if budget_s <= 0:
            return []
        if backlog_s < 0:
            raise SchedulingError(f"backlog_s must be non-negative, got {backlog_s}")
        chosen: list[PrefetchDecision] = []
        spent = 0.0
        for decision in self.evaluate_candidates(predictions, current_layer):
            if spent + decision.cost > budget_s:
                continue
            finish_offset = backlog_s + spent + decision.cost
            if finish_offset > decision.distance * layer_span_s:
                continue
            chosen.append(decision)
            spent += decision.cost
        return chosen
