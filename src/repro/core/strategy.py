"""The HybriMoE strategy: all three techniques with ablation toggles.

``HybriMoEStrategy(scheduling=…, prefetching=…, caching=…)`` maps
directly onto the rows of the paper's Table III:

===============================  ==========================================
Configuration                    Toggles
===============================  ==========================================
Baseline (kTransformers-like)    all False
Baseline + Scheduling            ``scheduling=True``
Baseline + Prefetching           ``prefetching=True``
Baseline + Caching               ``caching=True``
All (HybriMoE)                   all True
===============================  ==========================================

- **scheduling** — replace the fixed mapping with the schedule-
  simulation planner of §IV-B (transfer search + CPU work stealing);
- **prefetching** — enable the impact-driven prefetcher of §IV-C;
- **caching** — replace static frequency pinning with the dynamic
  MRS cache of §IV-D.
"""

from __future__ import annotations

from repro.cache.lfu import LFUPolicy
from repro.cache.mrs import MRSPolicy
from repro.cache.sharded import CacheSpec
from repro.core.fixed_plan import fixed_mapping_plan
from repro.core.prefetch import ImpactDrivenPrefetcher, PredictedLayer
from repro.core.tasks import ExecutionPlan
from repro.engine.strategy_base import LayerContext, Strategy

__all__ = ["HybriMoEStrategy"]


class HybriMoEStrategy(Strategy):
    """Hybrid scheduling + impact prefetching + MRS caching (§IV)."""

    def __init__(
        self,
        scheduling: bool = True,
        prefetching: bool = True,
        caching: bool = True,
        prefetch_admit_margin: float = 0.25,
    ) -> None:
        super().__init__()
        self.scheduling = scheduling
        self.prefetching = prefetching
        self.caching = caching
        self.prefetch_admit_margin = prefetch_admit_margin
        self._prefetcher: ImpactDrivenPrefetcher | None = None
        parts = [
            flag_name
            for flag_name, enabled in (
                ("sched", scheduling),
                ("prefetch", prefetching),
                ("cache", caching),
            )
            if enabled
        ]
        self.name = "hybrimoe" if all(
            (scheduling, prefetching, caching)
        ) else "hybrimoe[" + "+".join(parts or ["baseline"]) + "]"

    # ------------------------------------------------------------------
    def setup(self) -> None:
        runtime = self._runtime()
        if self.prefetching:
            shape = runtime.model_config.routed_expert_shape
            self._prefetcher = ImpactDrivenPrefetcher(
                scheduler=runtime.scheduler,
                transfer_time_fn=lambda: runtime.cost_estimated.transfer_time(shape),
                num_activated=runtime.model_config.num_activated_experts,
                lookahead=runtime.config.prefetch_lookahead,
                confidence_decay=runtime.config.prefetch_confidence_decay,
                exact_top_m=runtime.config.prefetch_exact_top_m,
                disk_fetch_s=runtime.disk_fetch_est_s,
                fast_path=runtime.config.engine_fast_path,
            )

    def on_costs_changed(self) -> None:
        # The prefetcher froze the disk-read lead-time estimate at
        # setup; under a disk-stall window the runtime's recomputed
        # estimate includes the stall, so budgeting stays honest. The
        # transfer estimate needs nothing — it is a live lambda over
        # the (mutated-in-place) estimated cost model.
        if self._prefetcher is not None:
            self._prefetcher.disk_fetch_s = self._runtime().disk_fetch_est_s

    def cache_spec(self) -> CacheSpec:
        runtime = self._runtime()
        capacity = runtime.capacity
        ranking = runtime.frequency_ranking()
        if self.caching:
            def primed_mrs() -> MRSPolicy:
                policy = MRSPolicy(
                    alpha=runtime.config.mrs_alpha,
                    top_p=2 * runtime.model_config.num_activated_experts,
                )
                # Prime MRS priorities from the warmup phase so the first
                # eviction decisions already reflect observed scores — the
                # paper's warmup collects exactly this signal (§IV-A).
                clock = 0
                for step in runtime.warmup_trace.steps:
                    for routing in step.layers:
                        clock += 1
                        policy.on_scores(routing.layer, routing.mean_scores, clock)
                return policy

            return CacheSpec(capacity, primed_mrs, warm=ranking)
        if self.prefetching:
            # Static pinning plus a small scratch ring where prefetched
            # experts land before use. Like the untracked staging buffers
            # every baseline uses for on-demand loads, the scratch is not
            # charged against the expert-cache budget.
            k = runtime.model_config.num_activated_experts
            scratch = max(1, 2 * k * runtime.config.prefetch_lookahead)
            return CacheSpec(scratch, LFUPolicy, pinned=ranking[:capacity])
        # Static frequency pinning (the kTransformers cache behaviour).
        return CacheSpec(0, LFUPolicy, pinned=ranking[:capacity])

    # ------------------------------------------------------------------
    def observe_scores(self, ctx: LayerContext) -> None:
        if self.caching:
            super().observe_scores(ctx)

    def plan_layer(self, ctx: LayerContext) -> ExecutionPlan:
        runtime = self._runtime()
        if self.scheduling:
            return runtime.scheduler.plan(
                layer=ctx.layer,
                activated=list(ctx.activated),
                cached_experts=set(ctx.cached_experts),
                n_tokens=ctx.n_tokens,
                pcie_backlog=ctx.pcie_backlog,
                include_shared=ctx.include_shared,
                inflight=ctx.inflight_dict(),
                cpu_backlog=ctx.cpu_backlog,
                spilled=ctx.spilled_experts,
                disk_fetch_s=ctx.disk_fetch_s,
            )
        return fixed_mapping_plan(
            layer=ctx.layer,
            activated=list(ctx.activated),
            cached_experts=set(ctx.cached_experts),
            n_tokens=ctx.n_tokens,
            stage=ctx.stage,
            oracle=runtime.estimated_oracle(ctx.n_tokens),
            include_shared=ctx.include_shared,
        )

    def after_layer(self, ctx: LayerContext, plan: ExecutionPlan) -> None:
        if not self.caching:
            # Static pinning: transferred experts were scratch loads;
            # the pinned set does not change.
            return
        runtime = self._runtime()
        if ctx.stage == "decode":
            # Inter-iteration cache management (§IV-D): transferred
            # experts join the cache, and CPU-computed misses are
            # *refilled* in the background — an off-critical-path PCIe
            # copy so the next iterations hit. Both paths are
            # admission-controlled by MRS priority.
            for transfer in plan.transfers:
                runtime.cache.insert_if_better((transfer.layer, transfer.expert))
            self._refill_decode_misses(ctx, plan)
        # Prefill loads are transient layer-by-layer traffic, not
        # iteration-level reuse signal; they bypass the cache.

    def _refill_decode_misses(self, ctx: LayerContext, plan: ExecutionPlan) -> None:
        """Background-load CPU-computed misses the MRS policy wants kept.

        Strictly opportunistic: refills only run when the PCIe link is
        idle (a busy link means on-demand loads or prefetches are
        pending — contending with them would push work *onto* the
        critical path), and at most one expert per layer, highest
        routing score first. Adaptation is gradual by design; residency
        converges over decode iterations rather than thrashing within
        one.
        """
        runtime = self._runtime()
        cache = runtime.cache
        # Refills ride this device's own host-to-device link (device 0
        # on the unsharded single-GPU platform).
        link = runtime.clock.pcie_timeline(ctx.device_id)
        if link.available_at > ctx.moe_start:
            return
        shape = runtime.model_config.routed_expert_shape
        scores = ctx.router.mean_scores()
        misses = sorted(
            (task for task in plan.cpu_tasks if not task.is_shared),
            key=lambda task: -scores[task.expert],
        )
        for task in misses:
            key = (task.layer, task.expert)
            if not cache.would_admit(key):
                continue
            duration = runtime.cost_actual.transfer_time(shape)
            _, finish = link.reserve(
                ctx.moe_start, duration, f"refill L{task.layer} E{task.expert}"
            )
            runtime.arrivals[key] = finish
            cache.insert_if_better(key)
            break

    def prefetch_requests(
        self,
        ctx: LayerContext,
        predictions: list[PredictedLayer],
        budget_s: float,
        layer_span_s: float = float("inf"),
        backlog_s: float = 0.0,
    ) -> list[tuple]:
        if not self.prefetching or self._prefetcher is None:
            return []
        if not self.caching:
            # Without a dynamic cache prefetches land in the small
            # scratch ring; keep to a single-layer lookahead so scratch
            # entries are used before they are overwritten.
            predictions = predictions[:1]
        decisions = self._prefetcher.select(
            predictions,
            ctx.layer,
            budget_s,
            layer_span_s=layer_span_s,
            backlog_s=backlog_s,
        )
        if not self.caching:
            return [(d.layer, d.expert) for d in decisions]
        # Admission check before paying for the transfer: a prefetch
        # the MRS policy would immediately evict is pure PCIe waste.
        # The margin keeps speculative (prediction-driven) inserts
        # from churning residents of nearly equal priority.
        runtime = self._runtime()
        cache = runtime.cache
        requests: list[tuple] = []
        gate = runtime.prediction_gate
        for d in decisions:
            key = (d.layer, d.expert)
            if cache.would_admit(key, margin=self.prefetch_admit_margin):
                requests.append((d.layer, d.expert))
            elif runtime.tiered and cache.is_spilled(key):
                # GPU admission lost, but the expert is on disk and the
                # impact simulation still found it valuable: promote it
                # into DRAM only, so a later miss is a PCIe transfer or
                # in-place CPU compute instead of a full disk chain.
                # Heuristic decisions promote unconditionally (margin
                # 0, the historical behaviour); gate-backed ones apply
                # the gate's confidence-scaled admission margin so only
                # well-earned deep predictions churn DRAM.
                margin = 0.0
                if d.confidence is not None and gate is not None:
                    margin = gate.promotion_margin(
                        self.prefetch_admit_margin, d.confidence
                    )
                if cache.dram_would_admit(key, margin=margin):
                    requests.append((d.layer, d.expert, "dram"))
        return requests
