"""Hybrid CPU-GPU scheduling via schedule simulation (paper §IV-B).

The scheduling problem — which device computes each activated expert,
and which uncached experts are worth transferring to the GPU first — is
NP-hard in general. HybriMoE constrains it with three priority rules:

- **GPU priority**: the GPU computes cached experts, higher load first;
- **CPU priority**: the CPU computes uncached experts, lower load
  first, and may *steal* low-load cached experts when otherwise idle;
- **Transfer priority**: PCIe moves high-load uncached experts first,
  so expensive computations become GPU-eligible as early as possible.

With the orders fixed, the only remaining decision is the *allocation*:
how many (and therefore which) uncached experts go to the transfer
queue rather than the CPU queue (eq. 2). :class:`HybridScheduler`
resolves it exactly as the paper describes — an event-driven simulation
fills the three timelines for each candidate allocation, and the
allocation with the smallest simulated makespan wins.

Two search implementations produce **bit-identical plans**:

- the *reference* simulator (:meth:`HybridScheduler._simulate`) builds
  all three timelines from scratch for every candidate transfer count —
  the paper's description taken literally;
- the *fast path* (default, ``SchedulerConfig.fast_path``) hoists the
  priority sorts and the PCIe arrival prefix out of the per-candidate
  loop, memoizes per-load durations, evaluates each candidate with a
  record-free replica of the event loop (same float operations in the
  same order, so the argmin cannot drift), prunes candidates whose
  makespan lower bound provably cannot beat the incumbent — the
  transfer-chain bound is monotone in ``k``, so once it crosses the
  incumbent the whole remaining ascending search terminates — and
  materialises only the winning allocation through the reference
  simulator.

On a **tiered-memory platform** (capacity-limited host DRAM over disk
spill) the planner additionally receives the layer's *spilled* expert
set and the estimated per-expert disk -> DRAM read time. A spilled
expert pays that read before either use: its PCIe transfer chain grows
by one disk hop (disk -> CPU -> GPU) and its CPU-fallback compute is
delayed by the same fetch. Both search paths apply the surcharge with
identical float operations, so fast-vs-reference bit-identity is
preserved; with an empty spilled set (the default two-tier platform)
every duration is byte-for-byte the historical one.

On top of either path sits a bounded LRU **plan memo** keyed on the
planner's exact inputs (layer, activated loads, cached set, in-flight
offsets, backlogs, token count, shared flag, spilled set + disk cost). Keys are value-complete —
identical inputs always produce identical plans — so nothing is ever
invalidated; decode steps repeat near-identical routing, making hits
the common case. Memoization assumes the oracle factory is
deterministic per ``n_tokens`` (true of the engine's estimated cost
models; a stateful noisy oracle must disable it via
``plan_cache_size=0``).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.core.tasks import (
    SHARED_BLOCK,
    ComputeTask,
    Device,
    ExecutionPlan,
    LayerCostOracle,
    TransferTask,
)
from repro.errors import SchedulingError

__all__ = ["SchedulerConfig", "HybridScheduler", "SimulatedTask", "SimulationResult"]

#: Strict-improvement tolerance of the allocation argmin (shared by the
#: reference loop, the fast path and its lower-bound pruning).
_TIE_EPS = 1e-15


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable behaviour of the hybrid scheduler.

    Attributes
    ----------
    search_transfers:
        When True (paper behaviour), simulate every transfer count
        ``k = 0..|uncached|`` and keep the best. When False, only the
        two extremes (no transfers / transfer everything) are evaluated
        — the cheap mode used inside prefetch impact estimation and as
        an ablation.
    allow_cpu_steal:
        Allow an idle CPU to take low-load *cached* experts from the
        GPU queue (the paper's CPU priority rule, second clause).
    steal_margin:
        Fractional safety margin on the steal-benefit test; a steal
        happens only if the CPU would finish the stolen expert before
        ``(1 - margin) *`` the GPU's estimated finish time.
    max_search_width:
        Upper bound on the number of simulated transfer counts (nested
        dyadic subsampling, always including both extremes; widening
        the width only ever *adds* candidates, so a wider search can
        never pick a worse makespan). ``None`` means exhaustive.
    fast_path:
        Use the incremental search (hoisted sorts, duration memo,
        lower-bound pruning, single materialisation). Plans are
        bit-identical to the reference simulator's — property-tested —
        so this is purely a latency knob; False forces the reference
        path for oracle comparisons and perf baselines.
    plan_cache_size:
        Entries of the bounded LRU memo over ``plan()`` /
        ``simulate_makespan()`` results. ``0`` disables memoization.
        Requires a deterministic oracle factory (see module docs).
    """

    search_transfers: bool = True
    allow_cpu_steal: bool = True
    steal_margin: float = 0.0
    max_search_width: int | None = None
    fast_path: bool = True
    plan_cache_size: int = 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.steal_margin < 1.0:
            raise SchedulingError(
                f"steal_margin must be in [0, 1), got {self.steal_margin}"
            )
        if self.max_search_width is not None and self.max_search_width < 2:
            raise SchedulingError(
                f"max_search_width must be >= 2, got {self.max_search_width}"
            )
        if self.plan_cache_size < 0:
            raise SchedulingError(
                f"plan_cache_size must be non-negative, got {self.plan_cache_size}"
            )


@dataclass(frozen=True)
class SimulatedTask:
    """One simulated operation with its timeline placement."""

    expert: int
    start: float
    finish: float
    resource: str


@dataclass
class SimulationResult:
    """Outcome of one schedule simulation (one transfer allocation)."""

    makespan: float
    transfers: list[int]
    gpu_order: list[SimulatedTask]
    cpu_order: list[SimulatedTask]
    stolen: list[int]
    loads: dict[int, int]


class _DurationTable:
    """Per-``n_tokens`` memo of oracle durations keyed by load.

    The oracle is deterministic per ``(n_tokens, load)``, so a cached
    duration is the *same float* an oracle call would return — lookups
    cannot change any simulated timeline bit.
    """

    __slots__ = ("oracle", "transfer", "shared_gpu", "_gpu", "_cpu", "_cpu_first")

    def __init__(self, oracle: LayerCostOracle) -> None:
        self.oracle = oracle
        self.transfer = oracle.transfer()
        self.shared_gpu = oracle.shared_compute(Device.GPU)
        self._gpu: dict[int, float] = {}
        self._cpu: dict[int, float] = {}
        self._cpu_first: dict[int, float] = {}

    def gpu(self, load: int) -> float:
        d = self._gpu.get(load)
        if d is None:
            d = self._gpu[load] = self.oracle.gpu_compute(load)
        return d

    def cpu(self, load: int, first_task: bool) -> float:
        table = self._cpu_first if first_task else self._cpu
        d = table.get(load)
        if d is None:
            d = table[load] = self.oracle.cpu_compute(load, first_task=first_task)
        return d


class HybridScheduler:
    """Schedule-simulation planner implementing eq. (2) of the paper.

    Parameters
    ----------
    oracle_factory:
        Callable ``(n_tokens) -> LayerCostOracle`` giving *estimated*
        durations (typically a warmup-fitted cost model). The planner
        never sees actual execution times. Must be deterministic per
        ``n_tokens`` when memoization or the fast path is enabled.
    config:
        Search and stealing behaviour.
    """

    #: Bound on the per-``n_tokens`` duration tables kept alive.
    _MAX_DURATION_TABLES = 64

    def __init__(self, oracle_factory, config: SchedulerConfig | None = None) -> None:
        self._oracle_factory = oracle_factory
        self.config = config or SchedulerConfig()
        self._tables: OrderedDict[int, _DurationTable] = OrderedDict()
        self._memo: OrderedDict[tuple, object] = OrderedDict()
        self._memo_hits = 0
        self._memo_misses = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def plan(
        self,
        layer: int,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        pcie_backlog: float = 0.0,
        include_shared: bool = True,
        inflight: dict[int, float] | None = None,
        cpu_backlog: float = 0.0,
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> ExecutionPlan:
        """Produce the minimal-makespan execution plan for one layer.

        Parameters
        ----------
        layer:
            MoE layer index (only labels the plan).
        activated:
            ``(expert_id, load)`` pairs for every activated routed
            expert of the layer.
        cached_experts:
            Expert ids of this layer resident (or in flight) on the GPU.
        n_tokens:
            Tokens in this step (drives shared-expert cost).
        pcie_backlog:
            Seconds until the PCIe link frees up relative to the MoE
            phase start (in-flight prefetch transfers queue ahead).
        include_shared:
            Prepend the fused shared-experts block to the GPU queue
            (the paper's timelines always run shared experts on GPU
            first, Fig. 5).
        inflight:
            Ready-time offsets (relative to the MoE phase start) of
            cached experts whose prefetch transfers are still in
            flight; the GPU cannot start them earlier.
        cpu_backlog:
            Seconds until the shared CPU frees up relative to the MoE
            phase start. Zero on a single-GPU platform (the layer
            barrier drains the CPU); on a multi-GPU platform earlier
            devices' CPU-fallback work queues ahead, and this offset is
            how each device's planner arbitrates its own CPU fallback
            against the fleet-shared CPU (the per-device min-latency
            rule).
        spilled:
            Expert ids of this layer resident in *no* memory tier
            (tiered platforms only): each pays ``disk_fetch_s`` before
            its PCIe transfer or CPU compute can start.
        disk_fetch_s:
            Estimated disk -> DRAM read time per spilled expert.
        """
        key = self._memo_key(
            "plan",
            layer,
            activated,
            cached_experts,
            n_tokens,
            pcie_backlog,
            include_shared,
            inflight,
            cpu_backlog,
            False,
            spilled,
            disk_fetch_s,
        )
        if key is not None:
            hit = self._memo_get(key)
            if hit is not None:
                return hit.clone()
        oracle = self._oracle_factory(n_tokens)
        best = self._best_simulation(
            activated,
            cached_experts,
            oracle,
            pcie_backlog,
            include_shared,
            inflight,
            cpu_backlog=cpu_backlog,
            spilled=spilled,
            disk_fetch_s=disk_fetch_s,
        )
        plan = self._materialise(layer, n_tokens, best, oracle, include_shared)
        if key is not None:
            self._memo_put(key, plan.clone())
        return plan

    def simulate_makespan(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        pcie_backlog: float = 0.0,
        include_shared: bool = True,
        quick: bool = False,
        inflight: dict[int, float] | None = None,
        cpu_backlog: float = 0.0,
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> float:
        """Estimated makespan of the best allocation (no plan object).

        ``quick=True`` forces the two-extremes search regardless of
        config — used heavily by the prefetcher's impact simulation.
        """
        key = self._memo_key(
            "mk",
            0,
            activated,
            cached_experts,
            n_tokens,
            pcie_backlog,
            include_shared,
            inflight,
            cpu_backlog,
            quick,
            spilled,
            disk_fetch_s,
        )
        if key is not None:
            hit = self._memo_get(key)
            if hit is not None:
                return hit
        oracle = self._oracle_factory(n_tokens)
        if self.config.fast_path:
            loads, inflight_eff, spilled_eff = self._validated_inputs(
                activated, cached_experts, pcie_backlog, cpu_backlog, inflight,
                spilled, disk_fetch_s,
            )
            _, makespan = self._search_fast(
                loads,
                cached_experts,
                oracle,
                pcie_backlog,
                include_shared,
                inflight_eff,
                cpu_backlog,
                force_quick=quick,
                spilled=spilled_eff,
                disk_fetch_s=disk_fetch_s,
            )
        else:
            best = self._best_simulation(
                activated,
                cached_experts,
                oracle,
                pcie_backlog,
                include_shared,
                inflight,
                force_quick=quick,
                cpu_backlog=cpu_backlog,
                spilled=spilled,
                disk_fetch_s=disk_fetch_s,
            )
            makespan = best.makespan
        if key is not None:
            self._memo_put(key, makespan)
        return makespan

    def quick_makespan_lower_bound(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> float:
        """Cheap lower bound on the quick (two-extremes) makespan.

        Used by the impact-driven prefetcher to *screen* candidates:
        the bound is provably ``<=`` the value
        :meth:`simulate_makespan` with ``quick=True`` (and zero
        backlogs) would return, built from the same duration floats the
        simulation would use, so screening on it can never change an
        exact decision. Spilled experts carry their disk-fetch
        surcharge on both branches, mirroring the simulation exactly.
        """
        loads, _, spilled_eff = self._validated_inputs(
            activated, cached_experts, 0.0, 0.0, None, spilled, disk_fetch_s
        )
        table = self._duration_table(n_tokens)
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        gpu_t0 = table.shared_gpu if table.shared_gpu > 0.0 else 0.0
        if not uncached_desc:
            return gpu_t0
        # k = |uncached|: every uncached expert rides the PCIe chain and
        # must be computed on the GPU after its arrival (transferred
        # experts are never stolen). Spilled experts first hop over the
        # disk link.
        t_pcie = 0.0
        chain = gpu_t0
        for expert in uncached_desc:
            if expert in spilled_eff:
                t_pcie += disk_fetch_s
            t_pcie += table.transfer
            chain = max(chain, t_pcie) + table.gpu(loads[expert])
        # k = 0: every uncached expert runs on the CPU, back to back, in
        # ascending-load order (first task pays the warmup penalty).
        cpu_jobs = sorted(uncached_desc, key=lambda e: (loads[e], e))
        t_cpu = 0.0
        first = True
        for expert in cpu_jobs:
            duration = table.cpu(loads[expert], first)
            if expert in spilled_eff:
                duration += disk_fetch_s
            t_cpu += duration
            first = False
        return min(chain, max(gpu_t0, t_cpu))

    def quick_makespan_lower_bounds(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        candidates: list[int],
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> dict[int, float]:
        """Batched :meth:`quick_makespan_lower_bound` over candidates.

        Returns, per candidate ``e``, the exact float
        ``quick_makespan_lower_bound(activated, cached_experts | {e},
        n_tokens, ...)`` would produce. The prefetcher's screening pass
        asks one such bound per candidate of a predicted layer;
        batching hoists the shared work — input validation, the
        duration table, and the two load-ordered sorts — out of the
        per-candidate loop. Filtering one expert from a sorted list is
        order-preserving, so each candidate's chain/CPU walks add the
        same floats in the same order as the per-call method
        (test-enforced), and the whole batch memoizes as one ``"qb"``
        entry (decode steps repeat near-identical predictions).
        """
        key = None
        if self.config.plan_cache_size != 0:
            key = (
                "qb",
                n_tokens,
                tuple(sorted(activated)),
                frozenset(cached_experts),
                tuple(sorted(candidates)),
                frozenset(spilled or ()),
                disk_fetch_s,
            )
            hit = self._memo_get(key)
            if hit is not None:
                return hit
        loads, _, spilled_all = self._validated_inputs(
            activated, cached_experts, 0.0, 0.0, None, spilled, disk_fetch_s
        )
        table = self._duration_table(n_tokens)
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        cpu_jobs_all = sorted(uncached_desc, key=lambda e: (loads[e], e))
        gpu_t0 = table.shared_gpu if table.shared_gpu > 0.0 else 0.0
        transfer = table.transfer
        bounds: dict[int, float] = {}
        for candidate in candidates:
            remaining = [e for e in uncached_desc if e != candidate]
            if not remaining:
                bounds[candidate] = gpu_t0
                continue
            t_pcie = 0.0
            chain = gpu_t0
            for expert in remaining:
                # remaining excludes the candidate, so spilled_all
                # membership equals the candidate's effective spill set.
                if expert in spilled_all:
                    t_pcie += disk_fetch_s
                t_pcie += transfer
                chain = max(chain, t_pcie) + table.gpu(loads[expert])
            t_cpu = 0.0
            first = True
            for expert in cpu_jobs_all:
                if expert == candidate:
                    continue
                duration = table.cpu(loads[expert], first)
                if expert in spilled_all:
                    duration += disk_fetch_s
                t_cpu += duration
                first = False
            bounds[candidate] = min(chain, max(gpu_t0, t_cpu))
        if key is not None:
            self._memo_put(key, bounds)
        return bounds

    def screen_prediction_batch(
        self,
        items: list[tuple],
        disk_fetch_s: float = 0.0,
    ) -> list[tuple[float, dict[int, float]]]:
        """:meth:`quick_screen` over a whole prediction window at once.

        ``items`` holds one ``(activated, cached_experts, n_tokens,
        candidates, spilled)`` tuple per predicted layer — the
        prefetcher's full multi-layer-ahead window, including any
        gate-extended deep-horizon layers. Each item's result is the
        exact :meth:`quick_screen` pair (every per-layer computation is
        independently memoized), so batching changes call structure,
        never floats — decisions are bit-identical to the per-layer
        loop (test-enforced).
        """
        return [
            self.quick_screen(
                activated,
                cached_experts,
                n_tokens,
                candidates,
                spilled=spilled,
                disk_fetch_s=disk_fetch_s,
            )
            for activated, cached_experts, n_tokens, candidates, spilled in items
        ]

    def quick_screen(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        candidates: list[int],
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> tuple[float, dict[int, float]]:
        """Base quick makespan plus screening bounds, one hoisted batch.

        Returns ``(base, bounds)`` where ``base`` is the exact float
        ``simulate_makespan(activated, cached_experts, n_tokens,
        quick=True, ...)`` would produce (zero backlogs, no inflight)
        and ``bounds`` is exactly
        :meth:`quick_makespan_lower_bounds` over ``candidates``. The
        prefetcher asks for both per predicted layer; computing them
        together pays the input validation, duration table and the two
        load-ordered sorts once, and memoizes the pair as one ``"qs"``
        entry. ``base`` runs through :meth:`_quick_search` — the
        float-exact replica of the general quick path — so values are
        bit-identical to the separate calls (test-enforced).
        """
        key = None
        if self.config.plan_cache_size != 0:
            key = (
                "qs",
                n_tokens,
                tuple(sorted(activated)),
                frozenset(cached_experts),
                tuple(sorted(candidates)),
                frozenset(spilled or ()),
                disk_fetch_s,
            )
            hit = self._memo_get(key)
            if hit is not None:
                return hit
        loads, _, spilled_all = self._validated_inputs(
            activated, cached_experts, 0.0, 0.0, None, spilled, disk_fetch_s
        )
        table = self._duration_table(n_tokens)
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        cached_desc = [e for e in by_load_desc if e in cached_experts]
        cpu_jobs_all = sorted(uncached_desc, key=lambda e: (loads[e], e))
        gpu_t0 = table.shared_gpu if table.shared_gpu > 0.0 else 0.0
        transfer = table.transfer
        base = self._quick_search(
            loads, cached_experts, table, uncached_desc, cached_desc,
            gpu_t0, spilled_all, disk_fetch_s,
        )
        bounds: dict[int, float] = {}
        for candidate in candidates:
            remaining = [e for e in uncached_desc if e != candidate]
            if not remaining:
                bounds[candidate] = gpu_t0
                continue
            t_pcie = 0.0
            chain = gpu_t0
            for expert in remaining:
                if expert in spilled_all:
                    t_pcie += disk_fetch_s
                t_pcie += transfer
                chain = max(chain, t_pcie) + table.gpu(loads[expert])
            t_cpu = 0.0
            first = True
            for expert in cpu_jobs_all:
                if expert == candidate:
                    continue
                duration = table.cpu(loads[expert], first)
                if expert in spilled_all:
                    duration += disk_fetch_s
                t_cpu += duration
                first = False
            bounds[candidate] = min(chain, max(gpu_t0, t_cpu))
        result = (base, bounds)
        if key is not None:
            self._memo_put(key, result)
        return result

    def quick_makespans_with(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        experts: list[int],
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> dict[int, float]:
        """Batched with-expert quick simulations for the prefetcher.

        Returns, per expert ``e`` of ``experts``, the exact float
        ``simulate_makespan(activated, cached_experts | {e}, n_tokens,
        quick=True, ...)`` would produce (zero backlogs, no inflight —
        the impact simulation's calling convention). One batch hoists
        everything the per-call path repeats per expert: input
        validation, the duration table, the shared load-descending
        sort, and the memo-key construction. Each expert's uncached /
        cached / CPU-job orders are stable filters of the shared sorted
        lists — order-preserving, so the quick search walks the same
        floats in the same order as the per-call path (test-enforced)
        — and the whole batch memoizes as one ``"qw"`` entry.
        """
        key = None
        if self.config.plan_cache_size != 0:
            key = (
                "qw",
                n_tokens,
                tuple(sorted(activated)),
                frozenset(cached_experts),
                tuple(sorted(experts)),
                frozenset(spilled or ()),
                disk_fetch_s,
            )
            hit = self._memo_get(key)
            if hit is not None:
                return hit
        loads, _, spilled_all = self._validated_inputs(
            activated, cached_experts, 0.0, 0.0, None, spilled, disk_fetch_s
        )
        table = self._duration_table(n_tokens)
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        gpu_t0 = table.shared_gpu if table.shared_gpu > 0.0 else 0.0
        results: dict[int, float] = {}
        for expert in experts:
            cached_e = cached_experts | {expert}
            uncached_e = [e for e in uncached_desc if e != expert]
            cached_desc_e = [e for e in by_load_desc if e in cached_e]
            spilled_e = frozenset(e for e in spilled_all if e != expert)
            results[expert] = self._quick_search(
                loads, cached_e, table, uncached_e, cached_desc_e,
                gpu_t0, spilled_e, disk_fetch_s,
            )
        if key is not None:
            self._memo_put(key, results)
        return results

    def _quick_search(
        self,
        loads: dict[int, int],
        cached_experts: set[int],
        table: _DurationTable,
        uncached_desc: list[int],
        cached_desc: list[int],
        gpu_t0: float,
        spilled: frozenset[int],
        disk_fetch_s: float,
    ) -> float:
        """Two-extremes search over prebuilt sorted lists.

        A replica of :meth:`_search_fast` specialised to the quick
        impact-simulation calling convention (``force_quick``, zero
        backlogs, no inflight, shared expert included) with the sorted
        expert orders supplied by the caller — same floats, same
        comparisons, same tie-breaks, so the returned makespan is
        bit-identical to the general path's.
        """
        arrival_prefix: list[float] = []
        t_pcie = 0.0
        for expert in uncached_desc:
            if expert in spilled:
                t_pcie += disk_fetch_s
            t_pcie += table.transfer
            arrival_prefix.append(t_pcie)
        n_uncached = len(uncached_desc)
        counts = [0] if n_uncached == 0 else [0, n_uncached]
        best_k = -1
        best_mk = float("inf")
        chain_t = gpu_t0
        chain_idx = 0
        for k in counts:
            while chain_idx < k:
                expert = uncached_desc[chain_idx]
                chain_t = max(chain_t, arrival_prefix[chain_idx]) + table.gpu(
                    loads[expert]
                )
                chain_idx += 1
            if best_k >= 0 and chain_t >= best_mk - _TIE_EPS:
                break
            cpu_jobs = sorted(uncached_desc[k:], key=lambda e: (loads[e], e))
            if best_k >= 0 and cpu_jobs:
                t_cpu = 0.0
                first = True
                for expert in cpu_jobs:
                    duration = table.cpu(loads[expert], first)
                    if expert in spilled:
                        duration += disk_fetch_s
                    t_cpu += duration
                    first = False
                if t_cpu >= best_mk - _TIE_EPS:
                    continue
            mk = self._fast_makespan(
                loads,
                cached_experts,
                table,
                cpu_jobs,
                [(arrival_prefix[i], uncached_desc[i]) for i in range(k)],
                [],
                cached_desc,
                gpu_t0,
                0.0,
                spilled,
                disk_fetch_s,
            )
            if mk < best_mk - _TIE_EPS:
                best_mk = mk
                best_k = k
            elif best_k < 0:
                best_mk = mk
                best_k = k
        assert best_k >= 0
        return best_mk

    def invalidate_costs(self) -> None:
        """Drop every memoized plan, makespan and duration table.

        Required whenever the oracle factory's underlying cost model
        changes in place (hardware fault injection degrading a
        resource mid-run): memo entries and duration tables cache raw
        floats of the *old* costs, and serving a plan priced against an
        undegraded link would silently decouple planning from the
        platform. Hit/miss counters survive — they describe the run,
        not the costs.
        """
        self._tables.clear()
        self._memo.clear()

    def cache_info(self) -> dict[str, int]:
        """Plan-memo statistics (hits/misses/size/capacity)."""
        return {
            "hits": self._memo_hits,
            "misses": self._memo_misses,
            "size": len(self._memo),
            "capacity": self.config.plan_cache_size,
        }

    # ------------------------------------------------------------------
    # memoization
    # ------------------------------------------------------------------
    def _memo_key(
        self,
        kind: str,
        layer: int,
        activated,
        cached_experts,
        n_tokens: int,
        pcie_backlog: float,
        include_shared: bool,
        inflight,
        cpu_backlog: float,
        quick: bool,
        spilled=None,
        disk_fetch_s: float = 0.0,
    ) -> tuple | None:
        if self.config.plan_cache_size == 0:
            return None
        # Value-complete key: every input the simulation reads, with
        # floats kept exact (a "bucket" per representable value) so a
        # hit is guaranteed to reproduce the miss bit-for-bit.
        return (
            kind,
            layer,
            n_tokens,
            pcie_backlog,
            cpu_backlog,
            include_shared,
            quick,
            tuple(sorted(activated)),
            frozenset(cached_experts),
            tuple(sorted((inflight or {}).items())),
            frozenset(spilled or ()),
            disk_fetch_s,
        )

    def _memo_get(self, key: tuple):
        entry = self._memo.get(key)
        if entry is None:
            self._memo_misses += 1
            return None
        self._memo.move_to_end(key)
        self._memo_hits += 1
        return entry

    def _memo_put(self, key: tuple, value) -> None:
        self._memo[key] = value
        self._memo.move_to_end(key)
        while len(self._memo) > self.config.plan_cache_size:
            self._memo.popitem(last=False)

    def _duration_table(self, n_tokens: int) -> _DurationTable:
        table = self._tables.get(n_tokens)
        if table is None:
            table = self._tables[n_tokens] = _DurationTable(
                self._oracle_factory(n_tokens)
            )
        self._tables.move_to_end(n_tokens)
        while len(self._tables) > self._MAX_DURATION_TABLES:
            self._tables.popitem(last=False)
        return table

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _candidate_transfer_counts(self, n_uncached: int, force_quick: bool) -> list[int]:
        if n_uncached == 0:
            return [0]
        if force_quick or not self.config.search_transfers:
            return sorted({0, n_uncached})
        width = self.config.max_search_width
        if width is None or n_uncached + 1 <= width:
            return list(range(n_uncached + 1))
        # Nested dyadic subsampling: extremes first, then breadth-first
        # interval bisection. The first `width` values of this priority
        # order are a *superset-monotone* family — widening the width
        # only adds candidates, so a wider search never worsens the
        # chosen makespan (test-enforced).
        chosen = [0, n_uncached]
        intervals = deque([(0, n_uncached)])
        while len(chosen) < width and intervals:
            lo, hi = intervals.popleft()
            if hi - lo < 2:
                continue
            mid = (lo + hi) // 2
            chosen.append(mid)
            intervals.append((lo, mid))
            intervals.append((mid, hi))
        return sorted(chosen)

    @staticmethod
    def _validated_inputs(
        activated,
        cached_experts,
        pcie_backlog: float,
        cpu_backlog: float,
        inflight,
        spilled=None,
        disk_fetch_s: float = 0.0,
    ) -> tuple[dict[int, int], dict[int, float], frozenset[int]]:
        """Shared input validation of both search paths.

        The effective spilled set is intersected with the *uncached*
        activated experts: a GPU-cached expert never touches disk, and
        spill state of non-activated experts is irrelevant to this
        layer's plan.
        """
        if pcie_backlog < 0:
            raise SchedulingError(f"pcie_backlog must be non-negative, got {pcie_backlog}")
        if cpu_backlog < 0:
            raise SchedulingError(f"cpu_backlog must be non-negative, got {cpu_backlog}")
        if disk_fetch_s < 0:
            raise SchedulingError(
                f"disk_fetch_s must be non-negative, got {disk_fetch_s}"
            )
        loads = dict(activated)
        if len(loads) != len(activated):
            raise SchedulingError("duplicate expert ids in activated list")
        if any(load <= 0 for load in loads.values()):
            raise SchedulingError("activated experts must have positive load")
        inflight_eff = {
            e: max(0.0, ready)
            for e, ready in (inflight or {}).items()
            if e in loads and e in cached_experts
        }
        spilled_eff = frozenset(
            e for e in (spilled or ()) if e in loads and e not in cached_experts
        )
        return loads, inflight_eff, spilled_eff

    def _best_simulation(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        oracle: LayerCostOracle,
        pcie_backlog: float,
        include_shared: bool,
        inflight: dict[int, float] | None = None,
        force_quick: bool = False,
        cpu_backlog: float = 0.0,
        spilled: frozenset[int] | set[int] | None = None,
        disk_fetch_s: float = 0.0,
    ) -> SimulationResult:
        loads, inflight_eff, spilled_eff = self._validated_inputs(
            activated, cached_experts, pcie_backlog, cpu_backlog, inflight,
            spilled, disk_fetch_s,
        )
        if self.config.fast_path:
            best_k, _ = self._search_fast(
                loads,
                cached_experts,
                oracle,
                pcie_backlog,
                include_shared,
                inflight_eff,
                cpu_backlog,
                force_quick=force_quick,
                spilled=spilled_eff,
                disk_fetch_s=disk_fetch_s,
            )
            # Materialise only the winner, through the reference
            # simulator — the plan object is reference output by
            # construction.
            return self._simulate(
                loads,
                cached_experts,
                oracle,
                best_k,
                pcie_backlog,
                include_shared,
                inflight_eff,
                cpu_backlog=cpu_backlog,
                spilled=spilled_eff,
                disk_fetch_s=disk_fetch_s,
            )

        uncached = [e for e, _ in activated if e not in cached_experts]
        best: SimulationResult | None = None
        for k in self._candidate_transfer_counts(len(uncached), force_quick):
            result = self._simulate(
                loads,
                cached_experts,
                oracle,
                k,
                pcie_backlog,
                include_shared,
                inflight_eff,
                cpu_backlog=cpu_backlog,
                spilled=spilled_eff,
                disk_fetch_s=disk_fetch_s,
            )
            better = best is None or result.makespan < best.makespan - _TIE_EPS
            tie_fewer_transfers = (
                best is not None
                and abs(result.makespan - best.makespan) <= _TIE_EPS
                and len(result.transfers) < len(best.transfers)
            )
            if better or tie_fewer_transfers:
                best = result
        assert best is not None  # at least k=0 is always simulated
        return best

    # ------------------------------------------------------------------
    # the incremental fast path
    # ------------------------------------------------------------------
    def _search_fast(
        self,
        loads: dict[int, int],
        cached_experts: set[int],
        oracle: LayerCostOracle,
        pcie_backlog: float,
        include_shared: bool,
        inflight: dict[int, float],
        cpu_backlog: float,
        force_quick: bool = False,
        spilled: frozenset[int] = frozenset(),
        disk_fetch_s: float = 0.0,
    ) -> tuple[int, float]:
        """Find the optimal transfer count without building plans.

        Returns ``(best_k, best_makespan)`` where ``best_makespan`` is
        bit-identical to what the reference loop would select: every
        candidate it does evaluate goes through a float-exact replica
        of the reference event loop, and every candidate it prunes is
        provably unable to beat the incumbent (lower bounds are built
        from the same duration floats the simulation would add).
        """
        table = self._duration_table(oracle.n_tokens)
        # Hoisted priority sorts: identical for every candidate k.
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        cached_desc = [
            e for e in by_load_desc if e in cached_experts and e not in inflight
        ]
        inflight_arrivals = [(ready, e) for e, ready in inflight.items()]
        # Transfer-timeline prefix: moving k -> k+1 appends exactly one
        # arrival, so the whole family of PCIe timelines is one shared
        # accumulation (same `t_pcie += transfer` float sequence as the
        # reference). A spilled expert's chain grows by its disk hop.
        arrival_prefix: list[float] = []
        t_pcie = pcie_backlog
        for expert in uncached_desc:
            if expert in spilled:
                t_pcie += disk_fetch_s
            t_pcie += table.transfer
            arrival_prefix.append(t_pcie)
        gpu_t0 = table.shared_gpu if include_shared and table.shared_gpu > 0.0 else 0.0

        counts = self._candidate_transfer_counts(len(uncached_desc), force_quick)
        best_k = -1
        best_mk = float("inf")
        # Monotone transfer-chain lower bound, advanced incrementally:
        # the k-th chain is the (k-1)-th plus one max/add step, so it
        # only grows with k — once it crosses the incumbent, every
        # remaining (larger) candidate is provably worse and the whole
        # ascending search terminates.
        chain_t = gpu_t0
        chain_idx = 0
        for k in counts:
            while chain_idx < k:
                expert = uncached_desc[chain_idx]
                chain_t = max(chain_t, arrival_prefix[chain_idx]) + table.gpu(
                    loads[expert]
                )
                chain_idx += 1
            if best_k >= 0 and chain_t >= best_mk - _TIE_EPS:
                break
            cpu_jobs = sorted(
                uncached_desc[k:], key=lambda e: (loads[e], e)
            )
            if best_k >= 0 and cpu_jobs:
                # CPU-side lower bound: the CPU queue runs back to back
                # from the backlog with exactly these float durations
                # (disk-fetch surcharges included); steals only extend
                # it. Not monotone in k, so this one skips a single
                # candidate rather than terminating.
                t_cpu = cpu_backlog
                first = True
                for expert in cpu_jobs:
                    duration = table.cpu(loads[expert], first)
                    if expert in spilled:
                        duration += disk_fetch_s
                    t_cpu += duration
                    first = False
                if t_cpu >= best_mk - _TIE_EPS:
                    continue
            mk = self._fast_makespan(
                loads,
                cached_experts,
                table,
                cpu_jobs,
                [
                    (arrival_prefix[i], uncached_desc[i]) for i in range(k)
                ],
                inflight_arrivals,
                cached_desc,
                gpu_t0,
                cpu_backlog,
                spilled,
                disk_fetch_s,
            )
            # Ascending k: ties keep the earlier (fewer-transfer)
            # incumbent, exactly like the reference tie-break.
            if mk < best_mk - _TIE_EPS:
                best_mk = mk
                best_k = k
            elif best_k < 0:
                best_mk = mk
                best_k = k
        assert best_k >= 0  # k=0 is never pruned (no incumbent yet)
        return best_k, best_mk

    def _fast_makespan(
        self,
        loads: dict[int, int],
        cached_experts: set[int],
        table: _DurationTable,
        cpu_jobs: list[int],
        transfer_arrivals: list[tuple[float, int]],
        inflight_arrivals: list[tuple[float, int]],
        cached_desc: list[int],
        gpu_t0: float,
        cpu_backlog: float,
        spilled: frozenset[int] = frozenset(),
        disk_fetch_s: float = 0.0,
    ) -> float:
        """Record-free replica of :meth:`_simulate`'s event loop.

        Performs the same float operations in the same order as the
        reference simulation but builds no task objects, so the
        returned makespan is bit-identical at a fraction of the cost.
        """
        arrivals = list(inflight_arrivals)
        arrivals.extend(transfer_arrivals)
        arrivals.sort(key=lambda pair: (pair[0], -loads[pair[1]], pair[1]))

        t_gpu = gpu_t0
        gpu_pool: list[int] = list(cached_desc)
        arrival_idx = 0
        t_cpu = cpu_backlog
        cpu_idx = 0
        cpu_any = False
        cpu_finished = False
        n_arrivals = len(arrivals)
        n_cpu_jobs = len(cpu_jobs)
        allow_steal = self.config.allow_cpu_steal
        steal_factor = 1.0 - self.config.steal_margin

        def absorb_arrivals(up_to: float) -> None:
            nonlocal arrival_idx
            while arrival_idx < n_arrivals and arrivals[arrival_idx][0] <= up_to:
                expert = arrivals[arrival_idx][1]
                load = loads[expert]
                position = 0
                while position < len(gpu_pool) and (
                    loads[gpu_pool[position]] > load
                    or (
                        loads[gpu_pool[position]] == load
                        and gpu_pool[position] < expert
                    )
                ):
                    position += 1
                gpu_pool.insert(position, expert)
                arrival_idx += 1

        def gpu_finish_estimate() -> float:
            t = t_gpu
            for expert in gpu_pool:
                t += table.gpu(loads[expert])
            for ready, expert in arrivals[arrival_idx:]:
                t = max(t, ready) + table.gpu(loads[expert])
            return t

        while True:
            absorb_arrivals(t_gpu)
            if gpu_pool:
                gpu_start = t_gpu
            elif arrival_idx < n_arrivals:
                gpu_start = max(t_gpu, arrivals[arrival_idx][0])
            else:
                gpu_start = float("inf")
            steal_candidates = [e for e in gpu_pool if e in cached_experts]
            cpu_can_steal = (
                allow_steal
                and not cpu_finished
                and cpu_idx >= n_cpu_jobs
                and bool(steal_candidates)
            )
            if cpu_idx < n_cpu_jobs:
                cpu_start = t_cpu
            elif cpu_can_steal:
                cpu_start = t_cpu
            else:
                cpu_start = float("inf")

            if gpu_start == float("inf") and cpu_start == float("inf"):
                break

            cpu_wins_tie = gpu_start == cpu_start and cpu_idx >= n_cpu_jobs
            if gpu_start <= cpu_start and not cpu_wins_tie:
                absorb_arrivals(gpu_start)
                if not gpu_pool:
                    raise SchedulingError(
                        "simulation invariant: empty GPU pool at dispatch"
                    )
                expert = gpu_pool.pop(0)
                t_gpu = gpu_start + table.gpu(loads[expert])
            else:
                if cpu_idx < n_cpu_jobs:
                    expert = cpu_jobs[cpu_idx]
                    cpu_idx += 1
                else:
                    # Steal candidates are GPU-cached, hence never
                    # spilled — no disk surcharge on this branch.
                    candidate = min(steal_candidates, key=lambda e: (loads[e], e))
                    duration = table.cpu(loads[candidate], not cpu_any)
                    threshold = gpu_finish_estimate() * steal_factor
                    if t_cpu + duration >= threshold:
                        cpu_finished = True
                        continue
                    gpu_pool.remove(candidate)
                    expert = candidate
                duration = table.cpu(loads[expert], not cpu_any)
                if expert in spilled:
                    duration += disk_fetch_s
                t_cpu += duration
                cpu_any = True

        cpu_end = t_cpu if cpu_any else 0.0
        return max(t_gpu, cpu_end)

    # ------------------------------------------------------------------
    # the event-driven schedule simulation (reference oracle)
    # ------------------------------------------------------------------
    def _simulate(
        self,
        loads: dict[int, int],
        cached_experts: set[int],
        oracle: LayerCostOracle,
        k_transfers: int,
        pcie_backlog: float,
        include_shared: bool,
        inflight: dict[int, float] | None = None,
        cpu_backlog: float = 0.0,
        spilled: frozenset[int] = frozenset(),
        disk_fetch_s: float = 0.0,
    ) -> SimulationResult:
        """Fill the three timelines for one transfer allocation.

        The simulation advances the resource whose next operation
        *starts* earliest, exactly reproducing the interleaving a real
        run with these priority queues would produce. This is the
        reference oracle the fast path is property-tested against.
        Spilled experts (tiered memory) pay ``disk_fetch_s`` before
        their PCIe transfer or CPU compute — the planner's serialised
        estimate of the disk -> CPU -> GPU chain.
        """
        inflight = inflight or {}
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        cached_desc = [
            e for e in by_load_desc if e in cached_experts and e not in inflight
        ]

        transfer_list = uncached_desc[:k_transfers]
        cpu_jobs = sorted(
            (e for e in uncached_desc[k_transfers:]), key=lambda e: (loads[e], e)
        )

        # PCIe: sequential transfers, high-load first, behind the backlog.
        # In-flight prefetches arrive at their own ready offsets without
        # consuming new PCIe time (their transfers are already queued).
        arrivals: list[tuple[float, int]] = [
            (ready, e) for e, ready in inflight.items()
        ]
        t_pcie = pcie_backlog
        for expert in transfer_list:
            if expert in spilled:
                t_pcie += disk_fetch_s
            t_pcie += oracle.transfer()
            arrivals.append((t_pcie, expert))
        arrivals.sort(key=lambda pair: (pair[0], -loads[pair[1]], pair[1]))

        gpu_order: list[SimulatedTask] = []
        cpu_order: list[SimulatedTask] = []
        stolen: list[int] = []

        t_gpu = 0.0
        if include_shared:
            shared_dur = oracle.shared_compute(Device.GPU)
            if shared_dur > 0.0:
                gpu_order.append(SimulatedTask(SHARED_BLOCK, 0.0, shared_dur, "gpu"))
                t_gpu = shared_dur

        gpu_pool: list[int] = list(cached_desc)  # descending load
        arrival_idx = 0
        t_cpu = cpu_backlog  # shared-CPU work of earlier devices queues ahead
        cpu_idx = 0
        cpu_finished = False

        def absorb_arrivals(up_to: float) -> None:
            nonlocal arrival_idx
            while arrival_idx < len(arrivals) and arrivals[arrival_idx][0] <= up_to:
                expert = arrivals[arrival_idx][1]
                # Insert preserving descending-load order (paper: a
                # transferred expert joins the GPU queue by load).
                position = 0
                while position < len(gpu_pool) and (
                    loads[gpu_pool[position]] > loads[expert]
                    or (
                        loads[gpu_pool[position]] == loads[expert]
                        and gpu_pool[position] < expert
                    )
                ):
                    position += 1
                gpu_pool.insert(position, expert)
                arrival_idx += 1

        def gpu_finish_estimate() -> float:
            """Lower-bound finish time of all GPU-bound work (no steal)."""
            t = t_gpu
            for expert in gpu_pool:
                t += oracle.gpu_compute(loads[expert])
            for ready, expert in arrivals[arrival_idx:]:
                t = max(t, ready) + oracle.gpu_compute(loads[expert])
            return t

        while True:
            absorb_arrivals(t_gpu)
            # --- candidate GPU action -------------------------------------
            if gpu_pool:
                gpu_start = t_gpu
            elif arrival_idx < len(arrivals):
                gpu_start = max(t_gpu, arrivals[arrival_idx][0])
            else:
                gpu_start = float("inf")
            # --- candidate CPU action -------------------------------------
            steal_candidates = [e for e in gpu_pool if e in cached_experts]
            cpu_can_steal = (
                self.config.allow_cpu_steal
                and not cpu_finished
                and cpu_idx >= len(cpu_jobs)
                and bool(steal_candidates)
            )
            if cpu_idx < len(cpu_jobs):
                cpu_start = t_cpu
            elif cpu_can_steal:
                cpu_start = t_cpu
            else:
                cpu_start = float("inf")

            if gpu_start == float("inf") and cpu_start == float("inf"):
                break

            # Tie-break: a beneficial CPU steal commits before the GPU's
            # pop of the same instant — when the CPU can finish a cached
            # expert sooner than the GPU would clear its queue, holding
            # the expert hostage on the GPU only inflates the makespan.
            cpu_wins_tie = gpu_start == cpu_start and cpu_idx >= len(cpu_jobs)
            if gpu_start <= cpu_start and not cpu_wins_tie:
                absorb_arrivals(gpu_start)
                if not gpu_pool:
                    raise SchedulingError("simulation invariant: empty GPU pool at dispatch")
                expert = gpu_pool.pop(0)
                duration = oracle.gpu_compute(loads[expert])
                gpu_order.append(
                    SimulatedTask(expert, gpu_start, gpu_start + duration, "gpu")
                )
                t_gpu = gpu_start + duration
            else:
                if cpu_idx < len(cpu_jobs):
                    expert = cpu_jobs[cpu_idx]
                    cpu_idx += 1
                else:
                    # Steal the lowest-load cached expert if the CPU can
                    # finish it before the GPU would get everything done.
                    # (Cached, hence never spilled — no disk surcharge.)
                    candidate = min(steal_candidates, key=lambda e: (loads[e], e))
                    duration = oracle.cpu_compute(
                        loads[candidate], first_task=not cpu_order
                    )
                    threshold = gpu_finish_estimate() * (1.0 - self.config.steal_margin)
                    if t_cpu + duration >= threshold:
                        cpu_finished = True
                        continue
                    gpu_pool.remove(candidate)
                    stolen.append(candidate)
                    expert = candidate
                duration = oracle.cpu_compute(loads[expert], first_task=not cpu_order)
                if expert in spilled:
                    duration += disk_fetch_s
                cpu_order.append(
                    SimulatedTask(expert, t_cpu, t_cpu + duration, "cpu")
                )
                t_cpu += duration

        # The CPU contributes to the makespan only through tasks of this
        # layer — a pre-existing backlog with no CPU work here is other
        # devices' problem, not this plan's.
        cpu_end = cpu_order[-1].finish if cpu_order else 0.0
        makespan = max(t_gpu, cpu_end)
        return SimulationResult(
            makespan=makespan,
            transfers=list(transfer_list),
            gpu_order=gpu_order,
            cpu_order=cpu_order,
            stolen=stolen,
            loads=dict(loads),
        )

    # ------------------------------------------------------------------
    # plan assembly
    # ------------------------------------------------------------------
    def _materialise(
        self,
        layer: int,
        n_tokens: int,
        sim: SimulationResult,
        oracle: LayerCostOracle,
        include_shared: bool,
    ) -> ExecutionPlan:
        transferred = set(sim.transfers)
        gpu_tasks = []
        for task in sim.gpu_order:
            if task.expert == SHARED_BLOCK:
                gpu_tasks.append(
                    ComputeTask(layer, SHARED_BLOCK, n_tokens, Device.GPU)
                )
            else:
                gpu_tasks.append(
                    ComputeTask(
                        layer,
                        task.expert,
                        sim.loads[task.expert],
                        Device.GPU,
                        after_transfer=task.expert in transferred,
                    )
                )
        cpu_tasks = [
            ComputeTask(layer, task.expert, sim.loads[task.expert], Device.CPU)
            for task in sim.cpu_order
        ]
        transfers = [
            TransferTask(layer, expert, sim.loads[expert]) for expert in sim.transfers
        ]
        return ExecutionPlan(
            layer=layer,
            n_tokens=n_tokens,
            gpu_tasks=gpu_tasks,
            cpu_tasks=cpu_tasks,
            transfers=transfers,
            estimated_makespan=sim.makespan,
            metadata={
                "scheduler": "hybrid",
                "transfer_count": len(sim.transfers),
                "stolen": list(sim.stolen),
                "include_shared": include_shared,
            },
        )
