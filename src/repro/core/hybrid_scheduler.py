"""Hybrid CPU-GPU scheduling via schedule simulation (paper §IV-B).

The scheduling problem — which device computes each activated expert,
and which uncached experts are worth transferring to the GPU first — is
NP-hard in general. HybriMoE constrains it with three priority rules:

- **GPU priority**: the GPU computes cached experts, higher load first;
- **CPU priority**: the CPU computes uncached experts, lower load
  first, and may *steal* low-load cached experts when otherwise idle;
- **Transfer priority**: PCIe moves high-load uncached experts first,
  so expensive computations become GPU-eligible as early as possible.

With the orders fixed, the only remaining decision is the *allocation*:
how many (and therefore which) uncached experts go to the transfer
queue rather than the CPU queue (eq. 2). :class:`HybridScheduler`
resolves it exactly as the paper describes — an event-driven simulation
fills the three timelines for each candidate allocation, and the
allocation with the smallest simulated makespan wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tasks import (
    SHARED_BLOCK,
    ComputeTask,
    Device,
    ExecutionPlan,
    LayerCostOracle,
    TransferTask,
)
from repro.errors import SchedulingError

__all__ = ["SchedulerConfig", "HybridScheduler", "SimulatedTask", "SimulationResult"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable behaviour of the hybrid scheduler.

    Attributes
    ----------
    search_transfers:
        When True (paper behaviour), simulate every transfer count
        ``k = 0..|uncached|`` and keep the best. When False, only the
        two extremes (no transfers / transfer everything) are evaluated
        — the cheap mode used inside prefetch impact estimation and as
        an ablation.
    allow_cpu_steal:
        Allow an idle CPU to take low-load *cached* experts from the
        GPU queue (the paper's CPU priority rule, second clause).
    steal_margin:
        Fractional safety margin on the steal-benefit test; a steal
        happens only if the CPU would finish the stolen expert before
        ``(1 - margin) *`` the GPU's estimated finish time.
    max_search_width:
        Upper bound on the number of simulated transfer counts (evenly
        subsampled, always including both extremes). ``None`` means
        exhaustive.
    """

    search_transfers: bool = True
    allow_cpu_steal: bool = True
    steal_margin: float = 0.0
    max_search_width: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.steal_margin < 1.0:
            raise SchedulingError(
                f"steal_margin must be in [0, 1), got {self.steal_margin}"
            )
        if self.max_search_width is not None and self.max_search_width < 2:
            raise SchedulingError(
                f"max_search_width must be >= 2, got {self.max_search_width}"
            )


@dataclass(frozen=True)
class SimulatedTask:
    """One simulated operation with its timeline placement."""

    expert: int
    start: float
    finish: float
    resource: str


@dataclass
class SimulationResult:
    """Outcome of one schedule simulation (one transfer allocation)."""

    makespan: float
    transfers: list[int]
    gpu_order: list[SimulatedTask]
    cpu_order: list[SimulatedTask]
    stolen: list[int]
    loads: dict[int, int]


class HybridScheduler:
    """Schedule-simulation planner implementing eq. (2) of the paper.

    Parameters
    ----------
    oracle_factory:
        Callable ``(n_tokens) -> LayerCostOracle`` giving *estimated*
        durations (typically a warmup-fitted cost model). The planner
        never sees actual execution times.
    config:
        Search and stealing behaviour.
    """

    def __init__(self, oracle_factory, config: SchedulerConfig | None = None) -> None:
        self._oracle_factory = oracle_factory
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def plan(
        self,
        layer: int,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        pcie_backlog: float = 0.0,
        include_shared: bool = True,
        inflight: dict[int, float] | None = None,
        cpu_backlog: float = 0.0,
    ) -> ExecutionPlan:
        """Produce the minimal-makespan execution plan for one layer.

        Parameters
        ----------
        layer:
            MoE layer index (only labels the plan).
        activated:
            ``(expert_id, load)`` pairs for every activated routed
            expert of the layer.
        cached_experts:
            Expert ids of this layer resident (or in flight) on the GPU.
        n_tokens:
            Tokens in this step (drives shared-expert cost).
        pcie_backlog:
            Seconds until the PCIe link frees up relative to the MoE
            phase start (in-flight prefetch transfers queue ahead).
        include_shared:
            Prepend the fused shared-experts block to the GPU queue
            (the paper's timelines always run shared experts on GPU
            first, Fig. 5).
        inflight:
            Ready-time offsets (relative to the MoE phase start) of
            cached experts whose prefetch transfers are still in
            flight; the GPU cannot start them earlier.
        cpu_backlog:
            Seconds until the shared CPU frees up relative to the MoE
            phase start. Zero on a single-GPU platform (the layer
            barrier drains the CPU); on a multi-GPU platform earlier
            devices' CPU-fallback work queues ahead, and this offset is
            how each device's planner arbitrates its own CPU fallback
            against the fleet-shared CPU (the per-device min-latency
            rule).
        """
        oracle = self._oracle_factory(n_tokens)
        best = self._best_simulation(
            activated,
            cached_experts,
            oracle,
            pcie_backlog,
            include_shared,
            inflight,
            cpu_backlog=cpu_backlog,
        )
        return self._materialise(layer, n_tokens, best, oracle, include_shared)

    def simulate_makespan(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        n_tokens: int,
        pcie_backlog: float = 0.0,
        include_shared: bool = True,
        quick: bool = False,
        inflight: dict[int, float] | None = None,
        cpu_backlog: float = 0.0,
    ) -> float:
        """Estimated makespan of the best allocation (no plan object).

        ``quick=True`` forces the two-extremes search regardless of
        config — used heavily by the prefetcher's impact simulation.
        """
        oracle = self._oracle_factory(n_tokens)
        best = self._best_simulation(
            activated,
            cached_experts,
            oracle,
            pcie_backlog,
            include_shared,
            inflight,
            force_quick=quick,
            cpu_backlog=cpu_backlog,
        )
        return best.makespan

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _candidate_transfer_counts(self, n_uncached: int, force_quick: bool) -> list[int]:
        if n_uncached == 0:
            return [0]
        if force_quick or not self.config.search_transfers:
            return sorted({0, n_uncached})
        counts = list(range(n_uncached + 1))
        width = self.config.max_search_width
        if width is not None and len(counts) > width:
            # Evenly subsample, always keeping the extremes.
            step = (n_uncached) / (width - 1)
            sampled = {round(i * step) for i in range(width)}
            counts = sorted(sampled | {0, n_uncached})
        return counts

    def _best_simulation(
        self,
        activated: list[tuple[int, int]],
        cached_experts: set[int],
        oracle: LayerCostOracle,
        pcie_backlog: float,
        include_shared: bool,
        inflight: dict[int, float] | None = None,
        force_quick: bool = False,
        cpu_backlog: float = 0.0,
    ) -> SimulationResult:
        if pcie_backlog < 0:
            raise SchedulingError(f"pcie_backlog must be non-negative, got {pcie_backlog}")
        if cpu_backlog < 0:
            raise SchedulingError(f"cpu_backlog must be non-negative, got {cpu_backlog}")
        loads = dict(activated)
        if len(loads) != len(activated):
            raise SchedulingError("duplicate expert ids in activated list")
        if any(load <= 0 for load in loads.values()):
            raise SchedulingError("activated experts must have positive load")
        inflight = {
            e: max(0.0, ready)
            for e, ready in (inflight or {}).items()
            if e in loads and e in cached_experts
        }

        uncached = [e for e, _ in activated if e not in cached_experts]
        best: SimulationResult | None = None
        for k in self._candidate_transfer_counts(len(uncached), force_quick):
            result = self._simulate(
                loads,
                cached_experts,
                oracle,
                k,
                pcie_backlog,
                include_shared,
                inflight,
                cpu_backlog=cpu_backlog,
            )
            better = best is None or result.makespan < best.makespan - 1e-15
            tie_fewer_transfers = (
                best is not None
                and abs(result.makespan - best.makespan) <= 1e-15
                and len(result.transfers) < len(best.transfers)
            )
            if better or tie_fewer_transfers:
                best = result
        assert best is not None  # at least k=0 is always simulated
        return best

    # ------------------------------------------------------------------
    # the event-driven schedule simulation
    # ------------------------------------------------------------------
    def _simulate(
        self,
        loads: dict[int, int],
        cached_experts: set[int],
        oracle: LayerCostOracle,
        k_transfers: int,
        pcie_backlog: float,
        include_shared: bool,
        inflight: dict[int, float] | None = None,
        cpu_backlog: float = 0.0,
    ) -> SimulationResult:
        """Fill the three timelines for one transfer allocation.

        The simulation advances the resource whose next operation
        *starts* earliest, exactly reproducing the interleaving a real
        run with these priority queues would produce.
        """
        inflight = inflight or {}
        by_load_desc = sorted(loads, key=lambda e: (-loads[e], e))
        uncached_desc = [e for e in by_load_desc if e not in cached_experts]
        cached_desc = [
            e for e in by_load_desc if e in cached_experts and e not in inflight
        ]

        transfer_list = uncached_desc[:k_transfers]
        cpu_jobs = sorted(
            (e for e in uncached_desc[k_transfers:]), key=lambda e: (loads[e], e)
        )

        # PCIe: sequential transfers, high-load first, behind the backlog.
        # In-flight prefetches arrive at their own ready offsets without
        # consuming new PCIe time (their transfers are already queued).
        arrivals: list[tuple[float, int]] = [
            (ready, e) for e, ready in inflight.items()
        ]
        t_pcie = pcie_backlog
        for expert in transfer_list:
            t_pcie += oracle.transfer()
            arrivals.append((t_pcie, expert))
        arrivals.sort(key=lambda pair: (pair[0], -loads[pair[1]], pair[1]))

        gpu_order: list[SimulatedTask] = []
        cpu_order: list[SimulatedTask] = []
        stolen: list[int] = []

        t_gpu = 0.0
        if include_shared:
            shared_dur = oracle.shared_compute(Device.GPU)
            if shared_dur > 0.0:
                gpu_order.append(SimulatedTask(SHARED_BLOCK, 0.0, shared_dur, "gpu"))
                t_gpu = shared_dur

        gpu_pool: list[int] = list(cached_desc)  # descending load
        arrival_idx = 0
        t_cpu = cpu_backlog  # shared-CPU work of earlier devices queues ahead
        cpu_idx = 0
        cpu_finished = False

        def absorb_arrivals(up_to: float) -> None:
            nonlocal arrival_idx
            while arrival_idx < len(arrivals) and arrivals[arrival_idx][0] <= up_to:
                expert = arrivals[arrival_idx][1]
                # Insert preserving descending-load order (paper: a
                # transferred expert joins the GPU queue by load).
                position = 0
                while position < len(gpu_pool) and (
                    loads[gpu_pool[position]] > loads[expert]
                    or (
                        loads[gpu_pool[position]] == loads[expert]
                        and gpu_pool[position] < expert
                    )
                ):
                    position += 1
                gpu_pool.insert(position, expert)
                arrival_idx += 1

        def gpu_finish_estimate() -> float:
            """Lower-bound finish time of all GPU-bound work (no steal)."""
            t = t_gpu
            for expert in gpu_pool:
                t += oracle.gpu_compute(loads[expert])
            for ready, expert in arrivals[arrival_idx:]:
                t = max(t, ready) + oracle.gpu_compute(loads[expert])
            return t

        while True:
            absorb_arrivals(t_gpu)
            # --- candidate GPU action -------------------------------------
            if gpu_pool:
                gpu_start = t_gpu
            elif arrival_idx < len(arrivals):
                gpu_start = max(t_gpu, arrivals[arrival_idx][0])
            else:
                gpu_start = float("inf")
            # --- candidate CPU action -------------------------------------
            steal_candidates = [e for e in gpu_pool if e in cached_experts]
            cpu_can_steal = (
                self.config.allow_cpu_steal
                and not cpu_finished
                and cpu_idx >= len(cpu_jobs)
                and bool(steal_candidates)
            )
            if cpu_idx < len(cpu_jobs):
                cpu_start = t_cpu
            elif cpu_can_steal:
                cpu_start = t_cpu
            else:
                cpu_start = float("inf")

            if gpu_start == float("inf") and cpu_start == float("inf"):
                break

            # Tie-break: a beneficial CPU steal commits before the GPU's
            # pop of the same instant — when the CPU can finish a cached
            # expert sooner than the GPU would clear its queue, holding
            # the expert hostage on the GPU only inflates the makespan.
            cpu_wins_tie = gpu_start == cpu_start and cpu_idx >= len(cpu_jobs)
            if gpu_start <= cpu_start and not cpu_wins_tie:
                absorb_arrivals(gpu_start)
                if not gpu_pool:
                    raise SchedulingError("simulation invariant: empty GPU pool at dispatch")
                expert = gpu_pool.pop(0)
                duration = oracle.gpu_compute(loads[expert])
                gpu_order.append(
                    SimulatedTask(expert, gpu_start, gpu_start + duration, "gpu")
                )
                t_gpu = gpu_start + duration
            else:
                if cpu_idx < len(cpu_jobs):
                    expert = cpu_jobs[cpu_idx]
                    cpu_idx += 1
                else:
                    # Steal the lowest-load cached expert if the CPU can
                    # finish it before the GPU would get everything done.
                    candidate = min(steal_candidates, key=lambda e: (loads[e], e))
                    duration = oracle.cpu_compute(
                        loads[candidate], first_task=not cpu_order
                    )
                    threshold = gpu_finish_estimate() * (1.0 - self.config.steal_margin)
                    if t_cpu + duration >= threshold:
                        cpu_finished = True
                        continue
                    gpu_pool.remove(candidate)
                    stolen.append(candidate)
                    expert = candidate
                duration = oracle.cpu_compute(loads[expert], first_task=not cpu_order)
                cpu_order.append(
                    SimulatedTask(expert, t_cpu, t_cpu + duration, "cpu")
                )
                t_cpu += duration

        # The CPU contributes to the makespan only through tasks of this
        # layer — a pre-existing backlog with no CPU work here is other
        # devices' problem, not this plan's.
        cpu_end = cpu_order[-1].finish if cpu_order else 0.0
        makespan = max(t_gpu, cpu_end)
        return SimulationResult(
            makespan=makespan,
            transfers=list(transfer_list),
            gpu_order=gpu_order,
            cpu_order=cpu_order,
            stolen=stolen,
            loads=dict(loads),
        )

    # ------------------------------------------------------------------
    # plan assembly
    # ------------------------------------------------------------------
    def _materialise(
        self,
        layer: int,
        n_tokens: int,
        sim: SimulationResult,
        oracle: LayerCostOracle,
        include_shared: bool,
    ) -> ExecutionPlan:
        transferred = set(sim.transfers)
        gpu_tasks = []
        for task in sim.gpu_order:
            if task.expert == SHARED_BLOCK:
                gpu_tasks.append(
                    ComputeTask(layer, SHARED_BLOCK, n_tokens, Device.GPU)
                )
            else:
                gpu_tasks.append(
                    ComputeTask(
                        layer,
                        task.expert,
                        sim.loads[task.expert],
                        Device.GPU,
                        after_transfer=task.expert in transferred,
                    )
                )
        cpu_tasks = [
            ComputeTask(layer, task.expert, sim.loads[task.expert], Device.CPU)
            for task in sim.cpu_order
        ]
        transfers = [
            TransferTask(layer, expert, sim.loads[expert]) for expert in sim.transfers
        ]
        return ExecutionPlan(
            layer=layer,
            n_tokens=n_tokens,
            gpu_tasks=gpu_tasks,
            cpu_tasks=cpu_tasks,
            transfers=transfers,
            estimated_makespan=sim.makespan,
            metadata={
                "scheduler": "hybrid",
                "transfer_count": len(sim.transfers),
                "stolen": list(sim.stolen),
                "include_shared": include_shared,
            },
        )

