"""Fixed-mapping plan construction (prior-art behaviour).

This is the scheduling rule HybriMoE *replaces*: cached experts run on
the GPU, uncached experts are handled without any balancing search —
decode computes them on the CPU in id order (kTransformers), prefill
on-demand-loads them all to the GPU. It serves both the kTransformers
baseline and the "scheduling off" arm of the Table III ablation.
"""

from __future__ import annotations

from repro.core.tasks import (
    SHARED_BLOCK,
    ComputeTask,
    Device,
    ExecutionPlan,
    LayerCostOracle,
    TransferTask,
)

__all__ = ["fixed_mapping_plan", "gpu_only_plan"]


def _shared_task(layer: int, n_tokens: int, oracle: LayerCostOracle, device: Device):
    if oracle.num_shared == 0:
        return None
    return ComputeTask(layer, SHARED_BLOCK, n_tokens, device)


def fixed_mapping_plan(
    layer: int,
    activated: list[tuple[int, int]],
    cached_experts: set[int],
    n_tokens: int,
    stage: str,
    oracle: LayerCostOracle,
    include_shared: bool = True,
) -> ExecutionPlan:
    """kTransformers-style plan: no balancing, no transfer search.

    - cached experts -> GPU (descending load, after the shared block);
    - uncached experts -> CPU in expert-id order during decode,
      on-demand GPU loads during prefill (CPU computation is
      decode-only in kTransformers, paper Table I).

    ``include_shared=False`` omits the fused shared-experts block — on
    a multi-GPU platform only one device's plan carries it per layer.
    """
    cached = [(e, load) for e, load in activated if e in cached_experts]
    uncached = [(e, load) for e, load in activated if e not in cached_experts]
    cached.sort(key=lambda pair: (-pair[1], pair[0]))

    gpu_tasks: list[ComputeTask] = []
    shared = _shared_task(layer, n_tokens, oracle, Device.GPU) if include_shared else None
    if shared is not None:
        gpu_tasks.append(shared)
    gpu_tasks.extend(
        ComputeTask(layer, e, load, Device.GPU) for e, load in cached
    )

    cpu_tasks: list[ComputeTask] = []
    transfers: list[TransferTask] = []
    if stage == "decode":
        uncached.sort(key=lambda pair: pair[0])
        cpu_tasks = [ComputeTask(layer, e, load, Device.CPU) for e, load in uncached]
    else:
        uncached.sort(key=lambda pair: (-pair[1], pair[0]))
        transfers = [TransferTask(layer, e, load) for e, load in uncached]
        gpu_tasks.extend(
            ComputeTask(layer, e, load, Device.GPU, after_transfer=True)
            for e, load in uncached
        )

    return ExecutionPlan(
        layer=layer,
        n_tokens=n_tokens,
        gpu_tasks=gpu_tasks,
        cpu_tasks=cpu_tasks,
        transfers=transfers,
        estimated_makespan=_serial_estimate(gpu_tasks, cpu_tasks, transfers, oracle),
        metadata={"scheduler": "fixed", "stage": stage},
    )


def gpu_only_plan(
    layer: int,
    activated: list[tuple[int, int]],
    cached_experts: set[int],
    n_tokens: int,
    oracle: LayerCostOracle,
    include_shared: bool = True,
) -> ExecutionPlan:
    """GPU-centric plan (AdapMoE / on-demand): misses are loaded, never
    CPU-computed. Cached experts run first (descending load) while the
    PCIe link streams the missing experts in descending-load order.
    ``include_shared=False`` omits the fused shared-experts block (the
    multi-GPU pipeline places it on one device per layer)."""
    cached = [(e, load) for e, load in activated if e in cached_experts]
    uncached = [(e, load) for e, load in activated if e not in cached_experts]
    cached.sort(key=lambda pair: (-pair[1], pair[0]))
    uncached.sort(key=lambda pair: (-pair[1], pair[0]))

    gpu_tasks: list[ComputeTask] = []
    shared = _shared_task(layer, n_tokens, oracle, Device.GPU) if include_shared else None
    if shared is not None:
        gpu_tasks.append(shared)
    gpu_tasks.extend(ComputeTask(layer, e, load, Device.GPU) for e, load in cached)
    gpu_tasks.extend(
        ComputeTask(layer, e, load, Device.GPU, after_transfer=True)
        for e, load in uncached
    )
    transfers = [TransferTask(layer, e, load) for e, load in uncached]

    return ExecutionPlan(
        layer=layer,
        n_tokens=n_tokens,
        gpu_tasks=gpu_tasks,
        cpu_tasks=[],
        transfers=transfers,
        estimated_makespan=_serial_estimate(gpu_tasks, [], transfers, oracle),
        metadata={"scheduler": "gpu-only"},
    )


def _serial_estimate(
    gpu_tasks: list[ComputeTask],
    cpu_tasks: list[ComputeTask],
    transfers: list[TransferTask],
    oracle: LayerCostOracle,
) -> float:
    """Crude makespan estimate: serial per resource, transfer-gated GPU."""
    transfer_end = len(transfers) * oracle.transfer()
    t_gpu = 0.0
    for task in gpu_tasks:
        if task.is_shared:
            t_gpu += oracle.shared_compute(Device.GPU)
        else:
            t_gpu += oracle.gpu_compute(task.load)
    if transfers:
        t_gpu = max(t_gpu, transfer_end)
    t_cpu = 0.0
    for index, task in enumerate(cpu_tasks):
        if task.is_shared:
            t_cpu += oracle.shared_compute(Device.CPU, first_task=index == 0)
        else:
            t_cpu += oracle.cpu_compute(task.load, first_task=index == 0)
    return max(t_gpu, t_cpu)
