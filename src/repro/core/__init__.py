"""HybriMoE core: hybrid scheduling, plan execution and prefetching.

This package implements the paper's primary contribution:

- :mod:`repro.core.tasks` — execution-plan vocabulary (compute tasks,
  transfers, the per-layer cost oracle);
- :mod:`repro.core.hybrid_scheduler` — the schedule-simulation planner
  of §IV-B: priority queues per resource, an event-driven simulation
  that fills the CPU/GPU/PCIe timelines, and a search over transfer
  allocations that minimises estimated makespan;
- :mod:`repro.core.executor` — replays a plan against the engine's
  discrete-event clock with the *actual* cost model;
- :mod:`repro.core.prefetch` — the impact-driven prefetcher of §IV-C,
  ranking candidate experts of the next layers by simulated makespan
  reduction;
- :mod:`repro.core.strategy` — the full HybriMoE strategy with
  component toggles (scheduling / prefetching / caching) used by the
  Table III ablation.
"""

from repro.core.executor import LayerExecutionResult, TaskRecord, execute_plan
from repro.core.hybrid_scheduler import HybridScheduler, SchedulerConfig
from repro.core.prefetch import ImpactDrivenPrefetcher, PrefetchDecision, PredictedLayer
from repro.core.tasks import (
    ComputeTask,
    Device,
    ExecutionPlan,
    LayerCostOracle,
    TransferTask,
)

__all__ = [
    "Device",
    "ComputeTask",
    "TransferTask",
    "ExecutionPlan",
    "LayerCostOracle",
    "HybridScheduler",
    "SchedulerConfig",
    "execute_plan",
    "TaskRecord",
    "LayerExecutionResult",
    "ImpactDrivenPrefetcher",
    "PrefetchDecision",
    "PredictedLayer",
]
