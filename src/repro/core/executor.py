"""Plan execution against the discrete-event clock.

:func:`execute_plan` replays an :class:`~repro.core.tasks.ExecutionPlan`
on the engine's :class:`~repro.hardware.simulator.ThreeResourceClock`
using the *actual* cost model. The planner's simulation used estimated
durations; execution re-derives every duration from ground truth, so
estimate-vs-reality gaps (warmup fitting error, injected noise) show up
as schedule slack or overruns exactly as they would on hardware.

Dependencies honoured:

- tasks on one resource run serially in plan order;
- a GPU compute task flagged ``after_transfer`` cannot start before its
  transfer finishes;
- externally in-flight arrivals (prefetches from earlier layers) gate
  GPU tasks through the ``arrivals`` map;
- on a tiered-memory platform, a **spilled** expert's weights are first
  staged disk -> DRAM on the clock's shared disk link; its PCIe
  transfer and/or CPU compute cannot start before that read finishes.

:class:`TaskRecord` materialization is **opt-out**: records feed tests,
debug reporting and post-hoc analysis, never the timeline state itself
(every ``reserve`` carries the same label and duration either way), so
the engine's fast path executes plans with ``collect_records=False`` and
skips both the per-task record objects and the per-layer copy of the
in-flight arrivals map (replaced by a write-local/read-through overlay —
the same lookups, no bulk copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tasks import Device, ExecutionPlan, LayerCostOracle
from repro.errors import SchedulingError
from repro.hardware.simulator import ThreeResourceClock

__all__ = ["TaskRecord", "LayerExecutionResult", "execute_plan"]

_NO_ARRIVALS: dict[tuple[int, int], float] = {}


@dataclass(frozen=True)
class TaskRecord:
    """One executed operation with committed timeline placement."""

    resource: str
    layer: int
    expert: int
    kind: str  # "compute" | "transfer" | "shared"
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class LayerExecutionResult:
    """Committed timings of one layer's MoE phase."""

    layer: int
    start_time: float
    compute_end: float
    transfer_end: float
    records: list[TaskRecord] = field(default_factory=list)
    _by_resource: dict[str, list[TaskRecord]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def makespan(self) -> float:
        """Wall time from phase start to last compute finish."""
        return self.compute_end - self.start_time

    def records_on(self, resource: str) -> list[TaskRecord]:
        """Records of one resource, grouped lazily on first access."""
        if self._by_resource is None:
            grouped: dict[str, list[TaskRecord]] = {}
            for record in self.records:
                grouped.setdefault(record.resource, []).append(record)
            self._by_resource = grouped
        return list(self._by_resource.get(resource, ()))


def execute_plan(
    plan: ExecutionPlan,
    clock: ThreeResourceClock,
    oracle: LayerCostOracle,
    start_time: float,
    external_arrivals: dict[tuple[int, int], float] | None = None,
    device: int = 0,
    spilled: frozenset[int] | set[int] | None = None,
    collect_records: bool = True,
) -> LayerExecutionResult:
    """Execute a validated plan, reserving real timeline intervals.

    Parameters
    ----------
    plan:
        The per-layer plan (already validated by the engine).
    clock:
        The engine's absolute-time resource ledger.
    oracle:
        Duration oracle bound to the *actual* cost model.
    start_time:
        Earliest moment any MoE work of this layer may begin (the end of
        the layer's attention phase: routing is only known then).
    external_arrivals:
        Completion times of in-flight transfers issued by earlier
        layers' prefetches, keyed by ``(layer, expert)``. A GPU task for
        such an expert waits for its arrival.
    device:
        GPU device this plan is bound to: its compute tasks reserve on
        ``clock.gpus[device]`` and its transfers on that device's PCIe
        link. CPU tasks always run on the shared CPU timeline, so
        multi-device plans executed in sequence serialise there.
    spilled:
        Expert ids of this layer resident in no memory tier (tiered
        platforms): each first reserves a disk read on ``clock.disk``,
        gating its PCIe transfer or CPU compute. ``None``/empty keeps
        the historical two-tier execution byte-for-byte.
    collect_records:
        Materialize a :class:`TaskRecord` per operation. Timelines,
        arrivals and the returned end times are identical either way;
        ``False`` (the engine fast path) skips record objects and the
        bulk copy of ``external_arrivals``.

    Returns
    -------
    LayerExecutionResult
        Committed task records plus the layer's compute end time.
    """
    if start_time < 0:
        raise SchedulingError(f"start_time must be non-negative, got {start_time}")
    spilled = spilled or frozenset()
    if spilled and clock.disk is None:
        raise SchedulingError(
            "plan has spilled experts but the clock models no disk tier"
        )
    records: list[TaskRecord] = []
    if collect_records:
        # Historical behaviour: a private copy that this plan's own
        # transfers overwrite.
        arrivals = dict(external_arrivals or {})
        local_arrivals = arrivals
        external = _NO_ARRIVALS
    else:
        # Overlay with the same read semantics (local transfers shadow
        # external prefetch arrivals) and no per-layer bulk copy; the
        # external map is never written.
        arrivals = _NO_ARRIVALS
        local_arrivals = {}
        external = external_arrivals or _NO_ARRIVALS
    gpu_timeline = clock.gpu_timeline(device)
    pcie_timeline = clock.pcie_timeline(device)

    def arrival_of(layer: int, expert: int) -> float:
        key = (layer, expert)
        when = local_arrivals.get(key)
        if when is not None:
            return when
        return external.get(key, start_time)

    def stage_from_disk(layer: int, expert: int) -> float:
        """Reserve the disk -> DRAM read; returns its finish time."""
        start, finish = clock.disk.reserve(
            start_time, oracle.disk_fetch(), f"disk L{layer} E{expert}"
        )
        if collect_records:
            records.append(
                TaskRecord("disk", layer, expert, "disk_fetch", start, finish)
            )
        return finish

    # --- PCIe: on-demand transfers, in plan order ----------------------
    transfer_end = start_time
    for transfer in plan.transfers:
        earliest = start_time
        if transfer.expert in spilled:
            earliest = max(earliest, stage_from_disk(transfer.layer, transfer.expert))
        duration = oracle.transfer()
        start, finish = pcie_timeline.reserve(
            earliest, duration, f"xfer L{transfer.layer} E{transfer.expert}"
        )
        local_arrivals[(transfer.layer, transfer.expert)] = finish
        transfer_end = max(transfer_end, finish)
        if collect_records:
            records.append(
                TaskRecord(
                    "pcie", transfer.layer, transfer.expert, "transfer", start, finish
                )
            )

    # --- GPU compute ----------------------------------------------------
    compute_end = start_time
    for task in plan.gpu_tasks:
        if task.is_shared:
            duration = oracle.shared_compute(Device.GPU)
            earliest = start_time
            kind = "shared"
        else:
            duration = oracle.gpu_compute(task.load)
            earliest = max(start_time, arrival_of(task.layer, task.expert))
            kind = "compute"
        start, finish = gpu_timeline.reserve(
            earliest, duration, f"gpu L{task.layer} E{task.expert}"
        )
        compute_end = max(compute_end, finish)
        if collect_records:
            records.append(
                TaskRecord("gpu", task.layer, task.expert, kind, start, finish)
            )

    # --- CPU compute ----------------------------------------------------
    first_cpu = True
    for task in plan.cpu_tasks:
        earliest = start_time
        if task.is_shared:
            duration = oracle.shared_compute(Device.CPU, first_task=first_cpu)
            kind = "shared"
        else:
            if task.expert in spilled:
                # The CPU computes in place from DRAM: a spilled expert
                # must be staged off disk before its compute can start.
                earliest = max(earliest, stage_from_disk(task.layer, task.expert))
            duration = oracle.cpu_compute(task.load, first_task=first_cpu)
            kind = "compute"
        first_cpu = False
        start, finish = clock.cpu.reserve(
            earliest, duration, f"cpu L{task.layer} E{task.expert}"
        )
        compute_end = max(compute_end, finish)
        if collect_records:
            records.append(
                TaskRecord("cpu", task.layer, task.expert, kind, start, finish)
            )

    return LayerExecutionResult(
        layer=plan.layer,
        start_time=start_time,
        compute_end=compute_end,
        transfer_end=transfer_end,
        records=records,
    )
