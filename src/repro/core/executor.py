"""Plan execution against the discrete-event clock.

:func:`execute_plan` replays an :class:`~repro.core.tasks.ExecutionPlan`
on the engine's :class:`~repro.hardware.simulator.ThreeResourceClock`
using the *actual* cost model. The planner's simulation used estimated
durations; execution re-derives every duration from ground truth, so
estimate-vs-reality gaps (warmup fitting error, injected noise) show up
as schedule slack or overruns exactly as they would on hardware.

Dependencies honoured:

- tasks on one resource run serially in plan order;
- a GPU compute task flagged ``after_transfer`` cannot start before its
  transfer finishes;
- externally in-flight arrivals (prefetches from earlier layers) gate
  GPU tasks through the ``arrivals`` map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tasks import Device, ExecutionPlan, LayerCostOracle
from repro.errors import SchedulingError
from repro.hardware.simulator import ThreeResourceClock

__all__ = ["TaskRecord", "LayerExecutionResult", "execute_plan"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed operation with committed timeline placement."""

    resource: str
    layer: int
    expert: int
    kind: str  # "compute" | "transfer" | "shared"
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class LayerExecutionResult:
    """Committed timings of one layer's MoE phase."""

    layer: int
    start_time: float
    compute_end: float
    transfer_end: float
    records: list[TaskRecord] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall time from phase start to last compute finish."""
        return self.compute_end - self.start_time

    def records_on(self, resource: str) -> list[TaskRecord]:
        return [r for r in self.records if r.resource == resource]


def execute_plan(
    plan: ExecutionPlan,
    clock: ThreeResourceClock,
    oracle: LayerCostOracle,
    start_time: float,
    external_arrivals: dict[tuple[int, int], float] | None = None,
    device: int = 0,
) -> LayerExecutionResult:
    """Execute a validated plan, reserving real timeline intervals.

    Parameters
    ----------
    plan:
        The per-layer plan (already validated by the engine).
    clock:
        The engine's absolute-time resource ledger.
    oracle:
        Duration oracle bound to the *actual* cost model.
    start_time:
        Earliest moment any MoE work of this layer may begin (the end of
        the layer's attention phase: routing is only known then).
    external_arrivals:
        Completion times of in-flight transfers issued by earlier
        layers' prefetches, keyed by ``(layer, expert)``. A GPU task for
        such an expert waits for its arrival.
    device:
        GPU device this plan is bound to: its compute tasks reserve on
        ``clock.gpus[device]`` and its transfers on that device's PCIe
        link. CPU tasks always run on the shared CPU timeline, so
        multi-device plans executed in sequence serialise there.

    Returns
    -------
    LayerExecutionResult
        Committed task records plus the layer's compute end time.
    """
    if start_time < 0:
        raise SchedulingError(f"start_time must be non-negative, got {start_time}")
    arrivals = dict(external_arrivals or {})
    records: list[TaskRecord] = []
    gpu_timeline = clock.gpu_timeline(device)
    pcie_timeline = clock.pcie_timeline(device)

    # --- PCIe: on-demand transfers, in plan order ----------------------
    transfer_end = start_time
    for transfer in plan.transfers:
        duration = oracle.transfer()
        start, finish = pcie_timeline.reserve(
            start_time, duration, f"xfer L{transfer.layer} E{transfer.expert}"
        )
        arrivals[(transfer.layer, transfer.expert)] = finish
        transfer_end = max(transfer_end, finish)
        records.append(
            TaskRecord("pcie", transfer.layer, transfer.expert, "transfer", start, finish)
        )

    # --- GPU compute ----------------------------------------------------
    compute_end = start_time
    for task in plan.gpu_tasks:
        if task.is_shared:
            duration = oracle.shared_compute(Device.GPU)
            earliest = start_time
            kind = "shared"
        else:
            duration = oracle.gpu_compute(task.load)
            earliest = max(start_time, arrivals.get((task.layer, task.expert), start_time))
            kind = "compute"
        start, finish = gpu_timeline.reserve(
            earliest, duration, f"gpu L{task.layer} E{task.expert}"
        )
        compute_end = max(compute_end, finish)
        records.append(TaskRecord("gpu", task.layer, task.expert, kind, start, finish))

    # --- CPU compute ----------------------------------------------------
    first_cpu = True
    for task in plan.cpu_tasks:
        if task.is_shared:
            duration = oracle.shared_compute(Device.CPU, first_task=first_cpu)
            kind = "shared"
        else:
            duration = oracle.cpu_compute(task.load, first_task=first_cpu)
            kind = "compute"
        first_cpu = False
        start, finish = clock.cpu.reserve(
            start_time, duration, f"cpu L{task.layer} E{task.expert}"
        )
        compute_end = max(compute_end, finish)
        records.append(TaskRecord("cpu", task.layer, task.expert, kind, start, finish))

    return LayerExecutionResult(
        layer=plan.layer,
        start_time=start_time,
        compute_end=compute_end,
        transfer_end=transfer_end,
        records=records,
    )
