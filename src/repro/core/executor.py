"""Plan execution against the discrete-event clock.

:func:`execute_plan` replays an :class:`~repro.core.tasks.ExecutionPlan`
on the engine's :class:`~repro.hardware.simulator.ThreeResourceClock`
using the *actual* cost model. The planner's simulation used estimated
durations; execution re-derives every duration from ground truth, so
estimate-vs-reality gaps (warmup fitting error, injected noise) show up
as schedule slack or overruns exactly as they would on hardware.

Dependencies honoured:

- tasks on one resource run serially in plan order;
- a GPU compute task flagged ``after_transfer`` cannot start before its
  transfer finishes;
- externally in-flight arrivals (prefetches from earlier layers) gate
  GPU tasks through the ``arrivals`` map;
- on a tiered-memory platform, a **spilled** expert's weights are first
  staged disk -> DRAM on the clock's shared disk link; its PCIe
  transfer and/or CPU compute cannot start before that read finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tasks import Device, ExecutionPlan, LayerCostOracle
from repro.errors import SchedulingError
from repro.hardware.simulator import ThreeResourceClock

__all__ = ["TaskRecord", "LayerExecutionResult", "execute_plan"]


@dataclass(frozen=True)
class TaskRecord:
    """One executed operation with committed timeline placement."""

    resource: str
    layer: int
    expert: int
    kind: str  # "compute" | "transfer" | "shared"
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class LayerExecutionResult:
    """Committed timings of one layer's MoE phase."""

    layer: int
    start_time: float
    compute_end: float
    transfer_end: float
    records: list[TaskRecord] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall time from phase start to last compute finish."""
        return self.compute_end - self.start_time

    def records_on(self, resource: str) -> list[TaskRecord]:
        return [r for r in self.records if r.resource == resource]


def execute_plan(
    plan: ExecutionPlan,
    clock: ThreeResourceClock,
    oracle: LayerCostOracle,
    start_time: float,
    external_arrivals: dict[tuple[int, int], float] | None = None,
    device: int = 0,
    spilled: frozenset[int] | set[int] | None = None,
) -> LayerExecutionResult:
    """Execute a validated plan, reserving real timeline intervals.

    Parameters
    ----------
    plan:
        The per-layer plan (already validated by the engine).
    clock:
        The engine's absolute-time resource ledger.
    oracle:
        Duration oracle bound to the *actual* cost model.
    start_time:
        Earliest moment any MoE work of this layer may begin (the end of
        the layer's attention phase: routing is only known then).
    external_arrivals:
        Completion times of in-flight transfers issued by earlier
        layers' prefetches, keyed by ``(layer, expert)``. A GPU task for
        such an expert waits for its arrival.
    device:
        GPU device this plan is bound to: its compute tasks reserve on
        ``clock.gpus[device]`` and its transfers on that device's PCIe
        link. CPU tasks always run on the shared CPU timeline, so
        multi-device plans executed in sequence serialise there.
    spilled:
        Expert ids of this layer resident in no memory tier (tiered
        platforms): each first reserves a disk read on ``clock.disk``,
        gating its PCIe transfer or CPU compute. ``None``/empty keeps
        the historical two-tier execution byte-for-byte.

    Returns
    -------
    LayerExecutionResult
        Committed task records plus the layer's compute end time.
    """
    if start_time < 0:
        raise SchedulingError(f"start_time must be non-negative, got {start_time}")
    spilled = spilled or frozenset()
    if spilled and clock.disk is None:
        raise SchedulingError(
            "plan has spilled experts but the clock models no disk tier"
        )
    arrivals = dict(external_arrivals or {})
    records: list[TaskRecord] = []
    gpu_timeline = clock.gpu_timeline(device)
    pcie_timeline = clock.pcie_timeline(device)

    def stage_from_disk(layer: int, expert: int) -> float:
        """Reserve the disk -> DRAM read; returns its finish time."""
        start, finish = clock.disk.reserve(
            start_time, oracle.disk_fetch(), f"disk L{layer} E{expert}"
        )
        records.append(TaskRecord("disk", layer, expert, "disk_fetch", start, finish))
        return finish

    # --- PCIe: on-demand transfers, in plan order ----------------------
    transfer_end = start_time
    for transfer in plan.transfers:
        earliest = start_time
        if transfer.expert in spilled:
            earliest = max(earliest, stage_from_disk(transfer.layer, transfer.expert))
        duration = oracle.transfer()
        start, finish = pcie_timeline.reserve(
            earliest, duration, f"xfer L{transfer.layer} E{transfer.expert}"
        )
        arrivals[(transfer.layer, transfer.expert)] = finish
        transfer_end = max(transfer_end, finish)
        records.append(
            TaskRecord("pcie", transfer.layer, transfer.expert, "transfer", start, finish)
        )

    # --- GPU compute ----------------------------------------------------
    compute_end = start_time
    for task in plan.gpu_tasks:
        if task.is_shared:
            duration = oracle.shared_compute(Device.GPU)
            earliest = start_time
            kind = "shared"
        else:
            duration = oracle.gpu_compute(task.load)
            earliest = max(start_time, arrivals.get((task.layer, task.expert), start_time))
            kind = "compute"
        start, finish = gpu_timeline.reserve(
            earliest, duration, f"gpu L{task.layer} E{task.expert}"
        )
        compute_end = max(compute_end, finish)
        records.append(TaskRecord("gpu", task.layer, task.expert, kind, start, finish))

    # --- CPU compute ----------------------------------------------------
    first_cpu = True
    for task in plan.cpu_tasks:
        earliest = start_time
        if task.is_shared:
            duration = oracle.shared_compute(Device.CPU, first_task=first_cpu)
            kind = "shared"
        else:
            if task.expert in spilled:
                # The CPU computes in place from DRAM: a spilled expert
                # must be staged off disk before its compute can start.
                earliest = max(earliest, stage_from_disk(task.layer, task.expert))
            duration = oracle.cpu_compute(task.load, first_task=first_cpu)
            kind = "compute"
        first_cpu = False
        start, finish = clock.cpu.reserve(
            earliest, duration, f"cpu L{task.layer} E{task.expert}"
        )
        compute_end = max(compute_end, finish)
        records.append(TaskRecord("cpu", task.layer, task.expert, kind, start, finish))

    return LayerExecutionResult(
        layer=plan.layer,
        start_time=start_time,
        compute_end=compute_end,
        transfer_end=transfer_end,
        records=records,
    )
