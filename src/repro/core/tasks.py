"""Execution-plan vocabulary shared by schedulers, executor and engine.

An :class:`ExecutionPlan` is the contract between a scheduling strategy
and the execution layer: ordered task lists per resource (GPU compute,
CPU compute, PCIe transfers) for one MoE layer. Plans are validated
against the activated-expert set before execution — a plan that misses
an expert, computes one twice, or runs an uncached expert on the GPU
without a transfer raises :class:`~repro.errors.SchedulingError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SchedulingError
from repro.hardware.cost_model import CostModel
from repro.models.config import ExpertShape, MoEModelConfig

__all__ = ["Device", "ComputeTask", "TransferTask", "ExecutionPlan", "LayerCostOracle"]

#: Expert id used for the fused shared-experts block in task records.
SHARED_BLOCK = -1


class Device(str, Enum):
    """Compute resource a task is assigned to."""

    GPU = "gpu"
    CPU = "cpu"


@dataclass(frozen=True)
class ComputeTask:
    """One expert computation assigned to a device.

    Attributes
    ----------
    layer:
        MoE layer index.
    expert:
        Routed expert id, or ``SHARED_BLOCK`` (-1) for the fused
        shared-experts block.
    load:
        Number of tokens this task processes.
    device:
        Where the task runs.
    after_transfer:
        True when this is a GPU task whose weights arrive via a
        transfer in the same plan (the executor enforces the
        dependency).
    """

    layer: int
    expert: int
    load: int
    device: Device
    after_transfer: bool = False

    @property
    def is_shared(self) -> bool:
        return self.expert == SHARED_BLOCK

    def __post_init__(self) -> None:
        if self.load < 0:
            raise SchedulingError(f"task load must be non-negative, got {self.load}")
        if self.after_transfer and self.device != Device.GPU:
            raise SchedulingError(
                f"after_transfer only applies to GPU tasks, got {self.device}"
            )


@dataclass(frozen=True)
class TransferTask:
    """A host-to-GPU weight transfer for one routed expert."""

    layer: int
    expert: int
    load: int

    def __post_init__(self) -> None:
        if self.expert < 0:
            raise SchedulingError(
                f"transfers only apply to routed experts, got id {self.expert}"
            )


@dataclass
class ExecutionPlan:
    """Ordered per-resource task lists for one MoE layer.

    Task order within each list is the execution order on that serial
    resource; the planner's priority rules (§IV-B) are already baked in.
    """

    layer: int
    n_tokens: int
    gpu_tasks: list[ComputeTask] = field(default_factory=list)
    cpu_tasks: list[ComputeTask] = field(default_factory=list)
    transfers: list[TransferTask] = field(default_factory=list)
    estimated_makespan: float = 0.0
    metadata: dict = field(default_factory=dict)

    def clone(self) -> "ExecutionPlan":
        """Independent copy sharing only the immutable task objects.

        The planner's memo stores one pristine copy per key and hands
        each caller its own clone, so a caller mutating a plan (or its
        metadata) can never corrupt a memoized entry. Tasks themselves
        are frozen dataclasses and safe to share.
        """
        return ExecutionPlan(
            layer=self.layer,
            n_tokens=self.n_tokens,
            gpu_tasks=list(self.gpu_tasks),
            cpu_tasks=list(self.cpu_tasks),
            transfers=list(self.transfers),
            estimated_makespan=self.estimated_makespan,
            metadata={
                key: list(value) if isinstance(value, list) else value
                for key, value in self.metadata.items()
            },
        )

    def routed_compute_tasks(self) -> list[ComputeTask]:
        """All routed (non-shared) compute tasks, GPU then CPU order."""
        return [t for t in self.gpu_tasks + self.cpu_tasks if not t.is_shared]

    def computed_experts(self) -> list[int]:
        """Routed expert ids computed by this plan (order of appearance)."""
        return [t.expert for t in self.routed_compute_tasks()]

    def device_of(self, expert: int) -> Device:
        """Device assigned to a routed expert; raises if absent."""
        for task in self.routed_compute_tasks():
            if task.expert == expert:
                return task.device
        raise SchedulingError(f"expert {expert} not present in plan for layer {self.layer}")

    def transferred_experts(self) -> list[int]:
        return [t.expert for t in self.transfers]

    def validate(
        self,
        activated: dict[int, int],
        cached_experts: set[int],
    ) -> None:
        """Check plan consistency against routing and cache state.

        Parameters
        ----------
        activated:
            Mapping ``expert_id -> load`` of the layer's activated
            routed experts.
        cached_experts:
            Expert ids of this layer resident on the GPU when the plan
            was made (in-flight prefetches included).

        Raises
        ------
        SchedulingError
            On any violated invariant: coverage, duplication, load
            mismatch, GPU-without-weights, or transfer of an already
            cached expert.
        """
        computed = self.computed_experts()
        computed_set = set(computed)
        if len(computed) != len(computed_set):
            duplicated = sorted({e for e in computed if computed.count(e) > 1})
            raise SchedulingError(
                f"layer {self.layer}: experts computed more than once: {duplicated}"
            )
        if computed_set != set(activated):
            missing = sorted(set(activated) - computed_set)
            extra = sorted(computed_set - set(activated))
            raise SchedulingError(
                f"layer {self.layer}: plan coverage mismatch "
                f"(missing {missing}, extra {extra})"
            )
        for task in self.routed_compute_tasks():
            if task.load != activated[task.expert]:
                raise SchedulingError(
                    f"layer {self.layer}: expert {task.expert} load {task.load} "
                    f"!= routed load {activated[task.expert]}"
                )
        transferred = self.transferred_experts()
        transferred_set = set(transferred)
        if len(transferred) != len(transferred_set):
            raise SchedulingError(f"layer {self.layer}: duplicate transfers {transferred}")
        for expert in transferred:
            if expert in cached_experts:
                raise SchedulingError(
                    f"layer {self.layer}: transfer of already cached expert {expert}"
                )
        for task in self.gpu_tasks:
            if task.is_shared:
                continue
            available = task.expert in cached_experts or task.expert in transferred_set
            if not available:
                raise SchedulingError(
                    f"layer {self.layer}: GPU computes expert {task.expert} "
                    "without cached weights or a transfer"
                )
            if task.after_transfer and task.expert not in transferred_set:
                raise SchedulingError(
                    f"layer {self.layer}: task flags after_transfer but no transfer "
                    f"exists for expert {task.expert}"
                )
        for task in self.cpu_tasks:
            if task.after_transfer:
                raise SchedulingError(
                    f"layer {self.layer}: CPU task for expert {task.expert} "
                    "cannot depend on a transfer"
                )


@dataclass(frozen=True)
class LayerCostOracle:
    """Duration oracle for one layer's tasks under a given cost model.

    Binds the cost model to the model architecture (routed/shared
    expert shapes) so schedulers and the executor ask for durations in
    terms of loads only.
    """

    cost: CostModel
    routed_shape: ExpertShape
    shared_shape: ExpertShape | None
    num_shared: int
    n_tokens: int

    @classmethod
    def for_model(
        cls, cost: CostModel, config: MoEModelConfig, n_tokens: int
    ) -> "LayerCostOracle":
        """Build the oracle from a model config (the common path)."""
        return cls(
            cost=cost,
            routed_shape=config.routed_expert_shape,
            shared_shape=config.shared_expert_shape,
            num_shared=config.num_shared_experts,
            n_tokens=n_tokens,
        )

    def gpu_compute(self, load: int) -> float:
        """GPU seconds for one routed expert processing ``load`` tokens."""
        return self.cost.gpu_expert_time(self.routed_shape, load)

    def cpu_compute(self, load: int, first_task: bool = False) -> float:
        """CPU seconds for one routed expert processing ``load`` tokens."""
        return self.cost.cpu_expert_time(self.routed_shape, load, first_task=first_task)

    def transfer(self) -> float:
        """Seconds to move one routed expert's weights over PCIe."""
        return self.cost.transfer_time(self.routed_shape)

    def disk_fetch(self) -> float:
        """Seconds to read one routed expert's weights disk -> DRAM.

        Only valid when the cost model describes a disk tier; the first
        hop of the disk -> CPU -> GPU transfer chain a spilled expert
        pays.
        """
        return self.cost.disk_transfer_time(self.routed_shape)

    def shared_compute(self, device: Device, first_task: bool = False) -> float:
        """Seconds for the fused shared-experts block on ``device``.

        Zero when the model has no shared experts.
        """
        if self.num_shared == 0 or self.shared_shape is None:
            return 0.0
        if device == Device.GPU:
            single = self.cost.gpu_expert_time(self.shared_shape, self.n_tokens)
            return self.num_shared * single
        first = self.cost.cpu_expert_time(
            self.shared_shape, self.n_tokens, first_task=first_task
        )
        rest = self.cost.cpu_expert_time(self.shared_shape, self.n_tokens)
        return first + (self.num_shared - 1) * rest

    def compute(self, device: Device, load: int, first_task: bool = False) -> float:
        """Routed-expert duration on either device."""
        if device == Device.GPU:
            return self.gpu_compute(load)
        return self.cpu_compute(load, first_task=first_task)
