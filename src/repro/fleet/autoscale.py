"""Threshold autoscaling of the replica pool.

The classic production recipe: watch mean in-flight load per active
replica, add capacity above a high watermark, shed it below a low one.
The fleet evaluates the policy at every routing point (each arrival is
a chance to react), activates standby replicas lazily — an engine is
only built the first time its replica activates — and drains
deactivated replicas gracefully: they stop receiving new requests but
keep stepping until their in-flight work completes.

Diurnal and bursty arrival processes
(:func:`~repro.workloads.generator.diurnal_arrivals` /
:func:`~repro.workloads.generator.bursty_arrivals`) are the traces this
policy is sized against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["AutoscaleConfig", "AutoscaleEvent"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Threshold autoscaling knobs.

    Parameters
    ----------
    min_replicas / max_replicas:
        Active-pool bounds. The fleet starts at ``min_replicas`` and
        never scales outside ``[min_replicas, max_replicas]``;
        ``max_replicas`` must not exceed the fleet's replica pool.
    high_watermark / low_watermark:
        Mean in-flight requests per active replica that trigger a
        scale-up (``load >= high``) or a scale-down (``load <= low``).
        Must satisfy ``0 <= low < high``.
    cooldown:
        Minimum simulated seconds between consecutive scale events,
        damping flapping on bursty traces.
    """

    min_replicas: int = 1
    max_replicas: int = 2
    high_watermark: float = 4.0
    low_watermark: float = 1.0
    cooldown: float = 0.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be at least 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"max_replicas ({self.max_replicas}) must be >= min_replicas "
                f"({self.min_replicas})"
            )
        if not 0 <= self.low_watermark < self.high_watermark:
            raise ConfigError(
                f"need 0 <= low_watermark < high_watermark, got "
                f"{self.low_watermark}/{self.high_watermark}"
            )
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be non-negative, got {self.cooldown}")


@dataclass(frozen=True)
class AutoscaleEvent:
    """One scale decision taken during a fleet run (for reporting)."""

    time: float
    action: str  # "scale_up" | "scale_down"
    replica: int
    #: Mean in-flight load per active replica that triggered the event.
    load: float
