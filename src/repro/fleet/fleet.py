"""The fleet front end: M replica serving engines behind one router.

:class:`FleetRouter` is the millions-of-users layer: it owns a pool of
identical replica :class:`~repro.engine.engine.InferenceEngine`\\ s
(each with its own expert cache, hybrid scheduler and simulated
clock), routes every arriving request to one replica via a pluggable
:class:`~repro.fleet.router.RoutingPolicy`, injects replica faults
from a :class:`~repro.fleet.faults.FaultSchedule` (crashes fail work
over to the survivors; slow windows black replicas out of routing),
and threshold-autoscales the active pool against the arrival trace.

## Time and determinism

Every replica session advances on its own engine clock, but the fleet
interleaves their steps strictly in global-time order (earliest
session frontier first, replica id breaking ties), so causality holds
across the fleet: a request is routed only after every replica has
advanced to its arrival instant, and the router observes each
replica's load and cache residency at its last step boundary at or
after the arrival. The loop uses no randomness of its own — all
tie-breaks are by replica id — so a fleet run is a pure function of
(replica config, request set, policy, fault schedule, autoscale
config).

A single-replica fleet performs exactly the step sequence of a bare
:class:`~repro.serving.engine.ServingEngine` and is **bit-identical**
to it — the idle-hold rule below is what preserves this: an idle
session is only allowed to jump ahead to a queued future arrival when
no unrouted fleet arrival could still win that admission (strictly
earlier queued arrival than every pending fleet event).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.engine.engine import InferenceEngine
from repro.engine.metrics import ServingReport
from repro.errors import ConfigError, SimulationError
from repro.fleet.autoscale import AutoscaleConfig, AutoscaleEvent
from repro.fleet.faults import FaultSchedule, ReplicaFault
from repro.fleet.router import RoutingPolicy, make_router
from repro.hardware.faults import HardwareFaultSchedule
from repro.routing.statistics import predicted_routing_profile
from repro.serving.engine import requests_from_trace
from repro.serving.request import Request, RequestStatus
from repro.serving.scheduler import ServingConfig
from repro.serving.session import ServingSession
from repro.workloads.generator import ArrivedWorkload

__all__ = ["Replica", "RoutingDecision", "FleetReport", "FleetRouter"]


class Replica:
    """One fleet member: a lazily-built engine plus its serving session.

    ``active`` tracks autoscaling (inactive replicas take no new
    requests but drain what they hold); a crashed replica's session is
    ``dead`` and the replica never serves again.
    """

    def __init__(self, replica_id: int, factory: Callable[[], InferenceEngine]):
        self.replica_id = replica_id
        self._factory = factory
        self._engine: InferenceEngine | None = None
        self.session: ServingSession | None = None
        self.active = False
        #: High-water batch occupancy across every session this replica
        #: ran (sessions reset per serve; the peak is a replica fact).
        self.peak_occupancy = 0

    @property
    def built(self) -> bool:
        """Whether the replica's engine has been constructed yet."""
        return self._engine is not None

    @property
    def engine(self) -> InferenceEngine:
        """The replica's engine, built on first use."""
        if self._engine is None:
            self._engine = self._factory()
        return self._engine

    @property
    def alive(self) -> bool:
        """Built, session started, and not crashed."""
        return self.session is not None and not self.session.dead

    @property
    def load(self) -> int:
        """In-flight (submitted, unfinished) requests on this replica."""
        return len(self.session.in_flight()) if self.session is not None else 0

    def start_session(
        self,
        config: ServingConfig,
        solo: bool,
        origin: float,
        hardware_faults: HardwareFaultSchedule | None = None,
    ) -> None:
        """Open a fresh serving session (one per fleet serve).

        ``origin`` is the fleet-wide wall clock — shared by every
        replica session of a serve, so trace time means the same thing
        on each replica even when their engine clocks drifted apart
        over earlier serves. ``hardware_faults`` is this replica's
        slice of the fleet schedule (already ``for_replica``-filtered).
        """
        self.session = ServingSession(
            self.engine,
            config,
            solo=solo,
            origin=origin,
            hardware_faults=hardware_faults,
            replica_id=self.replica_id,
        )


@dataclass(frozen=True)
class RoutingDecision:
    """One routing choice, with the load snapshot the policy saw."""

    request_id: int
    replica: int
    time: float
    #: ``(replica_id, in_flight_load)`` for every routable candidate at
    #: decision time, in replica-id order.
    loads: tuple[tuple[int, int], ...]


@dataclass
class FleetReport:
    """Outcome of one fleet serve: per-replica and merged views.

    ``merged`` pools every finished request exactly once (crashed
    work re-finishes on a surviving replica under a fresh lifecycle),
    so its goodput/percentile properties are directly comparable with
    a single-engine :class:`~repro.engine.metrics.ServingReport`.
    """

    per_replica: list[tuple[int, ServingReport]]
    merged: ServingReport
    decisions: list[RoutingDecision] = field(default_factory=list)
    autoscale_events: list[AutoscaleEvent] = field(default_factory=list)
    #: Peak batch occupancy per replica id (replicas that served).
    peak_occupancy: dict[int, int] = field(default_factory=dict)

    @property
    def num_failovers(self) -> int:
        """Total crash re-routings across all finished requests."""
        return self.merged.num_failovers

    def assignment_counts(self) -> dict[int, int]:
        """Requests routed per replica id (failover re-routes included)."""
        counts: dict[int, int] = {}
        for decision in self.decisions:
            counts[decision.replica] = counts.get(decision.replica, 0) + 1
        return counts

    def summary(self) -> dict[str, float | int | str]:
        """Flat fleet-level record for tabulation and benchmarks."""
        record = self.merged.summary()
        record["replicas"] = len(self.per_replica)
        record["autoscale_events"] = len(self.autoscale_events)
        return record


class FleetRouter:
    """Front-end router over a pool of replica serving engines.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one replica engine. Called once
        per replica, lazily (standby replicas are only built when
        autoscaling activates them). Factories must build *identical*
        engines — the fleet reports a single merged
        :class:`~repro.engine.metrics.ServingReport`, which requires a
        homogeneous pool.
    replicas:
        Pool size M (the autoscaling ceiling).
    policy:
        Routing policy name (see
        :func:`~repro.fleet.router.available_routers`) or instance.
    config:
        Per-replica serving knobs (each session gets the same config).
    fault_schedule:
        Scheduled crashes / slow windows; ``None`` injects nothing.
    autoscale:
        Threshold autoscaling config; ``None`` keeps all M replicas
        active for the whole run.
    hardware_faults:
        Sub-replica hardware fault schedule (link degradation, disk
        stalls, GPU stragglers). Each replica session applies its own
        slice at step boundaries; the router additionally steers new
        work away from currently-degraded replicas while healthy
        alternatives exist. ``None`` injects nothing.
    max_retries:
        Retry budget per request for timeout re-submission. A request
        timing out with retries left is re-enqueued (and re-routed like
        a failover) after an exponential backoff; one that exhausted
        the budget keeps its ``TIMED_OUT`` record. ``0`` (default)
        disables retries.
    retry_backoff_s:
        Base backoff delay: retry ``n`` (1-based) re-arrives
        ``retry_backoff_s * 2**(n-1)`` seconds after its timeout was
        observed.
    """

    def __init__(
        self,
        engine_factory: Callable[[], InferenceEngine],
        replicas: int = 2,
        policy: str | RoutingPolicy = "round_robin",
        config: ServingConfig | None = None,
        fault_schedule: FaultSchedule | None = None,
        autoscale: AutoscaleConfig | None = None,
        hardware_faults: HardwareFaultSchedule | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.5,
    ) -> None:
        if replicas < 1:
            raise ConfigError(f"fleet needs at least one replica, got {replicas}")
        if autoscale is not None and autoscale.max_replicas > replicas:
            raise ConfigError(
                f"autoscale.max_replicas ({autoscale.max_replicas}) exceeds the "
                f"replica pool ({replicas})"
            )
        if max_retries < 0:
            raise ConfigError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        if retry_backoff_s <= 0:
            raise ConfigError(
                f"retry_backoff_s must be positive, got {retry_backoff_s}"
            )
        self.config = config or ServingConfig()
        self.policy = make_router(policy) if isinstance(policy, str) else policy
        self.fault_schedule = fault_schedule or FaultSchedule()
        for fault in self.fault_schedule:
            if fault.replica >= replicas:
                raise ConfigError(
                    f"fault targets replica {fault.replica} but the pool has "
                    f"{replicas} replicas"
                )
        self.hardware_faults = hardware_faults
        if hardware_faults is not None:
            for fault in hardware_faults:
                if fault.replica >= replicas:
                    raise ConfigError(
                        f"hardware fault targets replica {fault.replica} but "
                        f"the pool has {replicas} replicas"
                    )
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.autoscale = autoscale
        self.replicas = [Replica(i, engine_factory) for i in range(replicas)]
        self._profiles: dict[bytes, np.ndarray] = {}
        # Mutable per-serve state, (re)initialised in serve().
        self._pending_crashes: list[ReplicaFault] = []
        self._heap: list[tuple[float, int, Request]] = []
        self._seq = 0
        self._decisions: list[RoutingDecision] = []
        self._events: list[AutoscaleEvent] = []
        self._last_scale_time: float | None = None

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        """Replica pool size (the autoscaling ceiling)."""
        return len(self.replicas)

    def routing_profile(self, request: Request) -> np.ndarray:
        """Predicted ``(layer, expert)`` routing loads of a request.

        Memoized per distinct prompt: profiling runs one stateless
        model forward (no engine cache or clock is touched), and hot
        skewed workloads repeat a handful of prompts, so the fleet
        profiles each once.
        """
        key = request.prompt_tokens.tobytes()
        profile = self._profiles.get(key)
        if profile is None:
            model = self.replicas[0].engine.model
            profile = predicted_routing_profile(model, request.prompt_tokens)
            self._profiles[key] = profile
        return profile

    # ------------------------------------------------------------------
    def serve(self, requests: Iterable[Request]) -> FleetReport:
        """Route and serve all requests to completion across the fleet."""
        pending = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        if not pending:
            raise ConfigError("serve() needs at least one request")
        ids = [r.request_id for r in pending]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate request ids in batch: {sorted(ids)}")
        for request in pending:
            if request.status is not RequestStatus.QUEUED:
                raise ConfigError(
                    f"request {request.request_id} was already served "
                    f"(status {request.status.value})"
                )

        solo = len(pending) == 1
        self._solo = solo
        initial_active = (
            self.autoscale.min_replicas if self.autoscale else self.num_replicas
        )
        for replica in self.replicas:
            replica.active = False
            replica.session = None
        # One shared origin for every replica session: the furthest
        # engine frontier across the pool. On a fresh fleet this is 0
        # (the bare-engine equivalence path); on a reused fleet (e.g. a
        # warmup serve followed by a measured one) replica clocks have
        # drifted apart, and anchoring each session at its own frontier
        # would put per-replica records on different time bases and
        # make the merged report's makespan meaningless.
        self._origin = max(
            (r.engine.runtime.clock.compute_frontier for r in self.replicas if r.built),
            default=0.0,
        )
        for replica in self.replicas[:initial_active]:
            replica.start_session(
                self.config,
                solo,
                self._origin,
                self._replica_faults(replica.replica_id),
            )
            replica.active = True
        self.policy.reset()
        self._pending_crashes = list(self.fault_schedule.crashes())
        self._heap = []
        self._seq = 0
        self._decisions = []
        self._events = []
        self._last_scale_time = None
        for request in pending:
            self._push(request)

        while True:
            if self._heap:
                t = self._heap[0][0]
                if self._advance(t):
                    continue  # a crash fired; failovers may precede t
                _, _, request = heapq.heappop(self._heap)
                self._autoscale_step(t)
                self._route(request, t)
            elif self._drain_one():
                continue
            else:
                break

        served = [r for r in self.replicas if r.session is not None]
        for replica in served:
            replica.session.release_states()
            replica.peak_occupancy = max(
                replica.peak_occupancy, replica.session.peak_occupancy
            )
        per_replica = [(r.replica_id, r.session.report()) for r in served]
        return FleetReport(
            per_replica=per_replica,
            merged=ServingReport.merged([report for _, report in per_replica]),
            decisions=self._decisions,
            autoscale_events=self._events,
            peak_occupancy={r.replica_id: r.peak_occupancy for r in served},
        )

    def serve_trace(self, entries: Iterable[ArrivedWorkload]) -> FleetReport:
        """Convenience: build requests from a serving trace and serve."""
        return self.serve(requests_from_trace(entries))

    # ------------------------------------------------------------------
    # event loop internals
    # ------------------------------------------------------------------
    def _replica_faults(self, replica_id: int) -> HardwareFaultSchedule | None:
        """One replica's slice of the hardware fault schedule (or None)."""
        if self.hardware_faults is None:
            return None
        return self.hardware_faults.for_replica(replica_id)

    def _push(self, request: Request) -> None:
        """Queue an arrival; the sequence number makes heap order total."""
        heapq.heappush(self._heap, (request.arrival_time, self._seq, request))
        self._seq += 1

    def _live(self) -> list[Replica]:
        """Replicas with a running (non-crashed) session, id order."""
        return [r for r in self.replicas if r.alive]

    def _may_step(self, replica: Replica, horizon: float) -> bool:
        """Whether stepping ``replica`` now preserves fleet causality.

        A busy session always may; an **idle** one (nothing in flight,
        no arrived queued request) would idle-jump to its earliest
        queued future arrival, which is only sound when that arrival
        strictly precedes every unrouted fleet arrival — otherwise an
        equal-or-earlier unsubmitted request could win the admission
        tie-break, diverging from the all-requests-up-front engine.
        """
        session = replica.session
        if not session.is_idle():
            return True
        next_queued = session.next_queued_arrival()
        return next_queued is not None and next_queued < horizon

    def _advance(self, t: float) -> bool:
        """Step every session to its first boundary at or past time ``t``.

        Sessions are stepped one scheduler action at a time in global
        time order (smallest session frontier first, replica id on
        ties). Due crash faults fire between steps, and timeout
        retries are collected after every step; returns True as soon
        as either produces heap arrivals so the caller re-examines the
        heap — failover and retry re-arrivals may precede ``t``.
        """
        while True:
            if self._fire_due_crashes(t):
                return True
            steppable = [
                r
                for r in self._live()
                if r.session.has_work()
                and r.session.now < t
                and self._may_step(r, t)
            ]
            if not steppable:
                return False
            replica = min(
                steppable, key=lambda r: (r.session.now, r.replica_id)
            )
            stepped = replica.session.step()
            if self._collect_retries(replica):
                return True
            if not stepped:
                # A timeout sweep just drained the session's last work:
                # no action ran, but other replicas may still owe steps
                # before t — keep advancing (the session drops out of
                # the steppable set next iteration).
                continue

    def _drain_one(self) -> bool:
        """One drain move once no arrivals remain; False when done.

        Drains in global time order like :meth:`_advance`, with no
        horizon: idle sessions may always jump to their queued work. A
        crash firing mid-drain, or a timeout retry, pushes arrivals
        and returns to the routing loop.
        """
        if self._fire_due_crashes(None):
            return True
        steppable = [r for r in self._live() if r.session.has_work()]
        if not steppable:
            return False
        replica = min(steppable, key=lambda r: (r.session.now, r.replica_id))
        stepped = replica.session.step()
        self._collect_retries(replica)
        # Even a False step (timeout sweep drained the last work) made
        # progress: the session left the steppable set, so the drain
        # loop re-evaluates rather than ending while others hold work.
        return stepped or bool(self._heap) or any(
            r.session.has_work() for r in self._live()
        )

    def _collect_retries(self, replica: Replica) -> bool:
        """Re-enqueue the replica's fresh timeouts that have retries left.

        A victim within its retry budget is *reclaimed* — its timeout
        record is dropped and its id freed — and a fresh clone is
        pushed onto the arrival heap with exponential backoff, to be
        re-routed like any arrival (degradation steering and blackout
        rules apply, so the retry naturally lands elsewhere when the
        timing-out replica is the degraded one). A victim out of budget
        keeps its ``TIMED_OUT`` record. Returns True when any clone
        was pushed.
        """
        session = replica.session
        pushed = False
        for request in session.claim_fresh_timeouts():
            if request.num_retries >= self.max_retries:
                continue
            session.reclaim(request)
            assert request.finish_time is not None
            backoff = self.retry_backoff_s * (2.0 ** request.num_retries)
            arrival = (request.finish_time - self._origin) + backoff
            self._push(request.clone_for_retry(arrival))
            pushed = True
        return pushed

    def _fire_due_crashes(self, horizon: float | None) -> bool:
        """Fire scheduled crashes that have become observable.

        A crash at ``T`` fires once its replica's session reaches a
        step boundary at or past ``T`` — the earliest instant the
        fleet can observe the death (a crash interrupting a fused step
        is noticed when the step would have completed). A replica that
        cannot advance to ``T`` (idle-held or out of work) dies in
        place at ``T`` exactly. With a finite ``horizon`` (the next
        arrival's instant) only crashes due by then fire; during drain
        (``None``) a crash fires only when its session actually
        reaches it, so a far-future fault on a finished replica never
        fires — matching real fleets, where a run that ended cannot
        observe later faults.
        """
        for fault in list(self._pending_crashes):
            replica = self.replicas[fault.replica]
            if not replica.alive:
                # Never started, already crashed, or standby: nothing
                # to kill. Keep standby faults pending — the replica
                # may yet be activated by autoscaling.
                if replica.session is not None:
                    self._pending_crashes.remove(fault)
                continue
            if horizon is not None and fault.at_time > horizon:
                continue
            session = replica.session
            if session.now >= fault.at_time:
                observed = session.now
            elif session.has_work() and self._may_step(
                replica, horizon if horizon is not None else float("inf")
            ):
                continue  # still advancing toward the fault instant
            elif horizon is None:
                continue  # drained before the fault: it never fires
            else:
                observed = fault.at_time
            self._pending_crashes.remove(fault)
            self._crash(replica, observed)
            return True
        return False

    def _crash(self, replica: Replica, observed: float) -> None:
        """Kill a replica and re-enqueue its in-flight requests."""
        survivors = replica.session.abort()
        replica.active = False
        if not self._live() and (survivors or self._heap):
            raise SimulationError(
                "every fleet replica has crashed with requests still in flight"
            )
        for request in survivors:
            clone = request.clone_for_failover(
                max(observed, request.relative_arrival)
            )
            self._push(clone)

    # ------------------------------------------------------------------
    def _routable(self, t: float) -> list[Replica]:
        """Replicas eligible for new work at routing instant ``t``.

        Alive and active, minus replicas inside a slow-fault window —
        unless the blackout would leave nothing routable, in which case
        slow replicas are readmitted (degraded capacity beats dropping
        the request; crashes are the only faults that shed work).
        Replicas inside a *hardware* fault window are steered around
        the same way: excluded while a clean alternative exists,
        readmitted otherwise.
        """
        live = self._live()
        if not live:
            raise SimulationError("no live replica available to route a request")
        candidates = [r for r in live if r.active]
        if not candidates:
            # Every active replica crashed while drained standbys
            # survive: re-promote the survivors rather than dropping
            # the request on the floor.
            for replica in live:
                replica.active = True
            candidates = live
        healthy = [
            r
            for r in candidates
            if not self.fault_schedule.blacked_out(r.replica_id, t)
        ]
        candidates = healthy or candidates
        if self.hardware_faults is not None:
            clean = [
                r
                for r in candidates
                if not self.hardware_faults.degraded(r.replica_id, t)
            ]
            candidates = clean or candidates
        return candidates

    def _route(self, request: Request, t: float) -> None:
        """Pick a replica for one arrival and hand the request over."""
        candidates = self._routable(t)
        loads = tuple((r.replica_id, r.load) for r in candidates)
        replica = self.policy.choose(request, candidates, self)
        replica.session.submit([request])
        self._decisions.append(
            RoutingDecision(
                request_id=request.request_id,
                replica=replica.replica_id,
                time=t,
                loads=loads,
            )
        )

    def _autoscale_step(self, t: float) -> None:
        """Evaluate threshold autoscaling at a routing point."""
        cfg = self.autoscale
        if cfg is None:
            return
        if (
            self._last_scale_time is not None
            and t - self._last_scale_time < cfg.cooldown
        ):
            return
        active = [r for r in self._live() if r.active]
        if not active:
            return
        load = sum(r.load for r in active) / len(active)
        if load >= cfg.high_watermark and len(active) < cfg.max_replicas:
            standby = next(
                (
                    r
                    for r in self.replicas
                    if not r.active and (r.session is None or r.alive)
                ),
                None,
            )
            if standby is None:
                return
            if standby.session is None:
                standby.start_session(
                    self.config,
                    self._solo,
                    self._origin,
                    self._replica_faults(standby.replica_id),
                )
            standby.active = True
            self._events.append(
                AutoscaleEvent(
                    time=t,
                    action="scale_up",
                    replica=standby.replica_id,
                    load=load,
                )
            )
            self._last_scale_time = t
        elif load <= cfg.low_watermark and len(active) > cfg.min_replicas:
            victim = active[-1]  # highest id drains first
            victim.active = False
            self._events.append(
                AutoscaleEvent(
                    time=t,
                    action="scale_down",
                    replica=victim.replica_id,
                    load=load,
                )
            )
            self._last_scale_time = t
