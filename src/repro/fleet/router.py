"""Pluggable fleet routing policies.

A policy picks, per arriving request, one replica among the currently
*routable* ones (alive, active, outside any slow-fault window). All
tie-breaks resolve by replica id, so routing is fully deterministic —
the hypothesis property suite replays runs and pins this.

Policies:

- ``round_robin`` — rotate through the routable replicas; fault-free
  assignment counts differ by at most one.
- ``least_loaded`` — fewest in-flight requests wins (id breaks ties).
- ``cache_affinity`` — HybriMoE's insight one level up: score each
  replica by how many of the request's predicted ``(layer, expert)``
  token routings (:func:`~repro.routing.statistics.predicted_routing_profile`)
  are already resident in that replica's live expert cache, measured
  as *excess over chance*, and send the request where its experts are
  hottest among the near-least-loaded replicas (see the class
  docstring for why both the excess normalisation and the bounded
  load slack are load-bearing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.fleet.fleet import FleetRouter, Replica

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "CacheAffinityPolicy",
    "available_routers",
    "make_router",
]


class RoutingPolicy:
    """Base class: choose a replica for each arriving request."""

    name = "base"

    def reset(self) -> None:
        """Clear per-run state (called at the start of every serve)."""

    def choose(
        self,
        request: Request,
        candidates: "list[Replica]",
        fleet: "FleetRouter",
    ) -> "Replica":
        """Pick one of ``candidates`` (non-empty, sorted by replica id)."""
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Rotate assignments across the routable replicas.

    The cursor lives in replica-id space: each pick takes the first
    routable replica at or after the cursor (cyclically) and advances
    past it. With a stable candidate set this is a pure rotation —
    assignment counts differ by at most one — and when replicas die or
    black out the rotation simply skips them.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def choose(self, request, candidates, fleet):
        chosen = min(
            candidates,
            key=lambda rep: (
                (rep.replica_id - self._cursor) % fleet.num_replicas,
                rep.replica_id,
            ),
        )
        self._cursor = (chosen.replica_id + 1) % fleet.num_replicas
        return chosen


class LeastLoadedPolicy(RoutingPolicy):
    """Send the request to the replica with the fewest in-flight requests."""

    name = "least_loaded"

    def choose(self, request, candidates, fleet):
        return min(candidates, key=lambda rep: (rep.load, rep.replica_id))


class CacheAffinityPolicy(RoutingPolicy):
    """Route to the replica whose expert cache is hottest for the request.

    The request's predicted routing profile (per-``(layer, expert)``
    prompt-token loads, memoized per distinct prompt by the fleet) is
    scored against each candidate's **live** per-layer cache residency
    as *excess overlap over chance*:

    ``score(replica) = Σ_layer ( Σ_{e ∈ resident(l)} profile[l, e]
    − |resident(l)| / num_experts · Σ_e profile[l, e] )``

    i.e. how many of the request's predicted expert routings the
    replica already holds, **minus** what a random cache of the same
    occupancy would hold. The subtraction is what makes the score a
    usable routing signal: distinct hot profiles still share experts,
    so under *raw* overlap a warm replica outscores a cold one for
    every profile and the whole stream funnels onto whichever replica
    warmed up first. Excess-over-chance instead scores a
    wrong-profile cache *negative*, an empty cache zero and a
    right-profile cache positive — so two profiles split across two
    cold replicas from the very first requests, with no load pressure
    needed to break the symmetry.

    Three rules turn that score into a routing key, each one pulling
    real weight:

    1. **Load guard** — candidates more than ``load_slack`` in-flight
       requests above the least-loaded candidate are excluded. A pure
       score-first rule lets one hot profile pile arbitrarily deep; a
       strict load-first rule degenerates to least-loaded exactly when
       caching matters most (under queueing, loads rarely tie); and
       under a drain-dominated burst, a count *imbalance* costs more
       makespan than warm caches win back. The one-request slack keeps
       assignment counts balanced while letting affinity — not
       arrival parity — decide placement.
    2. **Indifference margin** — the score is normalised by the
       profile's total token mass and bucketed at ``score_margin``
       resolution; scores in the same bucket tie. Chance-level
       overlap (every resident expert is as likely to serve any other
       profile) is noise, and letting its sign decide placement makes
       routing a coin flip.
    3. **Fewest assignments breaks score ties** — among
       score-equivalent candidates the one this policy has routed the
       fewest requests at wins (then load, then replica id). This is
       the symmetry breaker that bootstraps specialisation: replicas
       start with *identical* caches (the engines' deterministic
       initial placement), so the first requests tie on score and
       spread round-robin-fashion — profile A seeds replica 0,
       profile B seeds replica 1 — and from then on each profile's
       own positive score keeps it pinned to the replica it warmed.
       Without it, every score tie falls through to the lowest
       replica id and the whole stream funnels onto replica 0.
    """

    name = "cache_affinity"

    #: Load slack: candidates within this many in-flight requests of
    #: the least-loaded candidate compete on affinity score.
    load_slack = 1
    #: Resolution (fraction of the profile's token mass) below which
    #: two excess-overlap scores are considered indistinguishable.
    score_margin = 0.02

    def __init__(self) -> None:
        self._assigned: dict[int, int] = {}

    def reset(self) -> None:
        self._assigned = {}

    def choose(self, request, candidates, fleet):
        profile = fleet.routing_profile(request)
        floor = min(rep.load for rep in candidates)
        near = [rep for rep in candidates if rep.load <= floor + self.load_slack]
        chosen = min(
            near,
            key=lambda rep: (
                -self.score_bucket(profile, rep),
                self._assigned.get(rep.replica_id, 0),
                rep.load,
                rep.replica_id,
            ),
        )
        self._assigned[chosen.replica_id] = self._assigned.get(chosen.replica_id, 0) + 1
        return chosen

    def score_bucket(self, profile: np.ndarray, replica: "Replica") -> int:
        """Quantised relative excess score (see :meth:`score`)."""
        return int(np.floor(self.score(profile, replica) / self.score_margin))

    @staticmethod
    def score(profile: np.ndarray, replica: "Replica") -> float:
        """Relative excess predicted-routing overlap of a live cache.

        Positive: the cache holds more of the request's predicted
        experts than a random cache of equal occupancy (profile-warm).
        Zero: empty cache / chance-level overlap. Negative: warm for
        *other* profiles. Normalised by the profile's total token
        mass, so the value is comparable across prompts (bounded by
        ``[-1, 1]``).
        """
        cache = replica.engine.runtime.cache
        num_experts = profile.shape[1]
        excess = 0.0
        mass = 0.0
        for layer in range(profile.shape[0]):
            layer_mass = float(profile[layer].sum())
            mass += layer_mass
            resident = cache.cached_experts_of_layer(layer)
            if resident:
                overlap = float(profile[layer, sorted(resident)].sum())
                excess += overlap - layer_mass * len(resident) / num_experts
        return excess / mass if mass else 0.0



_ROUTERS: dict[str, type[RoutingPolicy]] = {
    "round_robin": RoundRobinPolicy,
    "least_loaded": LeastLoadedPolicy,
    "cache_affinity": CacheAffinityPolicy,
}


def available_routers() -> list[str]:
    """Policy names accepted by :func:`make_router` / ``make_fleet``."""
    return sorted(_ROUTERS)


def make_router(name: str) -> RoutingPolicy:
    """Instantiate a routing policy by short name."""
    try:
        cls = _ROUTERS[name]
    except KeyError:
        known = ", ".join(available_routers())
        raise ConfigError(f"unknown router {name!r} (known: {known})") from None
    return cls()
