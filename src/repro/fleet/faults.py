"""Replica fault injection: scheduled crashes and slow windows.

A :class:`FaultSchedule` declares what goes wrong and when; the fleet
loop observes it — fault checking never mutates schedule state, so a
schedule whose faults never become due leaves a run **bit-identical**
to running with no schedule at all (the failover test suite pins this).

Two fault kinds:

- ``"crash"`` — the replica dies permanently at ``at_time``. The fleet
  aborts its serving session at the first step boundary at or after
  the fault instant, re-routes every in-flight request (queued,
  mid-prefill, decoding or preempted) to the surviving replicas, and
  increments each re-routed request's
  :attr:`~repro.serving.request.Request.num_failovers`. Requests that
  finished before the crash keep their records.
- ``"slow"`` — a routing blackout: during ``[at_time, at_time +
  duration)`` the front-end router stops sending the replica new
  requests (a health-check tripping on elevated latency). The replica
  keeps serving what it already holds and rejoins the routable set
  when the window closes.

**Precedence**: a crash scheduled inside (or before) a slow window
wins — the replica dies at the crash instant, its in-flight work fails
over, and the rest of the slow window is moot: a dead replica is never
routable again, blackout or not (liveness is checked before blackout
in the fleet's routing filter). Scheduling both on one replica is
legal and useful — a replica that degrades, blacks out, then dies is
the classic fail-slow-then-fail-stop sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigError

__all__ = ["ReplicaFault", "FaultSchedule"]

_FAULT_KINDS = ("crash", "slow")


@dataclass(frozen=True)
class ReplicaFault:
    """One scheduled fault on one replica.

    Parameters
    ----------
    replica:
        Target replica id (index into the fleet's replica pool).
    at_time:
        Simulated instant the fault strikes, in the same trace-relative
        seconds as request arrival times.
    kind:
        ``"crash"`` (permanent death + failover) or ``"slow"``
        (temporary routing blackout).
    duration:
        Length of a ``"slow"`` window in seconds; must be positive for
        slow faults and is meaningless for crashes (a crash is
        permanent).
    """

    replica: int
    at_time: float
    kind: str = "crash"
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ConfigError(f"fault replica must be non-negative, got {self.replica}")
        if self.at_time < 0:
            raise ConfigError(
                f"fault at_time must be non-negative, got {self.at_time}"
            )
        if self.kind not in _FAULT_KINDS:
            known = ", ".join(_FAULT_KINDS)
            raise ConfigError(f"unknown fault kind {self.kind!r} (known: {known})")
        if self.kind == "slow" and self.duration <= 0:
            raise ConfigError(
                f"slow fault needs a positive duration, got {self.duration}"
            )

    def blacks_out(self, time: float) -> bool:
        """Whether a slow window covers the routing instant ``time``."""
        return (
            self.kind == "slow"
            and self.at_time <= time < self.at_time + self.duration
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of scheduled replica faults.

    Faults are kept sorted by ``(at_time, replica)`` so crash firing
    order is deterministic when several replicas die at once.
    Validation rejects a second crash on the same replica (a crash is
    permanent) and exact duplicates — two faults of the same kind on
    the same replica at the same instant, which would either be a
    schedule-construction bug or an ambiguous double blackout.
    """

    faults: tuple[ReplicaFault, ...] = ()

    def __init__(self, faults: Iterable[ReplicaFault] = ()) -> None:
        ordered = tuple(
            sorted(faults, key=lambda f: (f.at_time, f.replica, f.kind))
        )
        crashes: dict[int, float] = {}
        seen: set[tuple[int, str, float]] = set()
        for fault in ordered:
            key = (fault.replica, fault.kind, fault.at_time)
            if key in seen:
                raise ConfigError(
                    f"duplicate {fault.kind!r} fault on replica "
                    f"{fault.replica} at t={fault.at_time}"
                )
            seen.add(key)
            if fault.kind == "crash":
                if fault.replica in crashes:
                    raise ConfigError(
                        f"replica {fault.replica} has more than one scheduled "
                        f"crash (a crash is permanent)"
                    )
                crashes[fault.replica] = fault.at_time
        object.__setattr__(self, "faults", ordered)

    def __iter__(self) -> Iterator[ReplicaFault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def crashes(self) -> tuple[ReplicaFault, ...]:
        """Crash faults in firing order."""
        return tuple(f for f in self.faults if f.kind == "crash")

    def blacked_out(self, replica: int, time: float) -> bool:
        """Whether ``replica`` sits in any slow window at ``time``."""
        return any(
            f.replica == replica and f.blacks_out(time) for f in self.faults
        )
