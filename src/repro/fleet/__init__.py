"""Multi-replica fleet serving: cache-aware routing, failover, autoscaling.

The cluster layer above :mod:`repro.serving`: a
:class:`~repro.fleet.fleet.FleetRouter` fronts M replica engines with a
pluggable :class:`~repro.fleet.router.RoutingPolicy` (``round_robin``,
``least_loaded``, ``cache_affinity``), injects replica faults from a
:class:`~repro.fleet.faults.FaultSchedule` (crashes fail in-flight work
over to survivors without loss), threshold-autoscales the active pool
(:class:`~repro.fleet.autoscale.AutoscaleConfig`) against diurnal and
bursty arrival traces, and merges per-replica serving reports into one
fleet-wide view.

Quickstart::

    from repro import make_fleet
    from repro.workloads import skewed_serving_workload

    fleet = make_fleet(
        strategy="hybrimoe", cache_ratio=0.25, num_layers=8,
        replicas=2, router="cache_affinity",
    )
    trace = skewed_serving_workload(
        num_requests=8, arrival_rate=2.0, num_profiles=2
    )
    report = fleet.serve_trace(trace)
    print(report.summary())
"""

from repro.fleet.autoscale import AutoscaleConfig, AutoscaleEvent
from repro.fleet.faults import FaultSchedule, ReplicaFault
from repro.fleet.fleet import FleetReport, FleetRouter, Replica, RoutingDecision
from repro.fleet.router import (
    CacheAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    available_routers,
    make_router,
)

__all__ = [
    "FleetRouter",
    "FleetReport",
    "Replica",
    "RoutingDecision",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "CacheAffinityPolicy",
    "available_routers",
    "make_router",
    "FaultSchedule",
    "ReplicaFault",
    "AutoscaleConfig",
    "AutoscaleEvent",
]
