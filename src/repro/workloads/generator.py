"""Workload construction for the evaluation harness.

Besides the paper's single-generation prefill/decode workloads, this
module builds **serving traces**: request streams with arrival times
drawn from a Poisson process (or replayed from an explicit trace) that
the continuous-batching serving loop consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.rng import derive_rng
from repro.workloads.datasets import (
    DATASET_PROFILES,
    bucket_length,
    sample_prompt,
)

__all__ = [
    "PRIORITY_CLASSES",
    "DEFAULT_PRIORITY",
    "WorkloadSpec",
    "prefill_workloads",
    "decode_workload",
    "ArrivedWorkload",
    "poisson_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
    "trace_arrivals",
    "priority_assignment",
    "serving_workload",
    "skewed_serving_workload",
    "chat_serving_workload",
]

#: Priority classes in ascending precedence. Defined here (the lowest
#: layer that needs them) and re-exported by :mod:`repro.serving`:
#: traces stamp a class on every entry, the serving scheduler orders
#: admission by it.
PRIORITY_CLASSES: tuple[str, ...] = ("batch", "interactive")

#: Class used when a trace or request does not specify one.
DEFAULT_PRIORITY = "batch"


@dataclass(frozen=True)
class WorkloadSpec:
    """One runnable workload: a prompt plus a decode budget."""

    kind: str  # "prefill" | "decode"
    dataset: str
    prompt_tokens: np.ndarray
    decode_steps: int
    bucket: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("prefill", "decode"):
            raise ConfigError(f"workload kind must be prefill/decode, got {self.kind!r}")
        if self.decode_steps < 0:
            raise ConfigError(f"decode_steps must be non-negative, got {self.decode_steps}")

    @property
    def prompt_len(self) -> int:
        return int(np.asarray(self.prompt_tokens).size)


def prefill_workloads(
    bucket: int,
    n_samples: int = 1,
    vocab_size: int = 512,
    datasets: tuple[str, ...] = ("mtbench", "vicuna", "chatgpt-prompts"),
    seed: int = 0,
) -> list[WorkloadSpec]:
    """Prefill workloads with lengths around a Fig. 7 bucket.

    Samples cycle through the requested datasets (the paper mixes
    traces from all three for the prefill evaluation).
    """
    if n_samples <= 0:
        raise ConfigError(f"n_samples must be positive, got {n_samples}")
    for dataset in datasets:
        if dataset not in DATASET_PROFILES:
            raise ConfigError(f"unknown dataset {dataset!r}")
    specs = []
    for index in range(n_samples):
        dataset = datasets[index % len(datasets)]
        length = bucket_length(bucket, seed=seed, index=index)
        tokens = sample_prompt(
            dataset, vocab_size, seed=seed, index=index, length=length
        )
        specs.append(
            WorkloadSpec(
                kind="prefill",
                dataset=dataset,
                prompt_tokens=tokens,
                decode_steps=0,
                bucket=bucket,
            )
        )
    return specs


def decode_workload(
    decode_steps: int,
    vocab_size: int = 512,
    dataset: str = "chatgpt-prompts",
    seed: int = 0,
    index: int = 0,
) -> WorkloadSpec:
    """A decode workload: a dataset-typical prompt plus N decode steps.

    The paper evaluates TBT on ChatGPT-Prompts only, as decode latency
    is insensitive to prompt length (§VI-A.5).
    """
    if decode_steps <= 0:
        raise ConfigError(f"decode_steps must be positive, got {decode_steps}")
    tokens = sample_prompt(dataset, vocab_size, seed=seed, index=index)
    return WorkloadSpec(
        kind="decode",
        dataset=dataset,
        prompt_tokens=tokens,
        decode_steps=decode_steps,
    )


# ----------------------------------------------------------------------
# serving traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivedWorkload:
    """One serving-trace entry: a workload plus its arrival instant.

    ``priority`` names the request's priority class (``"batch"`` by
    default — pure FCFS when every entry uses it) and ``tbt_deadline``
    an optional per-request TBT SLO target in seconds, both forwarded
    onto the :class:`~repro.serving.request.Request` built from the
    entry.
    """

    arrival_time: float
    workload: WorkloadSpec
    priority: str = "batch"
    tbt_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError(
                f"arrival_time must be non-negative, got {self.arrival_time}"
            )
        if self.tbt_deadline is not None and self.tbt_deadline <= 0:
            raise ConfigError(
                f"tbt_deadline must be positive, got {self.tbt_deadline}"
            )


def poisson_arrivals(
    num_requests: int, rate: float, seed: int = 0, start: float = 0.0
) -> np.ndarray:
    """Arrival instants of a Poisson process with ``rate`` requests/s.

    Inter-arrival gaps are i.i.d. exponential draws from a derived
    generator, so the trace is a pure function of ``(num_requests,
    rate, seed)`` — replays are deterministic.
    """
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate}")
    if start < 0:
        raise ConfigError(f"start must be non-negative, got {start}")
    rng = derive_rng(
        seed, "workload", "arrivals", "poisson", num_requests, repr(float(rate))
    )
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return start + np.cumsum(gaps)


def _thinned_arrivals(
    num_requests: int,
    rate_fn,
    max_rate: float,
    seed: int,
    namespace: tuple,
    start: float,
) -> np.ndarray:
    """Non-homogeneous Poisson arrivals by thinning (Lewis-Shedler).

    Candidates are drawn from a homogeneous process at ``max_rate`` and
    accepted with probability ``rate_fn(t) / max_rate``, giving exact
    samples of the time-varying process. Deterministic per
    ``(num_requests, seed, namespace)``.
    """
    rng = derive_rng(seed, "workload", "arrivals", *namespace, num_requests)
    times = np.empty(num_requests, dtype=np.float64)
    t = start
    accepted = 0
    while accepted < num_requests:
        t += rng.exponential(scale=1.0 / max_rate)
        if rng.random() * max_rate <= rate_fn(t):
            times[accepted] = t
            accepted += 1
    return times


def diurnal_arrivals(
    num_requests: int,
    base_rate: float,
    peak_rate: float,
    period: float = 60.0,
    seed: int = 0,
    start: float = 0.0,
) -> np.ndarray:
    """Arrivals of a sinusoidal day/night load cycle.

    The instantaneous rate swings between ``base_rate`` (trough) and
    ``peak_rate`` (crest) over each ``period`` seconds — the classic
    diurnal traffic shape autoscalers are sized against, compressed to
    simulation scale. Sampled by thinning, so replays are
    deterministic.
    """
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")
    if base_rate <= 0 or peak_rate < base_rate:
        raise ConfigError(
            f"need 0 < base_rate <= peak_rate, got {base_rate}/{peak_rate}"
        )
    if period <= 0:
        raise ConfigError(f"period must be positive, got {period}")
    if start < 0:
        raise ConfigError(f"start must be non-negative, got {start}")
    mid = (base_rate + peak_rate) / 2.0
    swing = (peak_rate - base_rate) / 2.0

    def rate(t: float) -> float:
        return mid + swing * np.sin(2.0 * np.pi * t / period)

    return _thinned_arrivals(
        num_requests,
        rate,
        peak_rate,
        seed,
        ("diurnal", repr(float(base_rate)), repr(float(peak_rate)), repr(float(period))),
        start,
    )


def bursty_arrivals(
    num_requests: int,
    base_rate: float,
    burst_rate: float,
    burst_every: float = 30.0,
    burst_duration: float = 5.0,
    seed: int = 0,
    start: float = 0.0,
) -> np.ndarray:
    """Arrivals of a quiet baseline punctuated by periodic traffic spikes.

    The rate sits at ``base_rate`` and jumps to ``burst_rate`` for
    ``burst_duration`` seconds at the start of every ``burst_every``
    window — flash-crowd traffic, the stress case for threshold
    autoscaling (scale-up lag eats into the burst). Sampled by
    thinning; deterministic per seed.
    """
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")
    if base_rate <= 0 or burst_rate < base_rate:
        raise ConfigError(
            f"need 0 < base_rate <= burst_rate, got {base_rate}/{burst_rate}"
        )
    if burst_every <= 0 or not 0 < burst_duration <= burst_every:
        raise ConfigError(
            f"need 0 < burst_duration <= burst_every, got "
            f"{burst_duration}/{burst_every}"
        )
    if start < 0:
        raise ConfigError(f"start must be non-negative, got {start}")

    def rate(t: float) -> float:
        return burst_rate if (t % burst_every) < burst_duration else base_rate

    return _thinned_arrivals(
        num_requests,
        rate,
        burst_rate,
        seed,
        (
            "bursty",
            repr(float(base_rate)),
            repr(float(burst_rate)),
            repr(float(burst_every)),
            repr(float(burst_duration)),
        ),
        start,
    )


def trace_arrivals(times) -> np.ndarray:
    """Validate an explicit arrival trace (non-negative, non-decreasing)."""
    arr = np.asarray(times, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError("arrival trace must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ConfigError("arrival times must be non-negative")
    if np.any(np.diff(arr) < 0):
        raise ConfigError("arrival times must be non-decreasing")
    return arr


def priority_assignment(
    num_requests: int,
    priority_mix: dict[str, float] | None,
    seed: int = 0,
) -> list[str]:
    """Deterministic per-request priority classes from a class mix.

    ``priority_mix`` maps class names to arrival fractions (must sum to
    1); classes are drawn i.i.d. from the mix with a derived generator,
    so the assignment is a pure function of ``(num_requests,
    priority_mix, seed)``. ``None`` assigns every request the default
    class.
    """
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")
    if priority_mix is None:
        return [DEFAULT_PRIORITY] * num_requests
    if not priority_mix:
        raise ConfigError("priority_mix must not be empty")
    for name, fraction in priority_mix.items():
        if name not in PRIORITY_CLASSES:
            known = ", ".join(PRIORITY_CLASSES)
            raise ConfigError(
                f"unknown priority class {name!r} in priority_mix (known: {known})"
            )
        if fraction < 0:
            raise ConfigError(
                f"priority_mix fraction for {name!r} must be non-negative, "
                f"got {fraction}"
            )
    total = float(sum(priority_mix.values()))
    if abs(total - 1.0) > 1e-9:
        raise ConfigError(f"priority_mix fractions must sum to 1, got {total}")
    # Stable class order (precedence order) regardless of dict order.
    names = [c for c in PRIORITY_CLASSES if c in priority_mix]
    edges = np.cumsum([priority_mix[n] for n in names])
    rng = derive_rng(seed, "workload", "priorities", num_requests)
    draws = rng.random(size=num_requests)
    # side="right" + clip: a draw exactly on an edge (or a mix whose
    # float sum lands slightly under 1) still maps to a valid class.
    indices = np.minimum(np.searchsorted(edges, draws, side="right"), len(names) - 1)
    return [names[int(i)] for i in indices]


def serving_workload(
    num_requests: int | None = None,
    arrival_rate: float | None = None,
    arrival_times=None,
    decode_steps: int = 16,
    vocab_size: int = 512,
    datasets: tuple[str, ...] = ("mtbench", "vicuna", "chatgpt-prompts"),
    seed: int = 0,
    priority_mix: dict[str, float] | None = None,
    class_deadlines: dict[str, float] | None = None,
) -> list[ArrivedWorkload]:
    """Build a serving trace of ``num_requests`` arriving requests.

    Arrival instants come from a Poisson process at ``arrival_rate``
    requests/s, or from an explicit ``arrival_times`` trace (exactly one
    of the two must be given). ``num_requests`` defaults to the trace
    length when ``arrival_times`` is given, else to 8. Prompts cycle
    through ``datasets`` with dataset-typical lengths; each request
    decodes ``decode_steps`` tokens.

    ``priority_mix`` maps priority classes to arrival fractions (e.g.
    ``{"interactive": 0.25, "batch": 0.75}``); omitted, every request
    is the default class and serving degenerates to FCFS.
    ``class_deadlines`` optionally stamps a per-class TBT deadline
    (seconds) on every request of that class, for SLO-attainment
    reporting.
    """
    if (arrival_rate is None) == (arrival_times is None):
        raise ConfigError("pass exactly one of arrival_rate / arrival_times")
    if decode_steps < 0:
        raise ConfigError(f"decode_steps must be non-negative, got {decode_steps}")
    for dataset in datasets:
        if dataset not in DATASET_PROFILES:
            raise ConfigError(f"unknown dataset {dataset!r}")
    if class_deadlines is not None:
        for name in class_deadlines:
            if name not in PRIORITY_CLASSES:
                known = ", ".join(PRIORITY_CLASSES)
                raise ConfigError(
                    f"unknown priority class {name!r} in class_deadlines "
                    f"(known: {known})"
                )
    if arrival_times is not None:
        times = trace_arrivals(arrival_times)
        if num_requests is None:
            num_requests = int(times.size)
        elif times.size != num_requests:
            raise ConfigError(
                f"arrival trace has {times.size} entries for {num_requests} requests"
            )
        if num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {num_requests}")
    else:
        if num_requests is None:
            num_requests = 8
        if num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {num_requests}")
        times = poisson_arrivals(num_requests, arrival_rate, seed=seed)
    priorities = priority_assignment(num_requests, priority_mix, seed=seed)
    entries = []
    for index in range(num_requests):
        dataset = datasets[index % len(datasets)]
        tokens = sample_prompt(dataset, vocab_size, seed=seed, index=index)
        workload = WorkloadSpec(
            kind="decode" if decode_steps > 0 else "prefill",
            dataset=dataset,
            prompt_tokens=tokens,
            decode_steps=decode_steps,
        )
        priority = priorities[index]
        deadline = (class_deadlines or {}).get(priority)
        entries.append(
            ArrivedWorkload(
                arrival_time=float(times[index]),
                workload=workload,
                priority=priority,
                tbt_deadline=deadline,
            )
        )
    return entries


def chat_serving_workload(
    num_sessions: int = 4,
    turns_per_session: int = 3,
    session_rate: float = 0.5,
    think_time_s: float = 2.0,
    user_tokens: int = 16,
    decode_steps: int = 8,
    vocab_size: int = 512,
    dataset: str = "chatgpt-prompts",
    seed: int = 0,
) -> list[ArrivedWorkload]:
    """Multi-turn chat sessions with cross-turn prompt-prefix reuse.

    Each of ``num_sessions`` conversations opens with a dataset-typical
    prompt and then alternates: the model's ``decode_steps`` reply and
    the user's next ``user_tokens`` message are *appended* to the
    running context, so turn ``t``'s prompt is turn ``t-1``'s prompt
    plus one exchange. Consecutive turns of a session therefore share
    their entire token prefix — they activate near-identical expert
    routing profiles, and the expert residency a turn earns is exactly
    what its successor wants. This is the workload where cross-turn
    **cache reuse** pays (and where evicting a quiet session's experts
    between turns hurts): the chat analogue of the paper's
    decode-locality argument, one level up.

    Sessions start at Poisson instants (``session_rate`` sessions/s);
    within a session, turn ``t`` arrives one think-time after turn
    ``t-1`` (exponential with mean ``think_time_s``, so sessions
    interleave irregularly). All entries are returned globally sorted
    by arrival instant. Deterministic per ``(num_sessions,
    turns_per_session, seed)``; replies are synthesised token draws
    (the simulator never feeds real decoded tokens back), which
    preserves the prefix-sharing structure the cache sees.
    """
    if num_sessions <= 0:
        raise ConfigError(f"num_sessions must be positive, got {num_sessions}")
    if turns_per_session <= 0:
        raise ConfigError(
            f"turns_per_session must be positive, got {turns_per_session}"
        )
    if think_time_s <= 0:
        raise ConfigError(f"think_time_s must be positive, got {think_time_s}")
    if user_tokens <= 0:
        raise ConfigError(f"user_tokens must be positive, got {user_tokens}")
    if decode_steps < 0:
        raise ConfigError(f"decode_steps must be non-negative, got {decode_steps}")
    if dataset not in DATASET_PROFILES:
        raise ConfigError(f"unknown dataset {dataset!r}")
    starts = poisson_arrivals(num_sessions, session_rate, seed=seed)
    entries: list[tuple[float, int, int, WorkloadSpec]] = []
    for session in range(num_sessions):
        context = np.asarray(
            sample_prompt(dataset, vocab_size, seed=seed, index=session),
            dtype=np.int64,
        )
        arrival = float(starts[session])
        for turn in range(turns_per_session):
            entries.append(
                (
                    arrival,
                    session,
                    turn,
                    WorkloadSpec(
                        kind="decode" if decode_steps > 0 else "prefill",
                        dataset=dataset,
                        prompt_tokens=context.copy(),
                        decode_steps=decode_steps,
                    ),
                )
            )
            rng = derive_rng(seed, "workload", "chat", session, turn)
            exchange = rng.integers(
                0, vocab_size, size=max(decode_steps, 1) + user_tokens
            )
            context = np.concatenate([context, exchange])
            arrival += float(rng.exponential(scale=think_time_s))
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return [
        ArrivedWorkload(arrival_time=arrival, workload=workload)
        for arrival, _session, _turn, workload in entries
    ]


def skewed_serving_workload(
    num_requests: int | None = None,
    arrival_rate: float | None = None,
    arrival_times=None,
    num_profiles: int = 2,
    decode_steps: int = 16,
    vocab_size: int = 512,
    dataset: str = "chatgpt-prompts",
    prompt_length: int | None = None,
    seed: int = 0,
) -> list[ArrivedWorkload]:
    """A serving trace of ``num_profiles`` hot prompt profiles.

    Each request replays the *exact* prompt tokens of one of
    ``num_profiles`` fixed profiles (drawn i.i.d. uniform per request
    from a derived generator — a deliberately irregular order, so no
    rotation policy aligns with it by accident), so every request of a
    profile activates the same expert routing profile — tenant skew: a
    handful of hot workloads dominate the stream. This is the trace
    where **cache-affinity fleet routing** pays: steering each
    profile's requests at the replica already holding its experts
    keeps per-replica caches hot, while profile-oblivious policies
    (round-robin) bounce every profile across every replica and thrash
    all the caches. Arrival instants follow :func:`serving_workload`'s
    convention (Poisson at ``arrival_rate`` or an explicit
    ``arrival_times`` trace).

    ``prompt_length`` fixes every profile's token count (``None``
    samples lengths from the dataset profile). Short prompts activate
    a *sparse* expert subset per layer, which is what gives profiles
    distinct cache footprints — a prompt long enough to touch every
    expert makes all profiles look alike to an expert cache.
    """
    if (arrival_rate is None) == (arrival_times is None):
        raise ConfigError("pass exactly one of arrival_rate / arrival_times")
    if num_profiles <= 0:
        raise ConfigError(f"num_profiles must be positive, got {num_profiles}")
    if decode_steps < 0:
        raise ConfigError(f"decode_steps must be non-negative, got {decode_steps}")
    if dataset not in DATASET_PROFILES:
        raise ConfigError(f"unknown dataset {dataset!r}")
    if prompt_length is not None and prompt_length <= 0:
        raise ConfigError(f"prompt_length must be positive, got {prompt_length}")
    if arrival_times is not None:
        times = trace_arrivals(arrival_times)
        if num_requests is None:
            num_requests = int(times.size)
        elif times.size != num_requests:
            raise ConfigError(
                f"arrival trace has {times.size} entries for {num_requests} requests"
            )
    else:
        if num_requests is None:
            num_requests = 8
        if num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {num_requests}")
        times = poisson_arrivals(num_requests, arrival_rate, seed=seed)
    profiles = [
        sample_prompt(dataset, vocab_size, seed=seed, index=p, length=prompt_length)
        for p in range(num_profiles)
    ]
    rng = derive_rng(seed, "workload", "skewed-profiles", num_requests, num_profiles)
    assignment = rng.integers(0, num_profiles, size=num_requests)
    return [
        ArrivedWorkload(
            arrival_time=float(times[index]),
            workload=WorkloadSpec(
                kind="decode" if decode_steps > 0 else "prefill",
                dataset=dataset,
                prompt_tokens=profiles[int(assignment[index])],
                decode_steps=decode_steps,
            ),
        )
        for index in range(num_requests)
    ]
