"""Workload construction for the evaluation harness.

Besides the paper's single-generation prefill/decode workloads, this
module builds **serving traces**: request streams with arrival times
drawn from a Poisson process (or replayed from an explicit trace) that
the continuous-batching serving loop consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.rng import derive_rng
from repro.workloads.datasets import (
    DATASET_PROFILES,
    bucket_length,
    sample_prompt,
)

__all__ = [
    "WorkloadSpec",
    "prefill_workloads",
    "decode_workload",
    "ArrivedWorkload",
    "poisson_arrivals",
    "trace_arrivals",
    "serving_workload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """One runnable workload: a prompt plus a decode budget."""

    kind: str  # "prefill" | "decode"
    dataset: str
    prompt_tokens: np.ndarray
    decode_steps: int
    bucket: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("prefill", "decode"):
            raise ConfigError(f"workload kind must be prefill/decode, got {self.kind!r}")
        if self.decode_steps < 0:
            raise ConfigError(f"decode_steps must be non-negative, got {self.decode_steps}")

    @property
    def prompt_len(self) -> int:
        return int(np.asarray(self.prompt_tokens).size)


def prefill_workloads(
    bucket: int,
    n_samples: int = 1,
    vocab_size: int = 512,
    datasets: tuple[str, ...] = ("mtbench", "vicuna", "chatgpt-prompts"),
    seed: int = 0,
) -> list[WorkloadSpec]:
    """Prefill workloads with lengths around a Fig. 7 bucket.

    Samples cycle through the requested datasets (the paper mixes
    traces from all three for the prefill evaluation).
    """
    if n_samples <= 0:
        raise ConfigError(f"n_samples must be positive, got {n_samples}")
    for dataset in datasets:
        if dataset not in DATASET_PROFILES:
            raise ConfigError(f"unknown dataset {dataset!r}")
    specs = []
    for index in range(n_samples):
        dataset = datasets[index % len(datasets)]
        length = bucket_length(bucket, seed=seed, index=index)
        tokens = sample_prompt(
            dataset, vocab_size, seed=seed, index=index, length=length
        )
        specs.append(
            WorkloadSpec(
                kind="prefill",
                dataset=dataset,
                prompt_tokens=tokens,
                decode_steps=0,
                bucket=bucket,
            )
        )
    return specs


def decode_workload(
    decode_steps: int,
    vocab_size: int = 512,
    dataset: str = "chatgpt-prompts",
    seed: int = 0,
    index: int = 0,
) -> WorkloadSpec:
    """A decode workload: a dataset-typical prompt plus N decode steps.

    The paper evaluates TBT on ChatGPT-Prompts only, as decode latency
    is insensitive to prompt length (§VI-A.5).
    """
    if decode_steps <= 0:
        raise ConfigError(f"decode_steps must be positive, got {decode_steps}")
    tokens = sample_prompt(dataset, vocab_size, seed=seed, index=index)
    return WorkloadSpec(
        kind="decode",
        dataset=dataset,
        prompt_tokens=tokens,
        decode_steps=decode_steps,
    )


# ----------------------------------------------------------------------
# serving traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivedWorkload:
    """One serving-trace entry: a workload plus its arrival instant."""

    arrival_time: float
    workload: WorkloadSpec

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError(
                f"arrival_time must be non-negative, got {self.arrival_time}"
            )


def poisson_arrivals(
    num_requests: int, rate: float, seed: int = 0, start: float = 0.0
) -> np.ndarray:
    """Arrival instants of a Poisson process with ``rate`` requests/s.

    Inter-arrival gaps are i.i.d. exponential draws from a derived
    generator, so the trace is a pure function of ``(num_requests,
    rate, seed)`` — replays are deterministic.
    """
    if num_requests <= 0:
        raise ConfigError(f"num_requests must be positive, got {num_requests}")
    if rate <= 0:
        raise ConfigError(f"arrival rate must be positive, got {rate}")
    if start < 0:
        raise ConfigError(f"start must be non-negative, got {start}")
    rng = derive_rng(
        seed, "workload", "arrivals", "poisson", num_requests, repr(float(rate))
    )
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return start + np.cumsum(gaps)


def trace_arrivals(times) -> np.ndarray:
    """Validate an explicit arrival trace (non-negative, non-decreasing)."""
    arr = np.asarray(times, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError("arrival trace must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ConfigError("arrival times must be non-negative")
    if np.any(np.diff(arr) < 0):
        raise ConfigError("arrival times must be non-decreasing")
    return arr


def serving_workload(
    num_requests: int | None = None,
    arrival_rate: float | None = None,
    arrival_times=None,
    decode_steps: int = 16,
    vocab_size: int = 512,
    datasets: tuple[str, ...] = ("mtbench", "vicuna", "chatgpt-prompts"),
    seed: int = 0,
) -> list[ArrivedWorkload]:
    """Build a serving trace of ``num_requests`` arriving requests.

    Arrival instants come from a Poisson process at ``arrival_rate``
    requests/s, or from an explicit ``arrival_times`` trace (exactly one
    of the two must be given). ``num_requests`` defaults to the trace
    length when ``arrival_times`` is given, else to 8. Prompts cycle
    through ``datasets`` with dataset-typical lengths; each request
    decodes ``decode_steps`` tokens.
    """
    if (arrival_rate is None) == (arrival_times is None):
        raise ConfigError("pass exactly one of arrival_rate / arrival_times")
    if decode_steps < 0:
        raise ConfigError(f"decode_steps must be non-negative, got {decode_steps}")
    for dataset in datasets:
        if dataset not in DATASET_PROFILES:
            raise ConfigError(f"unknown dataset {dataset!r}")
    if arrival_times is not None:
        times = trace_arrivals(arrival_times)
        if num_requests is None:
            num_requests = int(times.size)
        elif times.size != num_requests:
            raise ConfigError(
                f"arrival trace has {times.size} entries for {num_requests} requests"
            )
        if num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {num_requests}")
    else:
        if num_requests is None:
            num_requests = 8
        if num_requests <= 0:
            raise ConfigError(f"num_requests must be positive, got {num_requests}")
        times = poisson_arrivals(num_requests, arrival_rate, seed=seed)
    entries = []
    for index in range(num_requests):
        dataset = datasets[index % len(datasets)]
        tokens = sample_prompt(dataset, vocab_size, seed=seed, index=index)
        workload = WorkloadSpec(
            kind="decode" if decode_steps > 0 else "prefill",
            dataset=dataset,
            prompt_tokens=tokens,
            decode_steps=decode_steps,
        )
        entries.append(
            ArrivedWorkload(arrival_time=float(times[index]), workload=workload)
        )
    return entries
