"""Workload construction for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.workloads.datasets import (
    DATASET_PROFILES,
    bucket_length,
    sample_prompt,
)

__all__ = ["WorkloadSpec", "prefill_workloads", "decode_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One runnable workload: a prompt plus a decode budget."""

    kind: str  # "prefill" | "decode"
    dataset: str
    prompt_tokens: np.ndarray
    decode_steps: int
    bucket: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("prefill", "decode"):
            raise ConfigError(f"workload kind must be prefill/decode, got {self.kind!r}")
        if self.decode_steps < 0:
            raise ConfigError(f"decode_steps must be non-negative, got {self.decode_steps}")

    @property
    def prompt_len(self) -> int:
        return int(np.asarray(self.prompt_tokens).size)


def prefill_workloads(
    bucket: int,
    n_samples: int = 1,
    vocab_size: int = 512,
    datasets: tuple[str, ...] = ("mtbench", "vicuna", "chatgpt-prompts"),
    seed: int = 0,
) -> list[WorkloadSpec]:
    """Prefill workloads with lengths around a Fig. 7 bucket.

    Samples cycle through the requested datasets (the paper mixes
    traces from all three for the prefill evaluation).
    """
    if n_samples <= 0:
        raise ConfigError(f"n_samples must be positive, got {n_samples}")
    for dataset in datasets:
        if dataset not in DATASET_PROFILES:
            raise ConfigError(f"unknown dataset {dataset!r}")
    specs = []
    for index in range(n_samples):
        dataset = datasets[index % len(datasets)]
        length = bucket_length(bucket, seed=seed, index=index)
        tokens = sample_prompt(
            dataset, vocab_size, seed=seed, index=index, length=length
        )
        specs.append(
            WorkloadSpec(
                kind="prefill",
                dataset=dataset,
                prompt_tokens=tokens,
                decode_steps=0,
                bucket=bucket,
            )
        )
    return specs


def decode_workload(
    decode_steps: int,
    vocab_size: int = 512,
    dataset: str = "chatgpt-prompts",
    seed: int = 0,
    index: int = 0,
) -> WorkloadSpec:
    """A decode workload: a dataset-typical prompt plus N decode steps.

    The paper evaluates TBT on ChatGPT-Prompts only, as decode latency
    is insensitive to prompt length (§VI-A.5).
    """
    if decode_steps <= 0:
        raise ConfigError(f"decode_steps must be positive, got {decode_steps}")
    tokens = sample_prompt(dataset, vocab_size, seed=seed, index=index)
    return WorkloadSpec(
        kind="decode",
        dataset=dataset,
        prompt_tokens=tokens,
        decode_steps=decode_steps,
    )
