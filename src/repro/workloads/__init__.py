"""Synthetic workloads standing in for the paper's evaluation datasets.

The paper samples prompt traces of different lengths from MT-Bench,
Vicuna-Bench and ChatGPT-Prompts (§VI-A.5). Only prompt *lengths* (and
decode step counts) matter to the scheduling system, so this package
provides seeded length samplers matched to each dataset's published
length profile, plus the prefill length buckets (32/128/512/1024) used
in Fig. 7.
"""

from repro.workloads.datasets import (
    DATASET_PROFILES,
    PREFILL_BUCKETS,
    DatasetProfile,
    bucket_length,
    sample_prompt,
    sample_prompt_length,
)
from repro.workloads.generator import (
    ArrivedWorkload,
    WorkloadSpec,
    bursty_arrivals,
    chat_serving_workload,
    decode_workload,
    diurnal_arrivals,
    poisson_arrivals,
    prefill_workloads,
    serving_workload,
    skewed_serving_workload,
    trace_arrivals,
)

__all__ = [
    "ArrivedWorkload",
    "poisson_arrivals",
    "diurnal_arrivals",
    "bursty_arrivals",
    "trace_arrivals",
    "serving_workload",
    "skewed_serving_workload",
    "chat_serving_workload",
    "DatasetProfile",
    "DATASET_PROFILES",
    "PREFILL_BUCKETS",
    "sample_prompt_length",
    "sample_prompt",
    "bucket_length",
    "WorkloadSpec",
    "prefill_workloads",
    "decode_workload",
]
