"""Dataset length profiles and prompt samplers.

Each profile models a dataset's prompt-length distribution as a
truncated log-normal — a good fit for chat-style prompt corpora. The
medians/shapes below follow the published statistics of the respective
datasets (MT-Bench turns are short questions; Vicuna-Bench prompts are
single-sentence tasks; ChatGPT-Prompts are persona instructions with a
long tail).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.rng import derive_rng

__all__ = [
    "DatasetProfile",
    "DATASET_PROFILES",
    "PREFILL_BUCKETS",
    "sample_prompt_length",
    "sample_prompt",
    "bucket_length",
]

#: Prefill length buckets evaluated in paper Fig. 7.
PREFILL_BUCKETS = (32, 128, 512, 1024)


@dataclass(frozen=True)
class DatasetProfile:
    """Truncated log-normal prompt-length model for one dataset."""

    name: str
    median_tokens: float
    sigma: float
    min_tokens: int
    max_tokens: int

    def __post_init__(self) -> None:
        if self.median_tokens <= 0 or self.sigma <= 0:
            raise ConfigError(f"invalid length profile for {self.name!r}")
        if not 0 < self.min_tokens <= self.max_tokens:
            raise ConfigError(f"invalid length bounds for {self.name!r}")

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one prompt length."""
        length = rng.lognormal(mean=np.log(self.median_tokens), sigma=self.sigma)
        return int(np.clip(round(length), self.min_tokens, self.max_tokens))


DATASET_PROFILES = {
    "mtbench": DatasetProfile("mtbench", median_tokens=55.0, sigma=0.55, min_tokens=8, max_tokens=512),
    "vicuna": DatasetProfile("vicuna", median_tokens=35.0, sigma=0.45, min_tokens=6, max_tokens=256),
    "chatgpt-prompts": DatasetProfile(
        "chatgpt-prompts", median_tokens=120.0, sigma=0.75, min_tokens=12, max_tokens=2048
    ),
}


def _profile(dataset: str) -> DatasetProfile:
    try:
        return DATASET_PROFILES[dataset]
    except KeyError:
        known = ", ".join(sorted(DATASET_PROFILES))
        raise ConfigError(f"unknown dataset {dataset!r} (known: {known})") from None


def sample_prompt_length(dataset: str, seed: int = 0, index: int = 0) -> int:
    """Deterministically sample one prompt length from a dataset profile."""
    rng = derive_rng(seed, "workload", dataset, "length", index)
    return _profile(dataset).sample(rng)


def bucket_length(bucket: int, seed: int = 0, index: int = 0, jitter: float = 0.1) -> int:
    """Length "around" a Fig. 7 bucket (the paper samples approximately).

    A +-``jitter`` fraction of uniform noise is applied, matching the
    paper's "around 32, 128, 512 and 1024 tokens" sampling.
    """
    if bucket <= 0:
        raise ConfigError(f"bucket must be positive, got {bucket}")
    if not 0.0 <= jitter < 1.0:
        raise ConfigError(f"jitter must be in [0, 1), got {jitter}")
    rng = derive_rng(seed, "workload", "bucket", bucket, index)
    low = max(1, int(round(bucket * (1.0 - jitter))))
    high = int(round(bucket * (1.0 + jitter)))
    return int(rng.integers(low, high + 1))


def sample_prompt(
    dataset: str,
    vocab_size: int,
    seed: int = 0,
    index: int = 0,
    length: int | None = None,
) -> np.ndarray:
    """Sample token ids for one prompt (content is synthetic).

    Token *identities* only seed the functional model's hidden-state
    trajectory; the scheduling system is sensitive to lengths and
    routing dynamics, not text.
    """
    if vocab_size <= 1:
        raise ConfigError(f"vocab_size must be > 1, got {vocab_size}")
    if length is None:
        length = sample_prompt_length(dataset, seed=seed, index=index)
    if length <= 0:
        raise ConfigError(f"prompt length must be positive, got {length}")
    rng = derive_rng(seed, "workload", dataset, "tokens", index)
    return rng.integers(0, vocab_size, size=length)
